//! Cross-crate edge cases and failure injection that unit tests don't
//! reach: degenerate geometry, extreme parameters, weighted pipelines,
//! higher dimensions — plus the shared degenerate-input matrix that runs
//! *every* pipeline (via the conformance adapters) on the inputs that
//! historically crash clustering code: `n = 0`, `k = 1`, `z ≥ n`, and
//! all-points-identical.

use kcenter_outliers::harness::{all_pipelines, Scenario, SIDE_BITS};
use kcenter_outliers::prelude::*;

/// A hand-built scenario for the edge matrix (integer coordinates, as the
/// catalog invariants require).
fn edge_scenario(name: &'static str, points: Vec<[f64; 2]>, k: usize, z: u64) -> Scenario {
    Scenario {
        name,
        description: "edge-case matrix",
        points,
        k,
        z,
        eps: 0.5,
        machines: 3,
        rounds: 2,
        side_bits: SIDE_BITS,
        oracle: true,
        seed: 0xED6E,
        mid_snapshots: false,
    }
}

/// Every pipeline must return a *defined* result — finite radius, outlier
/// budget respected, no panic — on each degenerate input.  Where the
/// optimum is trivially 0 the radius must be exactly 0.
#[test]
fn degenerate_input_matrix_every_pipeline_defined() {
    let blob: Vec<[f64; 2]> = (0..30)
        .map(|i| [100.0 + (i % 6) as f64, 200.0 + (i / 6) as f64])
        .collect();
    let cases: Vec<(Scenario, bool)> = vec![
        // (scenario, opt-is-exactly-zero)
        (edge_scenario("empty_input", vec![], 1, 0), true),
        (edge_scenario("empty_input_k3_z5", vec![], 3, 5), true),
        (edge_scenario("k_one", blob.clone(), 1, 2), false),
        (edge_scenario("z_equals_n", blob.clone(), 2, 30), true),
        (edge_scenario("z_exceeds_n", blob.clone(), 2, 1000), true),
        (
            edge_scenario("all_identical", vec![[42.0, 17.0]; 25], 3, 2),
            true,
        ),
        (edge_scenario("single_point", vec![[9.0, 9.0]], 1, 0), true),
        (
            // Two distinct points, k = 1, z = 0: radius is their distance.
            edge_scenario("two_points_k1", vec![[0.0, 0.0], [30.0, 40.0]], 1, 0),
            false,
        ),
    ];
    for (sc, zero_opt) in &cases {
        for p in all_pipelines() {
            let v = p.run(sc);
            assert!(
                v.radius.is_finite(),
                "{}/{}: radius {}",
                sc.name,
                v.pipeline,
                v.radius
            );
            let total = total_weight(&sc.weighted());
            if total > sc.z {
                assert!(
                    v.uncovered <= sc.z,
                    "{}/{}: excluded {} > z = {}",
                    sc.name,
                    v.pipeline,
                    v.uncovered,
                    sc.z
                );
            }
            if *zero_opt {
                assert_eq!(
                    v.radius, 0.0,
                    "{}/{}: expected zero radius",
                    sc.name, v.pipeline
                );
            }
            assert!(v.centers <= sc.k, "{}/{}", sc.name, v.pipeline);
        }
    }
}

#[test]
fn all_points_identical() {
    let pts = vec![[3.0, 3.0]; 50];
    let weighted = unit_weighted(&pts);
    // Offline: one rep carrying all the weight, radius 0.
    let mbc = mbc_construction(&L2, &weighted, 2, 3, 0.5);
    assert_eq!(mbc.len(), 1);
    assert_eq!(mbc.total_weight(), 50);
    assert_eq!(greedy(&L2, &mbc.reps, 2, 3).radius, 0.0);
    // Streaming: duplicates merge even while r = 0.
    let mut alg = InsertionOnlyCoreset::new(L2, 2, 3, 0.5);
    for p in &pts {
        alg.insert(*p);
    }
    assert_eq!(alg.coreset().len(), 1);
    assert_eq!(total_weight(alg.coreset()), 50);
}

#[test]
fn collinear_points_one_dim_structure() {
    // Degenerate geometry in R²: all points on a line.  (k kept small —
    // the validator's exact solver enumerates C(n, k) center subsets.)
    let pts: Vec<[f64; 2]> = (0..100).map(|i| [i as f64, 0.0]).collect();
    let weighted = unit_weighted(&pts);
    let mbc = mbc_construction(&L2, &weighted, 2, 3, 1.0);
    let report = validate_coreset(&L2, &weighted, &mbc.reps, 2, 3, 1.0);
    assert!(report.condition1 && report.condition2 && report.weight_preserved);
}

#[test]
fn three_dimensional_pipeline() {
    let inst = gaussian_clusters::<3>(2, 60, 1.0, 4, 9);
    let weighted = unit_weighted(&inst.points);
    let mbc = mbc_construction(&L2, &weighted, 2, 4, 1.0);
    assert_eq!(mbc.total_weight(), inst.points.len() as u64);
    // d = 3 capacity bound applies.
    let bound = kcenter_outliers::coreset::mbc_size_bound(2, 4, 1.0, 3);
    assert!((mbc.len() as u64) <= bound);
    // Streaming in 3-D.
    let mut alg = InsertionOnlyCoreset::new(L2, 2, 4, 1.0);
    for p in &inst.points {
        alg.insert(*p);
    }
    assert_eq!(total_weight(alg.coreset()), inst.points.len() as u64);
    let r_stream = greedy(&L2, alg.coreset(), 2, 4).radius;
    let r_direct = greedy(&L2, &weighted, 2, 4).radius;
    assert!(r_stream <= 3.0 * 2.0 * r_direct + 1e-9);
}

#[test]
fn linf_metric_pipeline() {
    // The sliding-window lower bound lives in L∞; the upper-bound
    // machinery must run there too.
    let inst = gaussian_clusters::<2>(2, 50, 1.0, 3, 13);
    let weighted = unit_weighted(&inst.points);
    let mbc = mbc_construction(&Linf, &weighted, 2, 3, 0.5);
    let report = validate_coreset(&Linf, &weighted, &mbc.reps, 2, 3, 0.5);
    assert!(report.condition1 && report.condition2, "{report:?}");
}

#[test]
fn z_larger_than_n() {
    let pts = vec![[0.0, 0.0], [10.0, 0.0], [20.0, 0.0]];
    let weighted = unit_weighted(&pts);
    // Everything fits in the outlier budget: radius 0, empty centers.
    let sol = greedy(&L2, &weighted, 2, 10);
    assert_eq!(sol.radius, 0.0);
    assert!(sol.centers.is_empty());
    let mbc = mbc_construction(&L2, &weighted, 2, 10, 0.5);
    assert_eq!(mbc.greedy_radius, 0.0);
    assert_eq!(mbc.total_weight(), 3);
}

#[test]
fn k_one_single_cluster() {
    let inst = gaussian_clusters::<2>(1, 100, 1.0, 5, 3);
    let weighted = unit_weighted(&inst.points);
    let mbc = mbc_construction(&L2, &weighted, 1, 5, 0.5);
    let report = validate_coreset(&L2, &weighted, &mbc.reps, 1, 5, 0.5);
    assert!(report.condition1 && report.condition2, "{report:?}");
}

#[test]
fn weighted_input_pipeline_end_to_end() {
    // Weighted points through offline + MPC + streaming paths.
    let mut weighted: Vec<Weighted<[f64; 2]>> = Vec::new();
    for i in 0..30 {
        weighted.push(Weighted::new([i as f64 % 5.0, 0.0], 1 + i % 4));
        weighted.push(Weighted::new([100.0 + i as f64 % 5.0, 7.0], 2));
    }
    weighted.push(Weighted::new([5000.0, 5000.0], 3));
    let total = total_weight(&weighted);
    let (k, z) = (2usize, 3u64);

    let mbc = mbc_construction(&L2, &weighted, k, z, 0.5);
    assert_eq!(mbc.total_weight(), total);
    let report = validate_coreset(&L2, &weighted, &mbc.reps, k, z, 0.5);
    assert!(report.condition1 && report.condition2, "{report:?}");

    // Weighted streaming arrivals.
    let mut alg = InsertionOnlyCoreset::new(L2, k, z, 0.5);
    for w in &weighted {
        alg.insert_weighted(w.point, w.weight);
    }
    assert_eq!(total_weight(alg.coreset()), total);
}

#[test]
fn dynamic_sketch_negative_frequency_detected() {
    use kcenter_outliers::streaming::dynamic::DynamicCoresetError;
    let mut sketch = DynamicCoreset::<2>::new(8, 16, 0.01, 3);
    sketch.insert(&[10, 10]);
    // Violate the strict turnstile promise.
    sketch.delete(&[20, 20]);
    sketch.delete(&[20, 20]);
    match sketch.coreset() {
        Err(DynamicCoresetError::NegativeFrequency { .. }) => {}
        other => panic!("expected negative-frequency detection, got {other:?}"),
    }
}

#[test]
fn extreme_coordinates_stay_finite() {
    let pts = vec![
        [1e12, -1e12],
        [1e12 + 1.0, -1e12],
        [-1e12, 1e12],
        [-1e12, 1e12 + 1.0],
        [0.0, 0.0],
    ];
    let weighted = unit_weighted(&pts);
    let sol = greedy(&L2, &weighted, 2, 1);
    assert!(sol.radius.is_finite());
    let mbc = mbc_construction(&L2, &weighted, 2, 1, 1.0);
    assert!(mbc.greedy_radius.is_finite());
    assert_eq!(mbc.total_weight(), 5);
}

#[test]
fn mpc_with_more_machines_than_points() {
    use kcenter_outliers::kcenter::charikar::GreedyParams;
    let pts = vec![[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]];
    let parts = round_robin(&pts, 10); // 7 empty machines
    let res = two_round(&L2, &parts, 1, 1, 0.5, &GreedyParams::default());
    assert_eq!(total_weight(&res.output.coreset), 3);
    assert_eq!(res.output.stats.machines, 10);
}

#[test]
fn sliding_window_of_length_one() {
    let mut alg = SlidingWindowCoreset::new(L2, 1, 0, 1.0, 1, 0.5, 100.0);
    alg.insert([0.0, 0.0]);
    alg.insert([50.0, 50.0]);
    let q = alg.query().expect("non-empty");
    assert_eq!(q.coreset.len(), 1);
    assert_eq!(q.coreset[0].point, [50.0, 50.0]);
}

#[test]
fn deterministic_mpc_runs_are_bit_reproducible() {
    use kcenter_outliers::kcenter::charikar::GreedyParams;
    let inst = gaussian_clusters::<2>(2, 80, 1.0, 6, 77);
    let parts = concentrated_partition(&inst.points, &inst.outlier_flags, 4);
    let a = two_round(&L2, &parts, 2, 6, 0.5, &GreedyParams::default());
    let b = two_round(&L2, &parts, 2, 6, 0.5, &GreedyParams::default());
    assert_eq!(a.rhat, b.rhat);
    assert_eq!(a.budgets, b.budgets);
    assert_eq!(a.output.coreset.len(), b.output.coreset.len());
    for (x, y) in a.output.coreset.iter().zip(&b.output.coreset) {
        assert_eq!(x.point, y.point);
        assert_eq!(x.weight, y.weight);
    }
}
