//! Integration tests for the deterministic extensions: the Vandermonde
//! dynamic coreset against the randomized one, and the dynamic solver on
//! the Theorem-28 adversary.

use kcenter_outliers::lowerbounds::DynamicLb;
use kcenter_outliers::prelude::*;
use kcenter_outliers::streaming::{DeterministicDynamicCoreset, DynamicKCenter};
use std::collections::HashSet;

#[test]
fn deterministic_and_randomized_recover_identical_coresets() {
    let base = grid_clusters::<2>(10, 2, 30, 8, 5, 2);
    let ops = churn_schedule(&base, 150, 9);
    let mut det = DeterministicDynamicCoreset::<2>::new(10, 96);
    let mut rnd = DynamicCoreset::<2>::new(10, 96, 0.001, 17);
    for op in &ops {
        if op.insert {
            det.insert(&op.point);
            rnd.insert(&op.point);
        } else {
            det.delete(&op.point);
            rnd.delete(&op.point);
        }
    }
    let (mut a, la) = det.coreset().expect("deterministic");
    let (mut b, lb) = rnd.coreset().expect("randomized");
    assert_eq!(la, lb, "both must pick the same grid level here");
    let key = |w: &Weighted<[f64; 2]>| (w.point[0].to_bits(), w.point[1].to_bits());
    a.sort_by_key(key);
    b.sort_by_key(key);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.point, y.point);
        assert_eq!(x.weight, y.weight);
    }
}

#[test]
fn deterministic_variant_survives_thm28_adversary() {
    // The scale-deletion adversary of Theorem 28 against the
    // deterministic sketch: every scale must decode exactly.
    let lb = DynamicLb::new(4, 2, 0.25, 12);
    let mut det = DeterministicDynamicCoreset::<2>::new(12, 64);
    let mut live: HashSet<[u64; 2]> = HashSet::new();
    for p in lb.all_points() {
        det.insert(&p);
        live.insert(p);
    }
    for m_star in (1..=lb.g).rev() {
        for p in lb.deletion_schedule(m_star) {
            if live.remove(&p) {
                det.delete(&p);
            }
        }
        let (coreset, _) = det.coreset().expect("deterministic recovery");
        assert_eq!(total_weight(&coreset), live.len() as u64, "m* = {m_star}");
    }
}

#[test]
fn dynamic_solver_radius_collapses_with_deletions() {
    let (k, z) = (2usize, 2u64);
    let mut solver = DynamicKCenter::<2>::new(10, k, z, 1.0, 0.01, 21);
    // Two clusters far apart plus two outliers.
    let mut cluster_b = Vec::new();
    for i in 0..20u64 {
        solver.insert(&[i % 5, 10 + i % 5]);
        let p = [800 + i % 5, 900 + i % 5];
        if !cluster_b.contains(&p) {
            solver.insert(&p);
            cluster_b.push(p);
        }
    }
    solver.insert(&[400, 0]);
    solver.insert(&[0, 400]);
    let with_both = solver.solve().expect("solve");
    // Remove cluster B entirely: k = 2 centers now over-serve; radius
    // must not grow, and typically collapses toward the cell radius.
    for p in &cluster_b {
        solver.delete(p);
    }
    let with_one = solver.solve().expect("solve");
    assert!(
        with_one.radius <= with_both.radius + 1e-9,
        "radius grew after deleting a cluster: {} -> {}",
        with_both.radius,
        with_one.radius
    );
}

#[test]
fn deterministic_sketch_is_seedless_and_stable() {
    // Two sketches built in different orders over the same multiset give
    // identical syndromes (linearity) and identical answers.
    let pts: Vec<[u64; 2]> = (0..40).map(|i| [(i * 13) % 64, (i * 29) % 64]).collect();
    let mut fwd = DeterministicDynamicCoreset::<2>::new(6, 64);
    let mut rev = DeterministicDynamicCoreset::<2>::new(6, 64);
    for p in &pts {
        fwd.insert(p);
    }
    for p in pts.iter().rev() {
        rev.insert(p);
    }
    let (mut a, _) = fwd.coreset().unwrap();
    let (mut b, _) = rev.coreset().unwrap();
    let key = |w: &Weighted<[f64; 2]>| (w.point[0].to_bits(), w.point[1].to_bits());
    a.sort_by_key(key);
    b.sort_by_key(key);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!((x.point, x.weight), (y.point, y.weight));
    }
}
