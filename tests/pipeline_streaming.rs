//! End-to-end streaming pipelines: the same data consumed as a batch, as
//! an insertion-only stream, as a dynamic stream with churn, and as a
//! sliding window — each output validated as a coreset.

use kcenter_outliers::prelude::*;
use std::collections::HashSet;

fn instance() -> (Vec<[f64; 2]>, usize, u64) {
    let inst = gaussian_clusters::<2>(2, 40, 1.0, 5, 33);
    (inst.points, 2, 5)
}

#[test]
fn stream_and_batch_coresets_both_validate() {
    let (pts, k, z) = instance();
    let stream = shuffled(&pts, 4);
    let weighted = unit_weighted(&pts);
    let eps = 0.5;

    let batch = mbc_construction(&L2, &weighted, k, z, eps);
    let mut alg = InsertionOnlyCoreset::new(L2, k, z, eps);
    for p in &stream {
        alg.insert(*p);
    }

    for (name, coreset) in [("batch", &batch.reps), ("stream", &alg.coreset().to_vec())] {
        let report = validate_coreset(&L2, &weighted, coreset, k, z, eps);
        assert!(
            report.condition1 && report.condition2 && report.weight_preserved,
            "{name}: {report:?}"
        );
    }
}

#[test]
fn streaming_coreset_valid_at_prefixes() {
    let (pts, k, z) = instance();
    let stream = shuffled(&pts, 9);
    let eps = 0.6;
    let mut alg = InsertionOnlyCoreset::new(L2, k, z, eps);
    for (t, p) in stream.iter().enumerate() {
        alg.insert(*p);
        if t > 10 && t % 25 == 0 {
            let weighted = unit_weighted(&stream[..=t]);
            let report = validate_coreset(&L2, &weighted, alg.coreset(), k, z, eps);
            assert!(
                report.condition1 && report.condition2 && report.weight_preserved,
                "prefix {t}: {report:?}"
            );
        }
    }
}

#[test]
fn dynamic_sketch_coreset_validates_against_live_set() {
    let base = grid_clusters::<2>(10, 2, 25, 6, 4, 2);
    let ops = churn_schedule(&base, 120, 5);
    let (k, z) = (2usize, 4u64);
    let mut sketch = DynamicCoreset::<2>::new(10, 96, 0.01, 77);
    let mut live: HashSet<[u64; 2]> = HashSet::new();
    for op in &ops {
        if op.insert {
            sketch.insert(&op.point);
            live.insert(op.point);
        } else {
            sketch.delete(&op.point);
            live.remove(&op.point);
        }
    }
    let (coreset, level) = sketch.coreset().expect("recovery");
    assert_eq!(
        total_weight(&coreset),
        live.len() as u64,
        "weights must equal live multiplicity"
    );
    // Relaxed coreset: reps are cell centers at the chosen level; treat
    // the grid diagonal as the effective ε·opt additive error.
    let live_pts: Vec<[f64; 2]> = live.iter().map(|p| [p[0] as f64, p[1] as f64]).collect();
    let weighted = unit_weighted(&live_pts);
    let cell_diag = (1u64 << level) as f64 * 2f64.sqrt();
    let direct = greedy(&L2, &weighted, k, z).radius;
    let via_sketch = greedy(&L2, &coreset, k, z).radius;
    assert!(
        (via_sketch - direct).abs() <= 3.0 * cell_diag + 0.34 * direct + 1e-9,
        "sketch radius {via_sketch} vs direct {direct} (cell diag {cell_diag})"
    );
}

#[test]
fn sliding_window_tracks_from_scratch_reference() {
    let stream = drifting_stream(6000, 2, 1.0, 0.02, 0.0, 8);
    let (k, z, eps) = (2usize, 3u64, 1.0f64);
    let window = 1500u64;
    let mut alg = SlidingWindowCoreset::new(L2, k, z, eps, window, 0.5, 512.0);
    for (t, p) in stream.iter().enumerate() {
        alg.insert(*p);
        if (t + 1) % 2000 == 0 {
            let q = alg.query().expect("window non-empty");
            let lo = (t + 1).saturating_sub(window as usize);
            let win = unit_weighted(&stream[lo..=t]);
            let direct = greedy(&L2, &win, k, z).radius;
            let via = greedy(&L2, &q.coreset, k, z).radius;
            // The window answer from the compressed structure must stay
            // within a constant band of the from-scratch answer.
            assert!(
                via <= 3.0 * (1.0 + 2.0 * eps) * direct + q.rho * eps + 1e-9,
                "t={}: via {via} vs direct {direct} (rho {})",
                t + 1,
                q.rho
            );
            assert!(
                3.0 * via >= (1.0 - eps) * direct - q.rho * eps - 1e-9,
                "t={}: via {via} vs direct {direct}",
                t + 1
            );
        }
    }
}

#[test]
fn space_separation_ours_vs_ceccarello_on_outlier_heavy_stream() {
    // Scattered outliers at ε-fine granularity cost the baseline z/ε^d;
    // Algorithm 3 pays z.  Run both on an outlier-heavy stream and compare
    // peaks (the T1-stream-ins experiment in miniature).
    let (k, z, eps) = (2usize, 60u64, 0.5f64);
    let mut ours = InsertionOnlyCoreset::new(L2, k, z, eps);
    let mut theirs = ceccarello_stream(L2, k, z, eps);
    let mut s = 77u64;
    let mut unit = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64
    };
    for i in 0..4000 {
        let p = if i % 8 == 0 {
            [unit() * 2e6, -unit() * 2e6] // scattered outliers
        } else {
            [unit() * 50.0, unit() * 50.0] // two dense regions
        };
        ours.insert(p);
        theirs.insert(p);
    }
    assert!(
        ours.peak_words() < theirs.peak_words(),
        "ours {} vs ceccarello {}",
        ours.peak_words(),
        theirs.peak_words()
    );
}
