//! The paper's lower-bound constructions driven against the actual
//! algorithms: the predicted minimum storage must materialise.

use kcenter_outliers::lowerbounds::{line_lb, DynamicLb, InsertionLb, SlidingLb};
use kcenter_outliers::prelude::*;
use std::collections::HashSet;

#[test]
fn lemma12_forces_cluster_retention_in_streaming_coreset() {
    // Feed the Ω(k/ε^d) construction to Algorithm 3 with matching ε: the
    // clusters are `ε-incompressible`, so the coreset must retain every
    // cluster point individually (no two cluster points may merge).
    let lb = InsertionLb::<2>::new(6, 3, 1.0 / 16.0);
    let mut alg = InsertionOnlyCoreset::new(L2, lb.k, lb.z as u64, lb.eps);
    for p in &lb.points {
        alg.insert(*p);
    }
    let stored: HashSet<[u64; 2]> = alg
        .coreset()
        .iter()
        .map(|w| [w.point[0].to_bits(), w.point[1].to_bits()])
        .collect();
    let mut missing = 0usize;
    for p in &lb.points[..lb.n_cluster_points()] {
        if !stored.contains(&[p[0].to_bits(), p[1].to_bits()]) {
            missing += 1;
        }
    }
    assert_eq!(
        missing,
        0,
        "streaming coreset dropped {missing} of {} cluster points",
        lb.n_cluster_points()
    );
    assert!(
        alg.coreset().len() >= lb.n_cluster_points(),
        "coreset below the Ω(k/ε^d) bound"
    );
}

#[test]
fn lemma12_probe_breaks_any_smaller_summary() {
    // Validate the adversary exactly as in the proof of Theorem 11: drop
    // one cluster point p* from an otherwise perfect summary, insert the
    // probes P± = p* ± (h+r)·e_j, and compare optima.  The summary can be
    // clustered at radius ≤ r using centers p* ± h·e_j (Claim 14), while
    // the true optimum is ≥ (h+r)/2 (Claim 13) and r < (1−ε)(h+r)/2
    // (Lemma 41) — so any algorithm reporting from the summary
    // underestimates the radius beyond the allowed (1−ε) factor.
    let lb = InsertionLb::<2>::new(4, 1, 1.0 / 8.0);
    let p_star = lb.points[lb.cluster_size / 2];
    let probes = lb.probes(&p_star);

    let mut full = unit_weighted(&lb.points);
    for pr in &probes {
        full.push(Weighted::new(*pr, 2));
    }
    // The cheating summary: everything except p*.
    let cheat: Vec<Weighted<[f64; 2]>> =
        full.iter().filter(|w| w.point != p_star).cloned().collect();
    // Candidate centers: all points, plus the proof's special centers
    // p* ± h·e_j that exploit the missing p*.
    let mut cand: Vec<[f64; 2]> = full.iter().map(|w| w.point).collect();
    for j in 0..2 {
        let mut c = p_star;
        c[j] += lb.h;
        cand.push(c);
        let mut c = p_star;
        c[j] -= lb.h;
        cand.push(c);
    }
    let opt_full = exact_discrete(&L2, &full, lb.k, lb.z as u64, &cand).radius;
    let opt_cheat = exact_discrete(&L2, &cheat, lb.k, lb.z as u64, &cand).radius;
    assert!(
        opt_full >= (lb.h + lb.r) / 2.0 - 1e-9,
        "Claim 13 violated: {opt_full} < {}",
        (lb.h + lb.r) / 2.0
    );
    assert!(
        opt_cheat <= lb.r + 1e-9,
        "Claim 14 violated: {opt_cheat} > {}",
        lb.r
    );
    assert!(
        (1.0 - lb.eps) * opt_full > opt_cheat + 1e-9,
        "the probe failed to separate full ({opt_full}) from cheat ({opt_cheat})"
    );
}

#[test]
fn lemma15_all_points_stored_and_probe_shifts_radius() {
    let (pts, probe) = line_lb(3, 4);
    let mut alg = InsertionOnlyCoreset::new(Line, 3, 4, 0.9);
    for p in &pts {
        alg.insert(*p);
    }
    // k+z distinct unit-spaced points: the structure must store them all
    // (r is still 0 — no compression is safe yet).
    assert_eq!(alg.coreset().len(), pts.len());
    assert_eq!(alg.radius_bound(), 0.0);
    // Probe arrives: now k+z+1 points, radius becomes positive and the
    // structure's r stays a valid lower bound.
    alg.insert(probe);
    let weighted: Vec<Weighted<f64>> = pts
        .iter()
        .chain(std::iter::once(&probe))
        .map(|p| Weighted::unit(*p))
        .collect();
    let mut cand: Vec<f64> = (1..=8).map(|i| i as f64).collect();
    cand.extend((1..8).map(|i| i as f64 + 0.5));
    let opt = exact_discrete(&Line, &weighted, 3, 4, &cand).radius;
    assert!((opt - 0.5).abs() < 1e-9);
    assert!(alg.radius_bound() <= opt + 1e-9);
    assert!(alg.radius_bound() > 0.0);
}

#[test]
fn thm28_deletions_expose_every_scale() {
    // Insert the full construction, then delete down to each scale m* and
    // verify the dynamic sketch still answers with a correct summary of
    // the survivors — the algorithm cannot "pre-forget" any scale.
    let lb = DynamicLb::new(4, 2, 0.25, 14);
    let mut sketch = DynamicCoreset::<2>::new(14, 128, 0.01, 3);
    let mut live: HashSet<[u64; 2]> = HashSet::new();
    for p in lb.all_points() {
        sketch.insert(&p);
        live.insert(p);
    }
    for m_star in (1..=lb.g).rev() {
        let dels = lb.deletion_schedule(m_star);
        for p in &dels {
            if live.remove(p) {
                sketch.delete(p);
            }
        }
        let (coreset, _) = sketch.coreset().expect("recovery at scale {m_star}");
        assert_eq!(
            total_weight(&coreset),
            live.len() as u64,
            "m*={m_star}: sketch lost weight"
        );
    }
    // After deleting everything down to scale 1, only outliers remain.
    assert_eq!(live.len(), lb.z);
}

#[test]
fn thm30_storage_scales_with_levels() {
    // Feed the sliding-window construction (all alive in one window) and
    // confirm the structure's storage grows with the number of scale
    // levels g — the log σ factor of the lower bound.
    let mut previous = 0usize;
    for g in [1usize, 2, 3] {
        let lb = SlidingLb::new(5, 3, 1.0 / 24.0, g);
        let mut alg = SlidingWindowCoreset::new(
            L2,
            lb.k,
            lb.z as u64,
            1.0 / 24.0,
            lb.window_hint(),
            0.5,
            1e5,
        );
        for p in &lb.arrivals {
            alg.insert(*p);
        }
        let stored = alg.stored_points();
        assert!(
            stored > previous,
            "g={g}: stored {stored} did not grow past {previous}"
        );
        previous = stored;
    }
}

#[test]
fn thm30_subgroup_points_all_retained_for_outlier_budget() {
    // Each subgroup has exactly z+1 points; since any z of them could be
    // declared outliers, the window structure must keep all z+1 (clamped
    // counting).  Check the finest-group subgroups survive in the query.
    let lb = SlidingLb::new(4, 3, 1.0 / 24.0, 2);
    let mut alg = SlidingWindowCoreset::new(
        L2,
        lb.k,
        lb.z as u64,
        1.0 / 24.0,
        lb.window_hint(),
        0.5,
        1e5,
    );
    for p in &lb.arrivals {
        alg.insert(*p);
    }
    let q = alg.query().expect("window non-empty");
    // The last-arriving subgroup is the freshest; all its z+1 points must
    // be present in the coreset.
    let tail = &lb.arrivals[lb.arrivals.len() - lb.subgroup_size..];
    for p in tail {
        assert!(
            q.coreset.iter().any(|w| w.point == *p),
            "fresh subgroup point {p:?} missing from window coreset"
        );
    }
}
