//! Property-based tests across crates: randomized instances against the
//! paper's invariants, with exact ground truth where feasible.

use kcenter_outliers::prelude::*;
use proptest::prelude::*;

/// Small random weighted point sets in [0, 100]².
fn arb_points(max_n: usize) -> impl Strategy<Value = Vec<Weighted<[f64; 2]>>> {
    prop::collection::vec(((0.0f64..100.0), (0.0f64..100.0), 1u64..4), 2..max_n).prop_map(|v| {
        v.into_iter()
            .map(|(x, y, w)| Weighted::new([x, y], w))
            .collect()
    })
}

proptest! {
    // Pinned case count and RNG seed: tier-1 CI must never flake, and any
    // failure must reproduce exactly from a plain rerun.
    #![proptest_config(ProptestConfig {
        cases: 24,
        rng_seed: 0xDEBB_1AB1,
        ..ProptestConfig::default()
    })]

    #[test]
    fn greedy_within_three_of_exact(pts in arb_points(14), k in 1usize..3, z in 0u64..4) {
        let cand: Vec<[f64; 2]> = pts.iter().map(|p| p.point).collect();
        let exact = exact_discrete(&L2, &pts, k, z, &cand);
        let apx = greedy(&L2, &pts, k, z);
        prop_assert!(apx.radius <= 3.0 * exact.radius + 1e-9,
            "greedy {} vs exact {}", apx.radius, exact.radius);
        prop_assert!(apx.radius >= exact.radius - 1e-9);
    }

    #[test]
    fn mbc_definition1_holds(pts in arb_points(12), k in 1usize..3, z in 0u64..3) {
        let eps = 0.5;
        let mbc = mbc_construction(&L2, &pts, k, z, eps);
        let report = validate_coreset(&L2, &pts, &mbc.reps, k, z, eps);
        prop_assert!(report.weight_preserved, "{report:?}");
        prop_assert!(report.condition1, "{report:?}");
        prop_assert!(report.condition2, "{report:?}");
    }

    #[test]
    fn mbc_size_within_lemma7(pts in arb_points(30), k in 1usize..4, z in 0u64..5) {
        for eps in [0.5f64, 1.0] {
            let mbc = mbc_construction(&L2, &pts, k, z, eps);
            let bound = kcenter_outliers::coreset::mbc_size_bound(k, z, eps, 2);
            prop_assert!((mbc.len() as u64) <= bound,
                "eps={eps}: {} > {}", mbc.len(), bound);
        }
    }

    #[test]
    fn streaming_matches_batch_weight_and_covering(raw in prop::collection::vec(((0.0f64..100.0), (0.0f64..100.0)), 3..40)) {
        let pts: Vec<[f64; 2]> = raw.into_iter().map(|(x, y)| [x, y]).collect();
        let (k, z, eps) = (2usize, 2u64, 0.8f64);
        let mut alg = InsertionOnlyCoreset::new(L2, k, z, eps);
        for p in &pts {
            alg.insert(*p);
        }
        prop_assert_eq!(total_weight(alg.coreset()), pts.len() as u64);
        let bound = alg.drift_bound() + 1e-12;
        for p in &pts {
            let d = alg.coreset().iter()
                .map(|r| L2.dist(p, &r.point))
                .fold(f64::INFINITY, f64::min);
            prop_assert!(d <= bound, "point {:?} at {} > {}", p, d, bound);
        }
    }

    #[test]
    fn streaming_radius_is_lower_bound(raw in prop::collection::vec(((0.0f64..100.0), (0.0f64..100.0)), 8..24)) {
        let pts: Vec<[f64; 2]> = raw.into_iter().map(|(x, y)| [x, y]).collect();
        let (k, z) = (2usize, 2u64);
        let mut alg = InsertionOnlyCoreset::new(L2, k, z, 1.0);
        for p in &pts {
            alg.insert(*p);
        }
        let weighted = unit_weighted(&pts);
        let cand = pts.clone();
        let opt = exact_discrete(&L2, &weighted, k, z, &cand).radius;
        prop_assert!(alg.radius_bound() <= opt + 1e-9,
            "r = {} > opt = {}", alg.radius_bound(), opt);
    }

    #[test]
    fn dynamic_sketch_recovers_exact_multiset(ids in prop::collection::vec((0u64..64, 0u64..64), 1..40), churn in 0usize..30) {
        // Insert points (with duplicates), delete a churn-prefix again;
        // the sketch must recover the exact surviving multiset.
        let mut sketch = DynamicCoreset::<2>::new(6, 64, 0.001, 99);
        let mut reference: std::collections::HashMap<[u64; 2], i64> = Default::default();
        for &(x, y) in &ids {
            sketch.insert(&[x, y]);
            *reference.entry([x, y]).or_insert(0) += 1;
        }
        for &(x, y) in ids.iter().take(churn) {
            sketch.delete(&[x, y]);
            let e = reference.get_mut(&[x, y]).unwrap();
            *e -= 1;
            if *e == 0 { reference.remove(&[x, y]); }
        }
        let (coreset, level) = sketch.coreset().expect("recovery");
        prop_assert_eq!(level, 0, "few points must fit the finest grid");
        prop_assert_eq!(coreset.len(), reference.len());
        for w in &coreset {
            let key = [w.point[0] as u64, w.point[1] as u64];
            prop_assert_eq!(reference.get(&key).copied().unwrap_or(0), w.weight as i64);
        }
    }

    // ---- metamorphic invariants (scaling / permutation) ----------------
    //
    // Uniform scaling by a *power of two* is exact in IEEE-754: every
    // coordinate, squared distance, `sqrt`, and threshold product scales
    // without rounding, so each solver's execution trace is identical and
    // its radius must scale bit-for-bit.  (Non-power-of-two factors can
    // flip greedy tie-breaks; the certified band still holds but equality
    // does not, which is why the tests pin factors {1/2, 2, 4}.)

    #[test]
    fn offline_radius_scales_exactly(pts in arb_points(18), k in 1usize..4, z in 0u64..4, si in 0usize..3) {
        let scale = [0.5f64, 2.0, 4.0][si];
        let scaled: Vec<Weighted<[f64; 2]>> = pts.iter()
            .map(|w| Weighted::new([w.point[0] * scale, w.point[1] * scale], w.weight))
            .collect();
        let base = greedy(&L2, &pts, k, z);
        let big = greedy(&L2, &scaled, k, z);
        prop_assert_eq!(big.radius, scale * base.radius);
        prop_assert_eq!(big.uncovered, base.uncovered);
        let ff_base = farthest_first(&L2, &pts, k, 0);
        let ff_big = farthest_first(&L2, &scaled, k, 0);
        prop_assert_eq!(ff_big.radius, scale * ff_base.radius);
    }

    #[test]
    fn streaming_radius_scales_exactly(raw in prop::collection::vec(((0.0f64..100.0), (0.0f64..100.0)), 3..30), si in 0usize..3) {
        let scale = [0.5f64, 2.0, 4.0][si];
        let (k, z, eps) = (2usize, 2u64, 0.5f64);
        let mut base = InsertionOnlyCoreset::new(L2, k, z, eps);
        let mut big = InsertionOnlyCoreset::new(L2, k, z, eps);
        for (x, y) in &raw {
            base.insert([*x, *y]);
            big.insert([x * scale, y * scale]);
        }
        prop_assert_eq!(big.coreset().len(), base.coreset().len());
        prop_assert_eq!(big.radius_bound(), scale * base.radius_bound());
        // Solving on the coreset and reading the cost back on the scaled
        // input scales exactly too.
        let sol_base = greedy(&L2, base.coreset(), k, z);
        let sol_big = greedy(&L2, big.coreset(), k, z);
        prop_assert_eq!(sol_big.radius, scale * sol_base.radius);
    }

    #[test]
    fn mpc_two_round_scales_exactly(raw in prop::collection::vec(((0.0f64..100.0), (0.0f64..100.0)), 4..24), si in 0usize..3, m in 1usize..4) {
        use kcenter_outliers::kcenter::charikar::GreedyParams;
        let scale = [0.5f64, 2.0, 4.0][si];
        let pts: Vec<[f64; 2]> = raw.iter().map(|&(x, y)| [x, y]).collect();
        let scaled: Vec<[f64; 2]> = pts.iter().map(|p| [p[0] * scale, p[1] * scale]).collect();
        let (k, z, eps) = (2usize, 1u64, 0.5f64);
        let params = GreedyParams::default();
        let base = two_round(&L2, &round_robin(&pts, m), k, z, eps, &params);
        let big = two_round(&L2, &round_robin(&scaled, m), k, z, eps, &params);
        prop_assert_eq!(big.rhat, scale * base.rhat);
        prop_assert_eq!(&big.budgets, &base.budgets);
        prop_assert_eq!(big.output.coreset.len(), base.output.coreset.len());
        for (a, b) in big.output.coreset.iter().zip(&base.output.coreset) {
            prop_assert_eq!(a.weight, b.weight);
            prop_assert_eq!(a.point[0], scale * b.point[0]);
            prop_assert_eq!(a.point[1], scale * b.point[1]);
        }
    }

    // Permutation does NOT leave these algorithms' outputs bitwise
    // unchanged (greedy gain ties and stream absorb order are
    // order-dependent), but it must leave the *certified band* intact:
    // any arrival order stays within the paper ratio bound of the exact
    // optimum, and coreset weight is always preserved.

    #[test]
    fn permutation_keeps_certified_band(pts in arb_points(12), k in 1usize..3, z in 0u64..3, perm_seed in 0u64..1u64 << 32) {
        let permuted = shuffled(&pts, perm_seed);
        let cand: Vec<[f64; 2]> = pts.iter().map(|p| p.point).collect();
        let exact = exact_discrete(&L2, &pts, k, z, &cand);
        for order in [&pts, &permuted] {
            let sol = greedy(&L2, order, k, z);
            prop_assert!(sol.radius <= 3.0 * exact.radius + 1e-9,
                "greedy {} vs exact {}", sol.radius, exact.radius);
            prop_assert!(sol.radius >= exact.radius - 1e-9);
        }
        // Streaming: both orders produce weight-preserving coresets whose
        // solve stays within the insertion pipeline's (3+8ε)·opt band.
        let (eps, bound) = (0.5f64, 3.0 + 8.0 * 0.5);
        for order in [&pts, &permuted] {
            let mut alg = InsertionOnlyCoreset::new(L2, k, z, eps);
            for w in order.iter() {
                alg.insert_weighted(w.point, w.weight);
            }
            prop_assert_eq!(total_weight(alg.coreset()), total_weight(&pts));
            let sol = greedy(&L2, alg.coreset(), k, z);
            let measured = if sol.centers.is_empty() {
                0.0
            } else {
                cost_with_outliers(&L2, &pts, &sol.centers, z)
            };
            prop_assert!(measured <= bound * exact.radius + 1e-9,
                "stream order cost {} vs {}·opt {}", measured, bound, exact.radius);
        }
    }

    #[test]
    fn union_of_split_coverings_is_covering(raw in prop::collection::vec(((0.0f64..100.0), (0.0f64..100.0)), 6..30), cut in 1usize..5) {
        let pts: Vec<Weighted<[f64; 2]>> = raw.into_iter().map(|(x, y)| Weighted::unit([x, y])).collect();
        let cut = cut.min(pts.len() - 1);
        let (a, b) = pts.split_at(cut);
        let (k, z, eps) = (2usize, 2u64, 0.6f64);
        let ca = mbc_construction(&L2, a, k, z, eps);
        let cb = mbc_construction(&L2, b, k, z, eps);
        let union = kcenter_outliers::coreset::union_coverings([ca.reps, cb.reps]);
        prop_assert_eq!(total_weight(&union), pts.len() as u64);
        let report = validate_coreset(&L2, &pts, &union, k, z, eps);
        prop_assert!(report.condition1 && report.condition2, "{:?}", report);
    }
}
