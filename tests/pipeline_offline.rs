//! End-to-end offline pipeline: workload → MBCConstruction → Definition-1
//! validation against exact ground truth, plus the composition lemmas
//! across data splits.

use kcenter_outliers::coreset::compose::{composed_eps, recompress, union_coverings};
use kcenter_outliers::coreset::mbc_size_bound;
use kcenter_outliers::prelude::*;

fn small_instance(seed: u64) -> (Vec<[f64; 2]>, usize, u64) {
    let inst = gaussian_clusters::<2>(2, 30, 1.0, 4, seed);
    (inst.points, 2, 4)
}

#[test]
fn mbc_is_valid_coreset_across_eps() {
    let (pts, k, z) = small_instance(1);
    let weighted = unit_weighted(&pts);
    for eps in [0.25, 0.5, 1.0] {
        let mbc = mbc_construction(&L2, &weighted, k, z, eps);
        let report = validate_coreset(&L2, &weighted, &mbc.reps, k, z, eps);
        assert!(
            report.condition1 && report.condition2 && report.weight_preserved,
            "eps={eps}: {report:?}"
        );
        assert!(
            (mbc.len() as u64) <= mbc_size_bound(k, z, eps, 2),
            "eps={eps}: size {} > Lemma 7 bound",
            mbc.len()
        );
    }
}

#[test]
fn lemma7_size_shrinks_with_eps_growth() {
    let inst = gaussian_clusters::<2>(3, 300, 1.0, 10, 3);
    let weighted = unit_weighted(&inst.points);
    let sizes: Vec<usize> = [0.25, 0.5, 1.0]
        .iter()
        .map(|&eps| mbc_construction(&L2, &weighted, 3, 10, eps).len())
        .collect();
    assert!(
        sizes[0] >= sizes[1] && sizes[1] >= sizes[2],
        "sizes not monotone in ε: {sizes:?}"
    );
    assert!(
        sizes[2] < inst.points.len() / 4,
        "no compression: {sizes:?}"
    );
}

#[test]
fn union_lemma_over_split_data() {
    // Split P into halves; per-part coverings with the full budget z and
    // per-part opt ≤ global opt (subsets) satisfy Lemma 4's premise.
    let (pts, k, z) = small_instance(5);
    let weighted = unit_weighted(&pts);
    let (a, b) = weighted.split_at(weighted.len() / 2);
    let ca = mbc_construction(&L2, a, k, z, 0.4);
    let cb = mbc_construction(&L2, b, k, z, 0.4);
    let union = union_coverings([ca.reps, cb.reps]);
    let report = validate_coreset(&L2, &weighted, &union, k, z, 0.4);
    assert!(
        report.condition1 && report.condition2 && report.weight_preserved,
        "{report:?}"
    );
}

#[test]
fn transitive_lemma_recompression() {
    let (pts, k, z) = small_instance(7);
    let weighted = unit_weighted(&pts);
    let first = mbc_construction(&L2, &weighted, k, z, 0.3);
    let second = recompress(&L2, &first.reps, k, z, 0.3);
    let eps_eff = composed_eps(0.3, 0.3);
    let report = validate_coreset(&L2, &weighted, &second.reps, k, z, eps_eff);
    assert!(
        report.condition1 && report.condition2 && report.weight_preserved,
        "{report:?}"
    );
    assert!(second.len() <= first.len());
}

#[test]
fn planted_outliers_are_the_solver_outliers() {
    // With budget exactly z, the greedy solution's uncovered points must
    // be (a subset of) the planted outliers.
    let inst = gaussian_clusters::<2>(3, 100, 1.0, 6, 11);
    let weighted = unit_weighted(&inst.points);
    let sol = greedy(&L2, &weighted, 3, 6);
    assert!(
        sol.radius < 15.0,
        "solution radius {} too large",
        sol.radius
    );
    for (p, &is_outlier) in inst.points.iter().zip(&inst.outlier_flags) {
        let covered = sol.centers.iter().any(|c| L2.dist(p, c) <= sol.radius);
        if !covered {
            assert!(is_outlier, "non-outlier {p:?} left uncovered");
        }
    }
}

#[test]
fn coreset_solution_transfers_back_to_input() {
    // Definition 1(2) in action: solve on the coreset, expand by ε·opt,
    // check coverage on the input.
    let inst = gaussian_clusters::<2>(3, 200, 1.0, 8, 13);
    let weighted = unit_weighted(&inst.points);
    let eps = 0.5;
    let mbc = mbc_construction(&L2, &weighted, 3, 8, eps);
    let sol = greedy(&L2, &mbc.reps, 3, 8);
    let opt_upper = sol.radius; // ≥ opt(P*) ≥ (1−ε)opt(P)
    let expanded = sol.radius + eps * opt_upper / (1.0 - eps);
    assert!(
        uncovered_weight(&L2, &weighted, &sol.centers, expanded) <= 8,
        "expanded balls leave too much weight uncovered"
    );
}
