//! The conformance acceptance suite: every pipeline, every smoke
//! scenario, radius checked against `exact_discrete` and the pipeline's
//! paper ratio bound.  This is the tier-1 mirror of the CI's
//! `kcz conformance` run — a regression here means some solver no longer
//! honors the guarantee its adapter claims.

use kcenter_outliers::harness::{
    all_pipelines, catalog, run_conformance, within_bound, Model, Tier,
};

#[test]
fn smoke_catalog_meets_the_contract() {
    // ≥ 8 scenarios, ≥ 7 pipelines, all three models represented: the
    // shape the CI smoke step and the golden fixture rely on.
    let scenarios = catalog(Tier::Smoke);
    assert!(scenarios.len() >= 8, "got {} scenarios", scenarios.len());
    let pipelines = all_pipelines();
    assert!(pipelines.len() >= 7, "got {} pipelines", pipelines.len());
    for m in [Model::Offline, Model::Streaming, Model::Mpc, Model::Engine] {
        assert!(pipelines.iter().any(|p| p.model() == m));
    }
}

#[test]
fn every_pipeline_within_its_ratio_bound_on_every_smoke_scenario() {
    let report = run_conformance(Tier::Smoke);
    let violations = report.violations();
    assert!(
        violations.is_empty(),
        "conformance violations:\n{}",
        violations.join("\n")
    );
    // The blanket check above is the gate; now assert the run actually
    // exercised what it claims to exercise.
    let mut bound_checks = 0usize;
    for sr in &report.scenarios {
        let exact = sr.exact.expect("smoke scenarios are oracle-checked");
        assert_eq!(sr.verdicts.len(), report.pipelines.len());
        for v in &sr.verdicts {
            assert!(v.radius.is_finite(), "{}/{}", sr.scenario.name, v.pipeline);
            assert!(
                v.uncovered <= sr.scenario.z,
                "{}/{}: excluded {} > z = {}",
                sr.scenario.name,
                v.pipeline,
                v.uncovered,
                sr.scenario.z
            );
            if let Some(ok) = within_bound(v, sr.exact) {
                assert!(ok, "{}/{}", sr.scenario.name, v.pipeline);
                bound_checks += 1;
            }
            // No pipeline may beat the oracle by more than the
            // discrete-vs-continuous factor 2.
            assert!(
                v.radius >= exact / 2.0 - 1e-9,
                "{}/{}: radius {} below opt/2 of {}",
                sr.scenario.name,
                v.pipeline,
                v.radius,
                exact
            );
        }
    }
    // 9 of the 10 pipelines carry a bound on every scenario (Gonzalez
    // only when z = 0), so the vast majority of verdicts must have been
    // bound-checked — guard against the harness silently skipping them.
    let total: usize = report.scenarios.iter().map(|s| s.verdicts.len()).sum();
    assert!(
        bound_checks * 10 >= total * 8,
        "only {bound_checks}/{total} verdicts were bound-checked"
    );
}

#[test]
fn coreset_pipelines_actually_compress_large_inputs() {
    // On the duplicate-heavy smoke scenario the streaming/MPC summaries
    // must be far smaller than n while still conforming — the harness
    // should catch a "pipeline" that secretly keeps everything.
    let report = run_conformance(Tier::Smoke);
    let sr = report
        .scenarios
        .iter()
        .find(|s| s.scenario.name == "duplicate_mass")
        .expect("duplicate_mass scenario");
    for v in &sr.verdicts {
        if v.pipeline == "stream/insertion" || v.pipeline.starts_with("mpc/") {
            // r-round's final set is a union without a coordinator
            // recompression, so per-machine duplicates survive; still
            // bounded by machines × sites ≪ n.
            assert!(
                v.coreset_size <= 24,
                "{}: summary {} on a 6-site multiset",
                v.pipeline,
                v.coreset_size
            );
        }
    }
}
