//! End-to-end MPC pipelines: workload → partition → algorithm →
//! Definition-1 validation, for all four MPC algorithms, on both random
//! and adversarial distributions.

use kcenter_outliers::kcenter::charikar::GreedyParams;
use kcenter_outliers::prelude::*;

fn instance() -> (Vec<[f64; 2]>, Vec<bool>, usize, u64) {
    // Kept small: the Definition-1 validators call the exact solver, which
    // enumerates C(n, k) center subsets.
    let inst = gaussian_clusters::<2>(2, 25, 1.0, 4, 21);
    (inst.points, inst.outlier_flags, 2, 4)
}

#[test]
fn two_round_valid_on_adversarial_partition() {
    let (pts, flags, k, z) = instance();
    let parts = concentrated_partition(&pts, &flags, 5);
    let res = two_round(&L2, &parts, k, z, 0.4, &GreedyParams::default());
    let weighted = unit_weighted(&pts);
    let report = validate_coreset(
        &L2,
        &weighted,
        &res.output.coreset,
        k,
        z,
        res.output.effective_eps,
    );
    assert!(
        report.condition1 && report.condition2 && report.weight_preserved,
        "{report:?}"
    );
    assert!(res.budgets.iter().sum::<u64>() <= 2 * z);
}

#[test]
fn one_round_valid_on_random_partition() {
    let (pts, _, k, z) = instance();
    let parts = random_partition(&pts, 5, 17);
    let res = one_round_randomized(&L2, &parts, k, z, 0.4, &GreedyParams::default());
    let weighted = unit_weighted(&pts);
    let report = validate_coreset(
        &L2,
        &weighted,
        &res.output.coreset,
        k,
        z,
        res.output.effective_eps,
    );
    assert!(
        report.condition1 && report.condition2 && report.weight_preserved,
        "{report:?}"
    );
}

#[test]
fn r_round_error_grows_with_rounds_but_stays_valid() {
    let (pts, flags, k, z) = instance();
    let parts = concentrated_partition(&pts, &flags, 8);
    let weighted = unit_weighted(&pts);
    let eps = 0.2;
    for rounds in [1usize, 2, 3] {
        let res = r_round(&L2, &parts, k, z, eps, rounds, &GreedyParams::default());
        let expect = (1.0 + eps).powi(rounds as i32) - 1.0;
        assert!((res.effective_eps - expect).abs() < 1e-12);
        let report = validate_coreset(&L2, &weighted, &res.coreset, k, z, res.effective_eps);
        assert!(
            report.condition1 && report.condition2 && report.weight_preserved,
            "rounds={rounds}: {report:?}"
        );
    }
}

#[test]
fn baseline_valid_but_heavier_on_coordinator() {
    let (pts, flags, k, z) = instance();
    let parts = concentrated_partition(&pts, &flags, 5);
    let weighted = unit_weighted(&pts);
    let base = ceccarello_one_round(&L2, &parts, k, z, 0.4, &GreedyParams::default());
    let report = validate_coreset(&L2, &weighted, &base.coreset, k, z, base.effective_eps);
    assert!(
        report.condition1 && report.condition2 && report.weight_preserved,
        "{report:?}"
    );
}

#[test]
fn all_algorithms_agree_on_the_answer() {
    // Cross-model agreement: solving on any of the four coresets gives
    // radii within each algorithm's (1+ε_eff) band of the direct answer.
    let (pts, flags, k, z) = instance();
    let weighted = unit_weighted(&pts);
    let direct = greedy(&L2, &weighted, k, z).radius;
    let params = GreedyParams::default();
    let eps = 0.3;

    let adv = concentrated_partition(&pts, &flags, 4);
    let rnd = random_partition(&pts, 4, 3);

    let candidates = [
        ("two_round", two_round(&L2, &adv, k, z, eps, &params).output),
        (
            "one_round",
            one_round_randomized(&L2, &rnd, k, z, eps, &params).output,
        ),
        ("r_round", r_round(&L2, &adv, k, z, eps, 2, &params)),
        (
            "baseline",
            ceccarello_one_round(&L2, &adv, k, z, eps, &params),
        ),
    ];
    for (name, out) in candidates {
        let r = greedy(&L2, &out.coreset, k, z).radius;
        // Both radii are 3-approximations of nearby quantities; a generous
        // shared band keeps this robust while catching gross errors.
        assert!(
            r <= 3.2 * (1.0 + out.effective_eps) * direct + 1e-9
                && 3.2 * r >= direct * (1.0 - out.effective_eps) - 1e-9,
            "{name}: coreset radius {r} vs direct {direct}"
        );
    }
}

#[test]
fn machine_counts_scale_worker_memory_down() {
    // More machines → less raw input per worker.  (Coordinator cost grows
    // with m; that trade-off is the Table-1 story.)
    let inst = gaussian_clusters::<2>(2, 150, 1.0, 6, 9);
    let weighted_n = inst.points.len();
    let params = GreedyParams::default();
    let mut prev_worker = usize::MAX;
    for m in [2usize, 6, 12] {
        let parts = round_robin(&inst.points, m);
        let res = two_round(&L2, &parts, 2, 6, 0.5, &params);
        let s = res.output.stats;
        assert_eq!(s.machines, m);
        assert!(
            s.worker_peak_words <= prev_worker,
            "worker memory did not shrink: m={m}, {} > {prev_worker}",
            s.worker_peak_words
        );
        prev_worker = s.worker_peak_words;
        assert_eq!(total_weight(&res.output.coreset), weighted_n as u64);
    }
}
