//! Facade smoke test: the `prelude::*` path must support the full
//! generate → coreset → greedy → validate pipeline end-to-end.  This
//! mirrors the `src/lib.rs` quickstart doctest, so a re-export that goes
//! missing breaks a named test here, not just an anonymous doctest.

use kcenter_outliers::prelude::*;

#[test]
fn prelude_supports_quickstart_pipeline() {
    // Generate: clustered data with planted outliers.
    let inst = gaussian_clusters::<2>(3, 200, 1.0, 10, 42);
    let weighted = unit_weighted(&inst.points);
    assert_eq!(weighted.len(), inst.points.len());

    // Coreset: several times smaller than the input.
    let (k, z, eps) = (3usize, 10u64, 1.0f64);
    let mbc = mbc_construction(&L2, &weighted, k, z, eps);
    assert!(
        mbc.len() < inst.points.len() / 4,
        "coreset {} not much smaller than input {}",
        mbc.len(),
        inst.points.len()
    );
    assert_eq!(total_weight(&mbc.reps), total_weight(&weighted));

    // Validate: both Definition-1 coreset conditions hold empirically.
    // The validator's ground truth is the exact solver, whose work bound
    // caps the instance size, so validation runs on a smaller workload.
    let small = gaussian_clusters::<2>(3, 12, 1.0, 4, 7);
    let small_weighted = unit_weighted(&small.points);
    let small_mbc = mbc_construction(&L2, &small_weighted, k, 4, eps);
    let report = validate_coreset(&L2, &small_weighted, &small_mbc.reps, k, 4, eps);
    assert!(report.weight_preserved, "{report:?}");
    assert!(report.condition1, "{report:?}");
    assert!(report.condition2, "{report:?}");

    // Solve: greedy on the coreset approximates greedy on the input.
    let on_coreset = greedy(&L2, &mbc.reps, k, z);
    let on_input = greedy(&L2, &weighted, k, z);
    assert!(on_coreset.radius <= 3.0 * (1.0 + eps) * on_input.radius + 1e-9);
    assert_eq!(on_coreset.centers.len(), k);

    // The remaining prelude entry points stay callable end-to-end.  Every
    // input point sits within the mini-ball granularity ε·r/3 of some
    // representative (Definition 2's covering property).
    let cr = covering_radius(&L2, &weighted, &mbc.reps).expect("nonempty coreset");
    assert!(
        cr <= eps * mbc.greedy_radius / 3.0 + 1e-9,
        "covering radius {cr}"
    );
    assert!(uncovered_weight(&L2, &weighted, &on_input.centers, on_input.radius) <= z);
    let cost = cost_with_outliers(&L2, &weighted, &on_input.centers, z);
    assert!(cost <= on_input.radius + 1e-9);
}
