//! End-to-end tests of the `kcz` command-line tool.

use std::process::Command;

fn kcz() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kcz"))
}

fn write_points(dir: &std::path::Path) -> std::path::PathBuf {
    let mut body = String::from("# two clusters + one outlier\n");
    for i in 0..20 {
        body.push_str(&format!("{}.5,0.25\n", i % 4));
        body.push_str(&format!("{}.5,100.0\n", i % 4));
    }
    body.push_str("5000,5000\n");
    let path = dir.join("pts.csv");
    std::fs::write(&path, body).unwrap();
    path
}

#[test]
fn solve_reports_radius_and_centers() {
    let dir = std::env::temp_dir().join("kcz_cli_solve");
    std::fs::create_dir_all(&dir).unwrap();
    let input = write_points(&dir);
    let out = kcz()
        .args([
            "solve",
            "--input",
            input.to_str().unwrap(),
            "--k",
            "2",
            "--z",
            "1",
        ])
        .output()
        .expect("run kcz");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("radius:"), "{stdout}");
    assert_eq!(stdout.matches("center:").count(), 2, "{stdout}");
    // The outlier must be discardable: radius covers only the clusters.
    let radius: f64 = stdout
        .lines()
        .find_map(|l| l.strip_prefix("radius: "))
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    assert!(radius < 10.0, "radius {radius} should exclude the outlier");
}

#[test]
fn coreset_roundtrips_through_csv() {
    let dir = std::env::temp_dir().join("kcz_cli_coreset");
    std::fs::create_dir_all(&dir).unwrap();
    let input = write_points(&dir);
    let output = dir.join("core.csv");
    let st = kcz()
        .args([
            "coreset",
            "--input",
            input.to_str().unwrap(),
            "--k",
            "2",
            "--z",
            "1",
            "--eps",
            "1.0",
            "--output",
            output.to_str().unwrap(),
        ])
        .status()
        .expect("run kcz");
    assert!(st.success());
    // The produced file is valid input again; total weight is preserved.
    let out = kcz()
        .args([
            "solve",
            "--input",
            output.to_str().unwrap(),
            "--k",
            "2",
            "--z",
            "1",
        ])
        .output()
        .expect("run kcz on coreset");
    assert!(out.status.success());
    let body = std::fs::read_to_string(&output).unwrap();
    let total: u64 = body
        .lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(|l| l.rsplit(',').next().unwrap().trim().parse::<u64>().unwrap())
        .sum();
    assert_eq!(total, 41, "weight preservation through the CLI");
}

#[test]
fn stream_and_mpc_subcommands_run() {
    let dir = std::env::temp_dir().join("kcz_cli_misc");
    std::fs::create_dir_all(&dir).unwrap();
    let input = write_points(&dir);
    let out = kcz()
        .args([
            "stream",
            "--input",
            input.to_str().unwrap(),
            "--k",
            "2",
            "--z",
            "1",
            "--eps",
            "0.5",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("peak_words"));

    for alg in ["two_round", "one_round", "rround", "baseline"] {
        let out = kcz()
            .args([
                "mpc",
                "--input",
                input.to_str().unwrap(),
                "--k",
                "2",
                "--z",
                "1",
                "--eps",
                "0.5",
                "--machines",
                "3",
                "--algorithm",
                alg,
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "{alg}");
        assert!(
            String::from_utf8_lossy(&out.stdout).contains("coreset:"),
            "{alg}"
        );
    }
}

#[test]
fn solve_golden_output_on_committed_fixture() {
    // `greedy` is deterministic, so the full stdout for the committed
    // fixture is pinned byte-for-byte.  The two centers are the weighted
    // centroids of the planted unit squares (covering radius √2/2) and the
    // far outlier is the one uncovered unit of weight.
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden.csv");
    let out = kcz()
        .args(["solve", "--input", fixture, "--k", "2", "--z", "1"])
        .output()
        .expect("run kcz");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout,
        "radius: 0.707107\n\
         uncovered_weight: 1\n\
         center: 100.5,100.5\n\
         center: 0.5,0.5\n"
    );
    // Beyond byte equality: the lines parse back into numbers.
    let radius: f64 = stdout
        .lines()
        .find_map(|l| l.strip_prefix("radius: "))
        .unwrap()
        .parse()
        .unwrap();
    assert!((radius - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6);
    for line in stdout.lines().filter(|l| l.starts_with("center: ")) {
        let (x, y) = line["center: ".len()..].split_once(',').unwrap();
        x.parse::<f64>().unwrap();
        y.parse::<f64>().unwrap();
    }
}

#[test]
fn solve_golden_output_linf_metric() {
    // Same committed fixture under --metric linf: the unit squares have
    // corner-to-centroid distance exactly 0.5 under L∞ (vs √2/2 under
    // L2), so the pinned radius certifies the metric actually switched.
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden.csv");
    let out = kcz()
        .args([
            "solve", "--input", fixture, "--k", "2", "--z", "1", "--metric", "linf",
        ])
        .output()
        .expect("run kcz");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout,
        "radius: 0.500000\n\
         uncovered_weight: 1\n\
         center: 100.5,100.5\n\
         center: 0.5,0.5\n"
    );
    // --metric l2 must reproduce the default golden output byte-for-byte.
    let explicit = kcz()
        .args([
            "solve", "--input", fixture, "--k", "2", "--z", "1", "--metric", "l2",
        ])
        .output()
        .expect("run kcz");
    assert!(explicit.status.success());
    assert!(String::from_utf8_lossy(&explicit.stdout).starts_with("radius: 0.707107\n"));
}

#[test]
fn conformance_smoke_matches_committed_golden() {
    // The conformance run is deterministic end to end (fixed generator
    // seeds, order-preserving parallel map, 6-decimal formatting), so the
    // full JSON report for the smoke tier is pinned byte-for-byte.  Any
    // drift — a scenario change, an adapter's bound, a solver regression
    // that shifts a radius — must show up as a conscious golden update.
    let dir = std::env::temp_dir().join("kcz_cli_conformance");
    std::fs::create_dir_all(&dir).unwrap();
    let json_path = dir.join("conformance.json");
    let out = kcz()
        .args([
            "conformance",
            "--tier",
            "smoke",
            "--json",
            json_path.to_str().unwrap(),
        ])
        .output()
        .expect("run kcz conformance");
    assert!(
        out.status.success(),
        "conformance violations?\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("scenario gaussian_blobs"), "{stdout}");
    assert!(!stdout.contains("VIOLATION"), "{stdout}");
    let got = std::fs::read_to_string(&json_path).unwrap();
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/conformance_golden.json"
    ))
    .unwrap();
    assert_eq!(
        got, golden,
        "conformance report drifted from the committed golden \
         (tests/fixtures/conformance_golden.json); regenerate it with \
         `kcz conformance --json tests/fixtures/conformance_golden.json` \
         if the change is intentional"
    );
}

#[test]
fn conformance_rejects_bad_flags() {
    let out = kcz()
        .args(["conformance", "--tier", "bogus"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--tier must be smoke or full"));
    // Misspelled optional flags must not be silently ignored (conformance
    // has no required flags to surface them indirectly).
    let out = kcz()
        .args(["conformance", "--teir", "full"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag --teir"));
}

#[test]
fn bad_inputs_fail_cleanly() {
    let dir = std::env::temp_dir().join("kcz_cli_bad");
    std::fs::create_dir_all(&dir).unwrap();
    // Unknown subcommand.
    let out = kcz().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    // Malformed CSV.
    let bad = dir.join("bad.csv");
    std::fs::write(&bad, "1.0,nope\n").unwrap();
    let out = kcz()
        .args([
            "solve",
            "--input",
            bad.to_str().unwrap(),
            "--k",
            "1",
            "--z",
            "0",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad y"));
    // Missing flag.
    let out = kcz().args(["solve", "--k", "1"]).output().unwrap();
    assert!(!out.status.success());
    // Degenerate parameters fail with a clean error, not a panic.
    let good = dir.join("good.csv");
    std::fs::write(&good, "0,0\n1,1\n").unwrap();
    let out = kcz()
        .args([
            "solve",
            "--input",
            good.to_str().unwrap(),
            "--k",
            "0",
            "--z",
            "0",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--k must be at least 1"));
    let out = kcz()
        .args([
            "mpc",
            "--input",
            good.to_str().unwrap(),
            "--k",
            "1",
            "--z",
            "0",
            "--eps",
            "0.5",
            "--machines",
            "0",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--machines must be at least 1"));
    // ε outside (0, 1] and degenerate/malformed --rounds: clean exit 2.
    for (args, needle) in [
        (
            vec!["stream", "--k", "1", "--z", "0", "--eps", "0"],
            "--eps must be in (0, 1]",
        ),
        (
            vec!["coreset", "--k", "1", "--z", "0", "--eps", "1.5"],
            "--eps must be in (0, 1]",
        ),
        (
            vec![
                "mpc",
                "--k",
                "1",
                "--z",
                "0",
                "--eps",
                "0.5",
                "--machines",
                "2",
                "--algorithm",
                "rround",
                "--rounds",
                "oops",
            ],
            "invalid value `oops` for --rounds",
        ),
        (
            vec![
                "mpc",
                "--k",
                "1",
                "--z",
                "0",
                "--eps",
                "0.5",
                "--machines",
                "2",
                "--algorithm",
                "rround",
                "--rounds",
                "0",
            ],
            "--rounds must be at least 1",
        ),
        (
            vec!["solve", "--k", "1", "--z", "0", "--metric", "manhattan"],
            "--metric must be l2 or linf",
        ),
        (
            vec![
                "stream", "--k", "1", "--z", "0", "--eps", "0.5", "--metric", "",
            ],
            "--metric must be l2 or linf",
        ),
    ] {
        let mut cmd = kcz();
        cmd.arg(args[0]).args(["--input", good.to_str().unwrap()]);
        cmd.args(&args[1..]);
        let out = cmd.output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains(needle),
            "{args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn engine_golden_output_on_committed_fixture() {
    // The resident engine is deterministic end to end (value-hash
    // routing with a fixed seed, order-preserving pool map, balanced
    // merge tree), so the full stdout for the committed fixture is
    // pinned byte-for-byte — the same stream the CI `engine-smoke` step
    // pipes through `kcz engine --shards 4 --batch 256`.
    use std::process::Stdio;
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden.csv");
    let golden = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/engine_golden.txt"
    );
    let child = kcz()
        .args([
            "engine", "--shards", "4", "--batch", "256", "--k", "2", "--z", "1", "--eps", "0.5",
        ])
        .stdin(Stdio::from(std::fs::File::open(fixture).unwrap()))
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("run kcz engine");
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let expected = std::fs::read_to_string(golden).unwrap();
    assert_eq!(
        stdout, expected,
        "engine snapshot drifted from the committed golden \
         (tests/fixtures/engine_golden.txt); regenerate it with \
         `kcz engine --shards 4 --batch 256 --k 2 --z 1 --eps 0.5 \
         < tests/fixtures/golden.csv` if the change is intentional"
    );
    // --input <file> must produce the identical snapshot (same stream,
    // same routing) — stdin vs file is a transport detail.
    let via_file = kcz()
        .args([
            "engine", "--input", fixture, "--shards", "4", "--batch", "256", "--k", "2", "--z",
            "1", "--eps", "0.5",
        ])
        .output()
        .unwrap();
    assert!(via_file.status.success());
    assert_eq!(String::from_utf8_lossy(&via_file.stdout), expected);
}

#[test]
fn engine_incremental_golden_and_mode_equality() {
    // `--incremental` publishes after every batch through the dirty-
    // shard re-merge + warm-solve path; `--full-republish` rebuilds
    // cold each time.  Incremental re-merging is a pure optimization,
    // so the two print byte-identical output — pinned against a
    // committed golden (the same pair the CI `engine-smoke` step
    // diffs).
    use std::process::Stdio;
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden.csv");
    let golden = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/engine_incremental_golden.txt"
    );
    let run = |mode: &str| {
        let child = kcz()
            .args([
                "engine", "--shards", "8", "--batch", "4", "--k", "2", "--z", "1", "--eps", "0.5",
                mode,
            ])
            .stdin(Stdio::from(std::fs::File::open(fixture).unwrap()))
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("run kcz engine");
        let out = child.wait_with_output().unwrap();
        assert!(
            out.status.success(),
            "{mode}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let incremental = run("--incremental");
    let expected = std::fs::read_to_string(golden).unwrap();
    assert_eq!(
        incremental, expected,
        "incremental snapshot drifted from the committed golden \
         (tests/fixtures/engine_incremental_golden.txt); regenerate it \
         with `kcz engine --shards 8 --batch 4 --k 2 --z 1 --eps 0.5 \
         --incremental < tests/fixtures/golden.csv` if the change is \
         intentional"
    );
    // A publish per batch: the final epoch counts the batches.
    assert!(incremental.contains("epoch=3"), "{incremental}");
    let full = run("--full-republish");
    assert_eq!(
        incremental, full,
        "--incremental and --full-republish must print byte-identical \
         snapshots"
    );
    // The two flags together are contradictory: clean exit 2.
    let out = kcz()
        .args([
            "engine",
            "--input",
            fixture,
            "--shards",
            "8",
            "--batch",
            "4",
            "--k",
            "2",
            "--z",
            "1",
            "--eps",
            "0.5",
            "--incremental",
            "--full-republish",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn engine_solver_modes_print_identical_golden_output() {
    // The delta-aware solver is bit-identical to a cold solve by
    // construction, so `--solver cold` and `--solver delta` (the
    // default) print byte-identical clustering output — both pinned
    // against the SAME incremental golden the mode-equality test uses.
    // The solver's probe accounting goes to stderr only.
    use std::process::Stdio;
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden.csv");
    let golden = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/engine_incremental_golden.txt"
    );
    let run = |solver: &str| {
        let child = kcz()
            .args([
                "engine",
                "--shards",
                "8",
                "--batch",
                "4",
                "--k",
                "2",
                "--z",
                "1",
                "--eps",
                "0.5",
                "--incremental",
                "--solver",
                solver,
            ])
            .stdin(Stdio::from(std::fs::File::open(fixture).unwrap()))
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("run kcz engine");
        let out = child.wait_with_output().unwrap();
        assert!(
            out.status.success(),
            "--solver {solver}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };
    let expected = std::fs::read_to_string(golden).unwrap();
    let (cold_out, cold_err) = run("cold");
    let (delta_out, delta_err) = run("delta");
    assert_eq!(
        cold_out, expected,
        "--solver cold drifted from the committed incremental golden"
    );
    assert_eq!(
        delta_out, expected,
        "--solver delta drifted from the committed incremental golden"
    );
    // The probe accounting lands on stderr, named per mode.
    assert!(cold_err.contains("(solver cold:"), "{cold_err}");
    assert!(delta_err.contains("(solver delta:"), "{delta_err}");
    // An unknown solver is a clean usage error: exit 2, one-line
    // diagnostic naming the valid choices.
    let out = kcz()
        .args([
            "engine",
            "--input",
            fixture,
            "--shards",
            "8",
            "--batch",
            "4",
            "--k",
            "2",
            "--z",
            "1",
            "--eps",
            "0.5",
            "--incremental",
            "--solver",
            "bogus",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.lines()
            .next()
            .unwrap_or_default()
            .contains("cold or delta"),
        "{err}"
    );
}

#[test]
fn engine_sharding_reports_wider_eps_but_same_fixture_radius() {
    // One shard is exactly the single-stream insertion-only pipeline:
    // ε′ = ε, bound factor 3 + 8ε.  Eight shards pay ⌈log₂ 8⌉ = 3 merge
    // generations: ε′ = ε(1 + 3/2).  The certified factor widens, the
    // measured radius on this easy fixture must not.
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden.csv");
    let run = |shards: &str| {
        let out = kcz()
            .args([
                "engine", "--input", fixture, "--shards", shards, "--batch", "4", "--k", "2",
                "--z", "1", "--eps", "0.5",
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "shards={shards}");
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let one = run("1");
    assert!(one.contains("effective_eps: 0.500000"), "{one}");
    assert!(one.contains("bound_factor: 7.000000"), "{one}");
    let eight = run("8");
    assert!(eight.contains("effective_eps: 1.250000"), "{eight}");
    assert!(eight.contains("bound_factor: 13.000000"), "{eight}");
    for s in [&one, &eight] {
        assert!(s.contains("radius: 0.707107"), "{s}");
        assert!(s.contains("uncovered_weight: 1"), "{s}");
    }
}

#[test]
fn query_golden_output_on_committed_fixture() {
    // The whole serving path is deterministic: fixed routing seed,
    // memoized publish, exact kernel distances, 6-decimal formatting —
    // so the full stdout for the committed request file is pinned
    // byte-for-byte (the same pair the CI `query-smoke` step diffs).
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden.csv");
    let requests = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/queries.csv");
    let golden = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/query_golden.txt"
    );
    let out = kcz()
        .args([
            "query",
            "--input",
            fixture,
            "--requests",
            requests,
            "--shards",
            "4",
            "--batch",
            "256",
            "--k",
            "2",
            "--z",
            "1",
            "--eps",
            "0.5",
        ])
        .output()
        .expect("run kcz query");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let expected = std::fs::read_to_string(golden).unwrap();
    assert_eq!(
        stdout, expected,
        "served answers drifted from the committed golden \
         (tests/fixtures/query_golden.txt); regenerate it with \
         `kcz query --input tests/fixtures/golden.csv --requests \
         tests/fixtures/queries.csv --shards 4 --batch 256 --k 2 --z 1 \
         --eps 0.5` if the change is intentional"
    );
    // The served epoch matches the engine golden for the same stream:
    // one publish of the same shards/batch ingest.
    assert!(stdout.starts_with("query: epoch=1  centers=2"), "{stdout}");
}

#[test]
fn query_rejects_bad_requests_with_exit_2() {
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden.csv");
    let dir = std::env::temp_dir().join("kcz_cli_query_bad");
    std::fs::create_dir_all(&dir).unwrap();
    let write_req = |name: &str, body: &str| {
        let p = dir.join(name);
        std::fs::write(&p, body).unwrap();
        p.to_str().unwrap().to_string()
    };
    for (req_body, needle) in [
        (
            "frobnicate,1,2\n",
            "expected assign/classify/nearest request",
        ),
        ("assign,1\n", "wrong field count for request"),
        ("assign,1,nope\n", "bad y"),
        ("classify,1,2,-3\n", "radius must be non-negative"),
        ("classify,1,2,oops\n", "bad radius"),
        ("nearest,1,2,-1\n", "bad j"),
        ("assign,inf,2\n", "non-finite coordinate"),
    ] {
        let req = write_req("req.csv", req_body);
        let out = kcz()
            .args([
                "query",
                "--input",
                fixture,
                "--requests",
                &req,
                "--shards",
                "2",
                "--batch",
                "16",
                "--k",
                "2",
                "--z",
                "1",
                "--eps",
                "0.5",
            ])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "request `{req_body}`");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "request `{req_body}`: {stderr}");
        // The one-line message convention: first stderr line carries the
        // diagnostic, usage follows.
        assert!(
            stderr.lines().next().unwrap().contains(needle),
            "diagnostic must be on the first line: {stderr}"
        );
    }
    // Missing / unreadable request file and missing flags: same contract.
    for (args, needle) in [
        (
            vec![
                "query", "--shards", "2", "--batch", "16", "--k", "2", "--z", "1", "--eps", "0.5",
            ],
            "missing --requests",
        ),
        (
            vec![
                "query",
                "--requests",
                "/nonexistent/req.csv",
                "--shards",
                "2",
                "--batch",
                "16",
                "--k",
                "2",
                "--z",
                "1",
                "--eps",
                "0.5",
            ],
            "reading /nonexistent/req.csv",
        ),
        (
            vec![
                "query",
                "--requests",
                "also-irrelevant",
                "--shards",
                "0",
                "--batch",
                "16",
                "--k",
                "2",
                "--z",
                "1",
                "--eps",
                "0.5",
            ],
            "--shards must be at least 1",
        ),
        (
            vec![
                "query",
                "--requests",
                "also-irrelevant",
                "--shards",
                "2",
                "--batch",
                "0",
                "--k",
                "2",
                "--z",
                "1",
                "--eps",
                "0.5",
            ],
            "--batch must be at least 1",
        ),
    ] {
        let mut cmd = kcz();
        cmd.args(&args).args(["--input", fixture]);
        let out = cmd.output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains(needle),
            "{args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn unknown_subcommand_exits_2_with_one_line_message() {
    let out = kcz().args(["frobnicate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    let first = stderr.lines().next().unwrap();
    assert!(
        first.contains("unknown subcommand `frobnicate`"),
        "{stderr}"
    );
    // No subcommand at all follows the same convention.
    let out = kcz().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr)
            .lines()
            .next()
            .unwrap()
            .contains("missing subcommand"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn engine_precision_f32_golden_and_f64_default_identity() {
    // `--precision f32` routes shard absorb sweeps through the columnar
    // f32 lanes and folds F32_EPS_BUDGET into ε′, so its snapshot is
    // pinned against its own committed golden; `--precision f64` is the
    // default spelled out, so it must reproduce the f64 golden
    // byte-for-byte (the same pair the CI `engine-smoke` step diffs).
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden.csv");
    let run = |precision: &str| {
        let out = kcz()
            .args([
                "engine",
                "--input",
                fixture,
                "--shards",
                "4",
                "--batch",
                "256",
                "--k",
                "2",
                "--z",
                "1",
                "--eps",
                "0.5",
                "--precision",
                precision,
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "--precision {precision}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let f32_golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/engine_golden_f32.txt"
    ))
    .unwrap();
    assert_eq!(
        run("f32"),
        f32_golden,
        "f32 snapshot drifted from the committed golden \
         (tests/fixtures/engine_golden_f32.txt); regenerate it with \
         `kcz engine --shards 4 --batch 256 --k 2 --z 1 --eps 0.5 \
         --precision f32 < tests/fixtures/golden.csv` if the change is \
         intentional"
    );
    // ε′ carries the folded f32 budget: ε(1 + ⌈log₂ 4⌉/2)(1 + 1e-3).
    assert!(
        f32_golden.contains("effective_eps: 1.001000"),
        "{f32_golden}"
    );
    let f64_golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/engine_golden.txt"
    ))
    .unwrap();
    assert_eq!(
        run("f64"),
        f64_golden,
        "explicit --precision f64 must match the default-mode golden"
    );
    // Unknown precision values: clean exit 2, not a silent f64 run.
    let out = kcz()
        .args([
            "engine",
            "--input",
            fixture,
            "--shards",
            "4",
            "--batch",
            "256",
            "--k",
            "2",
            "--z",
            "1",
            "--eps",
            "0.5",
            "--precision",
            "f16",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown precision 'f16'"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn engine_window_golden_output_on_committed_fixture() {
    // `--backend window --window 8` expires the three oldest arrivals of
    // the committed fixture (weighted rows occupy one stamp each, so the
    // clock reads 11 while `points` counts weight 14): the origin
    // cluster loses its corners and the nearest live location `1,1`
    // becomes a center.  The whole path is deterministic, so the full
    // stdout is pinned byte-for-byte — the same stream the CI
    // `churn-smoke` step diffs.
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden.csv");
    let golden = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/engine_window_golden.txt"
    );
    let out = kcz()
        .args([
            "engine",
            "--input",
            fixture,
            "--shards",
            "4",
            "--batch",
            "4",
            "--k",
            "2",
            "--z",
            "1",
            "--eps",
            "0.5",
            "--backend",
            "window",
            "--window",
            "8",
        ])
        .output()
        .expect("run kcz engine");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let expected = std::fs::read_to_string(golden).unwrap();
    assert_eq!(
        stdout, expected,
        "windowed snapshot drifted from the committed golden \
         (tests/fixtures/engine_window_golden.txt); regenerate it with \
         `kcz engine --input tests/fixtures/golden.csv --shards 4 \
         --batch 4 --k 2 --z 1 --eps 0.5 --backend window --window 8` \
         if the change is intentional"
    );
    // The windowed epoch reports its live stamp span and the widened ε′
    // (one extra ε on top of the ⌈log₂ 4⌉ merge generations).
    assert!(stdout.contains("live_span=4..11"), "{stdout}");
    assert!(stdout.contains("effective_eps: 1.500000"), "{stdout}");
    // `--backend insertion` is the default spelled out: byte-identical
    // to the pre-backend engine golden.
    let explicit = kcz()
        .args([
            "engine",
            "--input",
            fixture,
            "--shards",
            "4",
            "--batch",
            "256",
            "--k",
            "2",
            "--z",
            "1",
            "--eps",
            "0.5",
            "--backend",
            "insertion",
        ])
        .output()
        .unwrap();
    assert!(explicit.status.success());
    let insertion_golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/engine_golden.txt"
    ))
    .unwrap();
    assert_eq!(
        String::from_utf8_lossy(&explicit.stdout),
        insertion_golden,
        "explicit --backend insertion must match the default-mode golden"
    );
    // Decay mode runs end to end and reports its backend line.
    let decay = kcz()
        .args([
            "engine",
            "--input",
            fixture,
            "--shards",
            "4",
            "--batch",
            "4",
            "--k",
            "2",
            "--z",
            "1",
            "--eps",
            "0.5",
            "--backend",
            "decay",
            "--half-life",
            "32",
        ])
        .output()
        .unwrap();
    assert!(decay.status.success());
    let decay_out = String::from_utf8_lossy(&decay.stdout);
    assert!(
        decay_out.contains("backend: decay  half_life=32  clock=11"),
        "{decay_out}"
    );
}

#[test]
fn engine_rejects_bad_backend_flags() {
    // Unknown backends and orphaned/conflicting time flags: clean exit
    // 2 with the diagnostic on the first stderr line, never a silent
    // insertion-mode run.
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden.csv");
    let base = [
        "engine", "--shards", "2", "--batch", "4", "--k", "1", "--z", "0", "--eps", "0.5",
    ];
    for (extra, needle) in [
        (
            vec!["--backend", "bogus"],
            "--backend must be insertion, window or decay",
        ),
        (vec!["--backend", "window"], "missing --window"),
        (vec!["--backend", "decay"], "missing --half-life"),
        (vec!["--window", "8"], "--window requires --backend window"),
        (
            vec!["--half-life", "32"],
            "--half-life requires --backend decay",
        ),
        (
            vec!["--backend", "insertion", "--window", "8"],
            "--window requires --backend window",
        ),
        (
            vec!["--backend", "window", "--window", "8", "--half-life", "32"],
            "--half-life requires --backend decay",
        ),
        (
            vec!["--backend", "decay", "--half-life", "32", "--window", "8"],
            "--window requires --backend window",
        ),
        (
            vec!["--backend", "window", "--window", "0"],
            "--window must be at least 1",
        ),
        (
            vec!["--backend", "window", "--window", "oops"],
            "invalid value `oops` for --window",
        ),
        (
            vec!["--backend", "decay", "--half-life", "0"],
            "--half-life must be positive and finite",
        ),
        (
            vec!["--backend", "decay", "--half-life", "inf"],
            "--half-life must be positive and finite",
        ),
    ] {
        let mut cmd = kcz();
        cmd.args(base).args(["--input", fixture]).args(&extra);
        let out = cmd.output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{extra:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{extra:?}: {stderr}");
        assert!(
            stderr.lines().next().unwrap().contains(needle),
            "diagnostic must be on the first line: {stderr}"
        );
    }
}

#[test]
fn engine_rejects_bad_flags() {
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden.csv");
    for (args, needle) in [
        (
            vec![
                "engine", "--batch", "4", "--k", "1", "--z", "0", "--eps", "0.5",
            ],
            "missing --shards",
        ),
        (
            vec![
                "engine", "--shards", "0", "--batch", "4", "--k", "1", "--z", "0", "--eps", "0.5",
            ],
            "--shards must be at least 1",
        ),
        (
            vec![
                "engine", "--shards", "2", "--batch", "0", "--k", "1", "--z", "0", "--eps", "0.5",
            ],
            "--batch must be at least 1",
        ),
        (
            vec![
                "engine", "--shards", "2", "--batch", "4", "--k", "1", "--z", "0", "--eps", "2.0",
            ],
            "--eps must be in (0, 1]",
        ),
    ] {
        let mut cmd = kcz();
        cmd.args(&args).args(["--input", fixture]);
        let out = cmd.output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains(needle),
            "{args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn engine_metrics_export_keeps_stdout_golden() {
    // `--metrics` must be a pure side channel: the instrumented run's
    // stdout stays byte-identical to the committed golden, and the
    // export lands in the file as schema-tagged kcz-metrics/v1 JSON
    // whose counters match the fixture's known stream shape.
    use std::process::Stdio;
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden.csv");
    let golden = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/engine_golden.txt"
    );
    let dir = std::env::temp_dir().join("kcz_cli_metrics");
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("engine_metrics.json");
    let child = kcz()
        .args([
            "engine",
            "--shards",
            "4",
            "--batch",
            "256",
            "--k",
            "2",
            "--z",
            "1",
            "--eps",
            "0.5",
            "--metrics",
        ])
        .arg(&metrics)
        .stdin(Stdio::from(std::fs::File::open(fixture).unwrap()))
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("run kcz engine --metrics");
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let expected = std::fs::read_to_string(golden).unwrap();
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        expected,
        "--metrics must not perturb the byte-pinned stdout"
    );
    let body = std::fs::read_to_string(&metrics).unwrap();
    assert!(body.contains("\"schema\": \"kcz-metrics/v1\""), "{body}");
    // The fixture holds 14 points in one 256-point batch, one publish.
    assert!(body.contains("\"engine.ingest.points\": 14"), "{body}");
    assert!(body.contains("\"engine.ingest.batches\": 1"), "{body}");
    assert!(body.contains("\"engine.publish.solves\": 1"), "{body}");
    assert!(body.contains("engine.publish.total_ns"), "{body}");
}

#[test]
fn query_metrics_export_records_the_served_batchless_requests() {
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden.csv");
    let requests = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/queries.csv");
    let golden = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/query_golden.txt"
    );
    let dir = std::env::temp_dir().join("kcz_cli_metrics_query");
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("query_metrics.json");
    let mut cmd = kcz();
    cmd.args([
        "query",
        "--input",
        fixture,
        "--requests",
        requests,
        "--shards",
        "4",
        "--batch",
        "256",
        "--k",
        "2",
        "--z",
        "1",
        "--eps",
        "0.5",
        "--metrics",
    ]);
    let out = cmd.arg(&metrics).output().expect("run kcz query --metrics");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        std::fs::read_to_string(golden).unwrap(),
        "--metrics must not perturb the byte-pinned stdout"
    );
    let body = std::fs::read_to_string(&metrics).unwrap();
    assert!(body.contains("\"schema\": \"kcz-metrics/v1\""), "{body}");
    // Every request line in the committed fixture is served through the
    // QueryEngine's instrumented scalar path (the initial view already
    // carries the data, so the explicit refresh is the memoized no-op).
    let served = std::fs::read_to_string(requests)
        .unwrap()
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .count();
    assert!(
        body.contains(&format!("\"query.scalar.queries\": {served}")),
        "expected {served} served scalar queries in {body}"
    );
    assert!(body.contains("\"query.refreshes\": 0"), "{body}");
}

#[test]
fn metrics_to_unwritable_path_exits_2_and_dash_streams_to_stderr() {
    use std::process::Stdio;
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden.csv");
    // A path in a missing directory is a usage error: exit 2, stdout
    // already printed (the metrics write is the last act), usage on
    // stderr.
    let child = kcz()
        .args([
            "engine",
            "--shards",
            "4",
            "--batch",
            "256",
            "--k",
            "2",
            "--z",
            "1",
            "--eps",
            "0.5",
            "--metrics",
            "/nonexistent-kcz-dir/m.json",
        ])
        .stdin(Stdio::from(std::fs::File::open(fixture).unwrap()))
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("writing metrics"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
    // `--metrics -` streams the export to stderr, keeping stdout golden.
    let golden = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/engine_golden.txt"
    );
    let child = kcz()
        .args([
            "engine",
            "--shards",
            "4",
            "--batch",
            "256",
            "--k",
            "2",
            "--z",
            "1",
            "--eps",
            "0.5",
            "--metrics",
            "-",
        ])
        .stdin(Stdio::from(std::fs::File::open(fixture).unwrap()))
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        std::fs::read_to_string(golden).unwrap()
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("\"schema\": \"kcz-metrics/v1\""),
        "dash export missing from stderr"
    );
}
