//! End-to-end tests of the `kcz` command-line tool.

use std::process::Command;

fn kcz() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kcz"))
}

fn write_points(dir: &std::path::Path) -> std::path::PathBuf {
    let mut body = String::from("# two clusters + one outlier\n");
    for i in 0..20 {
        body.push_str(&format!("{}.5,0.25\n", i % 4));
        body.push_str(&format!("{}.5,100.0\n", i % 4));
    }
    body.push_str("5000,5000\n");
    let path = dir.join("pts.csv");
    std::fs::write(&path, body).unwrap();
    path
}

#[test]
fn solve_reports_radius_and_centers() {
    let dir = std::env::temp_dir().join("kcz_cli_solve");
    std::fs::create_dir_all(&dir).unwrap();
    let input = write_points(&dir);
    let out = kcz()
        .args(["solve", "--input", input.to_str().unwrap(), "--k", "2", "--z", "1"])
        .output()
        .expect("run kcz");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("radius:"), "{stdout}");
    assert_eq!(stdout.matches("center:").count(), 2, "{stdout}");
    // The outlier must be discardable: radius covers only the clusters.
    let radius: f64 = stdout
        .lines()
        .find_map(|l| l.strip_prefix("radius: "))
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    assert!(radius < 10.0, "radius {radius} should exclude the outlier");
}

#[test]
fn coreset_roundtrips_through_csv() {
    let dir = std::env::temp_dir().join("kcz_cli_coreset");
    std::fs::create_dir_all(&dir).unwrap();
    let input = write_points(&dir);
    let output = dir.join("core.csv");
    let st = kcz()
        .args([
            "coreset",
            "--input",
            input.to_str().unwrap(),
            "--k",
            "2",
            "--z",
            "1",
            "--eps",
            "1.0",
            "--output",
            output.to_str().unwrap(),
        ])
        .status()
        .expect("run kcz");
    assert!(st.success());
    // The produced file is valid input again; total weight is preserved.
    let out = kcz()
        .args(["solve", "--input", output.to_str().unwrap(), "--k", "2", "--z", "1"])
        .output()
        .expect("run kcz on coreset");
    assert!(out.status.success());
    let body = std::fs::read_to_string(&output).unwrap();
    let total: u64 = body
        .lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(|l| l.rsplit(',').next().unwrap().trim().parse::<u64>().unwrap())
        .sum();
    assert_eq!(total, 41, "weight preservation through the CLI");
}

#[test]
fn stream_and_mpc_subcommands_run() {
    let dir = std::env::temp_dir().join("kcz_cli_misc");
    std::fs::create_dir_all(&dir).unwrap();
    let input = write_points(&dir);
    let out = kcz()
        .args([
            "stream", "--input", input.to_str().unwrap(), "--k", "2", "--z", "1", "--eps", "0.5",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("peak_words"));

    for alg in ["two_round", "one_round", "rround", "baseline"] {
        let out = kcz()
            .args([
                "mpc", "--input", input.to_str().unwrap(), "--k", "2", "--z", "1", "--eps",
                "0.5", "--machines", "3", "--algorithm", alg,
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "{alg}");
        assert!(
            String::from_utf8_lossy(&out.stdout).contains("coreset:"),
            "{alg}"
        );
    }
}

#[test]
fn bad_inputs_fail_cleanly() {
    let dir = std::env::temp_dir().join("kcz_cli_bad");
    std::fs::create_dir_all(&dir).unwrap();
    // Unknown subcommand.
    let out = kcz().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    // Malformed CSV.
    let bad = dir.join("bad.csv");
    std::fs::write(&bad, "1.0,nope\n").unwrap();
    let out = kcz()
        .args(["solve", "--input", bad.to_str().unwrap(), "--k", "1", "--z", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad y"));
    // Missing flag.
    let out = kcz().args(["solve", "--k", "1"]).output().unwrap();
    assert!(!out.status.success());
}
