//! `kcz` — command-line front end for the k-center-with-outliers suite.
//!
//! Operates on 2-D points in CSV form (`x,y` or `x,y,weight` per line;
//! lines starting with `#` are skipped).
//!
//! ```text
//! kcz coreset --input pts.csv --k 3 --z 10 --eps 0.5 [--output core.csv]
//! kcz solve   --input pts.csv --k 3 --z 10 [--eps 0.5]
//! kcz stream  --input pts.csv --k 3 --z 10 --eps 0.5
//! kcz mpc     --input pts.csv --k 3 --z 10 --eps 0.5 --machines 8 \
//!             [--algorithm two_round|one_round|rround|baseline] [--rounds 3]
//! kcz engine  --shards 4 --batch 256 --k 3 --z 10 --eps 0.5 \
//!             [--precision f64|f32] [--incremental | --full-republish] \
//!             [--backend insertion|window|decay] [--window W] [--half-life H] \
//!             [--solver cold|delta] [--metrics m.json] [< pts.csv]
//! kcz query   --input pts.csv --requests req.csv --shards 4 --batch 256 \
//!             --k 3 --z 10 --eps 0.5 [--metrics m.json]
//! kcz conformance [--tier smoke|full] [--json <path>] [--metrics <path>]
//! ```
//!
//! `solve` runs the Charikar-et-al. greedy on an (ε,k,z)-coreset (or on
//! the raw input when `--eps` is omitted) and prints centers + radius.
//! `engine` feeds the stream (stdin when `--input` is omitted) through
//! the resident sharded engine in `--batch`-sized batches and prints the
//! final snapshot — merged coreset size, per-shard peak words, the
//! merge-composed ε′ and its certified `3 + 8ε′` bound factor.  With
//! `--incremental` (dirty-shard re-merge + tree cache) or
//! `--full-republish` (cold rebuild) it publishes after every batch;
//! the two print byte-identical output.  `--precision f32` switches the
//! shard absorb sweeps to the columnar f32 storage mode (ε′ widened by
//! the certified `F32_EPS_BUDGET`); the default `f64` is bit-identical
//! to the scalar kernels.  `--solver` picks the publish-path Charikar
//! solver: `delta` (the default) re-certifies the previous epoch's
//! feasibility verdicts against the summary delta, `cold` re-solves
//! from scratch — the two print byte-identical clustering output, and
//! the solver's probe accounting goes to stderr.
//! `query` ingests the stream the same way, publishes a snapshot, and
//! answers the request file against it (`assign,x,y` / `classify,x,y,r`
//! / `nearest,x,y,j` per line) — the read side of the same engine.
//! `conformance` runs every pipeline over the shared scenario catalog,
//! checks each radius against its paper ratio bound, re-checks served
//! query answers against brute force on the published snapshot, and
//! certifies mid-stream incremental publishes bit-for-bit against
//! from-scratch replays (exit 3 on any violation).
//!
//! `--metrics <path>` (on `engine`, `query`, `conformance`) exports the
//! run's `kcz-metrics/v1` JSON — counters, gauges, latency histograms —
//! to `path` (`-` streams it to stderr).  The export never touches
//! stdout, so every byte-pinned golden stays byte-identical with
//! instrumentation enabled.

use kcenter_outliers::kcenter::charikar::GreedyParams;
use kcenter_outliers::prelude::*;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("kcz: error: {e}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  kcz coreset --input <csv> --k <K> --z <Z> --eps <EPS> [--output <csv>]
  kcz solve   --input <csv> --k <K> --z <Z> [--eps <EPS>]
  kcz stream  --input <csv> --k <K> --z <Z> --eps <EPS>
  kcz mpc     --input <csv> --k <K> --z <Z> --eps <EPS> --machines <M>
              [--algorithm two_round|one_round|rround|baseline] [--rounds <R>]
  kcz engine  --shards <N> --batch <B> --k <K> --z <Z> --eps <EPS>
              [--precision f64|f32] [--incremental | --full-republish]
              [--backend insertion|window|decay] [--window <W>]
              [--half-life <H>] [--solver cold|delta] [--input <csv>]
              [--metrics <json>]
              (reads stdin when --input is omitted; the republish flags
               publish after every batch instead of once at end;
               --backend window requires --window, --backend decay
               requires --half-life)
  kcz query   --input <csv> --requests <file> --shards <N> --batch <B>
              --k <K> --z <Z> --eps <EPS> [--metrics <json>]
  kcz conformance [--tier smoke|full] [--json <path>] [--metrics <path>]
  (point subcommands accept --metric l2|linf; the default is l2;
   --metrics writes the kcz-metrics/v1 export to <json>, or stderr
   for `-` — never stdout, keeping piped output byte-stable)";

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        return Err("missing subcommand".into());
    };
    // Reject unknown subcommands before demanding their flags, so the
    // diagnostic names the actual mistake (`kcz frobnicate` must not
    // fail with `missing --input`).  Every handler in `run_with_metric`
    // (plus `conformance`) must be listed here — a handler missing from
    // this gate is unreachable.
    const COMMANDS: &[&str] = &[
        "coreset",
        "solve",
        "stream",
        "mpc",
        "engine",
        "query",
        "conformance",
    ];
    if !COMMANDS.contains(&cmd.as_str()) {
        return Err(format!("unknown subcommand `{cmd}`"));
    }
    let flags = parse_flags(&args[1..])?;
    if cmd == "conformance" {
        return run_conformance_cmd(&flags);
    }
    // `engine` is the one subcommand meant to sit at the end of a pipe
    // (`kcz engine … < stream.csv`); everything else requires --input.
    let (input, points) = match flags.get("input") {
        Some(path) => (path.clone(), read_csv(path)?),
        None if cmd == "engine" => {
            let mut body = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin(), &mut body)
                .map_err(|e| format!("reading stdin: {e}"))?;
            ("<stdin>".to_string(), parse_csv("<stdin>", &body)?)
        }
        None => return Err("missing --input".into()),
    };
    if points.is_empty() {
        return Err(format!("no points in {input}"));
    }
    let k: usize = parse(&flags, "k")?;
    let z: u64 = parse(&flags, "z")?;
    if k == 0 {
        return Err("--k must be at least 1".into());
    }

    // Every algorithm is generic over the metric; dispatch once here.
    match flags.get("metric").map(String::as_str) {
        None | Some("l2") => run_with_metric(L2, cmd, &flags, &points, k, z),
        Some("linf") => run_with_metric(Linf, cmd, &flags, &points, k, z),
        Some(other) => Err(format!("--metric must be l2 or linf, got `{other}`")),
    }
}

/// The conformance subcommand: run every pipeline over the scenario
/// catalog, print the verdict table, optionally write the JSON report,
/// and exit 3 if any paper ratio bound is violated.
fn run_conformance_cmd(flags: &HashMap<String, String>) -> Result<ExitCode, String> {
    // Conformance has no required flags, so a misspelled optional one
    // would otherwise be silently ignored (e.g. `--teir full` running the
    // smoke tier with exit 0).
    if let Some(unknown) = flags
        .keys()
        .find(|k| !["tier", "json", "metrics"].contains(&k.as_str()))
    {
        return Err(format!("unknown flag --{unknown} for conformance"));
    }
    let tier = match flags.get("tier").map(String::as_str) {
        None | Some("smoke") => Tier::Smoke,
        Some("full") => Tier::Full,
        Some(other) => return Err(format!("--tier must be smoke or full, got `{other}`")),
    };
    let t0 = std::time::Instant::now();
    let report = run_conformance(tier);
    // `--json -` promises a machine-readable stdout: suppress the table
    // so the stream stays parseable.
    let json_to_stdout = flags.get("json").map(String::as_str) == Some("-");
    if !json_to_stdout {
        print!("{}", report.render_table());
    }
    let n_verdicts: usize = report.scenarios.iter().map(|s| s.verdicts.len()).sum();
    eprintln!(
        "conformance: {} pipelines x {} scenarios ({} verdicts) in {:.1?}",
        report.pipelines.len(),
        report.scenarios.len(),
        n_verdicts,
        t0.elapsed()
    );
    // The read side is judged too: every answer served from a published
    // snapshot is re-checked against brute force on that snapshot, and
    // the epoch's certified bound against the exact oracle.  Computed
    // before the JSON write so the machine-readable report records the
    // read-side verdicts instead of looking clean while exiting 3.
    let tq = std::time::Instant::now();
    let query_viols = query_violations(tier);
    eprintln!(
        "query conformance: {} scenarios re-checked in {:.1?}",
        report.scenarios.len(),
        tq.elapsed()
    );
    // The incremental engine is judged too: mid-stream publishes are
    // certified bit-for-bit against from-scratch replays of the same
    // prefixes.
    let ti = std::time::Instant::now();
    let mut incremental_viols = incremental_violations(tier);
    eprintln!(
        "incremental conformance: {} scenarios replayed in {:.1?}",
        report.scenarios.len(),
        ti.elapsed()
    );
    // The f32 storage mode is judged too: every scenario is replayed
    // through an f32 engine and its published radii re-measured in f64
    // against the budget-widened bound.  Its entries carry the `f32/`
    // tag and ride the incremental array, keeping the report schema —
    // and the byte-pinned golden — stable.
    let tf = std::time::Instant::now();
    incremental_viols.extend(f32_violations(tier));
    eprintln!(
        "f32 conformance: {} scenarios replayed in {:.1?}",
        report.scenarios.len(),
        tf.elapsed()
    );
    // The churn-capable backends are judged too: windowed epochs are
    // certified bit-for-bit against unexpired-suffix replays (plus
    // live-membership and a suffix-optimum bound check) and decayed
    // epochs against a full-republish engine on the same schedule.
    // Entries carry the `churn/` tag and ride the incremental array,
    // keeping the report schema — and the byte-pinned golden — stable.
    let tc = std::time::Instant::now();
    incremental_viols.extend(churn_violations(tier));
    eprintln!(
        "churn conformance: {} scenarios replayed in {:.1?}",
        report.scenarios.len(),
        tc.elapsed()
    );
    // The delta-aware solver is judged too: strided epochs of every
    // scenario are re-solved by a cold-solver engine on the same
    // publish schedule and bit-compared (radius / centers / guess /
    // uncovered) against the delta solver's snapshots.  Entries carry
    // the `solver/` tag and ride the incremental array, keeping the
    // report schema — and the byte-pinned golden — stable.
    let ts = std::time::Instant::now();
    incremental_viols.extend(solver_violations(tier));
    eprintln!(
        "solver conformance: {} scenarios verified against cold in {:.1?}",
        report.scenarios.len(),
        ts.elapsed()
    );
    // The metrics layer's MPC communication accounting is judged too:
    // every algorithm is re-run per scenario and its per-round word
    // counts certified complete and registry-faithful.  The pass always
    // records into a live registry — `--metrics` only decides whether
    // the accumulated accounting is exported.  Entries carry the `obs/`
    // tag and ride the incremental array, keeping the report schema —
    // and the byte-pinned golden — stable.
    let registry = Registry::new();
    let metrics = MetricsHandle::new(&registry);
    let to = std::time::Instant::now();
    incremental_viols.extend(obs_violations(tier, &metrics));
    eprintln!(
        "obs conformance: {} scenarios re-run in {:.1?}",
        report.scenarios.len(),
        to.elapsed()
    );
    if let Some(path) = flags.get("metrics") {
        write_metrics(path, &registry)?;
    }
    if let Some(path) = flags.get("json") {
        let body = report.to_json_with_violations(&query_viols, &incremental_viols);
        if path == "-" {
            print!("{body}");
        } else {
            std::fs::write(path, body).map_err(|e| format!("writing {path}: {e}"))?;
        }
    }
    let mut violations = report.violations();
    violations.extend(query_viols);
    violations.extend(incremental_viols);
    if violations.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        for v in &violations {
            eprintln!("conformance violation: {v}");
        }
        Ok(ExitCode::from(3))
    }
}

/// Runs one subcommand under the chosen metric (the whole pipeline —
/// coreset constructions, solvers, streaming, MPC — routes through the
/// batched `MetricSpace` kernels of the chosen metric).
fn run_with_metric<M: MetricSpace<[f64; 2]> + Copy + Send + Sync>(
    metric: M,
    cmd: &str,
    flags: &HashMap<String, String>,
    points: &[Weighted<[f64; 2]>],
    k: usize,
    z: u64,
) -> Result<ExitCode, String> {
    match cmd {
        "coreset" => {
            let eps = parse_eps(flags)?;
            let t0 = std::time::Instant::now();
            let mbc = mbc_construction(&metric, points, k, z, eps);
            eprintln!(
                "coreset: {} -> {} representatives in {:.1?} (greedy radius {:.4})",
                points.len(),
                mbc.len(),
                t0.elapsed(),
                mbc.greedy_radius
            );
            let body = render_csv(&mbc.reps);
            match flags.get("output") {
                Some(path) => {
                    std::fs::write(path, body).map_err(|e| format!("writing {path}: {e}"))?
                }
                None => print!("{body}"),
            }
            Ok(ExitCode::SUCCESS)
        }
        "solve" => {
            let summary: Vec<Weighted<[f64; 2]>> = match flags.get("eps") {
                Some(_) => {
                    let eps = parse_eps(flags)?;
                    mbc_construction(&metric, points, k, z, eps).reps
                }
                None => points.to_vec(),
            };
            let t0 = std::time::Instant::now();
            let sol = greedy(&metric, &summary, k, z);
            println!("radius: {:.6}", sol.radius);
            println!("uncovered_weight: {}", sol.uncovered);
            for c in &sol.centers {
                println!("center: {},{}", c[0], c[1]);
            }
            eprintln!(
                "(solved on {} points in {:.1?})",
                summary.len(),
                t0.elapsed()
            );
            Ok(ExitCode::SUCCESS)
        }
        "stream" => {
            let eps = parse_eps(flags)?;
            let mut alg = InsertionOnlyCoreset::new(metric, k, z, eps);
            for p in points {
                for _ in 0..p.weight {
                    alg.insert(p.point);
                }
            }
            let sol = greedy(&metric, alg.coreset(), k, z);
            println!(
                "points: {}  coreset: {}  peak_words: {}  rebuilds: {}  radius: {:.6}",
                alg.points_seen(),
                alg.coreset().len(),
                alg.peak_words(),
                alg.rebuilds(),
                sol.radius
            );
            Ok(ExitCode::SUCCESS)
        }
        "mpc" => {
            let eps = parse_eps(flags)?;
            let m: usize = parse(flags, "machines")?;
            if m == 0 {
                return Err("--machines must be at least 1".into());
            }
            let raw: Vec<[f64; 2]> = points.iter().map(|p| p.point).collect();
            let parts = round_robin(&raw, m);
            let params = GreedyParams::default();
            let default_alg = "two_round".to_string();
            let alg = flags.get("algorithm").unwrap_or(&default_alg);
            let out = match alg.as_str() {
                "two_round" => two_round(&metric, &parts, k, z, eps, &params).output,
                "one_round" => one_round_randomized(&metric, &parts, k, z, eps, &params).output,
                "rround" => {
                    let rounds: usize = match flags.get("rounds") {
                        Some(_) => parse(flags, "rounds")?,
                        None => 2,
                    };
                    if rounds == 0 {
                        return Err("--rounds must be at least 1".into());
                    }
                    r_round(&metric, &parts, k, z, eps, rounds, &params)
                }
                "baseline" => ceccarello_one_round(&metric, &parts, k, z, eps, &params),
                other => return Err(format!("unknown --algorithm {other}")),
            };
            let s = &out.stats;
            println!(
                "algorithm: {alg}  rounds: {}  machines: {}  worker_words: {}  \
                 coordinator_words: {}  comm_words: {}  coreset: {}",
                s.rounds,
                s.machines,
                s.worker_peak_words,
                s.coordinator_peak_words,
                s.comm_words,
                s.coreset_size
            );
            let sol = greedy(&metric, &out.coreset, k, z);
            println!(
                "radius: {:.6}  effective_eps: {:.3}",
                sol.radius, out.effective_eps
            );
            Ok(ExitCode::SUCCESS)
        }
        "engine" => {
            let eps = parse_eps(flags)?;
            let shards: usize = parse(flags, "shards")?;
            if shards == 0 {
                return Err("--shards must be at least 1".into());
            }
            let batch: usize = parse(flags, "batch")?;
            if batch == 0 {
                return Err("--batch must be at least 1".into());
            }
            // `--incremental` / `--full-republish` publish after every
            // batch (a resident serving engine's cadence) with the tree
            // cache kept or rebuilt respectively; stdout is byte-
            // identical across the two — incremental re-merging is a
            // pure optimization.  Without either flag the engine
            // snapshots once at end of stream, as before.
            let incremental = flags.contains_key("incremental");
            let full = flags.contains_key("full-republish");
            if incremental && full {
                return Err("--incremental and --full-republish are mutually exclusive".into());
            }
            // `--precision f32` stores shard representatives in the
            // columnar f32 lanes (half the bandwidth per absorb sweep)
            // and folds the certified F32_EPS_BUDGET into ε′; the
            // default f64 mode is bit-identical to the scalar kernels.
            let precision: Precision = match flags.get("precision") {
                Some(raw) => raw
                    .parse()
                    .map_err(|e: String| format!("--precision: {e}"))?,
                None => Precision::F64,
            };
            // `--backend window --window W` summarizes only the last W
            // arrivals; `--backend decay --half-life H` halves
            // representative weights every H arrivals.  The default
            // insertion backend prints byte-identical output to before
            // backends existed.
            let backend = parse_backend(flags)?;
            // `--solver delta` (the default) runs the delta-aware
            // Charikar solve; `--solver cold` re-solves every publish
            // from scratch.  Both print byte-identical clustering
            // output — the delta path is certified bit-identical by
            // construction — so the choice only moves the probe
            // accounting reported on stderr.
            let (solver, solver_name) = match flags.get("solver").map(String::as_str) {
                None | Some("delta") => (SolverMode::Delta, "delta"),
                Some("cold") => (SolverMode::Cold, "cold"),
                Some(other) => {
                    return Err(format!("--solver must be cold or delta, got `{other}`"))
                }
            };
            // `--metrics` attaches a live registry; without it the
            // handle is disabled and every recording site is a no-op.
            let (registry, metrics, metrics_path) = metrics_setup(flags);
            let t0 = std::time::Instant::now();
            let mut cfg = EngineConfig::new(shards, k, z, eps)
                .with_precision(precision)
                .with_backend(backend)
                .with_solver(solver);
            if full {
                cfg = cfg.full_republish();
            }
            let engine = Engine::new(metric, cfg).with_metrics(&metrics);
            for chunk in points.chunks(batch) {
                engine.ingest_weighted(chunk);
                if incremental || full {
                    let _ = engine.publish();
                }
            }
            let snap = engine.snapshot();
            println!(
                "engine: shards={shards}  batch={batch}  points={}  batches={}  epoch={}",
                snap.stats.points, snap.stats.batches, snap.epoch
            );
            // Non-default backends report their time state; the default
            // insertion mode prints nothing extra (byte-stable output).
            match backend {
                Backend::Insertion => {}
                Backend::Window(w) => {
                    let span = snap
                        .window_span()
                        .map_or_else(|| "empty".to_string(), |(lo, hi)| format!("{lo}..{hi}"));
                    println!(
                        "backend: window  window={w}  clock={}  live_span={span}",
                        snap.clock
                    );
                }
                Backend::Decay(h) => {
                    println!("backend: decay  half_life={h}  clock={}", snap.clock);
                }
            }
            println!(
                "coreset: {}  shard_peak_words: {}  merge_words: {}  effective_eps: {:.6}",
                snap.coreset.len(),
                snap.stats.shard_peak_words,
                snap.stats.merge_transient_words,
                snap.effective_eps
            );
            println!(
                "radius: {:.6}  bound_factor: {:.6}",
                snap.radius, snap.bound_factor
            );
            println!("uncovered_weight: {}", snap.uncovered);
            for c in &snap.centers {
                println!("center: {},{}", c[0], c[1]);
            }
            eprintln!(
                "(ingested {} points in {:.1?}; snapshot merged {} shards)",
                snap.stats.points,
                t0.elapsed(),
                shards
            );
            // Solver accounting stays on stderr so the clustering
            // output above remains byte-identical across solver modes.
            eprintln!(
                "(solver {solver_name}: {} probes, {} reused verdicts at epoch {})",
                snap.stats.solve_probes, snap.stats.reused_verdicts, snap.epoch
            );
            if let Some(path) = metrics_path {
                write_metrics(&path, &registry)?;
            }
            Ok(ExitCode::SUCCESS)
        }
        "query" => {
            let eps = parse_eps(flags)?;
            let shards: usize = parse(flags, "shards")?;
            if shards == 0 {
                return Err("--shards must be at least 1".into());
            }
            let batch: usize = parse(flags, "batch")?;
            if batch == 0 {
                return Err("--batch must be at least 1".into());
            }
            let req_path = flags.get("requests").ok_or("missing --requests")?;
            let body = std::fs::read_to_string(req_path)
                .map_err(|e| format!("reading {req_path}: {e}"))?;
            let requests = parse_requests(req_path, &body)?;
            let (registry, metrics, metrics_path) = metrics_setup(flags);
            let t0 = std::time::Instant::now();
            let engine = std::sync::Arc::new(
                Engine::new(metric, EngineConfig::new(shards, k, z, eps)).with_metrics(&metrics),
            );
            for chunk in points.chunks(batch) {
                engine.ingest_weighted(chunk);
            }
            let query = QueryEngine::with_metrics(std::sync::Arc::clone(&engine), &metrics);
            let view = query.refresh();
            println!(
                "query: epoch={}  centers={}  coreset={}  effective_eps={:.6}  \
                 bound_factor={:.6}  radius={:.6}",
                view.epoch(),
                view.centers().len(),
                view.coreset().len(),
                view.effective_eps(),
                view.bound_factor(),
                view.radius()
            );
            // Requests route through the QueryEngine's instrumented
            // scalar methods; with no concurrent refresher they answer
            // from the same frozen view printed above.
            for req in &requests {
                match *req {
                    Request::Assign(p) => match query.assign(&p) {
                        Some(a) => println!(
                            "assign {},{}: center={} at={},{} dist={:.6}",
                            p[0],
                            p[1],
                            a.center,
                            view.centers()[a.center][0],
                            view.centers()[a.center][1],
                            a.dist
                        ),
                        None => println!("assign {},{}: none (no centers)", p[0], p[1]),
                    },
                    Request::Classify(p, r) => {
                        let c = query.classify(&p, r);
                        println!(
                            "classify {},{} r={}: {} dist={:.6} bound_factor={:.6}",
                            p[0],
                            p[1],
                            r,
                            if c.covered { "covered" } else { "outlier" },
                            c.dist,
                            c.bound_factor
                        );
                    }
                    Request::Nearest(p, j) => {
                        let near = query.nearest_centers(&p, j);
                        let mut line = format!("nearest {},{} j={j}:", p[0], p[1]);
                        for a in &near {
                            let _ = write!(
                                line,
                                " {}:{},{}:{:.6}",
                                a.center,
                                view.centers()[a.center][0],
                                view.centers()[a.center][1],
                                a.dist
                            );
                        }
                        println!("{line}");
                    }
                }
            }
            eprintln!(
                "(served {} requests from epoch {} in {:.1?})",
                requests.len(),
                view.epoch(),
                t0.elapsed()
            );
            if let Some(path) = metrics_path {
                write_metrics(&path, &registry)?;
            }
            Ok(ExitCode::SUCCESS)
        }
        // Unreachable through `run` (the COMMANDS gate rejects unknown
        // names first); kept as a defensive error, not a panic.
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

/// One line of a `kcz query` request file.
enum Request {
    /// `assign,x,y` — which center serves the point?
    Assign([f64; 2]),
    /// `classify,x,y,r` — covered or outlier at radius `r`?
    Classify([f64; 2], f64),
    /// `nearest,x,y,j` — the `j` nearest centers, ascending.
    Nearest([f64; 2], usize),
}

/// Parses a request file: `assign,x,y` / `classify,x,y,r` /
/// `nearest,x,y,j` per line, `#` comments and blank lines skipped.
fn parse_requests(path: &str, body: &str) -> Result<Vec<Request>, String> {
    let mut out = Vec::new();
    for (lineno, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        let err = |what: &str| format!("{path}:{}: {what}: `{line}`", lineno + 1);
        let coord = |s: &str, what: &str| -> Result<f64, String> {
            let v: f64 = s.parse().map_err(|_| err(what))?;
            if !v.is_finite() {
                return Err(err("non-finite coordinate"));
            }
            Ok(v)
        };
        let point = |f: &[&str]| -> Result<[f64; 2], String> {
            Ok([coord(f[0], "bad x")?, coord(f[1], "bad y")?])
        };
        match (fields[0], fields.len()) {
            ("assign", 3) => out.push(Request::Assign(point(&fields[1..])?)),
            ("classify", 4) => {
                let p = point(&fields[1..3])?;
                let r: f64 = fields[3].parse().map_err(|_| err("bad radius"))?;
                if r.is_nan() || r < 0.0 {
                    return Err(err("radius must be non-negative"));
                }
                out.push(Request::Classify(p, r));
            }
            ("nearest", 4) => {
                let p = point(&fields[1..3])?;
                let j: usize = fields[3].parse().map_err(|_| err("bad j"))?;
                out.push(Request::Nearest(p, j));
            }
            ("assign" | "classify" | "nearest", _) => {
                return Err(err("wrong field count for request"))
            }
            _ => return Err(err("expected assign/classify/nearest request")),
        }
    }
    Ok(out)
}

/// Parses the `kcz engine` backend choice and validates its flag
/// combinations: `--window` belongs to `--backend window` (which
/// requires it) and `--half-life` to `--backend decay` (likewise);
/// anything else is a usage error (exit 2).
fn parse_backend(flags: &HashMap<String, String>) -> Result<Backend, String> {
    let name = flags
        .get("backend")
        .map(String::as_str)
        .unwrap_or("insertion");
    match name {
        "insertion" => {
            if flags.contains_key("window") {
                return Err("--window requires --backend window".into());
            }
            if flags.contains_key("half-life") {
                return Err("--half-life requires --backend decay".into());
            }
            Ok(Backend::Insertion)
        }
        "window" => {
            if flags.contains_key("half-life") {
                return Err("--half-life requires --backend decay".into());
            }
            let w: u64 = parse(flags, "window")?;
            if w == 0 {
                return Err("--window must be at least 1".into());
            }
            Ok(Backend::Window(w))
        }
        "decay" => {
            if flags.contains_key("window") {
                return Err("--window requires --backend window".into());
            }
            let h: f64 = parse(flags, "half-life")?;
            if !(h.is_finite() && h > 0.0) {
                return Err(format!("--half-life must be positive and finite, got {h}"));
            }
            Ok(Backend::Decay(h))
        }
        other => Err(format!(
            "--backend must be insertion, window or decay, got `{other}`"
        )),
    }
}

/// `--metrics` instrumentation for a subcommand: an enabled handle
/// backed by the returned registry when the flag is present, a disabled
/// (zero-overhead) handle otherwise.
fn metrics_setup(flags: &HashMap<String, String>) -> (Registry, MetricsHandle, Option<String>) {
    let registry = Registry::new();
    match flags.get("metrics") {
        Some(path) => (
            registry.clone(),
            MetricsHandle::new(&registry),
            Some(path.clone()),
        ),
        None => (registry, MetricsHandle::disabled(), None),
    }
}

/// Writes the registry's `kcz-metrics/v1` export to `path`, or to
/// stderr for `-`.  Stdout is reserved for the subcommand's byte-pinned
/// output, so goldens stay stable with instrumentation enabled.
fn write_metrics(path: &str, registry: &Registry) -> Result<(), String> {
    let body = registry.to_json();
    if path == "-" {
        eprint!("{body}");
        Ok(())
    } else {
        std::fs::write(path, body).map_err(|e| format!("writing metrics {path}: {e}"))
    }
}

/// Flags that take no value: presence is the value.
const BOOL_FLAGS: &[&str] = &["incremental", "full-republish"];

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(name) = a.strip_prefix("--") else {
            return Err(format!("expected --flag, got `{a}`"));
        };
        if BOOL_FLAGS.contains(&name) {
            out.insert(name.to_string(), "true".to_string());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("missing value for --{name}"))?;
        out.insert(name.to_string(), value.clone());
    }
    Ok(out)
}

fn parse<T: std::str::FromStr>(flags: &HashMap<String, String>, name: &str) -> Result<T, String> {
    let raw = flags.get(name).ok_or(format!("missing --{name}"))?;
    raw.parse()
        .map_err(|_| format!("invalid value `{raw}` for --{name}"))
}

/// Every algorithm in the suite requires ε ∈ (0, 1].
fn parse_eps(flags: &HashMap<String, String>) -> Result<f64, String> {
    let eps: f64 = parse(flags, "eps")?;
    if !(eps > 0.0 && eps <= 1.0) {
        return Err(format!("--eps must be in (0, 1], got {eps}"));
    }
    Ok(eps)
}

fn read_csv(path: &str) -> Result<Vec<Weighted<[f64; 2]>>, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    parse_csv(path, &body)
}

fn parse_csv(path: &str, body: &str) -> Result<Vec<Weighted<[f64; 2]>>, String> {
    let mut out = Vec::new();
    for (lineno, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        let err = |what: &str| format!("{path}:{}: {what}: `{line}`", lineno + 1);
        if fields.len() < 2 || fields.len() > 3 {
            return Err(err("expected `x,y` or `x,y,weight`"));
        }
        let x: f64 = fields[0].parse().map_err(|_| err("bad x"))?;
        let y: f64 = fields[1].parse().map_err(|_| err("bad y"))?;
        if !x.is_finite() || !y.is_finite() {
            return Err(err("non-finite coordinate"));
        }
        let w: u64 = if fields.len() == 3 {
            fields[2].parse().map_err(|_| err("bad weight"))?
        } else {
            1
        };
        if w == 0 {
            return Err(err("zero weight"));
        }
        out.push(Weighted::new([x, y], w));
    }
    Ok(out)
}

fn render_csv(points: &[Weighted<[f64; 2]>]) -> String {
    let mut s = String::with_capacity(points.len() * 24);
    s.push_str("# x,y,weight\n");
    for p in points {
        let _ = writeln!(s, "{},{},{}", p.point[0], p.point[1], p.weight);
    }
    s
}
