//! # kcenter-outliers
//!
//! A Rust reproduction of **"k-Center Clustering with Outliers in the MPC
//! and Streaming Model"** (Mark de Berg, Leyla Biabani, Morteza
//! Monemizadeh; IPDPS 2023, arXiv:2302.12811).
//!
//! Given `n` points in a metric space of doubling dimension `d`, the
//! k-center problem with `z` outliers asks for `k` congruent balls of
//! minimum radius covering all but (weight) `z` of the points.  The paper
//! shows how to maintain **(ε,k,z)-coresets** of size `O(k/ε^d + z)` — via
//! *mini-ball coverings* — in the MPC model and in three streaming models,
//! with matching lower bounds.
//!
//! ## Crate map
//!
//! | module | contents |
//! |--------|----------|
//! | [`obs`] | zero-overhead observability: lock-free counters/gauges/latency histograms behind a [`obs::MetricsHandle`] that no-ops when disabled, span/stage tracing on a pluggable [`obs::Clock`] (deterministic [`obs::TickClock`] for tests), and the versioned `kcz-metrics/v1` JSON export (`--metrics` on `kcz engine` / `query` / `conformance`) |
//! | [`metric`] | points, metrics ([`metric::L2`], [`metric::Linf`], grids), **batched distance kernels** (`dist_many`, `nearest`, `count_within`, … with deferred-`sqrt` overrides), pruned neighbor queries ([`metric::index::NeighborIndex`]: grid-bucket + brute-force), weighted sets, storage accounting |
//! | [`kcenter`] | offline solvers: Charikar-et-al. greedy 3-approximation, Gonzalez, exact ground truth — hot loops on the batched kernels |
//! | [`coreset`] | mini-ball coverings: `MBCConstruction` (Alg. 1), `UpdateCoreset` (Alg. 4), index-accelerated sweeps, composition lemmas, validators |
//! | [`mpc`] | MPC simulator + the 2-round (Alg. 2), randomized 1-round (Alg. 6), R-round (Alg. 7) algorithms and the CPP19 baseline |
//! | [`streaming`] | insertion-only (Alg. 3), fully dynamic (Alg. 5), sliding-window structures and streaming baselines |
//! | [`engine`] | shared execution runtime (persistent worker pool) + the resident sharded ingest engine (`kcz engine`) built on [`coreset::MergeableSummary`], with memoized epoch publication (`publish`/`latest`) and pluggable per-shard backends ([`engine::ShardBackend`]: insertion-only, sliding-window, exponential decay) |
//! | [`serve`] | the read side: immutable published [`serve::SnapshotView`]s (centers + bound + the epoch's arrival clock and live window span), the [`serve::QueryEngine`] (`assign`/`classify`/`nearest_centers` + pool-batched variants, `kcz query`), and the mixed read/write [`serve::LoadDriver`] |
//! | [`sketch`] | turnstile substrates: s-sparse recovery, F₀ estimation with deletions |
//! | [`lowerbounds`] | the paper's lower-bound constructions as adversarial generators |
//! | [`workloads`] | reproducible synthetic data, partitions, stream schedules, adversarial generators |
//! | [`harness`] | cross-model conformance: scenario catalog, `Pipeline` adapters for all ten pipelines, oracle-checked ratio bounds, served-answer query conformance, churn-backend certification (`kcz conformance`) |
//!
//! ## Quickstart
//!
//! ```
//! use kcenter_outliers::prelude::*;
//!
//! // Clustered data with planted outliers.
//! let inst = gaussian_clusters::<2>(3, 200, 1.0, 10, 42);
//! let weighted = unit_weighted(&inst.points);
//!
//! // A coreset several times smaller than the input...
//! let mbc = mbc_construction(&L2, &weighted, 3, 10, 1.0);
//! assert!(mbc.len() < inst.points.len() / 4);
//!
//! // ...on which any offline solver approximates the original optimum.
//! let on_coreset = greedy(&L2, &mbc.reps, 3, 10);
//! let on_input = greedy(&L2, &weighted, 3, 10);
//! assert!(on_coreset.radius <= 3.0 * (1.0 + 1.0) * on_input.radius + 1e-9);
//! ```

pub use kcz_coreset as coreset;
pub use kcz_engine as engine;
pub use kcz_harness as harness;
pub use kcz_kcenter as kcenter;
pub use kcz_lowerbounds as lowerbounds;
pub use kcz_metric as metric;
pub use kcz_mpc as mpc;
pub use kcz_obs as obs;
pub use kcz_serve as serve;
pub use kcz_sketch as sketch;
pub use kcz_streaming as streaming;
pub use kcz_workloads as workloads;

/// One-stop imports for applications.
pub mod prelude {
    pub use kcz_coreset::validate::{covering_radius, validate_coreset};
    pub use kcz_coreset::{
        end_to_end_factor, mbc_construction, streaming_capacity, update_coreset, MergeableSummary,
        MiniBallCovering,
    };
    pub use kcz_engine::{
        Backend, Engine, EngineConfig, EngineStats, ShardBackend, Snapshot, SolverMode,
    };
    pub use kcz_harness::{
        all_pipelines, catalog, churn_violations, f32_violations, incremental_violations,
        obs_violations, query_violations, run_conformance, solver_violations, ConformanceReport,
        Pipeline, Scenario, Tier, Verdict,
    };
    pub use kcz_kcenter::{
        cost_with_outliers, exact_discrete, farthest_first, greedy, uncovered_weight,
    };
    pub use kcz_metric::{
        total_weight, unit_weighted, GridL2, GridLinf, Line, Linf, MetricSpace, Precision,
        SpaceUsage, Weighted, L2,
    };
    pub use kcz_mpc::{
        ceccarello_one_round, one_round_randomized, r_round, two_round, MpcCoreset, MpcRunStats,
    };
    pub use kcz_obs::{MetricsHandle, MonotonicClock, Registry, TickClock};
    pub use kcz_serve::{
        Assignment, Classification, DriverConfig, DriverReport, LatencyHistogram, LoadDriver,
        QueryEngine, SnapshotView,
    };
    pub use kcz_streaming::{
        baselines::{ceccarello_stream, mk_doubling},
        DoublingCoreset, DynamicCoreset, InsertionOnlyCoreset, SlidingWindowCoreset,
        SwStampedQuery,
    };
    pub use kcz_workloads::{
        annulus, churn_schedule, colinear, concentrated_partition, drifting_stream,
        duplicate_heavy, gaussian_clusters, grid_clusters, mixed_trace, outlier_burst,
        phase_shift_stream, query_trace, random_partition, round_robin, shuffled,
        two_scale_clusters, uniform_box, TraceOp,
    };
}
