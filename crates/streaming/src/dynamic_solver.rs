//! A fully dynamic `(3+ε)`-approximate k-center-with-outliers *solver* —
//! the paper's Section 1 remark made concrete:
//!
//! > "our dynamic streaming algorithm immediately gives a fully dynamic
//! > algorithm for the k-center problem with outliers that has a fast
//! > update time […] after each update we can simply run a greedy
//! > algorithm on our coreset."
//!
//! [`DynamicKCenter`] wraps [`crate::DynamicCoreset`] and answers
//! clustering queries by running the Charikar-et-al. greedy on the
//! recovered relaxed coreset: a `3(1+O(ε))`-approximation whose update
//! time is polylogarithmic in `Δ` and whose query time depends only on
//! the coreset size `O(k/ε^d + z)` — never on the number of live points.

use kcz_kcenter::charikar::{greedy_with, GreedyParams};
use kcz_metric::{Weighted, L2};

use crate::dynamic::{DynamicCoreset, DynamicCoresetError};

/// A clustering answer from the dynamic solver.
#[derive(Debug, Clone)]
pub struct DynamicSolution<const D: usize> {
    /// The `≤ k` centers (coreset points, i.e. grid-cell centers).
    pub centers: Vec<[f64; D]>,
    /// Covering radius on the coreset; within `3(1+O(ε))` of the optimal
    /// radius of the live point set.
    pub radius: f64,
    /// Size of the coreset the answer was computed from.
    pub coreset_size: usize,
    /// Grid level the coreset was recovered from.
    pub level: u32,
}

/// Fully dynamic k-center with outliers over `[0, 2^side_bits)^D`.
#[derive(Debug, Clone)]
pub struct DynamicKCenter<const D: usize> {
    sketch: DynamicCoreset<D>,
    k: usize,
    z: u64,
    params: GreedyParams,
}

impl<const D: usize> DynamicKCenter<D> {
    /// Creates the solver (see [`DynamicCoreset::for_params`] for the
    /// parameter semantics).
    pub fn new(side_bits: u32, k: usize, z: u64, eps: f64, fail_delta: f64, seed: u64) -> Self {
        DynamicKCenter {
            sketch: DynamicCoreset::for_params(side_bits, k, z, eps, fail_delta, seed),
            k,
            z,
            params: GreedyParams::default(),
        }
    }

    /// Overrides the tuning of the query-time greedy (candidate-set and
    /// distance-matrix thresholds).  The greedy itself runs entirely on
    /// the batched distance kernels of `kcz-metric`, so queries stay fast
    /// even when the coreset approaches its `O(k/ε^d + z)` size bound.
    pub fn with_params(mut self, params: GreedyParams) -> Self {
        self.params = params;
        self
    }

    /// Inserts a point.
    pub fn insert(&mut self, p: &[u64; D]) {
        self.sketch.insert(p);
    }

    /// Deletes a (present) point.
    pub fn delete(&mut self, p: &[u64; D]) {
        self.sketch.delete(p);
    }

    /// Solves k-center with `z` outliers on the current live set, via the
    /// coreset.  Runs in time polynomial in the coreset size only.
    pub fn solve(&self) -> Result<DynamicSolution<D>, DynamicCoresetError> {
        let (coreset, level) = self.sketch.coreset()?;
        let sol = greedy_with(&L2, &coreset, self.k, self.z, &self.params);
        Ok(DynamicSolution {
            centers: sol.centers,
            radius: sol.radius,
            coreset_size: coreset.len(),
            level,
        })
    }

    /// The current relaxed coreset (weighted grid-cell centers).
    pub fn coreset(&self) -> Result<Vec<Weighted<[f64; D]>>, DynamicCoresetError> {
        self.sketch.coreset().map(|(c, _)| c)
    }

    /// Sketch storage in machine words.
    pub fn space_words(&self) -> usize {
        self.sketch.space_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcz_kcenter::greedy;
    use kcz_metric::unit_weighted;

    #[test]
    fn tracks_live_set_through_churn() {
        let (k, z) = (2usize, 3u64);
        let mut solver = DynamicKCenter::<2>::new(10, k, z, 1.0, 0.01, 5);
        let mut live: Vec<[u64; 2]> = Vec::new();
        // Two clusters plus outliers.
        for i in 0..30u64 {
            let p = if i % 2 == 0 {
                [10 + i % 5, 10 + (i / 2) % 5]
            } else {
                [900 + i % 5, 900 + (i / 3) % 5]
            };
            if !live.contains(&p) {
                solver.insert(&p);
                live.push(p);
            }
        }
        for o in [[500u64, 0], [0, 500], [1000, 20]] {
            solver.insert(&o);
            live.push(o);
        }
        let sol = solver.solve().expect("solve");
        let live_pts: Vec<[f64; 2]> = live.iter().map(|p| [p[0] as f64, p[1] as f64]).collect();
        let direct = greedy(&L2, &unit_weighted(&live_pts), k, z);
        // 3(1+O(ε)) bands both ways, plus the grid-cell additive error.
        assert!(sol.radius <= 3.5 * direct.radius.max(1.0) + 10.0);
        // Deleting one cluster collapses the radius.
        for p in live.iter().filter(|p| p[0] >= 900) {
            solver.delete(p);
        }
        let sol2 = solver.solve().expect("solve after deletes");
        assert!(
            sol2.radius <= sol.radius + 1e-9,
            "radius should not grow after removing a whole cluster"
        );
    }

    #[test]
    fn empty_solver_answers_zero() {
        let solver = DynamicKCenter::<2>::new(8, 2, 1, 1.0, 0.01, 1);
        let sol = solver.solve().expect("empty recovery");
        assert_eq!(sol.radius, 0.0);
        assert_eq!(sol.coreset_size, 0);
    }
}
