//! A **deterministic** variant of the fully dynamic streaming algorithm —
//! the conditional result sketched in Section 5 of the paper:
//!
//! > "If both of these subroutines can be made deterministic, then our
//! > algorithm would also be deterministic […] we can make the s-sample
//! > recovery sketch deterministic by using the Vandermonde matrix."
//!
//! Every grid level carries a [`DeterministicSparseRecovery`] (2s field
//! elements — far below the randomized sketch's footprint) instead of the
//! randomized pair.  There is no F₀ estimator at all: a query walks the
//! levels finest-first and takes the first level whose Vandermonde
//! decoding verifies, which is *certain* to succeed at any level with at
//! most `s` non-empty cells.  The paper's caveat carries over verbatim:
//! checking "at most O(s) non-empty cells" deterministically is open, so
//! overflow detection relies on syndrome verification.  The practical
//! price is the `O(U·s)` Chien search per level, which restricts this
//! variant to small universes (`side_bits·D ≤ 24`).

use kcz_metric::Weighted;
use kcz_sketch::ssparse::Recovery;
use kcz_sketch::DeterministicSparseRecovery;

use crate::dynamic::{DynamicCoresetError, RelaxedCoreset};

/// Deterministic fully dynamic coreset over `[0, 2^side_bits)^D`.
#[derive(Debug, Clone)]
pub struct DeterministicDynamicCoreset<const D: usize> {
    side_bits: u32,
    s: usize,
    levels: Vec<DeterministicSparseRecovery>,
    net_updates: i64,
}

impl<const D: usize> DeterministicDynamicCoreset<D> {
    /// Creates the structure with sparsity target `s` per grid.
    /// Requires `side_bits·D ≤ 24` (Chien-search decoding).
    pub fn new(side_bits: u32, s: usize) -> Self {
        assert!(D >= 1 && side_bits >= 1);
        assert!(
            (side_bits as usize) * D <= 24,
            "deterministic decoding needs side_bits·D ≤ 24, got {side_bits}·{D}"
        );
        // Tolerate slightly more than s live cells, mirroring the
        // randomized variant's slack over the F₀ threshold.
        let budget = s + s / 2 + 8;
        let levels = (0..=side_bits)
            .map(|i| {
                let bits = (side_bits - i) as usize * D;
                DeterministicSparseRecovery::new(budget, 1u64 << bits.max(1))
            })
            .collect();
        DeterministicDynamicCoreset {
            side_bits,
            s,
            levels,
            net_updates: 0,
        }
    }

    /// Universe side `Δ`.
    pub fn universe_side(&self) -> u64 {
        1u64 << self.side_bits
    }

    /// Net insertions minus deletions.
    pub fn net_updates(&self) -> i64 {
        self.net_updates
    }

    fn cell_id(&self, p: &[u64; D], level: u32) -> u64 {
        let bits = (self.side_bits - level) as u64;
        let mut id = 0u64;
        for (j, &c) in p.iter().enumerate() {
            id |= (c >> level) << (j as u64 * bits);
        }
        id
    }

    fn apply(&mut self, p: &[u64; D], delta: i64) {
        let side = self.universe_side();
        for &c in p.iter() {
            assert!(c < side, "coordinate {c} outside universe [0, {side})");
        }
        self.net_updates += delta;
        for level in 0..=self.side_bits {
            let id = self.cell_id(p, level);
            self.levels[level as usize].update(id, delta);
        }
    }

    /// Inserts a point.
    pub fn insert(&mut self, p: &[u64; D]) {
        self.apply(p, 1);
    }

    /// Deletes a (present) point.
    pub fn delete(&mut self, p: &[u64; D]) {
        self.apply(p, -1);
    }

    /// Extracts the relaxed coreset from the finest decodable grid.
    pub fn coreset(&self) -> Result<RelaxedCoreset<D>, DynamicCoresetError> {
        for level in 0..=self.side_bits {
            match self.levels[level as usize].recover() {
                Recovery::Exact(cells) if cells.len() <= self.s + self.s / 2 + 8 => {
                    let mut reps = Vec::with_capacity(cells.len());
                    for (id, count) in cells {
                        if count < 0 {
                            return Err(DynamicCoresetError::NegativeFrequency { level });
                        }
                        reps.push(Weighted::new(self.cell_center(id, level), count as u64));
                    }
                    return Ok((reps, level));
                }
                _ => continue,
            }
        }
        Err(DynamicCoresetError::Unrecoverable)
    }

    fn cell_center(&self, id: u64, level: u32) -> [f64; D] {
        let bits = (self.side_bits - level) as u64;
        let mask = if bits >= 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        let half = ((1u64 << level) - 1) as f64 / 2.0;
        let mut out = [0.0f64; D];
        for (j, slot) in out.iter_mut().enumerate() {
            let c = (id >> (j as u64 * bits)) & mask;
            *slot = (c << level) as f64 + half;
        }
        out
    }

    /// Storage in machine words — `Θ(s·log Δ)`, no randomness anywhere.
    pub fn space_words(&self) -> usize {
        self.levels.iter().map(|l| l.words()).sum::<usize>() + 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcz_metric::total_weight;

    #[test]
    fn deterministic_recovery_of_small_sets() {
        let mut dc = DeterministicDynamicCoreset::<2>::new(8, 16);
        let pts: Vec<[u64; 2]> = (0..10).map(|i| [i * 11 % 256, i * 29 % 256]).collect();
        for p in &pts {
            dc.insert(p);
        }
        let (reps, level) = dc.coreset().expect("certain recovery");
        assert_eq!(level, 0);
        assert_eq!(total_weight(&reps), 10);
        for p in &pts {
            let loc = [p[0] as f64, p[1] as f64];
            assert!(reps.iter().any(|r| r.point == loc), "missing {p:?}");
        }
    }

    #[test]
    fn insert_delete_churn_is_exact() {
        let mut dc = DeterministicDynamicCoreset::<2>::new(8, 8);
        for i in 0..200u64 {
            dc.insert(&[i % 256, (i * 7) % 256]);
        }
        for i in 0..195u64 {
            dc.delete(&[i % 256, (i * 7) % 256]);
        }
        let (reps, level) = dc.coreset().expect("recovery");
        assert_eq!(level, 0);
        assert_eq!(total_weight(&reps), 5);
    }

    #[test]
    fn escalates_to_coarser_grid_when_dense() {
        let mut dc = DeterministicDynamicCoreset::<2>::new(8, 4);
        for x in 0..8u64 {
            for y in 0..8u64 {
                dc.insert(&[x * 31, y * 31]);
            }
        }
        let (reps, level) = dc.coreset().expect("recovery");
        assert!(level > 0);
        assert_eq!(total_weight(&reps), 64);
    }

    #[test]
    fn identical_runs_identical_results() {
        // No seeds: two separately built instances agree exactly.
        let build = || {
            let mut dc = DeterministicDynamicCoreset::<1>::new(10, 8);
            for i in 0..500u64 {
                dc.insert(&[(i * 37) % 1024]);
            }
            for i in 0..490u64 {
                dc.delete(&[(i * 37) % 1024]);
            }
            dc.coreset().expect("recovery")
        };
        let (a, la) = build();
        let (b, lb) = build();
        assert_eq!(la, lb);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.point, y.point);
            assert_eq!(x.weight, y.weight);
        }
    }

    #[test]
    fn space_is_tiny_compared_to_randomized() {
        let det = DeterministicDynamicCoreset::<2>::new(10, 64).space_words();
        let rnd = crate::DynamicCoreset::<2>::new(10, 64, 0.01, 1).space_words();
        assert!(
            det * 20 < rnd,
            "deterministic {det} words should be far below randomized {rnd}"
        );
    }

    #[test]
    #[should_panic(expected = "side_bits")]
    fn large_universe_rejected() {
        let _ = DeterministicDynamicCoreset::<2>::new(16, 8);
    }
}
