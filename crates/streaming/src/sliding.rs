//! Sliding-window coreset: a reconstruction of the de Berg–Monemizadeh–
//! Zhong algorithm (ESA 2021, reference \[18\] of the paper), whose
//! `O((kz/ε^d)·log σ)` space Section 6 proves optimal.
//!
//! For every radius guess `ρ ∈ {ρ_min·2^i}` the structure maintains
//! *mini-ball clusters*: an anchor location plus the `z+1` newest window
//! points within `ε·ρ/4` of the anchor.  Keeping only the newest `z+1`
//! points per cluster is lossless for the k-center-with-z-outliers
//! objective: a mini-ball holding more than `z+1` unexpired points can
//! never be entirely outliers, so weights may be clamped at `z+1`; and if
//! any stored point of a cluster has expired, every unstored (older) point
//! of that cluster has expired too, so the stored survivors are exactly
//! the unexpired content.
//!
//! A query returns, for the smallest *reliable* guess with at most
//! `k(16/ε)^d + z` clusters (Lemma 6 packing: more clusters certify
//! `opt > ρ`), all stored unexpired points at unit weight.  If a guess
//! ever exceeds the cluster cap, the cluster expiring soonest is evicted
//! and the guess is marked unreliable until the evicted points would have
//! left the window anyway — their newest stamp plus `W`, after which the
//! guess's content is provably complete again.  (The newest evicted stamp
//! is at most the eviction time, so this recovers no later than the
//! conservative `eviction time + W` and can recover a full window
//! earlier.)

use std::collections::VecDeque;

use kcz_coreset::streaming_capacity;
use kcz_metric::{ColumnSet, MetricSpace, Precision, SpaceUsage, Weighted};

/// One mini-ball cluster of a radius guess.
#[derive(Debug, Clone)]
struct SwCluster<P> {
    anchor: P,
    /// `(arrival time, point)`, oldest first, at most `z+1` entries.
    pts: VecDeque<(u64, P)>,
}

/// One radius guess with its clusters.
#[derive(Debug)]
struct Guess<P> {
    rho: f64,
    clusters: Vec<SwCluster<P>>,
    /// Queries before this time must not trust the guess (an eviction
    /// removed points that may still be in the window).
    tainted_until: u64,
    /// Columnar mirror of the cluster *anchors*, in cluster order, scanned
    /// by the per-arrival absorb sweep.  A rebuildable cache (excluded
    /// from the word accounting): appended on cluster creation, kept in
    /// sync through `swap_remove` on eviction, dropped whenever `expire`
    /// removes a cluster and rebuilt on the next sweep.  `None` for
    /// metrics without columnar kernels.
    anchors: Option<ColumnSet>,
}

impl<P: Clone> Clone for Guess<P> {
    fn clone(&self) -> Self {
        Guess {
            rho: self.rho,
            clusters: self.clusters.clone(),
            tainted_until: self.tainted_until,
            // Rebuildable cache; the clone regenerates it lazily.
            anchors: None,
        }
    }
}

/// Result of a sliding-window query.
#[derive(Debug, Clone)]
pub struct SwQuery<P> {
    /// Unit-weight coreset points (window points, weights clamped at `z+1`
    /// per mini-ball by construction).
    pub coreset: Vec<Weighted<P>>,
    /// The radius guess the coreset was read from.
    pub rho: f64,
    /// Number of clusters at that guess.
    pub clusters: usize,
    /// How many finer guesses were skipped because they were tainted.
    pub tainted_skipped: usize,
}

/// Result of a [`SlidingWindowCoreset::stamped_query`]: the chosen
/// guess's stored window content with arrival stamps retained.
#[derive(Debug, Clone)]
pub struct SwStampedQuery<P> {
    /// `(arrival time, point)` pairs, oldest-first within each mini-ball,
    /// mini-balls in cluster order.  Weights are unit (clamped at `z+1`
    /// per mini-ball by construction, exactly as in [`SwQuery`]).
    pub points: Vec<(u64, P)>,
    /// The radius guess the content was read from.
    pub rho: f64,
    /// Number of clusters at that guess.
    pub clusters: usize,
    /// How many finer guesses were skipped because they were tainted.
    pub tainted_skipped: usize,
}

/// Sliding-window (ε,k,z)-coreset over the last `window` arrivals.
#[derive(Debug, Clone)]
pub struct SlidingWindowCoreset<P, M> {
    metric: M,
    z: u64,
    eps: f64,
    window: u64,
    time: u64,
    cap: u64,
    guesses: Vec<Guess<P>>,
    evictions: u64,
    peak_words: usize,
}

impl<P: Clone + SpaceUsage, M: MetricSpace<P>> SlidingWindowCoreset<P, M> {
    /// Creates the structure.  `rho_min..=rho_max` must bracket the
    /// optimal radius of every window that will be queried (they play the
    /// role of the spread bounds σ in the paper's analysis; the number of
    /// guesses is `log₂(rho_max/rho_min) + 1`).
    pub fn new(
        metric: M,
        k: usize,
        z: u64,
        eps: f64,
        window: u64,
        rho_min: f64,
        rho_max: f64,
    ) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(eps > 0.0 && eps <= 1.0, "ε must be in (0, 1]");
        assert!(window >= 1, "window must be at least 1");
        assert!(
            rho_min > 0.0 && rho_min <= rho_max,
            "need 0 < rho_min ≤ rho_max"
        );
        let d = metric.doubling_dim();
        let cap = streaming_capacity(k, z, eps, d);
        let mut guesses = Vec::new();
        let mut rho = rho_min;
        while rho < 2.0 * rho_max {
            guesses.push(Guess {
                rho,
                clusters: Vec::new(),
                tainted_until: 0,
                anchors: None,
            });
            rho *= 2.0;
        }
        SlidingWindowCoreset {
            metric,
            z,
            eps,
            window,
            time: 0,
            cap,
            guesses,
            evictions: 0,
            peak_words: 0,
        }
    }

    /// Number of radius guesses maintained (`Θ(log σ)`).
    pub fn num_guesses(&self) -> usize {
        self.guesses.len()
    }

    /// Arrival count so far (the clock).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Cap-overflow evictions performed (diagnostic; each taints one guess
    /// for one window length).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Drops expired points; returns `true` when a whole cluster vanished
    /// (the caller must then invalidate the anchor mirror).
    fn expire(cluster_list: &mut Vec<SwCluster<P>>, now: u64, window: u64) -> bool {
        for c in cluster_list.iter_mut() {
            while let Some(&(t, _)) = c.pts.front() {
                if t + window <= now {
                    c.pts.pop_front();
                } else {
                    break;
                }
            }
        }
        let before = cluster_list.len();
        cluster_list.retain(|c| !c.pts.is_empty());
        cluster_list.len() != before
    }

    /// Rebuilds the columnar anchor mirror of one guess from its cluster
    /// list (no-op for metrics without columnar kernels).
    fn rebuild_anchors(metric: &M, g: &mut Guess<P>) {
        if let Some(mut cols) = metric.build_columns(&[], Precision::F64) {
            for c in &g.clusters {
                metric.col_push(&mut cols, &c.anchor, 1);
            }
            g.anchors = Some(cols);
        }
    }

    /// Handles one arrival.
    pub fn insert(&mut self, p: P) {
        self.insert_at(p, self.time + 1);
    }

    /// Handles one arrival carrying an explicit clock reading: the point
    /// is stamped `now` and the structure's clock jumps there (expiring
    /// whatever the jump leaves behind).  Stamps must be non-decreasing;
    /// equal stamps are legal — co-located copies of one weighted
    /// arrival share a slot.  This is the replay entry for callers that
    /// own the clock (the engine's window backend re-streams per-shard
    /// suffixes of a *global* arrival order, so a shard's stamps have
    /// gaps).  [`insert`](Self::insert) is `insert_at` at `time + 1`.
    pub fn insert_at(&mut self, p: P, now: u64) {
        assert!(now >= self.time, "arrival stamps must be non-decreasing");
        self.time = now;
        let keep = self.z as usize + 1;
        for g in &mut self.guesses {
            if Self::expire(&mut g.clusters, now, self.window) {
                g.anchors = None;
            }
            if g.anchors.is_none() {
                Self::rebuild_anchors(&self.metric, g);
            }
            let absorb = self.eps * g.rho / 4.0;
            // First anchor within ε·ρ/4 — the blocked columnar scan when
            // the metric provides one (first match = smallest index, same
            // as the AoS sweep; array metrics are symmetric, so scanning
            // d(p, anchor) matches the AoS d(anchor, p) bit-for-bit), the
            // per-anchor pruned predicate otherwise.
            let hit = match &g.anchors {
                Some(cols) => self.metric.col_find_within(cols, &p, absorb),
                None => g
                    .clusters
                    .iter()
                    .position(|c| self.metric.within(&c.anchor, &p, absorb)),
            };
            if let Some(i) = hit {
                let c = &mut g.clusters[i];
                c.pts.push_back((now, p.clone()));
                if c.pts.len() > keep {
                    c.pts.pop_front();
                }
            } else {
                let mut pts = VecDeque::with_capacity(1);
                pts.push_back((now, p.clone()));
                if let Some(cols) = g.anchors.as_mut() {
                    self.metric.col_push(cols, &p, 1);
                }
                g.clusters.push(SwCluster {
                    anchor: p.clone(),
                    pts,
                });
                if g.clusters.len() as u64 > self.cap {
                    // Packing bound violated ⇒ opt(window) > ρ right now.
                    // Evict the cluster that expires soonest and taint the
                    // guess until its points would have expired anyway.
                    let (victim, victim_back) = g
                        .clusters
                        .iter()
                        .enumerate()
                        .map(|(i, c)| (i, c.pts.back().map(|&(t, _)| t).unwrap_or(0)))
                        .min_by_key(|&(_, t)| t)
                        .expect("non-empty cluster list");
                    g.clusters.swap_remove(victim);
                    if let Some(cols) = g.anchors.as_mut() {
                        // Same swap-remove keeps the mirror in cluster order.
                        cols.swap_remove(victim);
                    }
                    // The evicted points all carry stamps ≤ `victim_back`,
                    // so they leave the window at `victim_back + W` — the
                    // guess is provably complete again then.  `now + W`
                    // would over-taint by up to `now − victim_back`
                    // arrivals and shunt queries to needlessly coarse
                    // guesses in the meantime.
                    g.tainted_until = g.tainted_until.max(victim_back + self.window);
                    self.evictions += 1;
                }
            }
        }
        self.peak_words = self.peak_words.max(self.space_words());
    }

    /// Advances the clock to `now` without an arrival (time-driven churn:
    /// the window slides because time passed elsewhere, e.g. arrivals
    /// landing on sibling shards of a sharded engine).  Expires every
    /// guess immediately, so a mini-ball whose stored points have all
    /// left the window is dropped rather than retained or rescanned.
    ///
    /// `now` earlier than the current clock is a no-op (the clock never
    /// moves backwards).
    pub fn advance_to(&mut self, now: u64) {
        if now <= self.time {
            return;
        }
        self.time = now;
        for g in &mut self.guesses {
            if Self::expire(&mut g.clusters, now, self.window) {
                g.anchors = None;
            }
        }
    }

    /// Expires every guess at the current clock and picks the finest
    /// reliable one: the smallest-`ρ` non-empty guess within the cluster
    /// cap and past its taint horizon, falling back to the finest tainted
    /// in-cap guess when none is reliable.  Returns the guess index and
    /// how many tainted guesses were passed over.
    ///
    /// Every guess is brought current here — including ones coarser than
    /// the selected answer — so a fully-expired mini-ball can never
    /// outlive its window in storage (`stored_points`/`space_words` count
    /// live content only).
    fn choose_guess(&mut self) -> Option<(usize, usize)> {
        let now = self.time;
        let window = self.window;
        let mut tainted_skipped = 0usize;
        let mut fallback: Option<usize> = None;
        let mut chosen: Option<usize> = None;
        for (i, g) in self.guesses.iter_mut().enumerate() {
            if Self::expire(&mut g.clusters, now, window) {
                g.anchors = None;
            }
            if g.clusters.is_empty() || chosen.is_some() {
                continue;
            }
            if (g.clusters.len() as u64) <= self.cap {
                if now >= g.tainted_until {
                    chosen = Some(i);
                } else {
                    tainted_skipped += 1;
                    fallback = fallback.or(Some(i));
                }
            }
        }
        chosen.or(fallback).map(|i| (i, tainted_skipped))
    }

    /// Queries the coreset for the current window.
    ///
    /// Returns `None` only when the window is empty.
    pub fn query(&mut self) -> Option<SwQuery<P>> {
        let (idx, tainted_skipped) = self.choose_guess()?;
        let g = &self.guesses[idx];
        let mut coreset = Vec::new();
        for c in &g.clusters {
            for (_, p) in &c.pts {
                coreset.push(Weighted::unit(p.clone()));
            }
        }
        Some(SwQuery {
            coreset,
            rho: g.rho,
            clusters: g.clusters.len(),
            tainted_skipped,
        })
    }

    /// [`query`](Self::query) keeping each point's arrival stamp: the
    /// same guess selection, but the coreset is returned as
    /// `(arrival, point)` pairs (oldest-first within each mini-ball,
    /// mini-balls in cluster order).  This is the read path for callers
    /// that need to re-stream the window content in arrival order — the
    /// engine's window backend sorts these stamps to rebuild a
    /// deterministic summary of the unexpired suffix.
    pub fn stamped_query(&mut self) -> Option<SwStampedQuery<P>> {
        let (idx, tainted_skipped) = self.choose_guess()?;
        let g = &self.guesses[idx];
        let mut points = Vec::new();
        for c in &g.clusters {
            for (t, p) in &c.pts {
                points.push((*t, p.clone()));
            }
        }
        Some(SwStampedQuery {
            points,
            rho: g.rho,
            clusters: g.clusters.len(),
            tainted_skipped,
        })
    }

    /// The points of the current window still stored anywhere (dedup not
    /// applied; diagnostic).
    pub fn stored_points(&self) -> usize {
        self.guesses
            .iter()
            .map(|g| g.clusters.iter().map(|c| c.pts.len()).sum::<usize>())
            .sum()
    }

    /// Current storage in machine words.
    pub fn space_words(&self) -> usize {
        let mut words = 6;
        for g in &self.guesses {
            words += 2;
            for c in &g.clusters {
                words += c.anchor.words() + 1;
                words += c.pts.iter().map(|(_, p)| p.words() + 1).sum::<usize>();
            }
        }
        words
    }

    /// Peak storage observed.
    pub fn peak_words(&self) -> usize {
        self.peak_words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcz_metric::L2;

    fn drive(alg: &mut SlidingWindowCoreset<[f64; 2], L2>, pts: &[[f64; 2]]) {
        for p in pts {
            alg.insert(*p);
        }
    }

    #[test]
    fn window_contents_only() {
        let mut alg = SlidingWindowCoreset::new(L2, 1, 0, 1.0, 5, 0.1, 100.0);
        // 10 arrivals at distinct locations; window keeps the last 5.
        let pts: Vec<[f64; 2]> = (0..10).map(|i| [i as f64 * 10.0, 0.0]).collect();
        drive(&mut alg, &pts);
        let q = alg.query().expect("non-empty window");
        for w in &q.coreset {
            assert!(w.point[0] >= 50.0, "expired point {:?} leaked", w.point);
        }
    }

    #[test]
    fn keeps_newest_z_plus_one_per_ball() {
        let mut alg = SlidingWindowCoreset::new(L2, 1, 2, 1.0, 100, 0.1, 100.0);
        // 50 arrivals at the same location: each cluster stores ≤ z+1 = 3.
        for _ in 0..50 {
            alg.insert([1.0, 1.0]);
        }
        let q = alg.query().unwrap();
        assert!(q.coreset.len() <= 3, "stored {}", q.coreset.len());
    }

    #[test]
    fn outlier_clamping_preserves_decisions() {
        // A heavy cluster plus z distant stragglers: the coreset must
        // retain enough weight in the cluster to forbid discarding it.
        let z = 3u64;
        let mut alg = SlidingWindowCoreset::new(L2, 1, z, 1.0, 1000, 0.1, 10_000.0);
        for i in 0..40 {
            alg.insert([(i % 7) as f64 * 0.01, 0.0]);
        }
        for i in 0..3 {
            alg.insert([5000.0 + i as f64, 5000.0]);
        }
        let q = alg.query().unwrap();
        let near = q.coreset.iter().filter(|w| w.point[0] < 1.0).count() as u64;
        assert!(near > z, "cluster weight clamped too low: {near}");
    }

    #[test]
    fn space_bounded_by_guesses_times_cap() {
        let (k, z, eps) = (2usize, 4u64, 1.0f64);
        let mut alg = SlidingWindowCoreset::new(L2, k, z, eps, 200, 0.5, 512.0);
        let mut s = 1u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..2000 {
            alg.insert([next() * 300.0, next() * 300.0]);
        }
        let cap = kcz_coreset::streaming_capacity(k, z, eps, 2);
        let per_point_words = 3; // 2 coords + timestamp
        let bound =
            alg.num_guesses() * (cap as usize) * ((z as usize + 1) * per_point_words + 3) + 64;
        assert!(
            alg.peak_words() <= bound,
            "peak {} exceeds bound {bound}",
            alg.peak_words()
        );
    }

    #[test]
    fn query_prefers_finest_reliable_guess() {
        let mut alg = SlidingWindowCoreset::new(L2, 2, 0, 1.0, 50, 0.125, 1024.0);
        // Two tight clusters 100 apart: opt(k=2) ≈ 0.2, so a small guess
        // should win.
        for i in 0..30 {
            let x = (i % 5) as f64 * 0.05;
            alg.insert(if i % 2 == 0 {
                [x, 0.0]
            } else {
                [100.0 + x, 0.0]
            });
        }
        let q = alg.query().unwrap();
        assert!(q.rho <= 2.0, "chose needlessly coarse guess {}", q.rho);
    }

    #[test]
    fn empty_window_query_is_none() {
        let mut alg: SlidingWindowCoreset<[f64; 2], L2> =
            SlidingWindowCoreset::new(L2, 1, 0, 0.5, 3, 1.0, 10.0);
        assert!(alg.query().is_none());
        alg.insert([0.0, 0.0]);
        alg.insert([1.0, 0.0]);
        alg.insert([2.0, 0.0]);
        assert!(alg.query().is_some());
        // Push the window past all content with far-away arrivals, then
        // confirm old points are gone.
        for i in 0..3 {
            alg.insert([1000.0 + i as f64, 0.0]);
        }
        let q = alg.query().unwrap();
        assert!(q.coreset.iter().all(|w| w.point[0] >= 1000.0));
    }

    #[test]
    fn eviction_taints_then_recovers() {
        // k=1, eps=1, d=2 → cap = 16 + z. Flood with far-apart points at a
        // tiny guess to force evictions, then verify queries still answer.
        // cap = 16² = 256 clusters; 400 pairwise-far points within one
        // window overflow the smallest guesses.
        let mut alg = SlidingWindowCoreset::new(L2, 1, 0, 1.0, 10_000, 0.01, 10_000.0);
        for i in 0..400u64 {
            let a = i as f64;
            alg.insert([a * 97.0, (a * 13.0) % 701.0]);
        }
        assert!(alg.evictions() > 0, "expected cap overflow at tiny guesses");
        let q = alg.query().expect("window non-empty");
        assert!(!q.coreset.is_empty());
    }

    #[test]
    fn taint_clears_when_the_evicted_points_expire_not_a_window_after_eviction() {
        // One guess bracket so every insert hits the same fine guesses.
        // cap far-apart points fill the guess; point cap+1 triggers an
        // eviction whose victim holds only the stamp-1 point.  The guess
        // is complete again at `1 + W` — asserting a query between
        // `victim_back + W` and `eviction_time + W` trusts it pins the
        // corrected taint bound (the old `now + W` taint would skip it).
        let (k, z, eps, w) = (1usize, 0u64, 1.0f64, 10_000u64);
        let cap = kcz_coreset::streaming_capacity(k, z, eps, 2) as usize;
        let mut alg = SlidingWindowCoreset::new(L2, k, z, eps, w, 0.01, 0.02);
        for i in 0..=cap {
            alg.insert([i as f64 * 1e6, 0.0]);
        }
        assert_eq!(alg.evictions(), alg.num_guesses() as u64);
        // Jump to just before the eviction-time taint would clear: every
        // point with stamp ≤ cap has expired, so the guess holds exactly
        // the last arrival and its content is provably complete.
        alg.advance_to(w + cap as u64);
        let q = alg.query().expect("last arrival still in window");
        assert_eq!(
            q.tainted_skipped, 0,
            "guess still tainted past victim_back + W"
        );
        assert_eq!(q.coreset.len(), 1);
        assert_eq!(q.clusters, 1);
    }

    #[test]
    fn fully_expired_clusters_are_dropped_in_every_guess_not_just_the_chosen_one() {
        // One location, z = 2 ⇒ each guess stores the newest 3 stamps.
        // Advance past the oldest stored stamp's expiry without an
        // arrival: a query must expire *all* guesses, not stop at the
        // finest (which used to leave expired mini-ball content resident
        // in every coarser guess).
        let mut alg = SlidingWindowCoreset::new(L2, 1, 2, 1.0, 5, 0.1, 100.0);
        for _ in 0..5 {
            alg.insert([1.0, 1.0]);
        }
        let guesses = alg.num_guesses();
        assert_eq!(alg.stored_points(), 3 * guesses);
        alg.advance_to(8); // stamp 3 expires (3 + 5 ≤ 8); stamps 4, 5 live
        let q = alg.query().expect("stamps 4 and 5 still in window");
        assert_eq!(q.coreset.len(), 2);
        assert_eq!(
            alg.stored_points(),
            2 * guesses,
            "a coarser guess retained a point past its window"
        );
    }

    #[test]
    fn long_adversarial_stream_stays_within_the_space_bound_with_churn_and_queries() {
        // Bursts of pairwise-far points (forcing cap evictions at fine
        // guesses) interleaved with arrival-free clock jumps and queries.
        // Pins the documented space bound and that no stored point ever
        // outlives its window, on every guess, at every step.
        let (k, z, eps, w) = (1usize, 3u64, 1.0f64, 2048u64);
        let mut alg = SlidingWindowCoreset::new(L2, k, z, eps, w, 0.25, 4096.0);
        let mut s = 0x5EEDu64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for round in 0..300u64 {
            let burst = 1 + next() % 64;
            for _ in 0..burst {
                let r = next();
                // Far-apart adversarial placements plus occasional repeats.
                let p = if r % 5 == 0 {
                    [0.0, 0.0]
                } else {
                    [(r % 4096) as f64 * 31.0, ((r >> 12) % 4096) as f64 * 17.0]
                };
                alg.insert(p);
            }
            if round % 7 == 0 {
                alg.advance_to(alg.time() + next() % (w / 2));
            }
            if round % 3 == 0 {
                alg.query();
            }
            let now = alg.time();
            for g in &alg.guesses {
                for c in &g.clusters {
                    for &(t, _) in &c.pts {
                        assert!(t + w > now, "stored stamp {t} expired at clock {now}");
                    }
                }
            }
        }
        assert!(
            alg.evictions() > 0,
            "adversarial stream never overflowed a guess"
        );
        let cap = kcz_coreset::streaming_capacity(k, z, eps, 2);
        let per_point_words = 3; // 2 coords + timestamp
        let bound =
            alg.num_guesses() * (cap as usize) * ((z as usize + 1) * per_point_words + 3) + 64;
        assert!(
            alg.peak_words() <= bound,
            "peak {} exceeds bound {bound}",
            alg.peak_words()
        );
    }

    #[test]
    fn stamped_query_matches_query_and_keeps_live_stamps_only() {
        let mut alg = SlidingWindowCoreset::new(L2, 2, 1, 1.0, 20, 0.5, 512.0);
        for i in 0..50u64 {
            let x = (i % 9) as f64 * 2.0;
            alg.insert(if i % 2 == 0 {
                [x, 0.0]
            } else {
                [200.0 + x, 3.0]
            });
        }
        let stamped = alg.stamped_query().expect("window non-empty");
        let plain = alg.query().expect("window non-empty");
        assert_eq!(stamped.rho.to_bits(), plain.rho.to_bits());
        assert_eq!(stamped.clusters, plain.clusters);
        assert_eq!(stamped.points.len(), plain.coreset.len());
        let now = alg.time();
        for (i, (t, p)) in stamped.points.iter().enumerate() {
            assert!(t + 20 > now, "stamp {t} expired");
            assert_eq!(*p, plain.coreset[i].point);
        }
    }
}
