//! Sliding-window coreset: a reconstruction of the de Berg–Monemizadeh–
//! Zhong algorithm (ESA 2021, reference \[18\] of the paper), whose
//! `O((kz/ε^d)·log σ)` space Section 6 proves optimal.
//!
//! For every radius guess `ρ ∈ {ρ_min·2^i}` the structure maintains
//! *mini-ball clusters*: an anchor location plus the `z+1` newest window
//! points within `ε·ρ/4` of the anchor.  Keeping only the newest `z+1`
//! points per cluster is lossless for the k-center-with-z-outliers
//! objective: a mini-ball holding more than `z+1` unexpired points can
//! never be entirely outliers, so weights may be clamped at `z+1`; and if
//! any stored point of a cluster has expired, every unstored (older) point
//! of that cluster has expired too, so the stored survivors are exactly
//! the unexpired content.
//!
//! A query returns, for the smallest *reliable* guess with at most
//! `k(16/ε)^d + z` clusters (Lemma 6 packing: more clusters certify
//! `opt > ρ`), all stored unexpired points at unit weight.  If a guess
//! ever exceeds the cluster cap, the cluster expiring soonest is evicted
//! and the guess is marked unreliable until the evicted points would have
//! left the window anyway (`eviction time + W`), after which its content
//! is provably complete again.

use std::collections::VecDeque;

use kcz_coreset::streaming_capacity;
use kcz_metric::{ColumnSet, MetricSpace, Precision, SpaceUsage, Weighted};

/// One mini-ball cluster of a radius guess.
#[derive(Debug, Clone)]
struct SwCluster<P> {
    anchor: P,
    /// `(arrival time, point)`, oldest first, at most `z+1` entries.
    pts: VecDeque<(u64, P)>,
}

/// One radius guess with its clusters.
#[derive(Debug)]
struct Guess<P> {
    rho: f64,
    clusters: Vec<SwCluster<P>>,
    /// Queries before this time must not trust the guess (an eviction
    /// removed points that may still be in the window).
    tainted_until: u64,
    /// Columnar mirror of the cluster *anchors*, in cluster order, scanned
    /// by the per-arrival absorb sweep.  A rebuildable cache (excluded
    /// from the word accounting): appended on cluster creation, kept in
    /// sync through `swap_remove` on eviction, dropped whenever `expire`
    /// removes a cluster and rebuilt on the next sweep.  `None` for
    /// metrics without columnar kernels.
    anchors: Option<ColumnSet>,
}

impl<P: Clone> Clone for Guess<P> {
    fn clone(&self) -> Self {
        Guess {
            rho: self.rho,
            clusters: self.clusters.clone(),
            tainted_until: self.tainted_until,
            // Rebuildable cache; the clone regenerates it lazily.
            anchors: None,
        }
    }
}

/// Result of a sliding-window query.
#[derive(Debug, Clone)]
pub struct SwQuery<P> {
    /// Unit-weight coreset points (window points, weights clamped at `z+1`
    /// per mini-ball by construction).
    pub coreset: Vec<Weighted<P>>,
    /// The radius guess the coreset was read from.
    pub rho: f64,
    /// Number of clusters at that guess.
    pub clusters: usize,
    /// How many finer guesses were skipped because they were tainted.
    pub tainted_skipped: usize,
}

/// Sliding-window (ε,k,z)-coreset over the last `window` arrivals.
#[derive(Debug, Clone)]
pub struct SlidingWindowCoreset<P, M> {
    metric: M,
    z: u64,
    eps: f64,
    window: u64,
    time: u64,
    cap: u64,
    guesses: Vec<Guess<P>>,
    evictions: u64,
    peak_words: usize,
}

impl<P: Clone + SpaceUsage, M: MetricSpace<P>> SlidingWindowCoreset<P, M> {
    /// Creates the structure.  `rho_min..=rho_max` must bracket the
    /// optimal radius of every window that will be queried (they play the
    /// role of the spread bounds σ in the paper's analysis; the number of
    /// guesses is `log₂(rho_max/rho_min) + 1`).
    pub fn new(
        metric: M,
        k: usize,
        z: u64,
        eps: f64,
        window: u64,
        rho_min: f64,
        rho_max: f64,
    ) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(eps > 0.0 && eps <= 1.0, "ε must be in (0, 1]");
        assert!(window >= 1, "window must be at least 1");
        assert!(
            rho_min > 0.0 && rho_min <= rho_max,
            "need 0 < rho_min ≤ rho_max"
        );
        let d = metric.doubling_dim();
        let cap = streaming_capacity(k, z, eps, d);
        let mut guesses = Vec::new();
        let mut rho = rho_min;
        while rho < 2.0 * rho_max {
            guesses.push(Guess {
                rho,
                clusters: Vec::new(),
                tainted_until: 0,
                anchors: None,
            });
            rho *= 2.0;
        }
        SlidingWindowCoreset {
            metric,
            z,
            eps,
            window,
            time: 0,
            cap,
            guesses,
            evictions: 0,
            peak_words: 0,
        }
    }

    /// Number of radius guesses maintained (`Θ(log σ)`).
    pub fn num_guesses(&self) -> usize {
        self.guesses.len()
    }

    /// Arrival count so far (the clock).
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Cap-overflow evictions performed (diagnostic; each taints one guess
    /// for one window length).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Drops expired points; returns `true` when a whole cluster vanished
    /// (the caller must then invalidate the anchor mirror).
    fn expire(cluster_list: &mut Vec<SwCluster<P>>, now: u64, window: u64) -> bool {
        for c in cluster_list.iter_mut() {
            while let Some(&(t, _)) = c.pts.front() {
                if t + window <= now {
                    c.pts.pop_front();
                } else {
                    break;
                }
            }
        }
        let before = cluster_list.len();
        cluster_list.retain(|c| !c.pts.is_empty());
        cluster_list.len() != before
    }

    /// Rebuilds the columnar anchor mirror of one guess from its cluster
    /// list (no-op for metrics without columnar kernels).
    fn rebuild_anchors(metric: &M, g: &mut Guess<P>) {
        if let Some(mut cols) = metric.build_columns(&[], Precision::F64) {
            for c in &g.clusters {
                metric.col_push(&mut cols, &c.anchor, 1);
            }
            g.anchors = Some(cols);
        }
    }

    /// Handles one arrival.
    pub fn insert(&mut self, p: P) {
        self.time += 1;
        let now = self.time;
        let keep = self.z as usize + 1;
        for g in &mut self.guesses {
            if Self::expire(&mut g.clusters, now, self.window) {
                g.anchors = None;
            }
            if g.anchors.is_none() {
                Self::rebuild_anchors(&self.metric, g);
            }
            let absorb = self.eps * g.rho / 4.0;
            // First anchor within ε·ρ/4 — the blocked columnar scan when
            // the metric provides one (first match = smallest index, same
            // as the AoS sweep; array metrics are symmetric, so scanning
            // d(p, anchor) matches the AoS d(anchor, p) bit-for-bit), the
            // per-anchor pruned predicate otherwise.
            let hit = match &g.anchors {
                Some(cols) => self.metric.col_find_within(cols, &p, absorb),
                None => g
                    .clusters
                    .iter()
                    .position(|c| self.metric.within(&c.anchor, &p, absorb)),
            };
            if let Some(i) = hit {
                let c = &mut g.clusters[i];
                c.pts.push_back((now, p.clone()));
                if c.pts.len() > keep {
                    c.pts.pop_front();
                }
            } else {
                let mut pts = VecDeque::with_capacity(1);
                pts.push_back((now, p.clone()));
                if let Some(cols) = g.anchors.as_mut() {
                    self.metric.col_push(cols, &p, 1);
                }
                g.clusters.push(SwCluster {
                    anchor: p.clone(),
                    pts,
                });
                if g.clusters.len() as u64 > self.cap {
                    // Packing bound violated ⇒ opt(window) > ρ right now.
                    // Evict the cluster that expires soonest and taint the
                    // guess until its points would have expired anyway.
                    let victim = g
                        .clusters
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, c)| c.pts.back().map(|&(t, _)| t).unwrap_or(0))
                        .map(|(i, _)| i)
                        .expect("non-empty cluster list");
                    g.clusters.swap_remove(victim);
                    if let Some(cols) = g.anchors.as_mut() {
                        // Same swap-remove keeps the mirror in cluster order.
                        cols.swap_remove(victim);
                    }
                    g.tainted_until = now + self.window;
                    self.evictions += 1;
                }
            }
        }
        self.peak_words = self.peak_words.max(self.space_words());
    }

    /// Queries the coreset for the current window.
    ///
    /// Returns `None` only when the window is empty.
    pub fn query(&mut self) -> Option<SwQuery<P>> {
        let now = self.time;
        let window = self.window;
        let mut tainted_skipped = 0usize;
        let mut fallback: Option<usize> = None;
        let mut chosen: Option<usize> = None;
        for (i, g) in self.guesses.iter_mut().enumerate() {
            if Self::expire(&mut g.clusters, now, window) {
                g.anchors = None;
            }
            if g.clusters.is_empty() {
                continue;
            }
            if (g.clusters.len() as u64) <= self.cap {
                if now >= g.tainted_until {
                    chosen = Some(i);
                    break;
                }
                tainted_skipped += 1;
                fallback = fallback.or(Some(i));
            }
        }
        let idx = chosen.or(fallback)?;
        let g = &self.guesses[idx];
        let mut coreset = Vec::new();
        for c in &g.clusters {
            for (_, p) in &c.pts {
                coreset.push(Weighted::unit(p.clone()));
            }
        }
        Some(SwQuery {
            coreset,
            rho: g.rho,
            clusters: g.clusters.len(),
            tainted_skipped,
        })
    }

    /// The points of the current window still stored anywhere (dedup not
    /// applied; diagnostic).
    pub fn stored_points(&self) -> usize {
        self.guesses
            .iter()
            .map(|g| g.clusters.iter().map(|c| c.pts.len()).sum::<usize>())
            .sum()
    }

    /// Current storage in machine words.
    pub fn space_words(&self) -> usize {
        let mut words = 6;
        for g in &self.guesses {
            words += 2;
            for c in &g.clusters {
                words += c.anchor.words() + 1;
                words += c.pts.iter().map(|(_, p)| p.words() + 1).sum::<usize>();
            }
        }
        words
    }

    /// Peak storage observed.
    pub fn peak_words(&self) -> usize {
        self.peak_words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcz_metric::L2;

    fn drive(alg: &mut SlidingWindowCoreset<[f64; 2], L2>, pts: &[[f64; 2]]) {
        for p in pts {
            alg.insert(*p);
        }
    }

    #[test]
    fn window_contents_only() {
        let mut alg = SlidingWindowCoreset::new(L2, 1, 0, 1.0, 5, 0.1, 100.0);
        // 10 arrivals at distinct locations; window keeps the last 5.
        let pts: Vec<[f64; 2]> = (0..10).map(|i| [i as f64 * 10.0, 0.0]).collect();
        drive(&mut alg, &pts);
        let q = alg.query().expect("non-empty window");
        for w in &q.coreset {
            assert!(w.point[0] >= 50.0, "expired point {:?} leaked", w.point);
        }
    }

    #[test]
    fn keeps_newest_z_plus_one_per_ball() {
        let mut alg = SlidingWindowCoreset::new(L2, 1, 2, 1.0, 100, 0.1, 100.0);
        // 50 arrivals at the same location: each cluster stores ≤ z+1 = 3.
        for _ in 0..50 {
            alg.insert([1.0, 1.0]);
        }
        let q = alg.query().unwrap();
        assert!(q.coreset.len() <= 3, "stored {}", q.coreset.len());
    }

    #[test]
    fn outlier_clamping_preserves_decisions() {
        // A heavy cluster plus z distant stragglers: the coreset must
        // retain enough weight in the cluster to forbid discarding it.
        let z = 3u64;
        let mut alg = SlidingWindowCoreset::new(L2, 1, z, 1.0, 1000, 0.1, 10_000.0);
        for i in 0..40 {
            alg.insert([(i % 7) as f64 * 0.01, 0.0]);
        }
        for i in 0..3 {
            alg.insert([5000.0 + i as f64, 5000.0]);
        }
        let q = alg.query().unwrap();
        let near = q.coreset.iter().filter(|w| w.point[0] < 1.0).count() as u64;
        assert!(near > z, "cluster weight clamped too low: {near}");
    }

    #[test]
    fn space_bounded_by_guesses_times_cap() {
        let (k, z, eps) = (2usize, 4u64, 1.0f64);
        let mut alg = SlidingWindowCoreset::new(L2, k, z, eps, 200, 0.5, 512.0);
        let mut s = 1u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..2000 {
            alg.insert([next() * 300.0, next() * 300.0]);
        }
        let cap = kcz_coreset::streaming_capacity(k, z, eps, 2);
        let per_point_words = 3; // 2 coords + timestamp
        let bound =
            alg.num_guesses() * (cap as usize) * ((z as usize + 1) * per_point_words + 3) + 64;
        assert!(
            alg.peak_words() <= bound,
            "peak {} exceeds bound {bound}",
            alg.peak_words()
        );
    }

    #[test]
    fn query_prefers_finest_reliable_guess() {
        let mut alg = SlidingWindowCoreset::new(L2, 2, 0, 1.0, 50, 0.125, 1024.0);
        // Two tight clusters 100 apart: opt(k=2) ≈ 0.2, so a small guess
        // should win.
        for i in 0..30 {
            let x = (i % 5) as f64 * 0.05;
            alg.insert(if i % 2 == 0 {
                [x, 0.0]
            } else {
                [100.0 + x, 0.0]
            });
        }
        let q = alg.query().unwrap();
        assert!(q.rho <= 2.0, "chose needlessly coarse guess {}", q.rho);
    }

    #[test]
    fn empty_window_query_is_none() {
        let mut alg: SlidingWindowCoreset<[f64; 2], L2> =
            SlidingWindowCoreset::new(L2, 1, 0, 0.5, 3, 1.0, 10.0);
        assert!(alg.query().is_none());
        alg.insert([0.0, 0.0]);
        alg.insert([1.0, 0.0]);
        alg.insert([2.0, 0.0]);
        assert!(alg.query().is_some());
        // Push the window past all content with far-away arrivals, then
        // confirm old points are gone.
        for i in 0..3 {
            alg.insert([1000.0 + i as f64, 0.0]);
        }
        let q = alg.query().unwrap();
        assert!(q.coreset.iter().all(|w| w.point[0] >= 1000.0));
    }

    #[test]
    fn eviction_taints_then_recovers() {
        // k=1, eps=1, d=2 → cap = 16 + z. Flood with far-apart points at a
        // tiny guess to force evictions, then verify queries still answer.
        // cap = 16² = 256 clusters; 400 pairwise-far points within one
        // window overflow the smallest guesses.
        let mut alg = SlidingWindowCoreset::new(L2, 1, 0, 1.0, 10_000, 0.01, 10_000.0);
        for i in 0..400u64 {
            let a = i as f64;
            alg.insert([a * 97.0, (a * 13.0) % 701.0]);
        }
        assert!(alg.evictions() > 0, "expected cap overflow at tiny guesses");
        let q = alg.query().expect("window non-empty");
        assert!(!q.coreset.is_empty());
    }
}
