//! Streaming coresets for k-center with outliers.
//!
//! Three models from the paper:
//!
//! * **insertion-only** (Section 4.3, Algorithm 3) — a deterministic 1-pass
//!   structure maintaining an (ε,k,z)-coreset in the optimal
//!   `O(k/ε^d + z)` space ([`insertion::InsertionOnlyCoreset`]); the
//!   underlying radius-doubling engine is [`insertion::DoublingCoreset`],
//!   which also powers the baselines of [`baselines`];
//! * **fully dynamic** (Section 5, Algorithm 5) — inserts *and* deletes of
//!   points from the discrete universe `[Δ]^d`, via `⌈log Δ⌉` nested grids
//!   carrying s-sparse-recovery and F₀ sketches
//!   ([`dynamic::DynamicCoreset`]);
//! * **sliding window** — a reconstruction of the de Berg–Monemizadeh–Zhong
//!   (ESA 2021) algorithm whose `O((kz/ε^d)·log σ)` space Section 6 proves
//!   optimal ([`sliding::SlidingWindowCoreset`]).

#![warn(missing_docs)]

pub mod baselines;
pub mod dynamic;
pub mod dynamic_det;
pub mod dynamic_solver;
pub mod insertion;
pub mod sliding;

pub use dynamic::{DynamicCoreset, DynamicCoresetError};
pub use dynamic_det::DeterministicDynamicCoreset;
pub use dynamic_solver::{DynamicKCenter, DynamicSolution};
pub use insertion::{DoublingCoreset, InsertionOnlyCoreset};
pub use sliding::{SlidingWindowCoreset, SwQuery, SwStampedQuery};
