//! Algorithm 3: the space-optimal insertion-only streaming coreset.
//!
//! The structure keeps a lower bound `r ≤ opt_{k,z}(P(t))` and a weighted
//! representative set `P*`.  An arriving point is absorbed by a
//! representative within `a·r` of it (the paper uses `a = ε/2`); otherwise
//! it becomes a new representative.  Once `|P*|` reaches the capacity
//! `k(16/ε)^d + z`, the packing bound (Lemma 6) certifies `2r ≤ opt`, so
//! `r` doubles and `UpdateCoreset` (Algorithm 4) re-clusters at the new
//! granularity.  Lemma 16 bounds the accumulated drift of any input point
//! to its representative by `2a·r = ε·r ≤ ε·opt`, making `P*` an
//! (ε,k,z)-mini-ball covering at all times (Lemma 17, Theorem 18).
//!
//! [`DoublingCoreset`] exposes the absorb factor and the capacity as
//! parameters; the baselines in [`crate::baselines`] are the same engine
//! with different settings, which is exactly how they differ in the
//! literature (see `DESIGN.md`).

use kcz_coreset::{streaming_capacity, update_coreset, MergeableSummary};
use kcz_metric::{ColumnSet, MetricSpace, Precision, SpaceUsage, Weighted, F32_EPS_BUDGET};

/// Radius-doubling streaming engine (Algorithm 3 generalized over the
/// absorb factor `a` and the capacity threshold).
#[derive(Debug)]
pub struct DoublingCoreset<P, M> {
    metric: M,
    k: usize,
    z: u64,
    absorb: f64,
    capacity: u64,
    r: f64,
    reps: Vec<Weighted<P>>,
    n_seen: u64,
    rebuilds: u64,
    peak_words: usize,
    /// Drift guarantee in units of `a·r`: 2 for a pure stream (Lemma 16),
    /// +1 per merge generation (Lemma 5 composition; see [`Self::merge`]).
    drift_factor: f64,
    /// Lane precision of the columnar absorb mirror.  [`Precision::F32`]
    /// trades exactness of the absorb test for vector width; everything
    /// published (representative points, weights, `r`) stays f64, and
    /// [`Self::effective_eps`] folds [`F32_EPS_BUDGET`] into the
    /// guarantee.
    precision: Precision,
    /// Whether `metric` supplies columnar kernels at all.
    col_support: bool,
    /// Columnar mirror of the representative *points*, kept in sync with
    /// `reps` (appended on absorb-miss, rebuilt after re-clusters and
    /// merges) and scanned by the absorb test.  A redundant transposed
    /// cache of `reps` — deliberately excluded from the word accounting,
    /// which counts logical summary content.  Its weight lane is a
    /// build-time snapshot; absorb decisions never read it (weights live
    /// in `reps`).  `None` when the metric has no columnar kernels or on
    /// a fresh clone; rebuilt lazily on the next insert.
    mirror: Option<ColumnSet>,
}

impl<P: Clone, M: Clone> Clone for DoublingCoreset<P, M> {
    fn clone(&self) -> Self {
        // The mirror is a rebuildable cache: cloning without it keeps the
        // publish path's transient shard clones cheap; a clone that goes
        // on ingesting rebuilds it on the first insert.
        DoublingCoreset {
            metric: self.metric.clone(),
            k: self.k,
            z: self.z,
            absorb: self.absorb,
            capacity: self.capacity,
            r: self.r,
            reps: self.reps.clone(),
            n_seen: self.n_seen,
            rebuilds: self.rebuilds,
            peak_words: self.peak_words,
            drift_factor: self.drift_factor,
            precision: self.precision,
            col_support: self.col_support,
            mirror: None,
        }
    }
}

impl<P: Clone + SpaceUsage, M: MetricSpace<P>> DoublingCoreset<P, M> {
    /// Creates the engine.  `absorb` is the factor `a` multiplying `r` in
    /// the absorption test; `capacity` is the re-cluster threshold and must
    /// exceed `k + z + 1` so the initial radius can be established.
    pub fn new(metric: M, k: usize, z: u64, absorb: f64, capacity: u64) -> Self {
        Self::with_precision(metric, k, z, absorb, capacity, Precision::F64)
    }

    /// [`Self::new`] with an explicit lane precision for the columnar
    /// absorb mirror (see the `precision` field docs; [`Precision::F32`]
    /// widens [`Self::effective_eps`] by [`F32_EPS_BUDGET`]).
    pub fn with_precision(
        metric: M,
        k: usize,
        z: u64,
        absorb: f64,
        capacity: u64,
        precision: Precision,
    ) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(absorb > 0.0, "absorb factor must be positive");
        assert!(
            capacity > k as u64 + z + 1,
            "capacity {capacity} must exceed k + z + 1 = {}",
            k as u64 + z + 1
        );
        let col_support = metric.build_columns_weighted(&[], precision).is_some();
        DoublingCoreset {
            metric,
            k,
            z,
            absorb,
            capacity,
            r: 0.0,
            reps: Vec::new(),
            n_seen: 0,
            rebuilds: 0,
            peak_words: 0,
            drift_factor: 2.0,
            precision,
            col_support,
            mirror: None,
        }
    }

    /// Rebuilds the columnar mirror from the current representatives
    /// (no-op for metrics without columnar kernels).
    fn rebuild_mirror(&mut self) {
        if self.col_support {
            self.mirror = self
                .metric
                .build_columns_weighted(&self.reps, self.precision);
        }
    }

    /// Merges another summary (built with the same parameters) into this
    /// one — distributed/sharded stream ingestion via the union property
    /// (Lemma 4) plus one recompression (Lemma 5).
    ///
    /// Each merge generation adds one `a·r` term to the drift bound
    /// (mirroring the `(1+ε)^R − 1` composition of Theorem 35), which
    /// [`Self::drift_bound`] tracks.  Merging with an empty side is a
    /// union with ∅ — content and drift are both unchanged, so sharded
    /// engines with idle shards pay no spurious ε′ widening.
    pub fn merge(&mut self, other: DoublingCoreset<P, M>) {
        assert!(
            self.k == other.k
                && self.z == other.z
                && self.absorb == other.absorb
                && self.capacity == other.capacity
                && self.precision == other.precision,
            "merge requires identical (k, z, absorb, capacity, precision) parameters"
        );
        // Metrics of the same type can still disagree on the one
        // observable parameter (doubling dimension, e.g. differently
        // configured grid metrics); the capacity arithmetic assumes it
        // matches.
        assert!(
            kcz_coreset::merge::compatible_metrics(&self.metric, &other.metric),
            "merge requires metrics of the same doubling dimension"
        );
        if other.n_seen == 0 {
            return;
        }
        if self.n_seen == 0 {
            let peak = self.peak_words.max(other.peak_words);
            *self = other;
            self.peak_words = peak.max(self.space_words());
            return;
        }
        self.n_seen = self.n_seen.saturating_add(other.n_seen);
        self.r = self.r.max(other.r);
        self.drift_factor = self.drift_factor.max(other.drift_factor) + 1.0;
        self.reps.extend(other.reps);
        if self.r > 0.0 {
            // Re-establish the mini-ball granularity at the merged radius.
            self.reps = update_coreset(&self.metric, &self.reps, self.absorb * self.r);
        } else {
            // Both sides pre-radius: merge exact duplicates only.
            self.reps = update_coreset(&self.metric, &self.reps, 0.0);
            if self.reps.len() as u64 > self.k as u64 + self.z {
                if let Some(min) = self.min_pairwise() {
                    self.r = min / 2.0;
                }
            }
        }
        while self.r > 0.0 && self.reps.len() as u64 >= self.capacity {
            self.r *= 2.0;
            self.reps = update_coreset(&self.metric, &self.reps, self.absorb * self.r);
            self.rebuilds += 1;
        }
        // The representative set was restructured wholesale; drop the
        // columnar mirror and let the next insert rebuild it.
        self.mirror = None;
        self.peak_words = self.peak_words.max(self.space_words());
    }

    /// Handles the arrival of one point (`HandleArrival` in Algorithm 3).
    pub fn insert(&mut self, p: P) {
        self.insert_weighted(p, 1);
    }

    /// Handles the arrival of a point of weight `w` (the paper's weighted
    /// formulation; equivalent to `w` co-located unit arrivals).
    pub fn insert_weighted(&mut self, p: P, w: u64) {
        assert!(w > 0, "weights must be positive integers");
        // Saturating like the representative weights: a stream that
        // exhausts u64 weight pins the counter instead of overflowing.
        self.n_seen = self.n_seen.saturating_add(w);
        let threshold = self.absorb * self.r;
        if self.col_support && self.mirror.is_none() {
            self.rebuild_mirror();
        }
        // Line 1–2: absorb into a representative within a·r — one batched
        // find-first-within kernel over the representative set (the
        // blocked columnar scan when the metric provides one, the AoS
        // kernel otherwise; deferred sqrt, early exit on the first hit).
        // Weights live in `reps`, so the hit only touches the AoS side.
        let hit = match &self.mirror {
            Some(cols) => self.metric.col_find_within(cols, &p, threshold),
            None => self.metric.find_within_weighted(&p, &self.reps, threshold),
        };
        if let Some(i) = hit {
            self.reps[i].weight = self.reps[i].weight.saturating_add(w);
        } else {
            // Line 4: new representative — appended to both layouts.
            if let Some(cols) = self.mirror.as_mut() {
                self.metric.col_push(cols, &p, w);
            }
            self.reps.push(Weighted::new(p, w));
            // Line 5–7: establish the initial radius from the minimum
            // pairwise distance once k+z+1 distinct points are present.
            if self.r == 0.0 && self.reps.len() as u64 > self.k as u64 + self.z {
                if let Some(min) = self.min_pairwise() {
                    self.r = min / 2.0;
                }
            }
            // Line 8–10: double r and re-cluster until under capacity.
            let before = self.rebuilds;
            while self.r > 0.0 && self.reps.len() as u64 >= self.capacity {
                self.r *= 2.0;
                self.reps = update_coreset(&self.metric, &self.reps, self.absorb * self.r);
                self.rebuilds += 1;
            }
            if self.rebuilds != before {
                // Re-cluster replaced the representatives; invalidate the
                // mirror (rebuilt lazily on the next insert).
                self.mirror = None;
            }
        }
        self.peak_words = self.peak_words.max(self.space_words());
    }

    /// Smallest positive pairwise distance among the representatives,
    /// computed with one batched row kernel per point directly over the
    /// weighted array (no per-call clone of every representative).
    /// Called only at radius establishment (line 5–7) and on pre-radius
    /// merges.
    fn min_pairwise(&self) -> Option<f64> {
        kcz_metric::stats::min_pairwise_distance_weighted(&self.metric, &self.reps)
    }

    /// The current coreset `P*`.
    pub fn coreset(&self) -> &[Weighted<P>] {
        &self.reps
    }

    /// Current lower bound `r ≤ opt_{k,z}(P(t))`.
    pub fn radius_bound(&self) -> f64 {
        self.r
    }

    /// Points consumed so far.
    pub fn points_seen(&self) -> u64 {
        self.n_seen
    }

    /// Number of doubling re-clusters performed.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Drift guarantee: every stream point has a representative within
    /// `drift_factor·a·r` of it — `2a·r` for a pure stream (Lemma 16;
    /// with `a = ε/2` that is `ε·r`), plus `a·r` per merge generation.
    pub fn drift_bound(&self) -> f64 {
        self.drift_factor * self.absorb * self.r
    }

    /// The ε′ this summary currently guarantees: with `r ≤ opt` the
    /// covering drift is ≤ `drift_factor·a·r ≤ (drift_factor·a)·opt`.
    /// For a pure stream with `a = ε/2` this is exactly `ε`; each merge
    /// generation widens it by `a`.  In [`Precision::F32`] mode the
    /// absorb test itself is approximate — a point at true distance up to
    /// `(1 + F32_EPS_BUDGET)·a·r` can be absorbed — so the budget is
    /// folded in multiplicatively here and certified empirically by the
    /// conformance harness (which re-measures every radius in f64).
    pub fn effective_eps(&self) -> f64 {
        match self.precision {
            Precision::F64 => self.drift_factor * self.absorb,
            Precision::F32 => self.drift_factor * self.absorb * (1.0 + F32_EPS_BUDGET),
        }
    }

    /// Lane precision of the columnar absorb mirror.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Current storage in machine words.  Counts the logical summary
    /// content (representatives + scalars); the columnar mirror is a
    /// redundant transposed cache of `reps` and is excluded.
    pub fn space_words(&self) -> usize {
        self.reps.words() + 6
    }

    /// Maximum storage observed over the stream so far.
    pub fn peak_words(&self) -> usize {
        self.peak_words
    }
}

impl<P: Clone + SpaceUsage, M: MetricSpace<P>> MergeableSummary for DoublingCoreset<P, M> {
    fn merge(&mut self, other: Self) {
        DoublingCoreset::merge(self, other);
    }

    fn effective_eps(&self) -> f64 {
        DoublingCoreset::effective_eps(self)
    }

    fn words(&self) -> usize {
        self.space_words()
    }
}

/// The paper's insertion-only streaming coreset (Theorem 18):
/// [`DoublingCoreset`] with absorb factor `ε/2` and capacity
/// `k(16/ε)^d + z`.
#[derive(Debug, Clone)]
pub struct InsertionOnlyCoreset<P, M> {
    inner: DoublingCoreset<P, M>,
    eps: f64,
}

impl<P: Clone + SpaceUsage, M: MetricSpace<P>> InsertionOnlyCoreset<P, M> {
    /// Creates the structure for a space of doubling dimension
    /// `metric.doubling_dim()`.
    pub fn new(metric: M, k: usize, z: u64, eps: f64) -> Self {
        Self::with_precision(metric, k, z, eps, Precision::F64)
    }

    /// [`Self::new`] with an explicit lane precision for the columnar
    /// absorb mirror ([`Precision::F32`] widens [`Self::effective_eps`]
    /// by [`F32_EPS_BUDGET`]; published points and radii stay f64).
    pub fn with_precision(metric: M, k: usize, z: u64, eps: f64, precision: Precision) -> Self {
        assert!(eps > 0.0 && eps <= 1.0, "ε must be in (0, 1]");
        let d = metric.doubling_dim();
        let capacity = streaming_capacity(k, z, eps, d);
        InsertionOnlyCoreset {
            inner: DoublingCoreset::with_precision(metric, k, z, eps / 2.0, capacity, precision),
            eps,
        }
    }

    /// Lane precision of the columnar absorb mirror.
    pub fn precision(&self) -> Precision {
        self.inner.precision()
    }

    /// Handles an arrival.
    pub fn insert(&mut self, p: P) {
        self.inner.insert(p);
    }

    /// Handles a weighted arrival (equivalent to `w` unit arrivals at the
    /// same location).
    pub fn insert_weighted(&mut self, p: P, w: u64) {
        self.inner.insert_weighted(p, w);
    }

    /// The maintained (ε,k,z)-coreset.
    pub fn coreset(&self) -> &[Weighted<P>] {
        self.inner.coreset()
    }

    /// The ε this structure was built for.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The ε′ the summary currently guarantees — `ε` for a pure stream,
    /// widened by `ε/2` per merge generation (see
    /// [`DoublingCoreset::effective_eps`]).
    pub fn effective_eps(&self) -> f64 {
        self.inner.effective_eps()
    }

    /// Merges another summary built with identical `(k, z, ε)` and the
    /// same doubling dimension — the sharded-ingest path (Lemma 4 union
    /// + one recompression, tracked by `effective_eps`).
    pub fn merge(&mut self, other: Self) {
        assert!(
            self.eps == other.eps,
            "merge requires identical ε parameters"
        );
        self.inner.merge(other.inner);
    }

    /// Lower bound `r ≤ opt`.
    pub fn radius_bound(&self) -> f64 {
        self.inner.radius_bound()
    }

    /// Covering-property bound: reps are within `ε·r ≤ ε·opt` of the
    /// points they represent (Lemma 16).
    pub fn drift_bound(&self) -> f64 {
        self.inner.drift_bound()
    }

    /// Current storage in words.
    pub fn space_words(&self) -> usize {
        self.inner.space_words()
    }

    /// Peak storage in words.
    pub fn peak_words(&self) -> usize {
        self.inner.peak_words()
    }

    /// Number of re-cluster events.
    pub fn rebuilds(&self) -> u64 {
        self.inner.rebuilds()
    }

    /// Points consumed.
    pub fn points_seen(&self) -> u64 {
        self.inner.points_seen()
    }
}

impl<P: Clone + SpaceUsage, M: MetricSpace<P>> MergeableSummary for InsertionOnlyCoreset<P, M> {
    fn merge(&mut self, other: Self) {
        InsertionOnlyCoreset::merge(self, other);
    }

    fn effective_eps(&self) -> f64 {
        InsertionOnlyCoreset::effective_eps(self)
    }

    fn words(&self) -> usize {
        self.space_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcz_coreset::streaming_capacity;
    use kcz_kcenter::exact_discrete;
    use kcz_metric::{total_weight, L2};

    /// Deterministic pseudo-random stream: two clusters + outliers.
    fn stream(n: usize) -> Vec<[f64; 2]> {
        let mut out = Vec::with_capacity(n);
        let mut s = 0x12345678u64;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for i in 0..n {
            if i % 50 == 49 {
                out.push([1000.0 + next() * 5000.0, -2000.0 - next() * 3000.0]);
            } else if i % 2 == 0 {
                out.push([next() * 2.0, next() * 2.0]);
            } else {
                out.push([80.0 + next() * 2.0, 80.0 + next() * 2.0]);
            }
        }
        out
    }

    #[test]
    fn weight_preserved_over_stream() {
        let mut alg = InsertionOnlyCoreset::new(L2, 2, 12, 0.5);
        let pts = stream(400);
        for p in &pts {
            alg.insert(*p);
        }
        assert_eq!(total_weight(alg.coreset()), 400);
        assert_eq!(alg.points_seen(), 400);
    }

    #[test]
    fn radius_is_lower_bound_on_opt() {
        let pts = stream(300);
        let mut alg = InsertionOnlyCoreset::new(L2, 2, 12, 0.5);
        for p in &pts {
            alg.insert(*p);
        }
        let weighted: Vec<Weighted<[f64; 2]>> = pts.iter().map(|p| Weighted::unit(*p)).collect();
        let opt = exact_discrete(&L2, &weighted, 2, 12, &pts).radius;
        assert!(
            alg.radius_bound() <= opt + 1e-9,
            "r = {} > opt = {opt}",
            alg.radius_bound()
        );
    }

    #[test]
    fn covering_property_at_every_prefix() {
        let pts = stream(250);
        let mut alg = InsertionOnlyCoreset::new(L2, 2, 6, 0.8);
        for (t, p) in pts.iter().enumerate() {
            alg.insert(*p);
            if t % 40 == 39 {
                let bound = alg.drift_bound() + 1e-12;
                for q in &pts[..=t] {
                    let d = alg
                        .coreset()
                        .iter()
                        .map(|r| L2.dist(q, &r.point))
                        .fold(f64::INFINITY, f64::min);
                    assert!(d <= bound, "prefix {t}: point {q:?} at {d} > {bound}");
                }
            }
        }
    }

    #[test]
    fn size_stays_below_capacity() {
        let pts = stream(2000);
        let k = 2;
        let z = 12;
        let eps = 1.0;
        let mut alg = InsertionOnlyCoreset::new(L2, k, z, eps);
        let cap = streaming_capacity(k, z, eps, 2);
        for p in &pts {
            alg.insert(*p);
            assert!((alg.coreset().len() as u64) < cap.max(1) + 1);
        }
        assert!((alg.coreset().len() as u64) < cap);
    }

    #[test]
    fn duplicate_heavy_stream() {
        let mut alg = InsertionOnlyCoreset::new(L2, 1, 2, 0.5);
        for i in 0..100 {
            alg.insert([(i % 3) as f64, 0.0]);
        }
        // Only 3 distinct locations, k+z+1 = 4 never reached: r stays 0.
        assert_eq!(alg.radius_bound(), 0.0);
        assert_eq!(alg.coreset().len(), 3);
        assert_eq!(total_weight(alg.coreset()), 100);
    }

    #[test]
    fn rebuilds_happen_when_capacity_hit() {
        // Capacity for (k=1, z=0, ε=1, d=2) is 16² = 256; a line of 300
        // unit-spaced points must overflow it and trigger doubling.
        let mut alg = InsertionOnlyCoreset::new(L2, 1, 0, 1.0);
        for i in 0..300 {
            alg.insert([i as f64, 0.0]);
        }
        assert!(alg.rebuilds() > 0, "expected at least one doubling");
        assert!((alg.coreset().len() as u64) < streaming_capacity(1, 0, 1.0, 2));
        assert_eq!(total_weight(alg.coreset()), 300);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn tiny_capacity_rejected() {
        let _ = DoublingCoreset::<[f64; 2], _>::new(L2, 2, 5, 0.5, 8);
    }

    #[test]
    fn merged_shards_form_valid_covering() {
        // Split one stream over two shards, merge, and verify weight
        // preservation plus the (widened) covering bound for all points.
        let pts = stream(600);
        let (a_pts, b_pts) = pts.split_at(300);
        let mk = || DoublingCoreset::<[f64; 2], _>::new(L2, 2, 8, 0.25, 200);
        let mut a = mk();
        let mut b = mk();
        for p in a_pts {
            a.insert(*p);
        }
        for p in b_pts {
            b.insert(*p);
        }
        a.merge(b);
        assert_eq!(total_weight(a.coreset()), 600);
        let bound = a.drift_bound() + 1e-12;
        for p in &pts {
            let d = a
                .coreset()
                .iter()
                .map(|r| L2.dist(p, &r.point))
                .fold(f64::INFINITY, f64::min);
            assert!(d <= bound, "point {p:?} at {d} > {bound}");
        }
        // One merge generation: factor 3 instead of 2.
        assert!((a.drift_bound() - 3.0 * 0.25 * a.radius_bound()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity_on_content() {
        let pts = stream(100);
        let mk = || DoublingCoreset::<[f64; 2], _>::new(L2, 2, 4, 0.25, 120);
        let mut a = mk();
        for p in &pts {
            a.insert(*p);
        }
        let before: Vec<_> = a.coreset().to_vec();
        a.merge(mk());
        assert_eq!(total_weight(a.coreset()), 100);
        // Content may be re-clustered but weight and covering stay intact;
        // with an empty other side and unchanged r, reps are preserved.
        assert_eq!(a.coreset().len(), before.len());
    }

    #[test]
    fn empty_merge_does_not_widen_drift() {
        let pts = stream(120);
        let mk = || DoublingCoreset::<[f64; 2], _>::new(L2, 2, 4, 0.25, 120);
        let mut a = mk();
        for p in &pts {
            a.insert(*p);
        }
        let eps_before = a.effective_eps();
        a.merge(mk()); // union with ∅
        assert_eq!(a.effective_eps(), eps_before);
        let mut empty = mk();
        empty.merge(a.clone()); // ∅ absorbing a summary adopts it as-is
        assert_eq!(empty.effective_eps(), eps_before);
        assert_eq!(total_weight(empty.coreset()), 120);
    }

    #[test]
    fn effective_eps_tracks_merge_generations() {
        let pts = stream(300);
        let eps = 0.5;
        let mk = || InsertionOnlyCoreset::new(L2, 2, 8, eps);
        let mut a = mk();
        let mut b = mk();
        for p in &pts[..150] {
            a.insert(*p);
        }
        for p in &pts[150..] {
            b.insert(*p);
        }
        // Pure streams certify exactly ε.
        assert!((a.effective_eps() - eps).abs() < 1e-12);
        a.merge(b);
        // One merge generation widens by a = ε/2.
        assert!((a.effective_eps() - 1.5 * eps).abs() < 1e-12);
        assert_eq!(total_weight(a.coreset()), 300);
        // The trait surface agrees with the inherent methods.
        assert_eq!(
            MergeableSummary::effective_eps(&a),
            InsertionOnlyCoreset::effective_eps(&a)
        );
        assert_eq!(MergeableSummary::words(&a), a.space_words());
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn merge_rejects_mismatched_parameters() {
        let mut a = DoublingCoreset::<[f64; 2], _>::new(L2, 2, 4, 0.25, 120);
        let b = DoublingCoreset::<[f64; 2], _>::new(L2, 3, 4, 0.25, 120);
        a.merge(b);
    }

    #[test]
    fn weighted_inserts_equal_repeated_unit_inserts() {
        let pts = stream(60);
        let mut unit_alg = InsertionOnlyCoreset::new(L2, 2, 4, 0.5);
        let mut weighted_alg = InsertionOnlyCoreset::new(L2, 2, 4, 0.5);
        for p in &pts {
            for _ in 0..3 {
                unit_alg.insert(*p);
            }
            weighted_alg.insert_weighted(*p, 3);
        }
        assert_eq!(total_weight(unit_alg.coreset()), 180);
        assert_eq!(total_weight(weighted_alg.coreset()), 180);
        assert_eq!(unit_alg.coreset().len(), weighted_alg.coreset().len());
        for (a, b) in unit_alg.coreset().iter().zip(weighted_alg.coreset()) {
            assert_eq!(a.point, b.point);
            assert_eq!(a.weight, b.weight);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_insert_rejected() {
        let mut alg = InsertionOnlyCoreset::new(L2, 1, 0, 0.5);
        alg.insert_weighted([0.0, 0.0], 0);
    }
}
