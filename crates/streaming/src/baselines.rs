//! Streaming baselines the paper compares against (Table 1).
//!
//! Both reuse the radius-doubling engine of [`crate::insertion`]; they
//! differ from Algorithm 3 exactly where the literature differs:
//!
//! * [`ceccarello_stream`] — Ceccarello, Pietracaprina, Pucci (VLDB 2019)
//!   maintain every mini-ball at granularity `ε`, including the outlier
//!   region, so their structure grows to `Θ((k+z)/ε^d)` representatives
//!   before re-clustering, versus the paper's `k(16/ε)^d + z`.  On
//!   outlier-heavy streams this is the `z/ε^d`-vs-`z` separation in
//!   Table 1's storage column.
//! * [`mk_doubling`] — a McCutchen–Khuller-style (APPROX 2008) doubling
//!   algorithm: constant absorb radius `2r` and capacity `k+z+2`.  It
//!   stores only `O(k+z)` representatives but its drift is `4r`, so
//!   solving on its summary yields an `O(1)`-approximation instead of
//!   `1+ε` — the quality/space trade-off the quality experiment (F8)
//!   measures.  (The original stores `O(kz/ε)` points; the weighted
//!   summary here is the natural coreset-style rendition, see DESIGN.md
//!   substitution #5.)

use kcz_coreset::bounds::packing_bound;
use kcz_metric::{MetricSpace, SpaceUsage};

use crate::insertion::DoublingCoreset;

/// Ceccarello-et-al.-style streaming coreset: absorb factor `ε/2`,
/// capacity `(k+z)·(16/ε)^d` — the outlier term pays the `1/ε^d` factor.
pub fn ceccarello_stream<P: Clone + SpaceUsage, M: MetricSpace<P>>(
    metric: M,
    k: usize,
    z: u64,
    eps: f64,
) -> DoublingCoreset<P, M> {
    assert!(eps > 0.0 && eps <= 1.0, "ε must be in (0, 1]");
    let d = metric.doubling_dim();
    // (k + z) mini-ball groups, each refined at ε-granularity.
    let capacity = packing_bound(k + z as usize, 0, 16.0 / eps, d).max(k as u64 + z + 2);
    DoublingCoreset::new(metric, k, z, eps / 2.0, capacity)
}

/// McCutchen–Khuller-style doubling summary: absorb factor 2, capacity
/// `k+z+2`, hence `O(k+z)` space and `O(1)` approximation.
pub fn mk_doubling<P: Clone + SpaceUsage, M: MetricSpace<P>>(
    metric: M,
    k: usize,
    z: u64,
) -> DoublingCoreset<P, M> {
    DoublingCoreset::new(metric, k, z, 2.0, k as u64 + z + 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcz_metric::{total_weight, Weighted, L2};

    fn stream(n: usize) -> Vec<[f64; 2]> {
        let mut out = Vec::with_capacity(n);
        let mut s = 0xDEADBEEFu64;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for i in 0..n {
            if i % 10 == 9 {
                // many scattered outliers
                out.push([next() * 1e5, next() * 1e5]);
            } else {
                out.push([next(), next()]);
            }
        }
        out
    }

    #[test]
    fn mk_uses_less_space_than_coreset_algorithms() {
        let pts = stream(1000);
        let (k, z) = (2usize, 40u64);
        let mut ours = crate::insertion::InsertionOnlyCoreset::new(L2, k, z, 0.5);
        let mut mk = mk_doubling(L2, k, z);
        for p in &pts {
            ours.insert(*p);
            mk.insert(*p);
        }
        assert!(mk.coreset().len() as u64 <= k as u64 + z + 2);
        assert!(mk.peak_words() <= ours.peak_words());
        assert_eq!(total_weight(mk.coreset()), 1000);
    }

    #[test]
    fn mk_drift_is_constant_factor() {
        let pts = stream(500);
        let mut mk = mk_doubling(L2, 2, 20);
        for p in &pts {
            mk.insert(*p);
        }
        let bound = mk.drift_bound();
        assert!(bound >= 4.0 * mk.radius_bound() - 1e-9);
        for q in &pts {
            let d = mk
                .coreset()
                .iter()
                .map(|r| L2.dist(q, &r.point))
                .fold(f64::INFINITY, f64::min);
            assert!(d <= bound + 1e-9, "point {q:?} at {d} > {bound}");
        }
    }

    #[test]
    fn ceccarello_capacity_dominates_ours() {
        // The baseline's re-cluster threshold carries the z/ε^d factor.
        let d = 2;
        let (k, z, eps) = (3usize, 50u64, 0.5f64);
        let ours = kcz_coreset::streaming_capacity(k, z, eps, d);
        let theirs = packing_bound(k + z as usize, 0, 16.0 / eps, d);
        assert!(theirs > 10 * ours, "theirs {theirs} vs ours {ours}");
    }

    #[test]
    fn ceccarello_still_valid_covering() {
        let pts = stream(300);
        let mut alg = ceccarello_stream(L2, 2, 10, 0.5);
        for p in &pts {
            alg.insert(*p);
        }
        let bound = alg.drift_bound() + 1e-12;
        for q in &pts {
            let d = alg
                .coreset()
                .iter()
                .map(|r: &Weighted<[f64; 2]>| L2.dist(q, &r.point))
                .fold(f64::INFINITY, f64::min);
            assert!(d <= bound);
        }
    }
}
