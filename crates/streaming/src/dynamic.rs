//! Algorithm 5: the fully dynamic streaming coreset over `[Δ]^d`.
//!
//! The stream consists of insertions and deletions of points with integer
//! coordinates in `[0, Δ)^D`, `Δ = 2^b`.  For every level `i = 0..=b` the
//! structure imposes a grid of cell side `2^i` and maintains two linear
//! sketches over the grid's non-empty cells: an s-sparse recovery sketch
//! and an F₀ estimator (crate `kcz-sketch`).  A query walks from the finest
//! grid upward, picks the first level whose estimated number of non-empty
//! cells is at most `s = k(4√d/ε)^d + z` (Lemma 25), recovers the cells
//! with their exact counts, and reports each cell's center weighted by its
//! count — a *relaxed* (ε,k,z)-coreset (Theorem 21: the representatives
//! are cell centers rather than input points).

use kcz_metric::Weighted;
use kcz_sketch::ssparse::Recovery;
use kcz_sketch::{F0Sketch, SparseRecovery};

/// Failure modes of a [`DynamicCoreset`] query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DynamicCoresetError {
    /// Every level's recovery saturated — the sketch draw failed
    /// (probability ≤ δ per query) or the F₀ estimates were off.
    Unrecoverable,
    /// A recovered cell had a negative net count: the stream violated the
    /// strict turnstile promise (deleted a point that was not present).
    NegativeFrequency {
        /// Level at which the violation surfaced.
        level: u32,
    },
}

impl std::fmt::Display for DynamicCoresetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynamicCoresetError::Unrecoverable => {
                write!(f, "all grid levels saturated; sketch recovery failed")
            }
            DynamicCoresetError::NegativeFrequency { level } => {
                write!(
                    f,
                    "negative cell frequency at level {level}: stream is not strict turnstile"
                )
            }
        }
    }
}

impl std::error::Error for DynamicCoresetError {}

/// A recovered relaxed coreset: the weighted cell-center representatives
/// and the grid level they were read from.
pub type RelaxedCoreset<const D: usize> = (Vec<Weighted<[f64; D]>>, u32);

/// Per-grid sketch pair.
#[derive(Debug, Clone)]
struct GridLevel {
    recovery: SparseRecovery,
    f0: F0Sketch,
}

/// The fully dynamic coreset structure of Section 5.
#[derive(Debug, Clone)]
pub struct DynamicCoreset<const D: usize> {
    side_bits: u32,
    s: usize,
    levels: Vec<GridLevel>,
    net_updates: i64,
}

/// The paper's sparsity target `s = k(4√d/ε)^d + z` (Lemma 25).
pub fn paper_sparsity(k: usize, z: u64, eps: f64, d: usize) -> u64 {
    let per_ball = (4.0 * (d as f64).sqrt() / eps).powi(d as i32);
    if !per_ball.is_finite() || per_ball >= u64::MAX as f64 {
        return u64::MAX;
    }
    (k as u64)
        .saturating_mul(per_ball.ceil() as u64)
        .saturating_add(z)
}

impl<const D: usize> DynamicCoreset<D> {
    /// Creates the structure for universe `[0, 2^side_bits)^D` with
    /// sparsity target `s`, per-query failure budget `fail_delta`, and a
    /// sketch seed.
    ///
    /// Use [`Self::for_params`] to derive `s` from `(k, z, ε)` as the paper
    /// does.  Requires `side_bits·D ≤ 63` so cell ids fit one word.
    pub fn new(side_bits: u32, s: usize, fail_delta: f64, seed: u64) -> Self {
        assert!(D >= 1, "dimension must be at least 1");
        assert!(side_bits >= 1, "universe must have at least two cells");
        assert!(
            (side_bits as usize) * D <= 63,
            "cell ids need side_bits·D ≤ 63, got {side_bits}·{D}"
        );
        assert!(s >= 1, "sparsity target must be positive");
        // Slack over the F₀ test: the estimator is only (1±ε)-accurate, so
        // the recovery must tolerate slightly more than s live cells.
        let recovery_budget = s + s / 2 + 8;
        let per_level_delta = (fail_delta / (side_bits as f64 + 1.0)).max(1e-12);
        let levels = (0..=side_bits)
            .map(|i| {
                let cells_per_side_bits = side_bits - i;
                let universe = 1u64 << ((cells_per_side_bits as usize * D).min(63));
                GridLevel {
                    recovery: SparseRecovery::new(
                        recovery_budget,
                        per_level_delta,
                        seed ^ (0x5EED_0000 + i as u64),
                    ),
                    f0: F0Sketch::for_universe(
                        universe.max(2),
                        0.25,
                        seed ^ (0xF0F0_0000 + i as u64),
                    ),
                }
            })
            .collect();
        DynamicCoreset {
            side_bits,
            s,
            levels,
            net_updates: 0,
        }
    }

    /// Creates the structure with the paper's `s = k(4√d/ε)^d + z`.
    pub fn for_params(
        side_bits: u32,
        k: usize,
        z: u64,
        eps: f64,
        fail_delta: f64,
        seed: u64,
    ) -> Self {
        assert!(eps > 0.0 && eps <= 1.0, "ε must be in (0, 1]");
        let s = paper_sparsity(k, z, eps, D);
        assert!(
            s <= (1 << 22),
            "sparsity target {s} too large to allocate; increase ε or decrease k/z"
        );
        Self::new(side_bits, s as usize, fail_delta, seed)
    }

    /// Universe side `Δ = 2^side_bits`.
    pub fn universe_side(&self) -> u64 {
        1u64 << self.side_bits
    }

    /// The sparsity target `s`.
    pub fn sparsity(&self) -> usize {
        self.s
    }

    /// Net insertions minus deletions so far.
    pub fn net_updates(&self) -> i64 {
        self.net_updates
    }

    fn cell_id(&self, p: &[u64; D], level: u32) -> u64 {
        let bits = (self.side_bits - level) as u64;
        let mut id = 0u64;
        for (j, &c) in p.iter().enumerate() {
            id |= (c >> level) << (j as u64 * bits);
        }
        id
    }

    fn check_point(&self, p: &[u64; D]) {
        let side = self.universe_side();
        for &c in p.iter() {
            assert!(c < side, "coordinate {c} outside universe [0, {side})");
        }
    }

    /// Inserts point `p`.
    pub fn insert(&mut self, p: &[u64; D]) {
        self.apply(p, 1);
    }

    /// Deletes point `p` (must currently be present — strict turnstile).
    pub fn delete(&mut self, p: &[u64; D]) {
        self.apply(p, -1);
    }

    fn apply(&mut self, p: &[u64; D], delta: i64) {
        self.check_point(p);
        self.net_updates += delta;
        for level in 0..=self.side_bits {
            let id = self.cell_id(p, level);
            let gl = &mut self.levels[level as usize];
            gl.recovery.update(id, delta);
            gl.f0.update(id, delta);
        }
    }

    /// Decodes cell `id` at `level` back to the cell's integer-range
    /// midpoint in Euclidean coordinates.
    fn cell_center(&self, id: u64, level: u32) -> [f64; D] {
        let bits = (self.side_bits - level) as u64;
        let mask = if bits >= 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        let half = ((1u64 << level) - 1) as f64 / 2.0;
        let mut out = [0.0f64; D];
        for (j, slot) in out.iter_mut().enumerate() {
            let c = (id >> (j as u64 * bits)) & mask;
            *slot = (c << level) as f64 + half;
        }
        out
    }

    /// Extracts the relaxed (ε,k,z)-coreset: weighted cell centers of the
    /// finest grid whose estimated occupancy is at most `s`.
    ///
    /// Returns the coreset together with the level it was read from.
    pub fn coreset(&self) -> Result<RelaxedCoreset<D>, DynamicCoresetError> {
        for level in 0..=self.side_bits {
            let gl = &self.levels[level as usize];
            if gl.f0.estimate() > self.s as f64 {
                continue;
            }
            match gl.recovery.recover() {
                Recovery::Exact(cells) => {
                    let mut reps = Vec::with_capacity(cells.len());
                    for (id, count) in cells {
                        if count < 0 {
                            return Err(DynamicCoresetError::NegativeFrequency { level });
                        }
                        reps.push(Weighted::new(self.cell_center(id, level), count as u64));
                    }
                    return Ok((reps, level));
                }
                // F₀ under-estimated and the recovery saturated: fall
                // through to the next coarser grid.
                Recovery::Saturated(_) => continue,
            }
        }
        Err(DynamicCoresetError::Unrecoverable)
    }

    /// Total sketch storage in machine words.
    pub fn space_words(&self) -> usize {
        self.levels
            .iter()
            .map(|l| l.recovery.words() + l.f0.words())
            .sum::<usize>()
            + 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcz_metric::total_weight;

    #[test]
    fn insert_only_recovers_exact_points() {
        let mut dc = DynamicCoreset::<2>::new(10, 64, 0.01, 42);
        let pts: Vec<[u64; 2]> = (0..20).map(|i| [i * 13 % 1024, i * 29 % 1024]).collect();
        for p in &pts {
            dc.insert(p);
        }
        let (reps, level) = dc.coreset().expect("recovery");
        assert_eq!(level, 0, "20 points fit the finest grid");
        assert_eq!(total_weight(&reps), 20);
        // At level 0 each rep is an actual point location.
        for p in &pts {
            let loc = [p[0] as f64, p[1] as f64];
            assert!(
                reps.iter().any(|r| r.point == loc),
                "missing point {p:?} in {reps:?}"
            );
        }
    }

    #[test]
    fn deletions_remove_points() {
        let mut dc = DynamicCoreset::<2>::new(10, 32, 0.01, 7);
        for i in 0..30u64 {
            dc.insert(&[i, 2 * i]);
        }
        for i in 0..25u64 {
            dc.delete(&[i, 2 * i]);
        }
        let (reps, level) = dc.coreset().expect("recovery");
        assert_eq!(level, 0);
        assert_eq!(total_weight(&reps), 5);
        assert_eq!(dc.net_updates(), 5);
    }

    #[test]
    fn duplicates_accumulate_weight() {
        let mut dc = DynamicCoreset::<1>::new(8, 16, 0.01, 3);
        for _ in 0..7 {
            dc.insert(&[100]);
        }
        dc.delete(&[100]);
        let (reps, _) = dc.coreset().expect("recovery");
        assert_eq!(reps.len(), 1);
        assert_eq!(reps[0].weight, 6);
    }

    #[test]
    fn dense_data_escalates_to_coarser_level() {
        let mut dc = DynamicCoreset::<2>::new(8, 16, 0.01, 11);
        // 225 spread-out points >> s = 16 at the finest level.
        for x in 0..15u64 {
            for y in 0..15u64 {
                dc.insert(&[x * 17, y * 17]);
            }
        }
        let (reps, level) = dc.coreset().expect("recovery");
        assert!(level > 0, "must climb above the finest grid");
        assert_eq!(total_weight(&reps), 225);
        assert!(reps.len() <= 16 + 16 / 2 + 8);
    }

    #[test]
    fn cell_centers_are_within_cell_radius() {
        let mut dc = DynamicCoreset::<2>::new(8, 4, 0.01, 5);
        let pts: Vec<[u64; 2]> = vec![[3, 250], [180, 9], [77, 77], [200, 200], [10, 10], [250, 3]];
        for p in &pts {
            dc.insert(p);
        }
        let (reps, level) = dc.coreset().expect("recovery");
        let half_diag = ((1u64 << level) as f64) * (2f64).sqrt() / 2.0;
        for p in &pts {
            let loc = [p[0] as f64, p[1] as f64];
            let d = reps
                .iter()
                .map(|r| {
                    let dx = r.point[0] - loc[0];
                    let dy = r.point[1] - loc[1];
                    (dx * dx + dy * dy).sqrt()
                })
                .fold(f64::INFINITY, f64::min);
            assert!(d <= half_diag + 1e-9, "point {p:?} at {d} > {half_diag}");
        }
    }

    #[test]
    fn paper_sparsity_formula() {
        // k(4√d/ε)^d + z for d=1, ε=1: 4k + z.
        assert_eq!(paper_sparsity(2, 3, 1.0, 1), 11);
        // Saturates instead of overflowing.
        assert_eq!(paper_sparsity(1, 0, 1e-12, 8), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn rejects_out_of_range_points() {
        let mut dc = DynamicCoreset::<2>::new(4, 4, 0.01, 0);
        dc.insert(&[16, 0]);
    }

    #[test]
    #[should_panic(expected = "side_bits")]
    fn rejects_oversized_universe() {
        let _ = DynamicCoreset::<3>::new(22, 4, 0.01, 0);
    }

    #[test]
    fn empty_structure_yields_empty_coreset() {
        let dc = DynamicCoreset::<2>::new(6, 8, 0.01, 1);
        let (reps, _) = dc.coreset().expect("recovery of nothing");
        assert!(reps.is_empty());
    }

    #[test]
    fn space_grows_with_side_bits() {
        let small = DynamicCoreset::<2>::new(6, 32, 0.01, 0).space_words();
        let large = DynamicCoreset::<2>::new(24, 32, 0.01, 0).space_words();
        assert!(large > 2 * small, "{large} vs {small}");
    }
}
