//! Shared execution runtime and the resident sharded ingest engine.
//!
//! Two layers, both extracted from patterns the rest of the workspace
//! already relied on implicitly:
//!
//! * [`runtime`] — a persistent worker pool ([`runtime::Pool`]) with an
//!   order-preserving `scoped_map`, replacing the thread-per-round
//!   spawning the MPC simulator used to do.  The MPC algorithms, the
//!   conformance harness's full-tier runs, the experiments driver and
//!   the engine itself all share one process-wide instance
//!   ([`runtime::global`]).
//! * [`engine`] — [`engine::Engine`]: `N` shards of a pluggable
//!   [`backend::ShardBackend`] (insertion-only, sliding-window or
//!   exponentially decayed — see [`backend::Backend`]) behind per-shard
//!   locks, batched hash-routed ingest stamped by a global arrival
//!   clock, and epoch-numbered snapshots that merge the shard summaries
//!   (Lemma 4 union + Lemma 5 recompression, tracked by
//!   [`kcz_coreset::MergeableSummary`]) on the pool without stalling
//!   ingest.
//!
//! The composed-ε arithmetic lives in `kcz-coreset`
//! ([`kcz_coreset::end_to_end_factor`]); the engine only *reports* the
//! ε′ its merges produced, so its snapshots are checkable by the same
//! oracle bounds as every other pipeline.

#![warn(missing_docs)]

pub mod backend;
pub mod engine;
pub mod runtime;

pub use backend::{
    AnyShard, Backend, DecayShard, InsertionShard, ShardBackend, WindowShard, WINDOW_RHO_MAX,
    WINDOW_RHO_MIN,
};
pub use engine::{Engine, EngineConfig, EngineStats, Snapshot, SolverMode};
pub use runtime::{global, Pool};
