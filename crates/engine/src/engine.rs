//! The resident sharded ingest engine.
//!
//! [`Engine`] turns the paper's composability lemmas into a long-lived
//! system: `N` shards, each owning an insertion-only streaming coreset
//! ([`kcz_streaming::InsertionOnlyCoreset`], Theorem 18) behind its own
//! lock.  Batched [`Engine::ingest`] routes points to shards with a
//! splittable hash partitioner ([`kcz_workloads::HashPartitioner`]) and
//! runs the per-shard inserts concurrently on the shared worker pool;
//! [`Engine::publish`] clones the shard summaries under brief per-shard
//! locks (ingest on other shards never stalls, and ingest on the same
//! shard stalls only for the clone, not the merge), reduces them in a
//! balanced merge tree on the pool, and caches the solved epoch behind
//! an `Arc` — publishing an *unchanged* data version returns the cached
//! handle without re-merging or re-solving, and [`Engine::latest`] hands
//! readers the newest published epoch without ever paying a solve.  This
//! is the write side of the serving contract: the read side
//! (`kcz-serve`) builds query views on these frozen epochs.
//!
//! Correctness is the Lemma 4 / Lemma 5 chain exposed by
//! [`kcz_coreset::MergeableSummary`]: each shard's summary is an
//! (ε,k,z)-mini-ball covering of its share (budget `z` is valid per
//! shard because `opt_{k,z}(P_i) ≤ opt_{k,z}(P)` for `P_i ⊆ P`), the
//! union is a covering of everything ingested, and each of the
//! `⌈log₂ N⌉` merge generations widens the certified ε′ by `ε/2` — the
//! widening [`Snapshot::effective_eps`] reports and
//! [`Snapshot::bound_factor`] turns into the end-to-end `3 + 8ε′` ratio
//! bound the conformance harness checks.

use kcz_coreset::{end_to_end_factor, tree_depth, MergeableSummary};
use kcz_kcenter::{farthest_first, greedy_stateful, greedy_with, GreedyParams, SolveState};
use kcz_metric::{MetricSpace, Precision, SpaceUsage, Weighted};
use kcz_obs::{Counter, Gauge, MetricsHandle, Stage};
use kcz_streaming::InsertionOnlyCoreset;
use kcz_workloads::{HashPartitioner, ShardKey};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::backend::{AnyShard, Backend, ShardBackend};
use crate::runtime::{global, Pool};

/// Which Charikar solver the publish path runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverMode {
    /// Every publish re-solves the merged summary from scratch.
    Cold,
    /// The delta-aware solve ([`kcz_kcenter::greedy_stateful`]): a
    /// persistent [`SolveState`] re-certifies the previous epoch's
    /// feasibility verdicts against the summary delta and re-runs only
    /// what the certificates cannot absorb.  Bit-identical to
    /// [`SolverMode::Cold`] by construction — the default.
    Delta,
}

/// Construction parameters of an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Number of shards (independent insertion-only summaries).
    pub shards: usize,
    /// Number of centers.
    pub k: usize,
    /// Outlier budget (weight).
    pub z: u64,
    /// Coreset accuracy parameter handed to every shard.
    pub eps: f64,
    /// Seed of the hash partitioner (routing is deterministic given it).
    pub seed: u64,
    /// Incremental publish: keep the merge tree (leaf clones + interior
    /// nodes) across epochs, re-merging only root-to-dirty-leaf
    /// subtrees.  `false` rebuilds every publish from scratch.  Either
    /// mode solves identically (warm-started from the canonical
    /// merged-summary hint), so published snapshots are bit-identical
    /// across modes.
    pub incremental: bool,
    /// Lane precision of the shard coresets' columnar absorb mirrors.
    /// [`Precision::F64`] (the default) is bit-identical to the scalar
    /// kernels; [`Precision::F32`] halves the absorb scan's memory
    /// traffic and widens every shard's certified ε′ by
    /// [`kcz_metric::F32_EPS_BUDGET`] (published points, weights and
    /// radii stay f64 either way).
    pub precision: Precision,
    /// Which per-shard backend the engine runs (see
    /// [`crate::backend`]): insertion-only (the default — summaries
    /// cover everything ever ingested), a sliding window over the last
    /// `W` global arrivals, or exponentially decayed weights.  The
    /// window and decay stages widen the published ε′ by one extra ε
    /// ([`Backend::extra_eps`]).
    pub backend: Backend,
    /// Which Charikar solver the publish path runs (see [`SolverMode`];
    /// both modes publish bit-identical snapshots).
    pub solver: SolverMode,
}

impl EngineConfig {
    /// A config with the given shard count, the catalog's default
    /// routing seed, and incremental publishing on.
    pub fn new(shards: usize, k: usize, z: u64, eps: f64) -> Self {
        EngineConfig {
            shards,
            k,
            z,
            eps,
            seed: 0x5EED_0E16,
            incremental: true,
            precision: Precision::F64,
            backend: Backend::Insertion,
            solver: SolverMode::Delta,
        }
    }

    /// Turns incremental publishing off: every publish re-clones every
    /// shard, re-runs the whole merge tree, and solves cold.  The
    /// conformance harness uses this as the from-scratch oracle the
    /// incremental path is certified against.
    pub fn full_republish(mut self) -> Self {
        self.incremental = false;
        self
    }

    /// Sets the shard coresets' absorb-mirror lane precision (see
    /// [`EngineConfig::precision`]).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Sets the per-shard backend (see [`EngineConfig::backend`]).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the publish-path Charikar solver (see
    /// [`EngineConfig::solver`]).
    pub fn with_solver(mut self, solver: SolverMode) -> Self {
        self.solver = solver;
        self
    }

    /// Sliding-window backend over the last `window` global arrivals.
    pub fn windowed(self, window: u64) -> Self {
        self.with_backend(Backend::Window(window))
    }

    /// Decayed backend: representative weights halve every `half_life`
    /// arrivals since last touch.
    pub fn decayed(self, half_life: f64) -> Self {
        self.with_backend(Backend::Decay(half_life))
    }
}

/// Resource accounting of one engine, reported with every snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Number of shards.
    pub shards: usize,
    /// Total weight ingested so far.
    pub points: u64,
    /// Batches accepted so far.
    pub batches: u64,
    /// Largest peak storage of any single shard, in words (the paper's
    /// per-machine measure: shards are machines).
    pub shard_peak_words: usize,
    /// Extra words held by this snapshot's merge tree: the cloned shard
    /// summaries *and every interior node of the reduction* live
    /// alongside the shards (transiently for a full republish, resident
    /// in the tree cache for an incremental one).  Interior levels are
    /// counted too — recompression can transiently grow a merged
    /// summary past the sum of its leaves.
    pub merge_transient_words: usize,
    /// Words of the merged summary the snapshot solved on.
    pub summary_words: usize,
    /// Feasibility probes (`disk_greedy` runs) the epoch's solve spent.
    pub solve_probes: usize,
    /// Probes the delta-aware solve answered from re-certified cached
    /// verdicts instead of `disk_greedy` runs (always `0` under
    /// [`SolverMode::Cold`]).
    pub reused_verdicts: usize,
    /// Merge-tree + Charikar solves performed over the engine's
    /// lifetime up to this snapshot (the same count
    /// [`Engine::solves`] reads) — snapshots and the engine expose the
    /// solve/elision accounting uniformly.
    pub solves: u64,
    /// Pair merges performed over the engine's lifetime up to this
    /// snapshot (see [`Engine::merges`]).
    pub merges: u64,
    /// Charikar solves elided on an unchanged merged fingerprint over
    /// the engine's lifetime up to this snapshot (see
    /// [`Engine::elisions`]).
    pub elisions: u64,
}

/// One epoch-numbered, fully merged view of everything ingested.
#[derive(Debug, Clone)]
pub struct Snapshot<P> {
    /// Monotonic snapshot counter (1 for the first snapshot).
    pub epoch: u64,
    /// Centers solved on the merged summary (Charikar-et-al. greedy).
    pub centers: Vec<P>,
    /// Greedy covering radius on the merged summary.
    pub radius: f64,
    /// The merged summary's lower bound `r ≤ opt` (radius-doubling
    /// invariant, maintained through merges).
    pub radius_bound: f64,
    /// Summary weight left uncovered by the solve (≤ `z`).
    pub uncovered: u64,
    /// The feasible guess `r̂` the radius search settled on
    /// (`radius ≤ 3·r̂`) — part of the bit-identity surface the solver
    /// conformance pass compares across delta/cold/scratch solves.
    pub guess: f64,
    /// The ε′ the merged summary certifies: `ε` for one shard, widened
    /// by `ε/2` per merge generation (⌈log₂ shards⌉ of them).
    pub effective_eps: f64,
    /// The end-to-end certified ratio factor, `3 + 8ε′` (one shared
    /// derivation: [`kcz_coreset::end_to_end_factor`]).
    pub bound_factor: f64,
    /// The merged (ε′,k,z)-coreset itself.
    pub coreset: Vec<Weighted<P>>,
    /// The global arrival clock at publish time: how many points had
    /// arrived (in ingest order) when this epoch was solved.  For the
    /// window backend the epoch summarizes arrivals
    /// `(clock − W, clock]`; insertion-only epochs summarize
    /// everything.
    pub clock: u64,
    /// The backend the engine ran under (time-windowed readers derive
    /// the covered span from this plus [`Snapshot::clock`]).
    pub backend: Backend,
    /// Resource accounting at snapshot time.
    pub stats: EngineStats,
}

impl<P> Snapshot<P> {
    /// The span of live arrival stamps `(oldest, newest)` this epoch
    /// summarizes — `Some` only for the window backend after the first
    /// arrival ("cluster the last `W` arrivals", the time-windowed
    /// query contract).
    pub fn window_span(&self) -> Option<(u64, u64)> {
        self.backend.window_span(self.clock)
    }
}

impl<P: SpaceUsage> SpaceUsage for Snapshot<P> {
    fn words(&self) -> usize {
        self.centers.iter().map(SpaceUsage::words).sum::<usize>() + self.coreset.words() + 7
    }
}

/// Recovers a poisoned mutex guard.  Publish-path state (the snapshot
/// cache, the herd guard, the merge-tree cache) is kept internally
/// consistent at every step — a publisher that panicked mid-solve has
/// taken the tree cache out (leaving `None`, which just means the next
/// publish rebuilds cold) and never half-writes the snapshot cache —
/// so later publishers must not be wedged by the poison marker.
///
/// Shard locks deliberately keep their `.expect`: a panic mid-insert
/// leaves a shard summary mid-mutation with unknown invariants, and
/// nothing can be republished from it.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Canonical 64-bit fingerprint of a merged summary: a splitmix-style
/// mix over every representative's routing key and weight, the length,
/// the radius bound and the certified ε′ — every merged bit the
/// Charikar solve (and the snapshot's certified fields) consumes.  A
/// pure function of those bits, so incremental and full-republish
/// publishes of the same data fingerprint identically.  Never returns
/// the `0` sentinel.
fn fingerprint_summary<P, M>(s: &InsertionOnlyCoreset<P, M>) -> u64
where
    P: Clone + SpaceUsage + ShardKey,
    M: MetricSpace<P>,
{
    let mut h = 0x9E37_79B9_7F4A_7C15u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
    };
    for w in s.coreset() {
        mix(w.point.shard_key());
        mix(w.weight);
    }
    mix(s.coreset().len() as u64);
    mix(s.radius_bound().to_bits());
    mix(s.effective_eps().to_bits());
    h | 1
}

fn read_recover<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

fn write_recover<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

/// The incremental-publish state carried from one epoch to the next:
/// the full merge tree of the previous publish.  Clean subtrees are
/// reused bit-for-bit; only root-to-dirty-leaf paths are re-merged.
struct TreeCache<P, M: MetricSpace<P>> {
    /// Per-shard version stamp each leaf clone was taken at.
    leaf_versions: Vec<u64>,
    /// `levels[0]` are the leaf clones (one per shard), `levels[g]` the
    /// nodes after merge generation `g`; the last level is the single
    /// merged root the epoch solved on.
    levels: Vec<Vec<InsertionOnlyCoreset<P, M>>>,
}

/// The engine's instrument set.  Counters double as the engine's own
/// accounting (they are the single source of truth behind
/// [`Engine::solves`] & co., live whether or not metrics are enabled —
/// a disabled handle hands out detached cells); stages and gauges are
/// no-ops unless the engine was built [`Engine::with_metrics`].
/// Recording is relaxed atomics only: the instrumented ingest and
/// publish paths stay allocation-free in steady state.
struct EngineInstruments {
    /// `engine.ingest.points` — total weight ingested.
    points: Counter,
    /// `engine.ingest.batches` — batches accepted.
    batches: Counter,
    /// `engine.publish.solves` — full merge + Charikar solve passes.
    solves: Counter,
    /// `engine.publish.pair_merges` — pair merges actually performed.
    merges: Counter,
    /// `engine.publish.elisions` — solves skipped on an unchanged
    /// merged fingerprint.
    elisions: Counter,
    /// `engine.solve.probes` — cumulative feasibility probes spent.
    probes: Counter,
    /// `engine.solve.reused_verdicts` — cumulative probes answered from
    /// re-certified cached verdicts.
    reused: Counter,
    /// `engine.ingest.batch_ns` — per-batch ingest latency.
    ingest_batch: Stage,
    /// `engine.publish.total_ns` — whole slow-path publish.
    publish_total: Stage,
    /// `engine.publish.stage.clone_ns` — phase 1, dirty-shard clones.
    stage_clone: Stage,
    /// `engine.publish.stage.merge_ns` — phase 2, dirty-path re-merge.
    stage_merge: Stage,
    /// `engine.publish.stage.solve_ns` — phase 3, the Charikar solve.
    stage_solve: Stage,
    /// `engine.publish.stage.replay_ns` — certificate replay on an
    /// elided solve (re-keying the cached solution).
    stage_replay: Stage,
    /// `engine.publish.stage.build_ns` — snapshot construction.
    stage_build: Stage,
    /// `engine.snapshot.coreset_size` — merged coreset size at the last
    /// solved epoch.
    coreset_size: Gauge,
    /// `engine.snapshot.summary_words` — merged summary words at the
    /// last solved epoch.
    summary_words: Gauge,
    /// `engine.publish.epoch` — newest published epoch number.
    epoch_gauge: Gauge,
    /// `engine.merge.peak_transient_words` — high-water merge-tree
    /// residency.
    peak_transient: Gauge,
}

impl EngineInstruments {
    fn new(metrics: &MetricsHandle) -> Self {
        EngineInstruments {
            points: metrics.counter("engine.ingest.points"),
            batches: metrics.counter("engine.ingest.batches"),
            solves: metrics.counter("engine.publish.solves"),
            merges: metrics.counter("engine.publish.pair_merges"),
            elisions: metrics.counter("engine.publish.elisions"),
            probes: metrics.counter("engine.solve.probes"),
            reused: metrics.counter("engine.solve.reused_verdicts"),
            ingest_batch: metrics.stage("engine.ingest.batch_ns"),
            publish_total: metrics.stage("engine.publish.total_ns"),
            stage_clone: metrics.stage("engine.publish.stage.clone_ns"),
            stage_merge: metrics.stage("engine.publish.stage.merge_ns"),
            stage_solve: metrics.stage("engine.publish.stage.solve_ns"),
            stage_replay: metrics.stage("engine.publish.stage.replay_ns"),
            stage_build: metrics.stage("engine.publish.stage.build_ns"),
            coreset_size: metrics.gauge("engine.snapshot.coreset_size"),
            summary_words: metrics.gauge("engine.snapshot.summary_words"),
            epoch_gauge: metrics.gauge("engine.publish.epoch"),
            peak_transient: metrics.gauge("engine.merge.peak_transient_words"),
        }
    }

    /// Carries accumulated counts into a fresh instrument set (the
    /// [`Engine::with_metrics`] rebind: an engine instrumented after
    /// doing work must not lose its accounting).
    fn carry_from(&self, old: &EngineInstruments) {
        self.points.add(old.points.get());
        self.batches.add(old.batches.get());
        self.solves.add(old.solves.get());
        self.merges.add(old.merges.get());
        self.elisions.add(old.elisions.get());
        self.probes.add(old.probes.get());
        self.reused.add(old.reused.get());
        self.coreset_size.set(old.coreset_size.get());
        self.summary_words.set(old.summary_words.get());
        self.epoch_gauge.set(old.epoch_gauge.get());
        self.peak_transient.set_max(old.peak_transient.get());
    }
}

/// A long-lived, sharded clustering engine over one metric space.
///
/// `ingest` and `snapshot` take `&self`: the engine is shared across
/// writer threads as-is (no external lock), and a snapshot can be taken
/// while other threads keep ingesting.
pub struct Engine<P, M: MetricSpace<P>> {
    cfg: EngineConfig,
    metric: M,
    router: HashPartitioner,
    shards: Vec<Mutex<AnyShard<P, M>>>,
    obs: EngineInstruments,
    epoch: AtomicU64,
    /// Data version: bumped once per accepted batch, *after* the batch
    /// has fully landed in the shards.  `publish` stamps each solved
    /// snapshot with the version it observed before cloning, so an
    /// unchanged version proves the cached snapshot is still current.
    /// Time is arrival-driven (the clock advances only when points
    /// land), so an unchanged version also certifies that no window
    /// expiry or decay tick happened — the fast path is exact in every
    /// backend mode.
    version: AtomicU64,
    /// Global arrival clock: the number of points that have *started*
    /// ingest (stamps are drawn from it before routing).  Backends see
    /// it as each point's arrival stamp and at publish time via
    /// `advance_to`.
    clock: AtomicU64,
    /// The last published snapshot, keyed by the data version it was
    /// solved at.  Readers (`latest`) clone the `Arc` under a brief read
    /// lock; only a publish of a *newer* epoch takes the write lock.
    published: RwLock<Option<(u64, Arc<Snapshot<P>>)>>,
    /// Canonical fingerprint of the merged summary the cached snapshot
    /// solved on (0 = none yet).  Written only with `publish_order`
    /// held.  A publish whose freshly merged summary hashes to the same
    /// fingerprint skips the Charikar solve: the solve is a
    /// deterministic function of the merged bits, so its output is
    /// already sitting in the cache.
    published_fp: AtomicU64,
    /// Collapses a publish herd: when several threads race `publish` on
    /// the same new data version, one solves while the rest wait here
    /// and then take the refreshed cache — N concurrent refreshers cost
    /// one merge + solve, not N.  Publishers are fully serialized by
    /// this lock, which also orders epoch assignment with the clone
    /// phase (no separate snapshot lock needed).
    publish_order: Mutex<()>,
    /// The previous epoch's merge tree (incremental mode only; always
    /// `None` with `full_republish`).  Taken out for the duration of a
    /// publish so a panicking solve leaves `None` and the next publish
    /// rebuilds cold.
    tree_cache: Mutex<Option<TreeCache<P, M>>>,
    /// The delta-aware solver's persistent state ([`SolverMode::Delta`]
    /// only; always `None` under [`SolverMode::Cold`]).  Taken out for
    /// the duration of a solve so a panic leaves `None` and the next
    /// publish solves cold — and left untouched by elided publishes,
    /// whose summaries are bit-identical to the one the state tracks.
    solve_state: Mutex<Option<SolveState<P>>>,
    /// Largest merge transient observed over all snapshots.
    peak_merge_transient: AtomicUsize,
    pool: &'static Pool,
}

impl<P, M> Engine<P, M>
where
    P: Clone + PartialEq + SpaceUsage + ShardKey + Send + Sync,
    M: MetricSpace<P> + Clone,
{
    /// Builds the engine: `cfg.shards` empty insertion-only summaries,
    /// all with identical `(k, z, ε)` so their merges are legal.
    pub fn new(metric: M, cfg: EngineConfig) -> Self {
        assert!(cfg.shards >= 1, "need at least one shard");
        assert!(cfg.eps > 0.0 && cfg.eps <= 1.0, "ε must be in (0, 1]");
        assert!(cfg.k >= 1, "k must be at least 1");
        if let Backend::Window(w) = cfg.backend {
            assert!(w >= 1, "window must be at least 1");
        }
        if let Backend::Decay(h) = cfg.backend {
            assert!(
                h.is_finite() && h > 0.0,
                "half-life must be positive and finite"
            );
        }
        let shards = (0..cfg.shards)
            .map(|_| {
                Mutex::new(AnyShard::new(
                    cfg.backend,
                    metric.clone(),
                    cfg.k,
                    cfg.z,
                    cfg.eps,
                    cfg.precision,
                ))
            })
            .collect();
        Engine {
            router: HashPartitioner::new(cfg.shards, cfg.seed),
            metric,
            shards,
            obs: EngineInstruments::new(&MetricsHandle::disabled()),
            epoch: AtomicU64::new(0),
            version: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            published: RwLock::new(None),
            published_fp: AtomicU64::new(0),
            publish_order: Mutex::new(()),
            tree_cache: Mutex::new(None),
            solve_state: Mutex::new(None),
            peak_merge_transient: AtomicUsize::new(0),
            pool: global(),
            cfg,
        }
    }

    /// Rebinds the engine's instruments onto `metrics`: every counter,
    /// stage span (the publish phases: dirty-shard clone, re-merge,
    /// solve vs certificate replay, snapshot build; per-batch ingest)
    /// and gauge records into its registry from here on.  Counts
    /// accumulated before the rebind carry over, so accessors like
    /// [`Engine::solves`] never regress.  Builder-style because
    /// [`EngineConfig`] is `Copy` and cannot own a handle.
    pub fn with_metrics(mut self, metrics: &MetricsHandle) -> Self {
        let fresh = EngineInstruments::new(metrics);
        fresh.carry_from(&self.obs);
        self.obs = fresh;
        self
    }

    /// The construction parameters.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The metric the engine clusters under (the read side builds its
    /// query views over the same metric).
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// Total weight ingested so far.
    pub fn points_ingested(&self) -> u64 {
        self.obs.points.get()
    }

    /// Epochs published so far (the epoch number of the newest snapshot).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Data version: the number of batches that have fully landed.  Two
    /// equal readings with no ingest in between certify that a snapshot
    /// published at that version is still current.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Merge-tree + Charikar solves performed so far.  Publishing an
    /// unchanged version returns the cached snapshot and does not bump
    /// this — the regression surface for the snapshot fast path.
    pub fn solves(&self) -> u64 {
        self.obs.solves.get()
    }

    /// Pair merges actually performed so far, across all publishes.  A
    /// cold publish of `N` shards costs `N-1`; an incremental publish
    /// after touching a single shard costs at most `⌈log₂N⌉` (one
    /// root-to-leaf path) — the regression surface for the dirty-shard
    /// re-merge.
    pub fn merges(&self) -> u64 {
        self.obs.merges.get()
    }

    /// Charikar solves elided because a publish's freshly merged summary
    /// fingerprinted identically to the cached snapshot's (the data
    /// version advanced but every arrival was absorbed without changing
    /// the merged bits — e.g. weight-saturated representatives).  Each
    /// elision still pays the merge phase, but not the solve, and burns
    /// no epoch number.
    pub fn elisions(&self) -> u64 {
        self.obs.elisions.get()
    }

    /// Ingests one batch of unit-weight points: routes every point to its
    /// shard by value hash, then runs the per-shard insert loops
    /// concurrently on the pool (each sub-batch takes its shard lock
    /// once).
    pub fn ingest(&self, batch: &[P]) {
        self.ingest_stamped(batch.len(), batch.iter().map(|p| (p.clone(), 1)));
    }

    /// Ingests a batch of weighted points (a weight-`w` point is `w`
    /// co-located unit arrivals, per the paper's weighted formulation;
    /// on the arrival clock it occupies *one* slot — a weighted point
    /// is one arrival carrying mass).  Routing keys on the point only,
    /// so weighted and unit arrivals of the same location always
    /// co-locate.
    pub fn ingest_weighted(&self, batch: &[Weighted<P>]) {
        self.ingest_stamped(
            batch.len(),
            batch.iter().map(|wp| (wp.point.clone(), wp.weight)),
        );
    }

    /// The one ingest tail both entry points share: draw a contiguous
    /// range of arrival stamps off the global clock, route each stamped
    /// point to its shard (same per-point hash as before — stamps ride
    /// along), run the per-shard insert loops on the pool (one
    /// shard-lock acquisition per sub-batch), and bump the counters
    /// only once the whole batch has landed (the mid-burst snapshot
    /// semantics the concurrency test documents).  Stamps depend only
    /// on the global arrival order, so batching never changes them.
    fn ingest_stamped(&self, len: usize, items: impl Iterator<Item = (P, u64)>) {
        if len == 0 {
            // An empty flush is a no-op, not an accepted batch.
            return;
        }
        // A routed arrival: (stamp, point, weight).
        type Stamped<P> = (u64, P, u64);
        let t_batch = self.obs.ingest_batch.start();
        let base = self.clock.fetch_add(len as u64, Ordering::AcqRel);
        let mut routed: Vec<Vec<Stamped<P>>> = (0..self.cfg.shards).map(|_| Vec::new()).collect();
        let mut total = 0u64;
        for (i, (p, w)) in items.enumerate() {
            total += w;
            routed[self.router.shard_of(&p)].push((base + 1 + i as u64, p, w));
        }
        let jobs: Vec<(usize, Vec<Stamped<P>>)> = routed
            .into_iter()
            .enumerate()
            .filter(|(_, sub)| !sub.is_empty())
            .collect();
        self.pool.scoped_map(jobs, |_, (shard, sub)| {
            let mut guard = self.shards[shard].lock().expect("shard lock");
            for (t, p, w) in sub {
                guard.insert_weighted(p, w, t);
            }
        });
        self.obs.points.add(total);
        self.obs.batches.incr();
        // Version bumps strictly *after* the batch has landed: a publish
        // that reads the new version is guaranteed to observe shards
        // that already contain the batch (the converse — a shard state
        // newer than the version stamp — is merely conservative and
        // costs one redundant re-solve).  Per-shard dirtiness lives in
        // each backend's state version, read under the shard lock at
        // publish time, so it can never lag the content it stamps.
        self.version.fetch_add(1, Ordering::Release);
        t_batch.finish();
    }

    /// The global arrival clock: how many points have entered ingest so
    /// far (each point occupies one arrival slot, weighted or not).
    pub fn clock(&self) -> u64 {
        self.clock.load(Ordering::Acquire)
    }

    /// Takes an epoch-numbered snapshot of the current contents.
    ///
    /// This is the owning-value face of [`Engine::publish`]: the fast
    /// path applies (an unchanged version returns a clone of the cached
    /// snapshot, same epoch, no re-solve), so repeated snapshots of an
    /// idle engine are cheap and epoch numbers advance only when the
    /// data did.
    pub fn snapshot(&self) -> Snapshot<P> {
        (*self.publish()).clone()
    }

    /// Publishes the current epoch as a shared handle: if nothing was
    /// ingested since the last publish, the cached `Arc` comes back
    /// (wait-free for the data path — no clone phase, no merge, no
    /// solve); otherwise a fresh epoch is solved and cached.
    ///
    /// Readers that only want whatever is already published (and must
    /// never pay a solve) use [`Engine::latest`] instead.
    pub fn publish(&self) -> Arc<Snapshot<P>> {
        if let Some(snap) = self.cached_if_current() {
            return snap;
        }
        // Herd guard: one publisher solves, the rest wait and take the
        // refreshed cache (double-checked after acquiring the lock).  A
        // previous publisher that panicked poisons nothing observable:
        // the guard is recovered, the cache it left behind is either the
        // old complete snapshot or none at all.
        let _publishing = lock_recover(&self.publish_order);
        if let Some(snap) = self.cached_if_current() {
            return snap;
        }
        let (version, snap) = self.solve_snapshot();
        let snap = Arc::new(snap);
        // Publishers are serialized by `publish_order`, so cache epochs
        // strictly increase: an unconditional store never regresses.
        *write_recover(&self.published) = Some((version, Arc::clone(&snap)));
        snap
    }

    /// The cached snapshot iff it is still current (its version stamp
    /// equals the engine's data version).
    fn cached_if_current(&self) -> Option<Arc<Snapshot<P>>> {
        let current = self.version.load(Ordering::Acquire);
        match &*read_recover(&self.published) {
            Some((version, snap)) if *version == current => Some(Arc::clone(snap)),
            _ => None,
        }
    }

    /// The newest published snapshot, without ever solving: `None` until
    /// the first [`Engine::publish`] / [`Engine::snapshot`].  Possibly
    /// stale (ingest may have advanced the version since) — the epoch and
    /// its certified bounds are frozen per snapshot, which is exactly the
    /// consistency contract the read side serves under.
    pub fn latest(&self) -> Option<Arc<Snapshot<P>>> {
        read_recover(&self.published)
            .as_ref()
            .map(|(_, snap)| Arc::clone(snap))
    }

    /// The slow path behind [`Engine::publish`], called only with
    /// `publish_order` held (publishers are fully serialized, which
    /// also orders epoch assignment with the clone phase).  Clones the
    /// *dirty* shard summaries under brief per-shard locks (clean
    /// shards are reused from the previous epoch's tree cache without
    /// taking their locks at all), re-merges only root-to-dirty-leaf
    /// subtrees of the balanced merge tree on the pool, and solves the
    /// merged coreset with the Charikar-et-al. greedy, warm-started
    /// from the canonical merged-summary hint (the Gonzalez (k+z)
    /// radius).  Returns the data version the snapshot is valid for.
    ///
    /// Deterministic given the shard contents: the tree shape depends
    /// only on the shard count (pairing per `kcz_coreset::merge_level`),
    /// each pair merge is a sequential recompression, and a reused
    /// clean node is bit-identical to re-merging its unchanged leaves.
    /// The ε′-per-generation accounting follows the tree depth exactly
    /// as in a full rebuild, so `bound_factor = 3 + 8ε′` is unchanged.
    fn solve_snapshot(&self) -> (u64, Snapshot<P>) {
        let t_total = self.obs.publish_total.start();
        // Take the previous tree out for the duration: a panic below
        // leaves `None` and the next publish simply rebuilds cold.
        let prev = lock_recover(&self.tree_cache).take();
        let n = self.cfg.shards;

        // Read the global version *before* the arrival clock and both
        // before the per-shard pass: a batch landing mid-publish may or
        // may not be in the summaries, but each shard's state version
        // is read under its lock *together with* the content it stamps,
        // so a cached leaf keyed by that stamp can never be stale — at
        // worst a later publish re-clones redundantly.
        let version = self.version.load(Ordering::Acquire);
        let now = self.clock.load(Ordering::Acquire);
        let prev_leaf_versions = match &prev {
            Some(c) if c.leaf_versions.len() == n => Some(c.leaf_versions.clone()),
            _ => None,
        };
        let mut prev_levels: Vec<Vec<Option<InsertionOnlyCoreset<P, M>>>> = match prev {
            Some(c) if prev_leaf_versions.is_some() => c
                .levels
                .into_iter()
                .map(|lvl| lvl.into_iter().map(Some).collect())
                .collect(),
            _ => Vec::new(),
        };

        // Phase 1: leaves.  Every shard is visited under its brief lock:
        // first `advance_to` delivers the publish-time clock (window
        // expiry / decay ticks — *time-driven* mutation that bumps the
        // backend's state version exactly when the summary could have
        // changed), then the stamp decides dirtiness.  Dirty shards
        // build a fresh leaf under the same lock; clean shards reuse the
        // cached clone without copying.  Insertion-only backends ignore
        // time and their leaves are plain clones — bit-identical to the
        // pre-backend engine.
        let t_clone = self.obs.stage_clone.start();
        let mut stamps = vec![0u64; n];
        let mut dirty = vec![true; n];
        let mut leaves = Vec::with_capacity(n);
        let mut shard_peak_words = 0usize;
        for i in 0..n {
            let mut guard = self.shards[i].lock().expect("shard lock");
            guard.advance_to(now);
            stamps[i] = guard.state_version();
            shard_peak_words = shard_peak_words.max(ShardBackend::<P, M>::peak_words(&*guard));
            let clean = prev_leaf_versions
                .as_ref()
                .is_some_and(|lv| lv[i] == stamps[i]);
            if clean {
                drop(guard);
                dirty[i] = false;
                leaves.push(prev_levels[0][i].take().expect("clean leaf cached"));
            } else {
                leaves.push(guard.summary());
            }
        }
        t_clone.finish();

        // Phase 2: the balanced merge tree, one pool round per level,
        // pairing adjacent nodes exactly as `kcz_coreset::merge_level`
        // does (the single tree-shape definition `merge_tree` folds), so
        // the reduction is bit-identical to the sequential full rebuild
        // and the ε′-per-generation accounting matches the tree depth.
        // A pair is re-merged only when one of its leaves is dirty;
        // clean pairs take the cached node.  All levels are kept — they
        // are the next epoch's cache.
        let t_merge = self.obs.stage_merge.start();
        let depth = tree_depth(n);
        let mut levels: Vec<Vec<InsertionOnlyCoreset<P, M>>> = vec![leaves];
        let mut level_dirty = dirty;
        // Interior cache levels, bottom-up (empty when nothing was
        // cached — but then every pair is dirty and none is consulted).
        let mut cached_above = prev_levels.into_iter().skip(1);
        for _ in 1..=depth {
            let mut cached = cached_above.next().unwrap_or_default();
            let below = levels.last().expect("level below exists");
            let width = below.len().div_ceil(2);
            let pair_dirty: Vec<bool> = (0..width)
                .map(|p| level_dirty[2 * p] || level_dirty.get(2 * p + 1).copied().unwrap_or(false))
                .collect();
            let mut nodes: Vec<Option<InsertionOnlyCoreset<P, M>>> =
                (0..width).map(|_| None).collect();
            let mut jobs = Vec::new();
            for (p, node) in nodes.iter_mut().enumerate() {
                if !pair_dirty[p] {
                    *node = Some(cached[p].take().expect("clean node cached"));
                } else {
                    let left = below[2 * p].clone();
                    let right = below.get(2 * p + 1).cloned();
                    if right.is_some() {
                        self.obs.merges.incr();
                    }
                    jobs.push((p, left, right));
                }
            }
            let remerged = self.pool.scoped_map(jobs, |_, (p, mut left, right)| {
                if let Some(right) = right {
                    MergeableSummary::merge(&mut left, right);
                }
                (p, left)
            });
            for (p, node) in remerged {
                nodes[p] = Some(node);
            }
            levels.push(nodes.into_iter().map(|n| n.expect("node filled")).collect());
            level_dirty = pair_dirty;
        }
        let merge_transient_words: usize = levels
            .iter()
            .flat_map(|lvl| lvl.iter())
            .map(|node| node.space_words())
            .sum();
        self.peak_merge_transient
            .fetch_max(merge_transient_words, Ordering::Relaxed);
        self.obs
            .peak_transient
            .set_max(merge_transient_words as u64);
        let merged = levels.last().and_then(|l| l.first()).expect("merged root");
        t_merge.finish();

        // Solve elision: the solve below is a deterministic function of
        // the merged bits (canonical warm hint), so when the freshly
        // merged summary fingerprints identically to the one the cached
        // snapshot solved on, that solution *is* this version's
        // solution.  Re-key the cached snapshot to the new data version
        // with fresh resource accounting — no Charikar solve, no epoch
        // burned.  This fires when the version advanced but no arrival
        // changed the merged bits (weight-saturated representatives).
        let fp = fingerprint_summary(merged);
        if self.published_fp.load(Ordering::Relaxed) == fp {
            if let Some((_, prior)) = &*read_recover(&self.published) {
                let t_replay = self.obs.stage_replay.start();
                self.obs.elisions.incr();
                let mut snap = (**prior).clone();
                snap.clock = now;
                snap.stats.points = self.obs.points.get();
                snap.stats.batches = self.obs.batches.get();
                snap.stats.shard_peak_words = shard_peak_words;
                snap.stats.merge_transient_words = merge_transient_words;
                snap.stats.solves = self.obs.solves.get();
                snap.stats.merges = self.obs.merges.get();
                snap.stats.elisions = self.obs.elisions.get();
                if self.cfg.incremental {
                    *lock_recover(&self.tree_cache) = Some(TreeCache {
                        leaf_versions: stamps,
                        levels,
                    });
                }
                t_replay.finish();
                t_total.finish();
                return (version, snap);
            }
        }

        // Phase 3: solve on the merged summary, warm-started from a
        // *canonical* hint — the Gonzalez (k+z)-center radius of the
        // merged coreset.  The hint is a pure function of the merged
        // bits (no publish history), so every mode — incremental,
        // full-republish, a from-scratch oracle — computes the same
        // hint on the same data and settles on bit-identical answers,
        // while the search pays ~2·log₂(gap) probes around the hint
        // instead of a full cold bisection.  (R_gonz(k+z) ≤ 2·opt_{k,z}
        // and every guess ≥ opt is feasible, so the gap is O(1) grid
        // steps.)  Fallback to a cold solve when the hint degenerates:
        // k+z covers most of the coreset (radius ≈ 0, galloping up from
        // the bottom would cost more than bisecting).
        self.obs.solves.incr();
        let t_solve = self.obs.stage_solve.start();
        let radius_bound = merged.radius_bound();
        let budget = self.cfg.k.saturating_add(self.cfg.z as usize);
        let params = if budget < merged.coreset().len() / 2 {
            let hint = farthest_first(&self.metric, merged.coreset(), budget, 0).radius;
            if hint > 0.0 {
                GreedyParams::warm(hint)
            } else {
                GreedyParams::default()
            }
        } else {
            GreedyParams::default()
        };
        let sol = match self.cfg.solver {
            SolverMode::Cold => greedy_with(
                &self.metric,
                merged.coreset(),
                self.cfg.k,
                self.cfg.z,
                &params,
            ),
            SolverMode::Delta => {
                // Take the state out for the duration: a panicking solve
                // leaves `None` and the next publish solves cold.  The
                // hint above is already the canonical function of the
                // merged bits, so the stateful solve retraces exactly
                // the search a cold solve would run.
                let mut state = lock_recover(&self.solve_state).take();
                let sol = greedy_stateful(
                    &self.metric,
                    merged.coreset(),
                    self.cfg.k,
                    self.cfg.z,
                    &params,
                    &mut state,
                );
                *lock_recover(&self.solve_state) = state;
                sol
            }
        };
        t_solve.finish();
        self.obs.probes.add(sol.probes as u64);
        self.obs.reused.add(sol.reused_verdicts as u64);
        // ε′ composition: the merged root accounts the leaf ε and the
        // per-generation widening; the window / decay stage sits in
        // front of the leaves and adds its own ε (zero for insertion —
        // `x + 0.0` is exact, so insertion snapshots are bit-identical).
        let effective_eps = merged.effective_eps() + self.cfg.backend.extra_eps(self.cfg.eps);
        // The epoch number is drawn only now, on success: a panicking
        // merge or solve burns no epoch, keeping the "epochs advance
        // only when data did" contract across failed publishes.
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let t_build = self.obs.stage_build.start();
        let summary_words = merged.space_words();
        let snap = Snapshot {
            epoch,
            centers: sol.centers,
            radius: sol.radius,
            radius_bound,
            uncovered: sol.uncovered,
            guess: sol.guess,
            effective_eps,
            bound_factor: end_to_end_factor(effective_eps),
            clock: now,
            backend: self.cfg.backend,
            stats: EngineStats {
                shards: self.cfg.shards,
                points: self.obs.points.get(),
                batches: self.obs.batches.get(),
                shard_peak_words,
                merge_transient_words,
                summary_words,
                solve_probes: sol.probes,
                reused_verdicts: sol.reused_verdicts,
                solves: self.obs.solves.get(),
                merges: self.obs.merges.get(),
                elisions: self.obs.elisions.get(),
            },
            coreset: merged.coreset().to_vec(),
        };
        if self.cfg.incremental {
            *lock_recover(&self.tree_cache) = Some(TreeCache {
                leaf_versions: stamps,
                levels,
            });
        }
        self.published_fp.store(fp, Ordering::Relaxed);
        t_build.finish();
        self.obs.coreset_size.set(snap.coreset.len() as u64);
        self.obs.summary_words.set(summary_words as u64);
        self.obs.epoch_gauge.set(epoch);
        t_total.finish();
        (version, snap)
    }

    /// Largest merge transient observed over all snapshots so far.
    pub fn peak_merge_transient_words(&self) -> usize {
        self.peak_merge_transient.load(Ordering::Relaxed)
    }

    /// Per-shard resident representative counts right now (diagnostics;
    /// takes each lock briefly).  Insertion shards report their coreset
    /// size, window shards their live buffer length, decay shards their
    /// live representative count.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard lock").rep_len())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcz_kcenter::exact_discrete;
    use kcz_metric::{total_weight, L2};

    /// Two clusters + far outliers, deterministic.
    fn stream(n: usize) -> Vec<[f64; 2]> {
        let mut out = Vec::with_capacity(n);
        let mut s = 0xDEADBEEFu64;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for i in 0..n {
            if i % 60 == 59 {
                out.push([5000.0 + next() * 1000.0, -3000.0]);
            } else if i % 2 == 0 {
                out.push([next() * 3.0, next() * 3.0]);
            } else {
                out.push([90.0 + next() * 3.0, 90.0 + next() * 3.0]);
            }
        }
        out
    }

    #[test]
    fn weight_preserved_across_shards_and_batches() {
        let engine = Engine::new(L2, EngineConfig::new(4, 2, 10, 0.5));
        let pts = stream(500);
        for batch in pts.chunks(64) {
            engine.ingest(batch);
        }
        assert_eq!(engine.points_ingested(), 500);
        let snap = engine.snapshot();
        assert_eq!(snap.epoch, 1);
        assert_eq!(total_weight(&snap.coreset), 500);
        assert_eq!(snap.stats.points, 500);
        assert_eq!(snap.stats.shards, 4);
        assert!(snap.stats.shard_peak_words > 0);
        assert!(snap.stats.merge_transient_words >= snap.stats.shard_peak_words);
    }

    #[test]
    fn snapshot_is_deterministic_in_batching() {
        let pts = stream(400);
        let run = |batch_size: usize| {
            let engine = Engine::new(L2, EngineConfig::new(4, 2, 8, 0.5));
            for batch in pts.chunks(batch_size) {
                engine.ingest(batch);
            }
            engine.snapshot()
        };
        let (a, b) = (run(32), run(127));
        assert_eq!(a.radius, b.radius);
        assert_eq!(a.centers, b.centers);
        assert_eq!(a.coreset.len(), b.coreset.len());
        for (x, y) in a.coreset.iter().zip(&b.coreset) {
            assert_eq!(x.point, y.point);
            assert_eq!(x.weight, y.weight);
        }
    }

    #[test]
    fn snapshot_radius_meets_certified_bound() {
        let pts = stream(220);
        for shards in [1usize, 4, 8] {
            let engine = Engine::new(L2, EngineConfig::new(shards, 2, 6, 0.5));
            for batch in pts.chunks(50) {
                engine.ingest(batch);
            }
            let snap = engine.snapshot();
            // Re-measure the snapshot's centers on the *full input*.
            let weighted: Vec<Weighted<[f64; 2]>> =
                pts.iter().map(|p| Weighted::unit(*p)).collect();
            let measured = kcz_kcenter::cost_with_outliers(&L2, &weighted, &snap.centers, 6);
            let opt = exact_discrete(&L2, &weighted, 2, 6, &pts).radius;
            assert!(
                measured <= snap.bound_factor * opt + 1e-9,
                "shards={shards}: {measured} > {}·{opt}",
                snap.bound_factor
            );
            assert!(snap.radius_bound <= opt + 1e-9, "r must lower-bound opt");
            // ε′ widens only with tree depth.
            let gens = (shards as f64).log2().ceil();
            assert!(
                (snap.effective_eps - (0.5 + gens * 0.25)).abs() < 1e-12,
                "shards={shards}: ε′ = {}",
                snap.effective_eps
            );
        }
    }

    #[test]
    fn snapshots_interleave_with_ingest() {
        let engine = Engine::new(L2, EngineConfig::new(3, 2, 10, 0.5));
        let pts = stream(600);
        let mut epochs = Vec::new();
        for (i, batch) in pts.chunks(100).enumerate() {
            engine.ingest(batch);
            if i % 2 == 1 {
                epochs.push(engine.snapshot().epoch);
            }
        }
        // Nothing landed since the last snapshot: the cached epoch comes
        // back, not a fresh one.
        let last = engine.snapshot();
        assert_eq!(last.epoch, epochs.len() as u64);
        assert_eq!(total_weight(&last.coreset), 600);
        assert!(engine.peak_merge_transient_words() > 0);
        // One more arrival advances the version and thus the epoch.
        engine.ingest(&[[1.0, 1.0]]);
        let fresh = engine.snapshot();
        assert_eq!(fresh.epoch, epochs.len() as u64 + 1);
        assert_eq!(total_weight(&fresh.coreset), 601);
    }

    #[test]
    fn unchanged_version_publishes_cached_snapshot_without_resolving() {
        let engine = Engine::new(L2, EngineConfig::new(4, 2, 10, 0.5));
        assert!(engine.latest().is_none(), "nothing published yet");
        engine.ingest(&stream(200));
        let a = engine.publish();
        assert_eq!(engine.solves(), 1);
        // Same version: same Arc back, no merge tree, no Charikar solve.
        let b = engine.publish();
        assert!(std::sync::Arc::ptr_eq(&a, &b), "cached Arc must be reused");
        assert_eq!(engine.solves(), 1, "unchanged version must not re-solve");
        assert_eq!(engine.snapshot().epoch, a.epoch);
        assert_eq!(engine.solves(), 1);
        // `latest` never solves; it reads whatever is published.
        let l = engine.latest().expect("published");
        assert!(std::sync::Arc::ptr_eq(&a, &l));
        // New data invalidates the cache exactly once.
        engine.ingest(&[[7.0, 7.0]]);
        let c = engine.publish();
        assert_eq!(c.epoch, a.epoch + 1);
        assert_eq!(engine.solves(), 2);
        assert_eq!(total_weight(&c.coreset), 201);
    }

    #[test]
    fn publish_herd_collapses_to_one_solve() {
        // N refreshers racing onto the same new data version must cost
        // one merge + solve total, not N (the double-checked herd guard).
        let engine = Engine::new(L2, EngineConfig::new(4, 2, 10, 0.5));
        engine.ingest(&stream(150));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let snap = engine.publish();
                    assert_eq!(snap.epoch, 1);
                });
            }
        });
        assert_eq!(engine.solves(), 1, "herd must share a single solve");
        assert_eq!(engine.epoch(), 1, "no epoch numbers burned on discards");
    }

    #[test]
    fn weighted_ingest_equals_unit_ingest() {
        let pts = stream(120);
        let a = Engine::new(L2, EngineConfig::new(4, 2, 6, 0.5));
        let b = Engine::new(L2, EngineConfig::new(4, 2, 6, 0.5));
        for batch in pts.chunks(30) {
            a.ingest(batch);
            let weighted: Vec<Weighted<[f64; 2]>> =
                batch.iter().map(|p| Weighted::unit(*p)).collect();
            b.ingest_weighted(&weighted);
        }
        let (sa, sb) = (a.snapshot(), b.snapshot());
        assert_eq!(sa.radius, sb.radius);
        assert_eq!(total_weight(&sa.coreset), total_weight(&sb.coreset));
    }

    #[test]
    fn empty_engine_snapshot_is_sane() {
        let engine = Engine::<[f64; 2], _>::new(L2, EngineConfig::new(4, 2, 3, 0.5));
        let snap = engine.snapshot();
        assert_eq!(snap.coreset.len(), 0);
        assert_eq!(snap.radius, 0.0);
        assert_eq!(snap.stats.points, 0);
    }

    #[test]
    fn duplicate_heavy_mass_lands_on_one_shard() {
        // 90% of the mass is one duplicated site: hashing co-locates it,
        // the skewed shard absorbs it into one representative.
        let engine = Engine::new(L2, EngineConfig::new(4, 2, 5, 0.5));
        let mut pts = vec![[100.0, 100.0]; 90];
        for i in 0..10 {
            pts.push([i as f64 * 37.0, 900.0]);
        }
        engine.ingest(&pts);
        let sizes = engine.shard_sizes();
        assert_eq!(sizes.len(), 4);
        let snap = engine.snapshot();
        assert_eq!(total_weight(&snap.coreset), 100);
        let hot = snap
            .coreset
            .iter()
            .find(|w| w.point == [100.0, 100.0])
            .expect("hot site survives");
        assert_eq!(hot.weight, 90);
    }

    #[test]
    fn saturated_absorbs_elide_the_solve_and_burn_no_epoch() {
        // A weight-saturated representative absorbs further co-located
        // arrivals without changing any merged bit: the data version
        // advances (the cached-Arc fast path misses) but the merged
        // summary fingerprints identically, so publish re-keys the
        // cached solution instead of re-running Charikar.
        let engine = Engine::new(L2, EngineConfig::new(2, 1, 0, 0.5));
        engine.ingest_weighted(&[Weighted::new([1.0, 1.0], u64::MAX)]);
        let a = engine.publish();
        assert_eq!((engine.solves(), engine.elisions()), (1, 0));
        engine.ingest(&[[1.0, 1.0]]);
        assert!(engine.version() > 1, "version must advance");
        let b = engine.publish();
        assert_eq!(
            engine.solves(),
            1,
            "unchanged merged bits must not re-solve"
        );
        assert_eq!(engine.elisions(), 1);
        assert_eq!(b.epoch, a.epoch, "no epoch burned on an elided solve");
        assert_eq!(b.centers, a.centers);
        assert_eq!(b.radius.to_bits(), a.radius.to_bits());
        assert_eq!(b.stats.batches, a.stats.batches + 1, "fresh accounting");
        // The re-keyed snapshot is now current: the next publish takes
        // the wait-free cached-Arc path, and changed bits still solve.
        let c = engine.publish();
        assert_eq!((engine.solves(), engine.elisions()), (1, 1));
        assert_eq!(c.epoch, a.epoch);
        engine.ingest(&[[500.0, -3.0]]);
        let d = engine.publish();
        assert_eq!(d.epoch, a.epoch + 1);
        assert_eq!((engine.solves(), engine.elisions()), (2, 1));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = Engine::<[f64; 2], _>::new(L2, EngineConfig::new(0, 2, 3, 0.5));
    }

    #[test]
    fn empty_batch_is_a_noop() {
        // A timer-driven caller that sometimes flushes empty must not
        // inflate the "batches accepted" count.
        let engine = Engine::<[f64; 2], _>::new(L2, EngineConfig::new(3, 2, 3, 0.5));
        engine.ingest(&[]);
        engine.ingest_weighted(&[]);
        let snap = engine.snapshot();
        assert_eq!(snap.stats.batches, 0);
        assert_eq!(snap.stats.points, 0);
        engine.ingest(&[[1.0, 2.0]]);
        assert_eq!(engine.snapshot().stats.batches, 1);
    }
}
