//! The shared execution runtime: a persistent worker pool.
//!
//! Every "round" in this workspace — an MPC machine-local computation, a
//! shard batch in the resident engine, a conformance grid cell, a bench
//! case — is the same shape: `n` independent tasks whose results must come
//! back in input order.  The original simulator spawned a fresh set of OS
//! threads per round (`std::thread::scope` in `kcz_mpc::exec`), paying
//! thread start-up and teardown on every round.  [`Pool`] keeps the
//! workers alive across rounds and feeds them batches through a shared
//! injector queue.
//!
//! # Execution model
//!
//! [`Pool::scoped_map`] publishes a batch (an atomic task cursor over the
//! items), enqueues one *invitation* per idle worker, and then runs the
//! batch itself from the calling thread.  Any worker that picks up an
//! invitation joins the cursor loop; the batch finishes even if every
//! worker is busy (the caller alone drains it), which makes nested
//! `scoped_map` calls from inside pool tasks deadlock-free by
//! construction.  Results land in per-index slots, so output order is
//! deterministic regardless of which thread ran which task.
//!
//! # Safety protocol
//!
//! Tasks may borrow caller-stack data, while workers are `'static`
//! threads, so the batch pointer handed to the queue has its lifetime
//! erased.  Soundness rests on a retire handshake documented at the
//! `unsafe` sites: the caller does not return until every task has run
//! *and* no worker is still inside the batch (`runners == 0`), after
//! which the batch is flagged retired under the monitor lock; a worker
//! only dereferences the erased pointer after registering as a runner
//! under that same lock and observing the batch un-retired.  Panicking
//! tasks are caught, counted, and re-thrown on the calling thread once
//! the batch quiesces.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Progress of one published batch, shared between the caller and any
/// workers that joined it.
struct BatchMonitor {
    state: Mutex<BatchProgress>,
    quiesced: Condvar,
}

struct BatchProgress {
    /// Tasks not yet completed (decremented exactly once per task).
    remaining: usize,
    /// Workers currently inside the batch's `run` loop (the caller does
    /// not count itself: it never returns before its own loop exits).
    runners: usize,
    /// Set by the caller after quiescence; late invitations must not
    /// touch the (by then freed) batch.
    retired: bool,
    /// First panic payload from any task, re-thrown by the caller.
    panic: Option<Box<dyn Any + Send>>,
}

impl BatchMonitor {
    fn new(tasks: usize) -> Self {
        BatchMonitor {
            state: Mutex::new(BatchProgress {
                remaining: tasks,
                runners: 0,
                retired: false,
                panic: None,
            }),
            quiesced: Condvar::new(),
        }
    }
}

/// Object-safe face of a typed batch: pull tasks off the cursor until the
/// batch is exhausted.
trait BatchRun: Sync {
    fn run(&self);
}

/// A typed batch living on the caller's stack for the duration of one
/// [`Pool::scoped_map`].
struct Batch<'f, T, R, F> {
    cursor: AtomicUsize,
    tasks: Vec<Mutex<Option<T>>>,
    results: Vec<Mutex<Option<R>>>,
    f: &'f F,
    monitor: Arc<BatchMonitor>,
}

impl<T: Send, R: Send, F: Fn(usize, T) -> R + Sync> BatchRun for Batch<'_, T, R, F> {
    fn run(&self) {
        let n = self.tasks.len();
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                return;
            }
            let task = self.tasks[i]
                .lock()
                .unwrap()
                .take()
                .expect("task taken once");
            // Panics must not leak into a pool worker (it would die and
            // silently shrink the pool) nor skip the `remaining`
            // decrement (the caller would wait forever).
            let outcome = catch_unwind(AssertUnwindSafe(|| (self.f)(i, task)));
            match outcome {
                Ok(r) => *self.results[i].lock().unwrap() = Some(r),
                Err(payload) => {
                    let mut st = self.monitor.state.lock().unwrap();
                    if st.panic.is_none() {
                        st.panic = Some(payload);
                    }
                }
            }
            let mut st = self.monitor.state.lock().unwrap();
            st.remaining -= 1;
            if st.remaining == 0 {
                // The caller may be waiting; runners (if any) notify
                // again as they deregister.
                self.monitor.quiesced.notify_all();
            }
        }
    }
}

/// One invitation in the injector queue: an erased pointer to a live
/// batch plus the monitor that guards its liveness.
struct Invitation {
    /// Lifetime-erased pointer to a `Batch` on some caller's stack.
    /// Dereferenced only between `runners += 1` and `runners -= 1`,
    /// and only when the monitor says the batch is not retired.
    batch: *const (dyn BatchRun + 'static),
    monitor: Arc<BatchMonitor>,
}

// SAFETY: the pointee is `Sync` (required by `BatchRun`), and the retire
// handshake (see module docs) guarantees it is alive whenever a worker
// dereferences the pointer.
unsafe impl Send for Invitation {}

/// Queue state guarded by the mutex the [`Injector`]'s condvar is paired
/// with.  `shutdown` lives *inside* this state on purpose: if it were a
/// separate flag, a worker could read it as `false`, release the queue
/// lock, and block in `wait` just as `Drop` sets the flag and notifies —
/// a lost wakeup that would hang `Drop`'s `join` forever.  Keeping flag
/// and queue under one mutex serializes the flag write with the wait.
struct InjectorState {
    queue: VecDeque<Invitation>,
    shutdown: bool,
}

struct Injector {
    state: Mutex<InjectorState>,
    available: Condvar,
}

/// A persistent worker pool with order-preserving parallel map.
///
/// Create one with [`Pool::new`] (tests, dedicated engines) or share the
/// process-wide instance via [`global`].  Dropping an owned pool shuts it
/// down gracefully: workers finish the queued invitations, then exit, and
/// `Drop` joins them.
pub struct Pool {
    injector: Arc<Injector>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// A pool with `threads` persistent workers.  `threads = 0` is valid
    /// and degrades every [`scoped_map`](Self::scoped_map) to an inline
    /// sequential loop on the calling thread.
    pub fn new(threads: usize) -> Self {
        let injector = Arc::new(Injector {
            state: Mutex::new(InjectorState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let injector = Arc::clone(&injector);
                std::thread::Builder::new()
                    .name(format!("kcz-pool-{i}"))
                    .spawn(move || worker_loop(&injector))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { injector, workers }
    }

    /// Number of persistent workers (the calling thread always
    /// participates on top of these).
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Applies `f` to every item, in parallel across the pool plus the
    /// calling thread, and returns the results **in input order**.
    ///
    /// The call blocks until every task has completed; tasks may
    /// therefore borrow from the caller's stack (via `f`'s captures or
    /// `T` itself).  A panic in any task is re-thrown here after the
    /// whole batch has quiesced.  Nested calls from inside pool tasks
    /// are safe: the inner caller drives its own batch to completion
    /// even when every worker is occupied.
    pub fn scoped_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        if self.workers.is_empty() || n == 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, t)| f(i, t))
                .collect();
        }
        let monitor = Arc::new(BatchMonitor::new(n));
        let batch = Batch {
            cursor: AtomicUsize::new(0),
            tasks: items.into_iter().map(|t| Mutex::new(Some(t))).collect(),
            results: (0..n).map(|_| Mutex::new(None)).collect(),
            f: &f,
            monitor: Arc::clone(&monitor),
        };
        // Erase the batch's borrow of the caller's stack.  SAFETY: the
        // retire handshake below guarantees no worker dereferences this
        // pointer after `scoped_map` returns.
        let erased: *const (dyn BatchRun + 'static) = unsafe {
            std::mem::transmute::<*const (dyn BatchRun + '_), *const (dyn BatchRun + 'static)>(
                &batch as &dyn BatchRun as *const (dyn BatchRun + '_),
            )
        };
        let invitations = self.workers.len().min(n - 1);
        {
            let mut st = self.injector.state.lock().unwrap();
            for _ in 0..invitations {
                st.queue.push_back(Invitation {
                    batch: erased,
                    monitor: Arc::clone(&monitor),
                });
            }
        }
        if invitations == 1 {
            self.injector.available.notify_one();
        } else {
            self.injector.available.notify_all();
        }

        // Participate: the caller alone suffices to finish the batch.
        batch.run();

        // Quiesce and retire: wait until every task is done and no worker
        // is still inside `batch.run`, then flag the batch dead so any
        // invitation still sitting in the queue is ignored.
        let payload = {
            let mut st = monitor.state.lock().unwrap();
            while st.remaining > 0 || st.runners > 0 {
                st = monitor.quiesced.wait(st).unwrap();
            }
            st.retired = true;
            st.panic.take()
        };
        if let Some(p) = payload {
            resume_unwind(p);
        }
        batch
            .results
            .into_iter()
            .map(|slot| slot.into_inner().unwrap().expect("every task completed"))
            .collect()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // The flag is set under the queue mutex (see `InjectorState`), so
        // every worker either sees it before waiting or is already in
        // `wait` when the notification lands — no lost wakeup.
        self.injector.state.lock().unwrap().shutdown = true;
        self.injector.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(injector: &Injector) {
    loop {
        let invitation = {
            let mut st = injector.state.lock().unwrap();
            loop {
                if let Some(inv) = st.queue.pop_front() {
                    break inv;
                }
                if st.shutdown {
                    return;
                }
                st = injector.available.wait(st).unwrap();
            }
        };
        // Register as a runner, unless the batch already retired (its
        // caller returned; the pointer is dangling and must not be
        // touched).
        let joined = {
            let mut st = invitation.monitor.state.lock().unwrap();
            if st.retired || st.remaining == 0 {
                false
            } else {
                st.runners += 1;
                true
            }
        };
        if !joined {
            continue;
        }
        // SAFETY: `runners` was incremented under the monitor lock while
        // the batch was not retired, and the caller cannot retire (or
        // return) until `runners` drops back to zero — so the pointee is
        // alive for the whole call.
        unsafe { (*invitation.batch).run() };
        let mut st = invitation.monitor.state.lock().unwrap();
        st.runners -= 1;
        if st.runners == 0 && st.remaining == 0 {
            invitation.monitor.quiesced.notify_all();
        }
    }
}

/// The process-wide shared pool, sized to the available parallelism
/// (minus the participating caller), created on first use.  The MPC
/// simulator, the resident engine, the conformance harness and the bench
/// drivers all map their rounds through this instance unless handed a
/// dedicated [`Pool`].
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let threads = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(4)
            .saturating_sub(1);
        Pool::new(threads)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_order() {
        let pool = Pool::new(3);
        let items: Vec<u64> = (0..257).collect();
        let out = pool.scoped_map(items, |i, x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..257).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_and_zero_thread_pools() {
        let pool = Pool::new(0);
        let out: Vec<u32> = pool.scoped_map(Vec::new(), |_, x| x);
        assert!(out.is_empty());
        let out = pool.scoped_map(vec![1u32, 2, 3], |_, x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = Pool::new(4);
        let counter = AtomicUsize::new(0);
        let out = pool.scoped_map((0..1000).collect::<Vec<usize>>(), |_, x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn reused_across_many_rounds() {
        let pool = Pool::new(2);
        for round in 0..50 {
            let out = pool.scoped_map(vec![round; 8], |i, r| i + r);
            assert_eq!(out, (0..8).map(|i| i + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn tasks_may_borrow_caller_stack() {
        let pool = Pool::new(2);
        let data: Vec<Vec<u64>> = (0..20).map(|i| vec![i; 10]).collect();
        let refs: Vec<&Vec<u64>> = data.iter().collect();
        let sums = pool.scoped_map(refs, |_, v| v.iter().sum::<u64>());
        assert_eq!(sums, (0..20).map(|i| i * 10).collect::<Vec<u64>>());
    }

    #[test]
    fn nested_scoped_map_from_pool_tasks() {
        let pool = Pool::new(2);
        let out = pool.scoped_map((0..6u64).collect::<Vec<_>>(), |_, x| {
            global()
                .scoped_map((0..4u64).collect::<Vec<_>>(), |_, y| x * 10 + y)
                .into_iter()
                .sum::<u64>()
        });
        assert_eq!(out, (0..6u64).map(|x| 40 * x + 6).collect::<Vec<_>>());
    }

    #[test]
    fn panic_propagates_after_quiescence() {
        let pool = Pool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scoped_map((0..32u32).collect::<Vec<_>>(), |i, x| {
                if i == 7 {
                    panic!("task seven failed");
                }
                x
            })
        }));
        assert!(caught.is_err());
        // The pool survives a panicking batch.
        let out = pool.scoped_map(vec![1u32, 2], |_, x| x * 3);
        assert_eq!(out, vec![3, 6]);
    }

    #[test]
    fn graceful_shutdown_joins_workers() {
        let pool = Pool::new(3);
        let _ = pool.scoped_map(vec![1u8, 2, 3, 4], |_, x| x);
        drop(pool); // must not hang or leak
    }

    #[test]
    fn rapid_create_drop_never_hangs() {
        // Regression: the shutdown flag must live under the same mutex as
        // the invitation queue.  As a separate flag, a worker could read
        // it un-set, then block in `wait` just as Drop set it and
        // notified — a lost wakeup hanging Drop's `join` forever.  Hammer
        // the create→use→drop path (workers racing between queue check
        // and wait at drop time) to keep the interleaving exercised.
        for round in 0..200usize {
            let pool = Pool::new(2);
            if round % 2 == 0 {
                let _ = pool.scoped_map(vec![round, round + 1], |_, x| x);
            }
            drop(pool);
        }
    }

    #[test]
    fn global_pool_is_shared_and_alive() {
        let a = global() as *const Pool;
        let b = global() as *const Pool;
        assert_eq!(a, b);
        let out = global().scoped_map(vec![5u64, 6], |_, x| x * x);
        assert_eq!(out, vec![25, 36]);
    }
}
