//! Pluggable per-shard backends: how a shard turns arrivals into the
//! [`InsertionOnlyCoreset`] leaf the engine's merge tree consumes.
//!
//! The engine's publish path is mode-agnostic: every backend produces an
//! insertion-only summary as its *leaf*, and the same balanced merge
//! tree, dirty-shard republish and Charikar solve run on top.  What a
//! backend changes is **which multiset the leaf summarizes**:
//!
//! * [`InsertionShard`] — everything ever ingested (the original engine
//!   behavior, bit-for-bit: its leaf *is* the resident insertion-only
//!   coreset, cloned).
//! * [`WindowShard`] — only the points whose global arrival stamp lies
//!   in the last `W` arrivals.  The shard keeps the exact unexpired
//!   suffix in a stamp-sorted buffer and, at publish time, re-streams it
//!   through a fresh [`SlidingWindowCoreset`] (the de Berg–Monemizadeh–
//!   Zhong mini-ball machinery): the chosen guess's stored points, in
//!   arrival order, feed the leaf.  Because the leaf is a pure function
//!   of the unexpired suffix — and every stamp comparison is
//!   shift-invariant — a from-scratch engine replaying only that suffix
//!   publishes bit-identical verdicts (the property the conformance
//!   churn oracles pin).
//! * [`DecayShard`] — everything, but with exponentially decayed
//!   weights: each representative's weight halves every `half_life`
//!   arrivals since it was last touched (the DenStream-style
//!   micro-cluster rule), and representatives whose decayed weight falls
//!   below ½ are dropped.
//!
//! # Time is the arrival clock
//!
//! The engine stamps every ingested point with its position in the
//! global arrival order and hands backends that clock: `insert_weighted`
//! carries the point's stamp, and [`ShardBackend::advance_to`] delivers
//! pure time passage (arrivals that landed on *sibling* shards).  Time
//! therefore advances only when data arrives — an unchanged engine
//! version still implies an unchanged publish, so the cached-snapshot
//! fast path stays exact in every mode.
//!
//! # The dirty-shard contract
//!
//! [`ShardBackend::state_version`] must advance whenever the summary the
//! backend *would* publish could have changed — on every insert, but
//! also on time-driven mutation: a window expiry or a decay tick with
//! live representatives.  This is what fixes the staleness bug the
//! insertion-only engine could not exhibit: a shard no batch touched is
//! only "clean" if time did not mutate it either.
//!
//! # ε′ composition
//!
//! The merge tree's `effective_eps` accounts the leaf ε and the per-
//! generation widening.  The window and decay stages sit *in front of*
//! the leaf and contribute their own ε of summarization error, reported
//! via [`Backend::extra_eps`] and folded into the published
//! `effective_eps` (and thus `bound_factor = 3 + 8ε′`).  Insertion mode
//! contributes zero — its snapshots are bit-identical to the
//! pre-backend engine.

use std::collections::VecDeque;

use kcz_coreset::streaming_capacity;
use kcz_metric::{MetricSpace, Precision, SpaceUsage};
use kcz_streaming::{InsertionOnlyCoreset, SlidingWindowCoreset};

/// Which per-shard backend an engine runs (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backend {
    /// Insertion-only: shards summarize everything ever ingested.
    Insertion,
    /// Sliding window: shards summarize the last `W` global arrivals.
    Window(u64),
    /// Exponential decay: representative weights halve every
    /// `half_life` arrivals since last touch; weights below ½ expire.
    Decay(f64),
}

impl Backend {
    /// The summarization error the backend stage adds in front of the
    /// shard leaf, in units of the configured ε: zero for insertion-only
    /// (the leaf ingests the exact arrivals), one ε for the window and
    /// decay stages (mini-ball clamping / decayed-weight rounding move
    /// summarized mass by at most ε·opt before the leaf ever sees it).
    pub fn extra_eps(&self, eps: f64) -> f64 {
        match self {
            Backend::Insertion => 0.0,
            Backend::Window(_) | Backend::Decay(_) => eps,
        }
    }

    /// The window span `(oldest, newest)` of live arrival stamps at
    /// clock `clock` — `None` for non-window backends or before the
    /// first arrival.
    pub fn window_span(&self, clock: u64) -> Option<(u64, u64)> {
        match self {
            Backend::Window(w) if clock > 0 => Some((clock.saturating_sub(w - 1).max(1), clock)),
            _ => None,
        }
    }

    /// Short mode name (CLI reporting).
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Insertion => "insertion",
            Backend::Window(_) => "window",
            Backend::Decay(_) => "decay",
        }
    }
}

/// One shard's ingest-and-summarize state machine.
///
/// The engine drives it under the shard lock: `insert_weighted` for
/// arrivals routed here, `advance_to` at publish time so pure time
/// passage (arrivals on sibling shards) mutates the window / decay
/// state, then `state_version` to decide dirtiness and `summary` to
/// clone the merge-tree leaf when dirty.
pub trait ShardBackend<P, M: MetricSpace<P>> {
    /// Ingests one arrival: point `p` with weight `w` at global arrival
    /// stamp `arrival` (stamps are non-decreasing per shard under
    /// single-writer ingest; concurrent batches may interleave, which
    /// implementations must tolerate).
    fn insert_weighted(&mut self, p: P, w: u64, arrival: u64);

    /// Delivers pure time passage: the global clock reached `now`
    /// without an arrival landing here.  Implementations expire / decay
    /// whatever `now` invalidates and bump their state version iff the
    /// published summary could have changed.
    fn advance_to(&mut self, now: u64);

    /// Monotone stamp that advances on *every* mutation that could
    /// change [`summary`](Self::summary) — inserts and time-driven
    /// mutation alike.  Equal stamps across two publishes certify the
    /// cached leaf is still exact.
    fn state_version(&self) -> u64;

    /// Builds (or clones) the merge-tree leaf summarizing this shard's
    /// live content.  Deterministic given the shard state.
    fn summary(&mut self) -> InsertionOnlyCoreset<P, M>;

    /// Peak storage this shard has held, in words.
    fn peak_words(&self) -> usize;

    /// Representatives currently resident (diagnostics).
    fn rep_len(&self) -> usize;
}

/// Insertion-only backend: a thin wrapper around the resident
/// [`InsertionOnlyCoreset`] — `summary` is a clone, time is ignored.
/// Bit-identical to the engine before backends existed.
pub struct InsertionShard<P, M: MetricSpace<P>> {
    inner: InsertionOnlyCoreset<P, M>,
    version: u64,
}

impl<P: Clone + SpaceUsage, M: MetricSpace<P>> InsertionShard<P, M> {
    /// An empty shard with the given coreset parameters.
    pub fn new(metric: M, k: usize, z: u64, eps: f64, precision: Precision) -> Self {
        InsertionShard {
            inner: InsertionOnlyCoreset::with_precision(metric, k, z, eps, precision),
            version: 0,
        }
    }
}

impl<P, M> ShardBackend<P, M> for InsertionShard<P, M>
where
    P: Clone + SpaceUsage,
    M: MetricSpace<P> + Clone,
{
    fn insert_weighted(&mut self, p: P, w: u64, _arrival: u64) {
        self.inner.insert_weighted(p, w);
        self.version += 1;
    }

    fn advance_to(&mut self, _now: u64) {
        // Insertion-only state is time-free: nothing expires, nothing
        // decays, and the state version deliberately does not move.
    }

    fn state_version(&self) -> u64 {
        self.version
    }

    fn summary(&mut self) -> InsertionOnlyCoreset<P, M> {
        self.inner.clone()
    }

    fn peak_words(&self) -> usize {
        self.inner.peak_words()
    }

    fn rep_len(&self) -> usize {
        self.inner.coreset().len()
    }
}

/// Finest radius guess of the publish-time sliding-window pass.  With
/// [`WINDOW_RHO_MAX`] this brackets the optimal radius of any window the
/// engine will be asked to summarize (the σ-spread assumption of the
/// sliding-window analysis); `log₂(max/min) + 1 ≈ 34` guesses.
pub const WINDOW_RHO_MIN: f64 = 1e-3;
/// Coarsest radius guess of the publish-time sliding-window pass.
pub const WINDOW_RHO_MAX: f64 = 1e7;

/// Sliding-window backend: the exact unexpired suffix in a stamp-sorted
/// buffer, compressed through the mini-ball machinery at publish time.
///
/// The buffer is the ground truth (`O(live window)` words per shard);
/// [`SlidingWindowCoreset`] is the *compressor*: the fresh re-stream
/// clamps each mini-ball to its newest `z+1` points and selects the
/// finest reliable guess, so the leaf holds `O(cap·(z+1))` points no
/// matter how wide the window is.  Re-streaming fresh (rather than
/// keeping the mini-ball structure resident) is what makes the summary
/// a pure, shift-invariant function of the suffix — the property the
/// suffix-replay oracles certify.
pub struct WindowShard<P, M: MetricSpace<P>> {
    metric: M,
    k: usize,
    z: u64,
    eps: f64,
    precision: Precision,
    window: u64,
    now: u64,
    /// `(arrival stamp, point, weight)`, stamp-sorted, only unexpired.
    buf: VecDeque<(u64, P, u64)>,
    version: u64,
    peak_words: usize,
}

impl<P: Clone + SpaceUsage, M: MetricSpace<P>> WindowShard<P, M> {
    /// An empty shard summarizing the last `window` global arrivals.
    pub fn new(metric: M, k: usize, z: u64, eps: f64, precision: Precision, window: u64) -> Self {
        assert!(window >= 1, "window must be at least 1");
        WindowShard {
            metric,
            k,
            z,
            eps,
            precision,
            window,
            now: 0,
            buf: VecDeque::new(),
            version: 0,
            peak_words: 0,
        }
    }

    /// Points currently buffered (the shard's share of the live window).
    pub fn live_len(&self) -> usize {
        self.buf.len()
    }

    fn buf_words(&self) -> usize {
        self.buf
            .iter()
            .map(|(_, p, _)| p.words() + 2)
            .sum::<usize>()
            + 8
    }

    /// Pops expired entries; returns whether anything left.
    fn expire(&mut self) -> bool {
        let mut popped = false;
        while let Some(&(t, _, _)) = self.buf.front() {
            if t + self.window <= self.now {
                self.buf.pop_front();
                popped = true;
            } else {
                break;
            }
        }
        popped
    }
}

impl<P, M> ShardBackend<P, M> for WindowShard<P, M>
where
    P: Clone + SpaceUsage,
    M: MetricSpace<P> + Clone,
{
    fn insert_weighted(&mut self, p: P, w: u64, arrival: u64) {
        // Concurrent batches can deliver stamps out of order; keep the
        // buffer stamp-sorted (the common case appends at the back).
        let pos = self
            .buf
            .iter()
            .rposition(|&(t, _, _)| t <= arrival)
            .map_or(0, |i| i + 1);
        if pos == self.buf.len() {
            self.buf.push_back((arrival, p, w));
        } else {
            self.buf.insert(pos, (arrival, p, w));
        }
        self.now = self.now.max(arrival);
        self.expire();
        self.version += 1;
        self.peak_words = self.peak_words.max(self.buf_words());
    }

    fn advance_to(&mut self, now: u64) {
        if now <= self.now {
            return;
        }
        self.now = now;
        if self.expire() {
            // Content left the window without an arrival landing here —
            // the exact staleness the dirty-shard check must see.
            self.version += 1;
        }
    }

    fn state_version(&self) -> u64 {
        self.version
    }

    fn summary(&mut self) -> InsertionOnlyCoreset<P, M> {
        let mut leaf = InsertionOnlyCoreset::with_precision(
            self.metric.clone(),
            self.k,
            self.z,
            self.eps,
            self.precision,
        );
        if self.buf.is_empty() {
            return leaf;
        }
        // Re-stream the exact suffix through a fresh mini-ball pass.  A
        // weight-w arrival enters as min(w, z+1) co-located copies at
        // its stamp — lossless for the k-center-with-z-outliers
        // objective (a location carrying ≥ z+1 weight can never be all
        // outliers), and what keeps the pass within its space bound.
        let mut sw = SlidingWindowCoreset::new(
            self.metric.clone(),
            self.k,
            self.z,
            self.eps,
            self.window,
            WINDOW_RHO_MIN,
            WINDOW_RHO_MAX,
        );
        for &(t, ref p, w) in &self.buf {
            for _ in 0..w.min(self.z + 1) {
                sw.insert_at(p.clone(), t);
            }
        }
        if let Some(q) = sw.stamped_query() {
            let mut pts = q.points;
            // Arrival order (stable: co-located same-stamp copies keep
            // their mini-ball order), so the leaf's radius doubling is
            // independent of the mini-ball cluster layout.
            pts.sort_by_key(|&(t, _)| t);
            for (_, p) in pts {
                leaf.insert(p);
            }
        }
        self.peak_words = self
            .peak_words
            .max(self.buf_words() + sw.peak_words() + leaf.space_words());
        leaf
    }

    fn peak_words(&self) -> usize {
        self.peak_words
    }

    fn rep_len(&self) -> usize {
        self.buf.len()
    }
}

/// One decayed representative: a location, its (un-decayed) weight at
/// `last`, and that last-touch stamp.  The live weight at clock `t` is
/// `weight · λ^(t − last)`.
struct DecayRep<P> {
    point: P,
    weight: f64,
    last: u64,
}

/// `λ^n` by square-and-multiply — a fixed sequence of IEEE
/// multiplications, so two engines replaying the same stream decay
/// bit-identically (no `powf`).
fn decay_pow(lambda: f64, mut n: u64) -> f64 {
    let mut base = lambda;
    let mut acc = 1.0f64;
    while n > 0 {
        if n & 1 == 1 {
            acc *= base;
        }
        base *= base;
        n >>= 1;
    }
    acc
}

/// Decayed/weighted backend: micro-cluster representatives whose
/// weights halve every `half_life` arrivals since last touch, pruned
/// when they decay below ½ (the DenStream rule).  Summaries round the
/// decayed weights to integers for the leaf.
pub struct DecayShard<P, M: MetricSpace<P>> {
    metric: M,
    k: usize,
    z: u64,
    eps: f64,
    precision: Precision,
    /// Per-arrival decay factor `2^(−1/half_life)`.
    lambda: f64,
    now: u64,
    reps: Vec<DecayRep<P>>,
    /// Current absorb radius scale (0 until established; doubles under
    /// capacity pressure, mirroring the insertion coreset).
    radius: f64,
    cap: u64,
    version: u64,
    peak_words: usize,
}

impl<P: Clone + SpaceUsage, M: MetricSpace<P>> DecayShard<P, M> {
    /// An empty shard whose representative weights halve every
    /// `half_life` arrivals.
    pub fn new(
        metric: M,
        k: usize,
        z: u64,
        eps: f64,
        precision: Precision,
        half_life: f64,
    ) -> Self {
        assert!(
            half_life.is_finite() && half_life > 0.0,
            "half-life must be positive and finite"
        );
        let d = metric.doubling_dim();
        DecayShard {
            lambda: (-1.0 / half_life).exp2(),
            cap: streaming_capacity(k, z, eps, d),
            metric,
            k,
            z,
            eps,
            precision,
            now: 0,
            reps: Vec::new(),
            radius: 0.0,
            version: 0,
            peak_words: 0,
        }
    }

    fn words(&self) -> usize {
        self.reps.iter().map(|r| r.point.words() + 2).sum::<usize>() + 10
    }

    /// Decayed weight of `r` at the current clock.
    fn live_weight(&self, r: &DecayRep<P>) -> f64 {
        r.weight * decay_pow(self.lambda, self.now - r.last)
    }

    /// Drops representatives that decayed below ½; returns whether any
    /// were dropped.
    fn prune(&mut self) -> bool {
        let before = self.reps.len();
        let (lambda, now) = (self.lambda, self.now);
        self.reps
            .retain(|r| r.weight * decay_pow(lambda, now - r.last) >= 0.5);
        self.reps.len() != before
    }

    /// Re-absorbs representatives under a doubled radius until the list
    /// fits the capacity again (the decayed analogue of the insertion
    /// coreset's `update_coreset`).
    fn compress(&mut self) {
        while self.reps.len() as u64 > self.cap {
            if self.radius == 0.0 {
                // Establish the scale: half the minimum pairwise
                // distance, as the radius-doubling invariant does.
                let mut min = f64::INFINITY;
                for i in 0..self.reps.len() {
                    for j in (i + 1)..self.reps.len() {
                        let d = self.metric.dist(&self.reps[i].point, &self.reps[j].point);
                        if d > 0.0 && d < min {
                            min = d;
                        }
                    }
                }
                if !min.is_finite() {
                    // All co-located: fold everything into one rep.
                    min = 0.0;
                }
                self.radius = min / 2.0;
            } else {
                self.radius *= 2.0;
            }
            let absorb = self.eps * self.radius / 2.0;
            let mut kept: Vec<DecayRep<P>> = Vec::with_capacity(self.reps.len());
            for r in self.reps.drain(..) {
                match kept
                    .iter()
                    .position(|s| self.metric.within(&s.point, &r.point, absorb))
                {
                    Some(i) => {
                        // Decay both to `now`, then fold the mass.
                        let s = &mut kept[i];
                        let sw = s.weight * decay_pow(self.lambda, self.now - s.last);
                        let rw = r.weight * decay_pow(self.lambda, self.now - r.last);
                        s.weight = sw + rw;
                        s.last = self.now;
                    }
                    None => kept.push(r),
                }
            }
            self.reps = kept;
            if self.radius == 0.0 {
                // Fully co-located fold: one representative remains.
                break;
            }
        }
    }
}

impl<P, M> ShardBackend<P, M> for DecayShard<P, M>
where
    P: Clone + SpaceUsage,
    M: MetricSpace<P> + Clone,
{
    fn insert_weighted(&mut self, p: P, w: u64, arrival: u64) {
        assert!(w > 0, "weights must be positive");
        self.now = self.now.max(arrival);
        let absorb = self.eps * self.radius / 2.0;
        let hit = if self.radius > 0.0 {
            self.reps
                .iter()
                .position(|r| self.metric.within(&r.point, &p, absorb))
        } else {
            self.reps
                .iter()
                .position(|r| self.metric.dist(&r.point, &p) == 0.0)
        };
        match hit {
            Some(i) => {
                let r = &mut self.reps[i];
                let live = r.weight * decay_pow(self.lambda, self.now - r.last);
                r.weight = live + w as f64;
                r.last = self.now;
            }
            None => {
                self.reps.push(DecayRep {
                    point: p,
                    weight: w as f64,
                    last: self.now,
                });
                if self.reps.len() as u64 > self.cap {
                    self.prune();
                    self.compress();
                }
            }
        }
        self.version += 1;
        self.peak_words = self.peak_words.max(self.words());
    }

    fn advance_to(&mut self, now: u64) {
        if now <= self.now {
            return;
        }
        self.now = now;
        let dropped = self.prune();
        if dropped || !self.reps.is_empty() {
            // Even without a drop, the published (rounded, decayed)
            // weights are a function of `now`: time passage over live
            // representatives invalidates the cached leaf.
            self.version += 1;
        }
    }

    fn state_version(&self) -> u64 {
        self.version
    }

    fn summary(&mut self) -> InsertionOnlyCoreset<P, M> {
        // The shard holding the globally newest arrival sees
        // `advance_to` as a no-op (its own clock is already `now`), so
        // the publish-time prune must also happen here — otherwise a
        // long-dead representative rides the ≥1 weight rounding back
        // into the published epoch.
        self.prune();
        let mut leaf = InsertionOnlyCoreset::with_precision(
            self.metric.clone(),
            self.k,
            self.z,
            self.eps,
            self.precision,
        );
        for i in 0..self.reps.len() {
            let w = self.live_weight(&self.reps[i]).round().max(1.0) as u64;
            leaf.insert_weighted(self.reps[i].point.clone(), w);
        }
        leaf
    }

    fn peak_words(&self) -> usize {
        self.peak_words
    }

    fn rep_len(&self) -> usize {
        self.reps.len()
    }
}

/// The engine's shard slot: one of the three backends, chosen per
/// [`Backend`] at construction and dispatched without generics so the
/// engine type stays mode-independent.
pub enum AnyShard<P, M: MetricSpace<P>> {
    /// Insertion-only (see [`InsertionShard`]).
    Insertion(InsertionShard<P, M>),
    /// Sliding window (see [`WindowShard`]).
    Window(WindowShard<P, M>),
    /// Exponential decay (see [`DecayShard`]).
    Decay(DecayShard<P, M>),
}

impl<P: Clone + SpaceUsage, M: MetricSpace<P> + Clone> AnyShard<P, M> {
    /// Builds the shard the backend choice calls for.
    pub fn new(
        backend: Backend,
        metric: M,
        k: usize,
        z: u64,
        eps: f64,
        precision: Precision,
    ) -> Self {
        match backend {
            Backend::Insertion => {
                AnyShard::Insertion(InsertionShard::new(metric, k, z, eps, precision))
            }
            Backend::Window(w) => {
                AnyShard::Window(WindowShard::new(metric, k, z, eps, precision, w))
            }
            Backend::Decay(h) => AnyShard::Decay(DecayShard::new(metric, k, z, eps, precision, h)),
        }
    }
}

impl<P, M> ShardBackend<P, M> for AnyShard<P, M>
where
    P: Clone + SpaceUsage,
    M: MetricSpace<P> + Clone,
{
    fn insert_weighted(&mut self, p: P, w: u64, arrival: u64) {
        match self {
            AnyShard::Insertion(s) => s.insert_weighted(p, w, arrival),
            AnyShard::Window(s) => s.insert_weighted(p, w, arrival),
            AnyShard::Decay(s) => s.insert_weighted(p, w, arrival),
        }
    }

    fn advance_to(&mut self, now: u64) {
        match self {
            AnyShard::Insertion(s) => ShardBackend::<P, M>::advance_to(s, now),
            AnyShard::Window(s) => ShardBackend::<P, M>::advance_to(s, now),
            AnyShard::Decay(s) => ShardBackend::<P, M>::advance_to(s, now),
        }
    }

    fn state_version(&self) -> u64 {
        match self {
            AnyShard::Insertion(s) => s.state_version(),
            AnyShard::Window(s) => s.state_version(),
            AnyShard::Decay(s) => s.state_version(),
        }
    }

    fn summary(&mut self) -> InsertionOnlyCoreset<P, M> {
        match self {
            AnyShard::Insertion(s) => s.summary(),
            AnyShard::Window(s) => s.summary(),
            AnyShard::Decay(s) => s.summary(),
        }
    }

    fn peak_words(&self) -> usize {
        match self {
            AnyShard::Insertion(s) => ShardBackend::<P, M>::peak_words(s),
            AnyShard::Window(s) => ShardBackend::<P, M>::peak_words(s),
            AnyShard::Decay(s) => ShardBackend::<P, M>::peak_words(s),
        }
    }

    fn rep_len(&self) -> usize {
        match self {
            AnyShard::Insertion(s) => s.rep_len(),
            AnyShard::Window(s) => s.rep_len(),
            AnyShard::Decay(s) => s.rep_len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcz_metric::L2;

    #[test]
    fn insertion_shard_summary_is_a_clone_and_time_is_inert() {
        let mut s: InsertionShard<[f64; 2], L2> =
            InsertionShard::new(L2, 2, 1, 0.5, Precision::F64);
        s.insert_weighted([0.0, 0.0], 3, 1);
        s.insert_weighted([10.0, 0.0], 1, 2);
        let v = s.state_version();
        ShardBackend::<[f64; 2], L2>::advance_to(&mut s, 1_000_000);
        assert_eq!(
            s.state_version(),
            v,
            "time must not dirty an insertion shard"
        );
        let leaf = s.summary();
        assert_eq!(leaf.coreset().iter().map(|w| w.weight).sum::<u64>(), 4);
    }

    #[test]
    fn window_shard_version_advances_on_expiry_without_an_arrival() {
        let mut s: WindowShard<[f64; 2], L2> = WindowShard::new(L2, 1, 0, 0.5, Precision::F64, 10);
        s.insert_weighted([1.0, 1.0], 1, 1);
        let v = s.state_version();
        // Time passes but nothing expires yet: still clean.
        ShardBackend::<[f64; 2], L2>::advance_to(&mut s, 5);
        assert_eq!(s.state_version(), v);
        // The stamp-1 point leaves the window at clock 11: dirty.
        ShardBackend::<[f64; 2], L2>::advance_to(&mut s, 11);
        assert!(s.state_version() > v, "expiry must dirty the shard");
        assert_eq!(s.live_len(), 0);
        assert!(s.summary().coreset().is_empty());
    }

    #[test]
    fn window_summary_is_a_pure_shift_invariant_function_of_the_suffix() {
        let pts: Vec<(u64, [f64; 2])> = (0..40u64)
            .map(|i| (i + 1, [(i % 7) as f64 * 3.0, (i % 5) as f64]))
            .collect();
        let build = |shift: u64| {
            let mut s: WindowShard<[f64; 2], L2> =
                WindowShard::new(L2, 2, 2, 0.5, Precision::F64, 25);
            for &(t, p) in &pts {
                s.insert_weighted(p, 1, t + shift);
            }
            let leaf = s.summary();
            leaf.coreset()
                .iter()
                .map(|w| (w.point[0].to_bits(), w.point[1].to_bits(), w.weight))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            build(0),
            build(1_000),
            "window summary must be shift-invariant"
        );
    }

    #[test]
    fn window_summary_clamps_weighted_arrivals_losslessly() {
        let (z, w) = (2u64, 1_000_000u64);
        let mut heavy: WindowShard<[f64; 2], L2> =
            WindowShard::new(L2, 1, z, 0.5, Precision::F64, 100);
        heavy.insert_weighted([5.0, 5.0], w, 1);
        let mut clamped: WindowShard<[f64; 2], L2> =
            WindowShard::new(L2, 1, z, 0.5, Precision::F64, 100);
        clamped.insert_weighted([5.0, 5.0], z + 1, 1);
        let (a, b) = (heavy.summary(), clamped.summary());
        assert_eq!(a.coreset().len(), b.coreset().len());
        for (x, y) in a.coreset().iter().zip(b.coreset()) {
            assert_eq!(x.point, y.point);
            assert_eq!(x.weight, y.weight);
        }
    }

    #[test]
    fn decay_shard_halves_weight_per_half_life_and_prunes_dead_reps() {
        let mut s: DecayShard<[f64; 2], L2> = DecayShard::new(L2, 1, 0, 0.5, Precision::F64, 8.0);
        s.insert_weighted([0.0, 0.0], 8, 1);
        // One half-life later the 8 has decayed to ~4.
        ShardBackend::<[f64; 2], L2>::advance_to(&mut s, 9);
        let leaf = s.summary();
        assert_eq!(leaf.coreset().len(), 1);
        assert_eq!(leaf.coreset()[0].weight, 4);
        // Five more half-lives: 8·2^{-6} = 0.125 < ½ — pruned.
        let v = s.state_version();
        ShardBackend::<[f64; 2], L2>::advance_to(&mut s, 49);
        assert!(s.state_version() > v, "decay tick must dirty the shard");
        assert_eq!(s.rep_len(), 0);
        assert!(s.summary().coreset().is_empty());
    }

    #[test]
    fn decay_shard_refreshes_touched_reps_and_respects_capacity() {
        let mut s: DecayShard<[f64; 2], L2> = DecayShard::new(L2, 1, 0, 1.0, Precision::F64, 50.0);
        // Keep touching one location while time passes: it must survive
        // indefinitely (weight refreshed on every touch).
        for t in 1..=400u64 {
            s.insert_weighted([1.0, 1.0], 1, t);
        }
        assert_eq!(s.rep_len(), 1);
        let leaf = s.summary();
        assert!(leaf.coreset()[0].weight >= 1);
        // Capacity pressure compresses instead of growing unboundedly.
        let mut wide: DecayShard<[f64; 2], L2> =
            DecayShard::new(L2, 1, 0, 1.0, Precision::F64, 1e9);
        let cap = wide.cap;
        for i in 0..(cap * 2) {
            wide.insert_weighted([i as f64 * 50.0, 0.0], 1, i + 1);
        }
        assert!(
            (wide.rep_len() as u64) <= cap,
            "reps {} exceed cap {cap}",
            wide.rep_len()
        );
    }
}
