//! Deterministic concurrency test: seeded multi-writer ingest under a
//! fixed interleaving schedule, with a concurrent snapshotter, must
//! produce a final snapshot whose **re-measured** radius (centers applied
//! to the full input multiset) satisfies the same oracle-checked ratio
//! bound the conformance harness enforces for the single-stream
//! insertion-only pipeline — sharding never worsens the certified bound.
//!
//! The schedule is fixed: `ROUNDS` barrier-separated rounds, and in each
//! round every writer ingests its preassigned batch (seeded generator, no
//! ambient randomness).  Which writer's batch lands first *within* a
//! round is up to the scheduler — exactly the nondeterminism the engine
//! must tolerate: weight conservation and the certified bound are
//! invariant under it, and the test asserts both across repeated trials.

use kcz_engine::{Engine, EngineConfig};
use kcz_kcenter::{cost_with_outliers, exact_discrete, uncovered_weight};
use kcz_metric::{total_weight, unit_weighted, L2};
use std::sync::Barrier;

const WRITERS: usize = 4;
const ROUNDS: usize = 6;
const BATCH: usize = 10;
const K: usize = 2;
const Z: u64 = 6;
const EPS: f64 = 0.5;

/// The fixed schedule: `sched[r][w]` is the batch writer `w` ingests in
/// round `r`.  Two integer-grid clusters plus far outliers, so the exact
/// discrete oracle over the distinct points stays cheap.
fn schedule() -> Vec<Vec<Vec<[f64; 2]>>> {
    let mut s = 0x5EED_CAFE_u64;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    (0..ROUNDS)
        .map(|_| {
            (0..WRITERS)
                .map(|_| {
                    (0..BATCH)
                        .map(|_| {
                            let r = next();
                            let (x, y) = ((r >> 8) % 6, (r >> 24) % 6);
                            match r % 40 {
                                39 => [5000.0 + (r % 7) as f64 * 100.0, -3000.0],
                                n if n % 2 == 0 => [x as f64, y as f64],
                                _ => [300.0 + x as f64, 300.0 + y as f64],
                            }
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

fn distinct(points: &[[f64; 2]]) -> Vec<[f64; 2]> {
    let mut keys: Vec<[u64; 2]> = points
        .iter()
        .map(|p| [p[0].to_bits(), p[1].to_bits()])
        .collect();
    keys.sort_unstable();
    keys.dedup();
    keys.iter()
        .map(|k| [f64::from_bits(k[0]), f64::from_bits(k[1])])
        .collect()
}

#[test]
fn concurrent_sharded_ingest_meets_certified_bound() {
    let sched = schedule();
    let all: Vec<[f64; 2]> = sched
        .iter()
        .flat_map(|round| round.iter().flatten().copied())
        .collect();
    let n = (WRITERS * ROUNDS * BATCH) as u64;
    let weighted = unit_weighted(&all);
    let opt = exact_discrete(&L2, &weighted, K, Z, &distinct(&all)).radius;
    assert!(opt > 0.0, "oracle must be non-degenerate for a real check");

    // The bound the conformance harness checks for the single-stream
    // insertion-only pipeline: radius ≤ (3 + 8ε)·opt with ε' = ε.
    let single_stream_factor = kcz_coreset::end_to_end_factor(EPS);

    for trial in 0..3 {
        let engine = Engine::new(L2, EngineConfig::new(4, K, Z, EPS));
        // Writers + one snapshotter rendezvous at every round boundary;
        // the snapshotter queries *while* the round's batches ingest.
        let barrier = Barrier::new(WRITERS + 1);
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let (engine, sched, barrier) = (&engine, &sched, &barrier);
                scope.spawn(move || {
                    for round in sched.iter() {
                        barrier.wait();
                        engine.ingest(&round[w]);
                    }
                });
            }
            let (engine, barrier) = (&engine, &barrier);
            scope.spawn(move || {
                let mut last_epoch = 0;
                let mut last_weight = 0;
                for _ in 0..ROUNDS {
                    barrier.wait();
                    let snap = engine.snapshot();
                    // Non-decreasing, not strictly increasing: if this
                    // snapshot lands before any of the round's batches,
                    // the memoized publish path legitimately returns the
                    // previous epoch again (nothing changed yet).
                    assert!(snap.epoch >= last_epoch, "epochs must not regress");
                    last_epoch = snap.epoch;
                    // A mid-burst snapshot sees a per-shard prefix of the
                    // arrivals (shards are cloned one at a time while
                    // writers keep ingesting, and the `points` counter is
                    // only bumped once a batch fully lands, so comparing
                    // the two mid-burst would race).  What *is* invariant:
                    // the summarized weight never shrinks, and never
                    // exceeds what will ultimately arrive.
                    let weight = total_weight(&snap.coreset);
                    assert!(weight >= last_weight, "summaries must only grow");
                    assert!(weight <= (WRITERS * ROUNDS * BATCH) as u64);
                    last_weight = weight;
                }
            });
        });

        let snap = engine.snapshot();
        // Weight conservation: every arrival of every writer is in the
        // merged summary, no matter how the rounds interleaved.
        assert_eq!(total_weight(&snap.coreset), n, "trial {trial}");
        assert_eq!(engine.points_ingested(), n, "trial {trial}");

        // Merge-transient accounting counts the whole tree, not just
        // the leaf clones: it must dominate both the merged root and
        // the largest single shard (the root alone can transiently
        // exceed the leaf sum when recompression grows a merge).
        assert!(
            snap.stats.merge_transient_words >= snap.stats.summary_words,
            "trial {trial}: transient {} < summary {}",
            snap.stats.merge_transient_words,
            snap.stats.summary_words
        );
        assert!(
            snap.stats.merge_transient_words >= snap.stats.shard_peak_words,
            "trial {trial}"
        );

        // The mid-stream snapshots above primed the incremental tree
        // cache and warm state; the final snapshot must nonetheless
        // satisfy every invariant a cold publish certifies (the
        // sequential bit-identity property lives in `incremental.rs` —
        // racy per-shard insertion order makes summaries interleaving-
        // dependent here, as they always were).

        // Re-measure the snapshot's centers on the full input.
        let measured = cost_with_outliers(&L2, &weighted, &snap.centers, Z);
        assert!(
            uncovered_weight(&L2, &weighted, &snap.centers, measured) <= Z,
            "trial {trial}"
        );
        // The engine's own certified bound (ε' widened by the merge
        // tree) must hold...
        assert!(
            measured <= snap.bound_factor * opt + 1e-9,
            "trial {trial}: {measured} > {}·{opt}",
            snap.bound_factor
        );
        // ...and sharding must not push the answer past the bound the
        // harness checks for the *single-stream* pipeline on this
        // instance.
        assert!(
            measured <= single_stream_factor * opt + 1e-9,
            "trial {trial}: {measured} > {single_stream_factor}·{opt}"
        );
        // The merged lower bound never overshoots the true optimum.
        assert!(snap.radius_bound <= opt + 1e-9, "trial {trial}");
    }
}
