//! Engine instrumentation contracts: exact counters under
//! barrier-scheduled multi-writer ingest with a concurrent
//! snapshotter, uniform solve/elision accounting across `Engine`
//! accessors / `Snapshot.stats` / the registry, publish-stage spans
//! that sum to within the measured publish total, and byte-identical
//! metric exports under the deterministic tick clock.

use kcz_engine::{Engine, EngineConfig};
use kcz_metric::L2;
use kcz_obs::{MetricsHandle, Registry, TickClock};
use std::sync::{Arc, Barrier};
use std::thread;

const WRITERS: usize = 6;
const BATCHES: usize = 40;
const BATCH: usize = 25;

fn site(w: usize, b: usize, i: usize) -> [f64; 2] {
    [
        ((w * 31 + i) % 47) as f64 * 100.0,
        ((b * 17 + i) % 53) as f64 * 100.0,
    ]
}

#[test]
fn multi_writer_ingest_with_snapshotter_loses_no_updates() {
    let registry = Registry::new();
    let handle = MetricsHandle::new(&registry);
    let engine = Arc::new(Engine::new(L2, EngineConfig::new(4, 4, 16, 0.5)).with_metrics(&handle));
    let barrier = Arc::new(Barrier::new(WRITERS + 1));

    let snapshotter = {
        let engine = Arc::clone(&engine);
        let barrier = Arc::clone(&barrier);
        thread::spawn(move || {
            barrier.wait();
            let mut published = 0u64;
            for _ in 0..50 {
                let snap = engine.publish();
                assert!(snap.epoch >= published, "epochs must not regress");
                published = snap.epoch;
            }
        })
    };

    let mut joins = Vec::new();
    for w in 0..WRITERS {
        let engine = Arc::clone(&engine);
        let barrier = Arc::clone(&barrier);
        joins.push(thread::spawn(move || {
            barrier.wait();
            for b in 0..BATCHES {
                let batch: Vec<[f64; 2]> = (0..BATCH).map(|i| site(w, b, i)).collect();
                engine.ingest(&batch);
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    snapshotter.join().unwrap();

    // Exact totals: no lost updates under contention, and the registry
    // agrees with the engine's own accessors bit for bit.
    let expected_points = (WRITERS * BATCHES * BATCH) as u64;
    let expected_batches = (WRITERS * BATCHES) as u64;
    assert_eq!(engine.points_ingested(), expected_points);
    assert_eq!(
        registry.counter_value("engine.ingest.points"),
        Some(expected_points)
    );
    assert_eq!(
        registry.counter_value("engine.ingest.batches"),
        Some(expected_batches)
    );
    assert_eq!(
        registry
            .histogram_snapshot("engine.ingest.batch_ns")
            .unwrap()
            .count(),
        expected_batches
    );

    // One final publish settles everything, then the solve/elision
    // accounting must agree across all three surfaces.
    let snap = engine.publish();
    assert_eq!(snap.stats.points, expected_points);
    assert_eq!(snap.stats.solves, engine.solves());
    assert_eq!(snap.stats.merges, engine.merges());
    assert_eq!(snap.stats.elisions, engine.elisions());
    assert_eq!(
        registry.counter_value("engine.publish.solves"),
        Some(engine.solves())
    );
    assert_eq!(
        registry.counter_value("engine.publish.pair_merges"),
        Some(engine.merges())
    );
    assert_eq!(
        registry.counter_value("engine.publish.elisions"),
        Some(engine.elisions())
    );
    assert_eq!(
        registry.gauge_value("engine.publish.epoch"),
        Some(snap.epoch)
    );
    assert_eq!(
        registry.gauge_value("engine.snapshot.coreset_size"),
        Some(snap.coreset.len() as u64)
    );
}

#[test]
fn publish_stage_spans_sum_to_within_the_publish_total() {
    let registry = Registry::new();
    let handle = MetricsHandle::new(&registry);
    let engine = Engine::new(L2, EngineConfig::new(4, 3, 8, 0.5)).with_metrics(&handle);
    for b in 0..20 {
        let batch: Vec<[f64; 2]> = (0..50).map(|i| site(1, b, i)).collect();
        engine.ingest(&batch);
        engine.publish();
    }
    let total = registry
        .histogram_snapshot("engine.publish.total_ns")
        .unwrap();
    assert!(total.count() >= 1);
    let stage_sum: u128 = [
        "engine.publish.stage.clone_ns",
        "engine.publish.stage.merge_ns",
        "engine.publish.stage.solve_ns",
        "engine.publish.stage.replay_ns",
        "engine.publish.stage.build_ns",
    ]
    .iter()
    .filter_map(|name| registry.histogram_snapshot(name))
    .map(|h| h.total_ns())
    .sum();
    // The stages are disjoint sub-intervals of each publish, so their
    // cumulative time can never exceed the measured publish total.
    assert!(
        stage_sum <= total.total_ns(),
        "stages {stage_sum} ns > publish total {} ns",
        total.total_ns()
    );
    // And they are where publishes actually spend their time: the
    // instrumented stages must account for a nontrivial share.
    assert!(stage_sum > 0, "stage spans recorded nothing");
}

#[test]
fn tick_clock_exports_are_byte_identical_across_runs() {
    let run = || {
        let registry = Registry::new();
        let handle = MetricsHandle::with_clock(&registry, Arc::new(TickClock::new(100)));
        let engine = Engine::new(L2, EngineConfig::new(2, 2, 4, 0.5)).with_metrics(&handle);
        // Fixed single-threaded sequence: same ops, same tick stamps.
        for b in 0..10 {
            let batch: Vec<[f64; 2]> = (0..30).map(|i| site(2, b, i)).collect();
            engine.ingest(&batch);
            if b % 3 == 0 {
                engine.publish();
            }
        }
        engine.publish();
        registry.to_json()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "tick-clock exports must be seed-stable");
    assert!(a.contains("\"schema\": \"kcz-metrics/v1\""));
    assert!(a.contains("engine.publish.total_ns"));
}
