//! The churn-capable engine's publish contract, pinned three ways:
//!
//! 1. **Time-driven dirtiness** (the staleness regression): a shard no
//!    batch touched since the last publish must still be re-merged when
//!    expiry mutated it — the bug class the `ShardBackend` state
//!    versions exist to close.
//! 2. **Suffix purity** (the windowed property test): every published
//!    verdict of a windowed engine is bit-identical to a from-scratch
//!    engine replaying only the unexpired suffix of the arrival stream,
//!    across seeded schedules — the window analogue of
//!    `tests/incremental.rs`' history independence.
//! 3. **Decay determinism**: the incremental publish path and a
//!    persistent full-republish engine publishing at the same instants
//!    agree bit for bit under decay (decay prune timing is
//!    publish-scheduled, so the oracle shares the schedule).

use kcz_engine::{Engine, EngineConfig, Snapshot};
use kcz_metric::{total_weight, L2};
use kcz_workloads::HashPartitioner;
use std::sync::Arc;

/// Seeded xorshift stream: two clusters plus sparse far outliers (the
/// same family `tests/incremental.rs` uses).
struct Gen(u64);

impl Gen {
    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn point(&mut self) -> [f64; 2] {
        let r = self.next_u64();
        let unit = (r >> 11) as f64 / (1u64 << 53) as f64;
        match r % 50 {
            49 => [4000.0 + unit * 500.0, -2500.0],
            n if n % 2 == 0 => [unit * 4.0, unit * 3.0],
            _ => [120.0 + unit * 4.0, 120.0 + unit * 4.0],
        }
    }

    fn batch(&mut self, max_len: usize) -> Vec<[f64; 2]> {
        let len = 1 + (self.next_u64() as usize) % max_len;
        (0..len).map(|_| self.point()).collect()
    }
}

/// Everything the bit-identity contract covers: solved answer, certified
/// bounds, the merged coreset itself, and its space accounting.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    centers: Vec<[u64; 2]>,
    radius: u64,
    radius_bound: u64,
    uncovered: u64,
    effective_eps: u64,
    bound_factor: u64,
    coreset: Vec<(u64, u64, u64)>,
    summary_words: usize,
}

fn fingerprint(snap: &Snapshot<[f64; 2]>) -> Fingerprint {
    Fingerprint {
        centers: snap
            .centers
            .iter()
            .map(|c| [c[0].to_bits(), c[1].to_bits()])
            .collect(),
        radius: snap.radius.to_bits(),
        radius_bound: snap.radius_bound.to_bits(),
        uncovered: snap.uncovered,
        effective_eps: snap.effective_eps.to_bits(),
        bound_factor: snap.bound_factor.to_bits(),
        coreset: snap
            .coreset
            .iter()
            .map(|w| (w.point[0].to_bits(), w.point[1].to_bits(), w.weight))
            .collect(),
        summary_words: snap.stats.summary_words,
    }
}

/// The satellite regression for the staleness bug: shard 0 receives one
/// point, then every subsequent arrival routes to shard 1 until the
/// window slides past shard 0's point.  Shard 0 saw no batch between the
/// two publishes — under the old "dirty iff a batch landed" rule its
/// cached leaf (still holding the expired point) would be reused, and
/// the second publish would serve a stale center.
#[test]
fn expiry_without_new_batches_redirties_the_shard_and_republishes() {
    let window = 8u64;
    let cfg = EngineConfig::new(2, 1, 0, 0.5).windowed(window);
    let engine = Engine::new(L2, cfg);
    // Route with the engine's own partitioner to pin one point per shard.
    let router = HashPartitioner::new(cfg.shards, cfg.seed);
    let pa = (0..64)
        .map(|i| [i as f64, 0.0])
        .find(|p| router.shard_of(p) == 0)
        .expect("some small point routes to shard 0");
    let pb = (0..64)
        .map(|i| [500.0 + i as f64, 500.0])
        .find(|p| router.shard_of(p) == 1)
        .expect("some far point routes to shard 1");

    engine.ingest(&[pa]);
    let first = engine.publish();
    assert_eq!(first.epoch, 1);
    assert_eq!(total_weight(&first.coreset), 1);
    assert_eq!(first.centers, vec![pa]);
    // Idle republish: time is arrival-driven, so an unchanged version
    // still means an unchanged window — the cached Arc comes back.
    assert!(Arc::ptr_eq(&engine.publish(), &first));

    // `window` arrivals, all on shard 1: shard 0 never sees a batch, but
    // its point's stamp (1) leaves the window at clock 1 + window.
    for _ in 0..window {
        engine.ingest(&[pb]);
    }
    let merges_before = engine.merges();
    let second = engine.publish();
    assert!(
        engine.merges() > merges_before,
        "the second publish must re-merge, not serve the cached tree"
    );
    assert_eq!(second.epoch, 2);
    assert_eq!(second.clock, 1 + window);
    assert_eq!(second.window_span(), Some((2, 1 + window)));
    // The expired point is gone from the published epoch entirely: all
    // mass (and the solved center) sits at the live location.
    assert!(
        second.coreset.iter().all(|c| c.point == pb),
        "expired shard-0 point leaked into the published coreset: {:?}",
        second.coreset
    );
    // The mini-ball pass keeps only the newest z+1 points per ball, so
    // window-mode epochs do not conserve weight — but the live location
    // must be represented and solved.
    assert!(total_weight(&second.coreset) >= 1);
    assert_eq!(second.centers, vec![pb]);
}

/// Satellite property test (5 seeds): a windowed engine's published
/// verdict is bit-identical to (a) a persistent full-republish engine
/// fed the same schedule and (b) a brand-new engine replaying *only the
/// unexpired suffix* of the arrival stream — no cache, no warm state,
/// and no expired point ever seen.
#[test]
fn windowed_publishes_are_bit_identical_to_unexpired_suffix_replay() {
    for (seed, shards, window) in [
        (0xA11CE_u64, 1usize, 64u64),
        (0xB0B_u64, 3, 97),
        (0xC0FFEE_u64, 4, 160),
        (0xD00D_u64, 8, 33),
        (0x5EED_u64, 8, 256),
    ] {
        let cfg = EngineConfig::new(shards, 2, 8, 0.5).windowed(window);
        let incremental = Engine::new(L2, cfg);
        let cold = Engine::new(L2, cfg.full_republish());
        let mut gen = Gen(seed);
        let mut arrivals: Vec<[f64; 2]> = Vec::new();
        let mut publishes = 0u32;
        for step in 0..30 {
            let batch = gen.batch(48);
            incremental.ingest(&batch);
            cold.ingest(&batch);
            arrivals.extend_from_slice(&batch);
            if step % 3 != 2 {
                continue;
            }
            publishes += 1;
            let inc = incremental.publish();
            assert_eq!(inc.clock, arrivals.len() as u64, "seed {seed:#x}");
            // Oracle 1: the persistent cold engine on the same schedule.
            let per_epoch = cold.publish();
            assert_eq!(
                fingerprint(&inc),
                fingerprint(&per_epoch),
                "seed {seed:#x} shards {shards} step {step}: incremental \
                 windowed publish diverged from the full-republish engine"
            );
            // Oracle 2: from-scratch suffix replay.  Only the last
            // min(clock, W) arrivals exist from its point of view; the
            // window machinery is shift-invariant, so its very first
            // publish must match bit for bit.
            let live = arrivals.len().min(window as usize);
            let suffix = &arrivals[arrivals.len() - live..];
            let scratch = Engine::new(L2, cfg.full_republish());
            scratch.ingest(suffix);
            assert_eq!(
                fingerprint(&inc),
                fingerprint(&scratch.snapshot()),
                "seed {seed:#x} shards {shards} step {step}: windowed \
                 publish diverged from a from-scratch suffix replay"
            );
            let span = inc.window_span().expect("window mode has a span");
            assert_eq!(span, (inc.clock - live as u64 + 1, inc.clock));
        }
        assert!(publishes >= 10, "schedule exercised too few publishes");
    }
}

/// Decay-mode determinism: the incremental publish path agrees bit for
/// bit with a persistent full-republish engine publishing at the same
/// instants.  (Unlike the window, decay prune timing is part of the
/// publish schedule, so the oracle must share it — the harness's churn
/// scenarios pin the semantic decay properties.)
#[test]
fn decayed_publishes_are_bit_identical_between_incremental_and_full_republish() {
    for seed in [0xA11CE_u64, 0xB0B, 0xC0FFEE, 0xD00D, 0x5EED] {
        let cfg = EngineConfig::new(4, 2, 8, 0.5).decayed(48.0);
        let incremental = Engine::new(L2, cfg);
        let cold = Engine::new(L2, cfg.full_republish());
        let mut gen = Gen(seed);
        for step in 0..24 {
            let batch = gen.batch(40);
            incremental.ingest(&batch);
            cold.ingest(&batch);
            if step % 2 == 1 {
                let (a, b) = (incremental.publish(), cold.publish());
                assert_eq!(a.epoch, b.epoch, "seed {seed:#x} step {step}");
                assert_eq!(
                    fingerprint(&a),
                    fingerprint(&b),
                    "seed {seed:#x} step {step}: incremental decay publish \
                     diverged from the full-republish engine"
                );
            }
        }
    }
}
