//! Property test for the delta-aware solve cache: under a random mix
//! of small ingests, bursts, publishes, idle publishes and
//! window-advancing churn, the delta solver's published fingerprint
//! (radius / guess / centers / uncovered / coreset) is bit-identical to
//!
//! * a **persistent cold-solver engine** walking the exact same ingest
//!   and publish schedule (isolates the solver: same merged summaries,
//!   different solve path), and
//! * a **fresh scratch replay** — a full-republish engine fed the same
//!   prefix, publishing once (no merge-tree cache, no solve state, no
//!   history at all).
//!
//! The cache must also *do* something: across the seeds, at least one
//! steady-state epoch (a forced tiny-delta republish after the random
//! ops) has to answer probes from the verdict cache rather than
//! re-running disk-greedy.

use kcz_engine::{Backend, Engine, EngineConfig, SolverMode};
use kcz_metric::L2;

const SEEDS: u64 = 5;
const OPS: usize = 40;

/// Splitmix-style xorshift; deterministic per seed, no `rand` dep.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(0x9E37_79B9_7F4A_7C15 ^ seed.wrapping_mul(0xD134_2543_DE82_EF95))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// A fixed lattice of sites; ingesting exact site points produces pure
/// weight bumps in the merged summary — the cheapest delta the solver
/// certifies — while jittered points open fresh mini-balls.
fn site(i: u64) -> [f64; 2] {
    let i = i % 24;
    [(i % 6) as f64 * 50.0, (i / 6) as f64 * 50.0]
}

/// The published fingerprint two solves must agree on, at the bit level.
fn fingerprint(snap: &kcz_engine::Snapshot<[f64; 2]>) -> (u64, u64, u64, Vec<u64>, Vec<u64>) {
    (
        snap.radius.to_bits(),
        snap.guess.to_bits(),
        snap.uncovered,
        snap.centers
            .iter()
            .flat_map(|c| c.iter().map(|x| x.to_bits()))
            .collect(),
        snap.coreset
            .iter()
            .flat_map(|w| {
                w.point
                    .iter()
                    .map(|x| x.to_bits())
                    .chain(std::iter::once(w.weight))
            })
            .collect(),
    )
}

fn assert_same(
    what: &str,
    seed: u64,
    op: usize,
    a: &kcz_engine::Snapshot<[f64; 2]>,
    b: &kcz_engine::Snapshot<[f64; 2]>,
) {
    assert_eq!(
        fingerprint(a),
        fingerprint(b),
        "seed {seed} op {op}: delta solve diverged from {what} \
         (radius {} vs {}, guess {} vs {}, uncovered {} vs {})",
        a.radius,
        b.radius,
        a.guess,
        b.guess,
        a.uncovered,
        b.uncovered
    );
}

#[test]
fn delta_solver_is_bit_identical_under_random_ops() {
    let mut total_reused = 0usize;
    for seed in 0..SEEDS {
        let mut rng = Rng::new(seed);
        // Seed parity alternates the backend so the op mix also drives
        // window expiry (`backend-advance`): every ingest moves the
        // arrival clock and retires old mass before the merge.
        let backend = if seed % 2 == 0 {
            Backend::Insertion
        } else {
            Backend::Window(600)
        };
        let cfg = EngineConfig::new(4, 3, 5, 0.5).with_backend(backend);
        let delta = Engine::new(L2, cfg.with_solver(SolverMode::Delta));
        let cold = Engine::new(L2, cfg.with_solver(SolverMode::Cold));
        let mut fed: Vec<[f64; 2]> = Vec::new();
        let mut published = false;

        let feed = |delta: &Engine<[f64; 2], L2>,
                    cold: &Engine<[f64; 2], L2>,
                    fed: &mut Vec<[f64; 2]>,
                    batch: &[[f64; 2]]| {
            delta.ingest(batch);
            cold.ingest(batch);
            fed.extend_from_slice(batch);
        };
        let check = |delta: &Engine<[f64; 2], L2>,
                     cold: &Engine<[f64; 2], L2>,
                     fed: &[[f64; 2]],
                     op: usize|
         -> usize {
            let ds = delta.publish();
            let cs = cold.publish();
            assert_eq!(ds.epoch, cs.epoch, "seed {seed} op {op}: epoch skew");
            assert_same("persistent cold engine", seed, op, &ds, &cs);
            // Verdict reuse may only answer probes, never change which
            // probes the search makes.
            assert_eq!(
                ds.stats.solve_probes + ds.stats.reused_verdicts,
                cs.stats.solve_probes,
                "seed {seed} op {op}: probe accounting broke"
            );
            // Scratch replay: no caches of any kind, fed the same
            // prefix, solved cold exactly once.
            let scratch = Engine::new(L2, cfg.full_republish().with_solver(SolverMode::Cold));
            scratch.ingest(fed);
            let ss = scratch.snapshot();
            assert_same("fresh scratch replay", seed, op, &ds, &ss);
            ds.stats.reused_verdicts
        };

        for op in 0..OPS {
            match rng.next() % 8 {
                // Small ingest: 1–4 points, mostly exact site
                // duplicates (weight bumps), sometimes jittered
                // (fresh representatives).
                0..=2 => {
                    let n = (rng.next() % 4 + 1) as usize;
                    let batch: Vec<[f64; 2]> = (0..n)
                        .map(|_| {
                            let s = site(rng.next());
                            if rng.next().is_multiple_of(4) {
                                [s[0] + (rng.next() % 7) as f64 * 0.3, s[1]]
                            } else {
                                s
                            }
                        })
                        .collect();
                    feed(&delta, &cold, &mut fed, &batch);
                }
                // Burst ingest: 32 points across all sites.
                3 => {
                    let batch: Vec<[f64; 2]> = (0..32).map(|j| site(rng.next() + j)).collect();
                    feed(&delta, &cold, &mut fed, &batch);
                }
                // Publish (first data-bearing one flips `published`).
                4 | 5 => {
                    if fed.is_empty() {
                        continue;
                    }
                    total_reused += check(&delta, &cold, &fed, op);
                    published = true;
                }
                // Idle publish: no new data.  Elided epochs must leave
                // the solve state untouched and re-serve the producing
                // solve's bits.
                6 => {
                    if !published {
                        continue;
                    }
                    total_reused += check(&delta, &cold, &fed, op);
                }
                // Bump: re-ingest one already-fed point, then publish —
                // the steady-state republish the delta solver exists
                // for.
                _ => {
                    if fed.is_empty() {
                        continue;
                    }
                    let p = fed[(rng.next() % fed.len() as u64) as usize];
                    feed(&delta, &cold, &mut fed, &[p]);
                    total_reused += check(&delta, &cold, &fed, op);
                    published = true;
                }
            }
        }
        // Deterministic steady-state tail: publish whatever is pending,
        // then a single-duplicate republish.
        if !fed.is_empty() {
            total_reused += check(&delta, &cold, &fed, OPS);
            let p = fed[0];
            feed(&delta, &cold, &mut fed, &[p]);
            total_reused += check(&delta, &cold, &fed, OPS + 1);
        }
    }
    assert!(
        total_reused > 0,
        "no steady-state epoch reused any cached verdict across {SEEDS} seeds"
    );
}
