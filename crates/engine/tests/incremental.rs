//! The incremental-publish contract, pinned three ways:
//!
//! 1. **History independence** (the dirty-tracking property test): under
//!    seeded random schedules of ingest batches, publishes, and idle
//!    republishes, every published snapshot is bit-identical to what a
//!    from-scratch, full-republish engine fed the same prefix publishes —
//!    the tree cache and the warm-started solve never leak publish
//!    history into the answer.
//! 2. **Work bounds** (the `merges()` regression): a cold publish of N
//!    shards pays N-1 pair merges; a publish after touching one shard
//!    pays at most the depth of the dirty root-to-leaf path.
//! 3. **Failure atomicity**: a publish that panics mid-merge burns no
//!    epoch number and poisons nothing a later publish needs — the next
//!    publish rebuilds cold and succeeds.

use kcz_engine::{Engine, EngineConfig, Snapshot};
use kcz_metric::{MetricSpace, L2};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Seeded xorshift stream: two clusters plus sparse far outliers.
struct Gen(u64);

impl Gen {
    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn point(&mut self) -> [f64; 2] {
        let r = self.next_u64();
        let unit = (r >> 11) as f64 / (1u64 << 53) as f64;
        match r % 50 {
            49 => [4000.0 + unit * 500.0, -2500.0],
            n if n % 2 == 0 => [unit * 4.0, unit * 3.0],
            _ => [120.0 + unit * 4.0, 120.0 + unit * 4.0],
        }
    }

    fn batch(&mut self, max_len: usize) -> Vec<[f64; 2]> {
        let len = 1 + (self.next_u64() as usize) % max_len;
        (0..len).map(|_| self.point()).collect()
    }
}

/// Everything the bit-identity contract covers: solved answer, certified
/// bounds, the merged coreset itself, and its space accounting.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    centers: Vec<[u64; 2]>,
    radius: u64,
    radius_bound: u64,
    uncovered: u64,
    effective_eps: u64,
    coreset: Vec<(u64, u64, u64)>,
    summary_words: usize,
}

fn fingerprint(snap: &Snapshot<[f64; 2]>) -> Fingerprint {
    Fingerprint {
        centers: snap
            .centers
            .iter()
            .map(|c| [c[0].to_bits(), c[1].to_bits()])
            .collect(),
        radius: snap.radius.to_bits(),
        radius_bound: snap.radius_bound.to_bits(),
        uncovered: snap.uncovered,
        effective_eps: snap.effective_eps.to_bits(),
        coreset: snap
            .coreset
            .iter()
            .map(|w| (w.point[0].to_bits(), w.point[1].to_bits(), w.weight))
            .collect(),
        summary_words: snap.stats.summary_words,
    }
}

#[test]
fn random_schedules_are_bit_identical_to_from_scratch_publishes() {
    for (seed, shards) in [
        (0xA11CE_u64, 1usize),
        (0xB0B_u64, 3),
        (0xC0FFEE_u64, 4),
        (0xD00D_u64, 8),
        (0x5EED_u64, 8),
    ] {
        let cfg = EngineConfig::new(shards, 2, 8, 0.5);
        let incremental = Engine::new(L2, cfg);
        // A persistent cold engine publishing at the same instants: the
        // warm-started solve must agree with the cold solve on the same
        // merged data, epoch for epoch.
        let cold = Engine::new(L2, cfg.full_republish());
        let mut gen = Gen(seed);
        let mut prefix: Vec<Vec<[f64; 2]>> = Vec::new();
        let mut publishes = 0u64;
        let mut epochs = 0u64;
        let mut dirty = false;
        for _ in 0..40 {
            match gen.next_u64() % 4 {
                // Republish with no intervening ingest comes back cached
                // (same epoch); with unpublished ingests it is a real
                // publish and burns an epoch — either way both engines
                // must agree bit for bit.
                0 => {
                    // The first publish ever always solves (nothing is
                    // cached yet), even on an empty engine.
                    if dirty || epochs == 0 {
                        epochs += 1;
                        dirty = false;
                    }
                    let (a, b) = (incremental.publish(), cold.publish());
                    if !prefix.is_empty() {
                        assert_eq!(a.epoch, epochs, "seed {seed:#x}");
                        assert_eq!(fingerprint(&a), fingerprint(&b));
                    }
                }
                1 => {
                    let batch = gen.batch(48);
                    incremental.ingest(&batch);
                    cold.ingest(&batch);
                    prefix.push(batch);
                    dirty = true;
                }
                _ => {
                    let batch = gen.batch(48);
                    incremental.ingest(&batch);
                    cold.ingest(&batch);
                    prefix.push(batch);
                    publishes += 1;
                    epochs += 1;
                    dirty = false;
                    let inc = incremental.publish();
                    assert_eq!(inc.epoch, epochs, "seed {seed:#x}");
                    // Oracle 1: the persistent cold engine.
                    let per_epoch = cold.publish();
                    assert_eq!(
                        fingerprint(&inc),
                        fingerprint(&per_epoch),
                        "seed {seed:#x} shards {shards} epoch {publishes}: warm/cached \
                         publish diverged from the cold engine"
                    );
                    // Oracle 2: a brand-new engine fed the same prefix,
                    // publishing exactly once — no cache, no warm state,
                    // no publish history at all.
                    let scratch = Engine::new(L2, cfg.full_republish());
                    for b in &prefix {
                        scratch.ingest(b);
                    }
                    assert_eq!(
                        fingerprint(&inc),
                        fingerprint(&scratch.snapshot()),
                        "seed {seed:#x} shards {shards} epoch {publishes}: incremental \
                         publish diverged from a from-scratch engine"
                    );
                }
            }
        }
        assert!(publishes >= 10, "schedule exercised too few publishes");
    }
}

#[test]
fn touching_one_shard_remerges_at_most_the_dirty_path() {
    let engine = Engine::new(L2, EngineConfig::new(8, 2, 4, 0.5));
    // Spread a batch over all shards and publish cold: 7 pair merges.
    let mut gen = Gen(0xFEED);
    engine.ingest(&(0..256).map(|_| gen.point()).collect::<Vec<_>>());
    engine.publish();
    assert_eq!(engine.merges(), 7, "cold 8-shard publish is 7 pair merges");

    // One point touches exactly one shard; republishing re-merges only
    // that leaf's root path: ≤ ⌈log₂ 8⌉ = 3 pair merges, not 7.
    for i in 0..5u64 {
        let before = engine.merges();
        engine.ingest(&[[3.0 + i as f64, 1.0]]);
        engine.publish();
        let cost = engine.merges() - before;
        assert!(cost <= 3, "dirty-path republish cost {cost} > 3");
        assert!(cost >= 1, "a dirty shard must re-merge something");
    }

    // An idle republish re-merges nothing at all.
    let before = engine.merges();
    engine.publish();
    assert_eq!(engine.merges(), before);
}

/// An L2 wrapper that can be armed to panic on the next distance
/// evaluation — inside the pool-mapped merge, from the publisher's
/// perspective — then disarmed to let the retry succeed.
#[derive(Clone)]
struct FlakyL2 {
    armed: Arc<AtomicBool>,
}

impl MetricSpace<[f64; 2]> for FlakyL2 {
    fn dist(&self, a: &[f64; 2], b: &[f64; 2]) -> f64 {
        assert!(
            !self.armed.load(Ordering::Relaxed),
            "injected metric failure"
        );
        L2.dist(a, b)
    }

    fn doubling_dim(&self) -> usize {
        <L2 as MetricSpace<[f64; 2]>>::doubling_dim(&L2)
    }
}

#[test]
fn panicking_publish_burns_no_epoch_and_recovers() {
    let armed = Arc::new(AtomicBool::new(false));
    let metric = FlakyL2 {
        armed: Arc::clone(&armed),
    };
    let engine = Engine::new(metric, EngineConfig::new(4, 2, 6, 0.5));
    let mut gen = Gen(0xBAD5EED);
    engine.ingest(&(0..200).map(|_| gen.point()).collect::<Vec<_>>());

    // Arm *after* ingest: shard locks are healthy, and the publish dies
    // inside the merge/solve it runs on the pool.
    armed.store(true, Ordering::Relaxed);
    let died = catch_unwind(AssertUnwindSafe(|| engine.publish()));
    assert!(died.is_err(), "armed publish must propagate the panic");
    assert_eq!(engine.epoch(), 0, "failed publish must not burn an epoch");
    assert!(engine.latest().is_none(), "nothing was published");

    // Disarm: the next publish must recover the poisoned publish locks,
    // rebuild cold, and succeed with the first epoch number.
    armed.store(false, Ordering::Relaxed);
    let snap = engine.publish();
    assert_eq!(snap.epoch, 1, "recovered publish takes epoch 1");
    assert_eq!(engine.epoch(), 1);
    let again = engine.publish();
    assert_eq!(again.epoch, 1, "cached republish after recovery");
    assert!(engine.latest().is_some());
}
