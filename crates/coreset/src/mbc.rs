//! `MBCConstruction` — Algorithm 1 of the paper.
//!
//! Given a weighted set `P`, the construction first calls `Greedy(P, k, z)`
//! (Charikar et al.) whose radius `r` satisfies `opt ≤ r ≤ 3·opt`, then
//! repeatedly takes an arbitrary remaining point `q`, makes it the
//! representative of every remaining point within `ε·r/3` of it, and
//! removes the group.  The result is an (ε,k,z)-mini-ball covering of size
//! at most `k(12/ε)^d + z` (Lemma 7).

use kcz_kcenter::charikar::{greedy_with, GreedyParams};
use kcz_metric::{MetricSpace, SpaceUsage, Weighted};

/// A mini-ball covering: the output of Algorithm 1.
#[derive(Debug, Clone)]
pub struct MiniBallCovering<P> {
    /// Representative points with aggregated weights.  Satisfies the weight
    /// and covering properties of Definition 2 with respect to the input.
    pub reps: Vec<Weighted<P>>,
    /// Mini-ball radius `δ = ε·r/3` used by the partition: every input
    /// point lies within `δ` of its representative.
    pub mini_radius: f64,
    /// The `Greedy` covering radius `r` (`opt ≤ r ≤ 3·opt`).
    pub greedy_radius: f64,
}

impl<P> MiniBallCovering<P> {
    /// Number of representatives.
    pub fn len(&self) -> usize {
        self.reps.len()
    }

    /// Whether the covering is empty.
    pub fn is_empty(&self) -> bool {
        self.reps.is_empty()
    }

    /// Total weight (equals the input's total weight by Definition 2(1)).
    pub fn total_weight(&self) -> u64 {
        kcz_metric::total_weight(&self.reps)
    }
}

impl<P: SpaceUsage> SpaceUsage for MiniBallCovering<P> {
    fn words(&self) -> usize {
        self.reps.words() + 2
    }
}

/// `MBCConstruction(P, k, z, ε)` with default `Greedy` parameters.
pub fn mbc_construction<P: Clone, M: MetricSpace<P>>(
    metric: &M,
    points: &[Weighted<P>],
    k: usize,
    z: u64,
    eps: f64,
) -> MiniBallCovering<P> {
    mbc_construction_with(metric, points, k, z, eps, &GreedyParams::default())
}

/// `MBCConstruction(P, k, z, ε)` with explicit `Greedy` parameters.
///
/// `ε` must lie in `(0, 1]` (the paper's range).  For inputs whose entire
/// weight fits in the outlier budget the greedy radius is `0`; the
/// partition then only merges exact duplicates, which keeps the covering
/// property vacuously (`opt = 0`).
pub fn mbc_construction_with<P: Clone, M: MetricSpace<P>>(
    metric: &M,
    points: &[Weighted<P>],
    k: usize,
    z: u64,
    eps: f64,
    params: &GreedyParams,
) -> MiniBallCovering<P> {
    assert!(eps > 0.0 && eps <= 1.0, "ε must be in (0, 1], got {eps}");
    if points.is_empty() {
        return MiniBallCovering {
            reps: Vec::new(),
            mini_radius: 0.0,
            greedy_radius: 0.0,
        };
    }
    let sol = greedy_with(metric, points, k, z, params);
    let delta = eps * sol.radius / 3.0;
    let reps = greedy_partition(metric, points, delta);
    MiniBallCovering {
        reps,
        mini_radius: delta,
        greedy_radius: sol.radius,
    }
}

/// The greedy partition shared by Algorithms 1 and 4: sweep the points in
/// input order; every point not yet absorbed becomes a representative and
/// absorbs all remaining points within `delta` of it.
///
/// `O(n²)` in the worst case, `O(n·|output|)` in general.  Each round is
/// one batched [`MetricSpace::within_indices`] ball query (deferred
/// `sqrt`) over the still-live points, which are kept compacted so no
/// distance to an already-absorbed point is ever computed.
pub(crate) fn greedy_partition<P: Clone, M: MetricSpace<P>>(
    metric: &M,
    points: &[Weighted<P>],
    delta: f64,
) -> Vec<Weighted<P>> {
    let mut live_pts: Vec<P> = points.iter().map(|wp| wp.point.clone()).collect();
    let mut live_w: Vec<u64> = points.iter().map(|wp| wp.weight).collect();
    let mut reps: Vec<Weighted<P>> = Vec::new();
    let mut near: Vec<usize> = Vec::new();
    while !live_pts.is_empty() {
        let rep = live_pts[0].clone();
        metric.within_indices(&rep, &live_pts, delta, &mut near);
        // `near` is ascending and starts with 0 (the representative itself,
        // at distance 0); guard against metrics that violate identity.
        if near.first() != Some(&0) {
            near.insert(0, 0);
        }
        let mut weight = 0u64;
        for &j in &near {
            weight = weight.saturating_add(live_w[j]);
        }
        // Order-preserving compaction dropping the absorbed positions.
        let mut keep = 0usize;
        let mut ni = 0usize;
        for j in 0..live_pts.len() {
            if ni < near.len() && near[ni] == j {
                ni += 1;
                continue;
            }
            live_pts.swap(keep, j);
            live_w.swap(keep, j);
            keep += 1;
        }
        live_pts.truncate(keep);
        live_w.truncate(keep);
        reps.push(Weighted { point: rep, weight });
    }
    reps
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcz_kcenter::exact_discrete;
    use kcz_metric::{total_weight, unit_weighted, L2};

    /// k=2 clusters of 25 points each plus z=3 distant outliers.
    fn instance() -> (Vec<[f64; 2]>, usize, u64) {
        let mut raw = vec![];
        for i in 0..25 {
            let a = i as f64 * 0.25;
            raw.push([a.cos(), a.sin()]);
            raw.push([50.0 + a.sin(), 50.0 + a.cos()]);
        }
        raw.push([500.0, 0.0]);
        raw.push([0.0, 500.0]);
        raw.push([-500.0, -500.0]);
        (raw, 2, 3)
    }

    #[test]
    fn weight_property_holds() {
        let (raw, k, z) = instance();
        let pts = unit_weighted(&raw);
        let mbc = mbc_construction(&L2, &pts, k, z, 0.5);
        assert_eq!(mbc.total_weight(), total_weight(&pts));
    }

    #[test]
    fn covering_property_holds() {
        let (raw, k, z) = instance();
        let pts = unit_weighted(&raw);
        let mbc = mbc_construction(&L2, &pts, k, z, 0.5);
        // Every input point has a representative within ε·opt.  With
        // opt ≤ r_greedy the construction guarantees distance ≤ ε·r/3 ≤ ε·opt.
        let opt = exact_discrete(&L2, &pts, k, z, &raw).radius;
        for p in &raw {
            let d = mbc
                .reps
                .iter()
                .map(|q| L2.dist(p, &q.point))
                .fold(f64::INFINITY, f64::min);
            assert!(d <= 0.5 * opt + 1e-12, "point {p:?} at distance {d}");
        }
    }

    #[test]
    fn size_respects_lemma7() {
        let (raw, k, z) = instance();
        let pts = unit_weighted(&raw);
        for eps in [0.25, 0.5, 1.0] {
            let mbc = mbc_construction(&L2, &pts, k, z, eps);
            let bound = crate::bounds::mbc_size_bound(k, z, eps, 2);
            assert!(
                (mbc.len() as u64) <= bound,
                "eps={eps}: {} > {}",
                mbc.len(),
                bound
            );
        }
    }

    #[test]
    fn coreset_preserves_opt_radius() {
        let (raw, k, z) = instance();
        let pts = unit_weighted(&raw);
        let eps = 0.3;
        let mbc = mbc_construction(&L2, &pts, k, z, eps);
        let opt_p = exact_discrete(&L2, &pts, k, z, &raw).radius;
        let cand: Vec<[f64; 2]> = mbc.reps.iter().map(|r| r.point).collect();
        let opt_star = exact_discrete(&L2, &mbc.reps, k, z, &cand).radius;
        // Definition 1(1) with the discrete-center caveat (see DESIGN.md):
        // the coreset optimum must be close to the original optimum.
        assert!(
            opt_star <= (1.0 + eps) * opt_p + 1e-9,
            "opt* {opt_star} vs opt {opt_p}"
        );
        assert!(
            opt_star >= (1.0 - eps) * opt_p - eps * opt_p - 1e-9,
            "opt* {opt_star} vs opt {opt_p}"
        );
    }

    #[test]
    fn duplicates_merge_even_at_zero_radius() {
        let raw = vec![[0.0, 0.0], [0.0, 0.0], [1.0, 0.0], [1.0, 0.0]];
        let pts = unit_weighted(&raw);
        // k=2 covers both locations exactly: greedy radius 0.
        let mbc = mbc_construction(&L2, &pts, 2, 0, 0.5);
        assert_eq!(mbc.greedy_radius, 0.0);
        assert_eq!(mbc.len(), 2);
        assert_eq!(mbc.total_weight(), 4);
    }

    #[test]
    fn empty_input() {
        let pts: Vec<Weighted<[f64; 2]>> = vec![];
        let mbc = mbc_construction(&L2, &pts, 2, 1, 0.5);
        assert!(mbc.is_empty());
    }

    #[test]
    #[should_panic(expected = "ε must be in")]
    fn rejects_bad_eps() {
        let pts = unit_weighted(&[[0.0, 0.0]]);
        let _ = mbc_construction(&L2, &pts, 1, 0, 0.0);
    }

    #[test]
    fn partition_absorbs_within_delta_only() {
        let pts = unit_weighted(&[[0.0, 0.0], [0.5, 0.0], [2.0, 0.0]]);
        let reps = greedy_partition(&L2, &pts, 1.0);
        assert_eq!(reps.len(), 2);
        assert_eq!(reps[0].weight, 2);
        assert_eq!(reps[1].weight, 1);
        assert_eq!(reps[1].point, [2.0, 0.0]);
    }
}
