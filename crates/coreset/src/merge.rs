//! `MergeableSummary` — the composability of mini-ball coverings as a
//! first-class trait.
//!
//! The paper's coresets are explicitly composable: the union of
//! (ε,k,z)-mini-ball coverings of disjoint parts is a covering of the
//! union (Lemma 4), and recompressing a covering degrades ε only
//! additively (Lemma 5: ε + γ + εγ).  The MPC algorithms, the sharded
//! streaming engine, and the conformance harness all rely on the same two
//! facts; this trait pins the bookkeeping — what ε′ a summary currently
//! guarantees and how merging changes it — in one place instead of
//! per-pipeline bound code.
//!
//! Implementors in this workspace:
//!
//! * [`MiniBallCovering`] (here) — merge is the Lemma 4 union: the
//!   covering drift of each part is unchanged, so the merged ε′ is the
//!   max of the sides' (the usual MPC-coordinator recompression that
//!   *follows* a union is what invokes Lemma 5, via
//!   [`crate::compose::composed_eps`]);
//! * `kcz_streaming::DoublingCoreset` / `InsertionOnlyCoreset` — merge
//!   recompresses at the merged radius, costing one `a·r` drift term per
//!   merge generation (the streaming mirror of Lemma 5).

use kcz_metric::{MetricSpace, SpaceUsage};

use crate::mbc::MiniBallCovering;

/// A summary that can absorb another summary of the same shape while
/// tracking the accuracy it still guarantees.
///
/// The contract mirrors Definition 2: after any sequence of inserts and
/// merges, every point fed into the summary (directly or via a merged-in
/// side) has a representative within `effective_eps() · opt` of it.
pub trait MergeableSummary {
    /// Absorbs `other` into `self` (Lemma 4 union, possibly followed by
    /// the implementor's recompression).  Panics if the two summaries
    /// were built with incompatible parameters.
    fn merge(&mut self, other: Self);

    /// The ε′ the summary currently guarantees: the covering property
    /// holds at `ε′·opt`.  Grows under merging exactly as the
    /// implementor's composition lemma dictates.
    fn effective_eps(&self) -> f64;

    /// Current storage footprint in machine words (the paper's Table 1
    /// unit), so engines can account per-shard peaks and merge-time
    /// transients uniformly.
    fn words(&self) -> usize;
}

/// The end-to-end ratio factor certified by solving on an ε′-summary with
/// the Charikar-et-al. greedy: `3 + 8ε′`.
///
/// Derivation (shared by the conformance harness, the resident engine and
/// the MPC verdicts): greedy on the summary 3-approximates the summary's
/// discrete optimum, shifting the true optimal centers onto their
/// representatives costs `2δ`, and reading the radius back on the input
/// costs another `δ`, where `δ ≤ ε′·opt` is the covering drift —
/// `3(opt + 2δ) + δ ≤ (3 + 7ε′)·opt`, with one more ε′ of margin for
/// second-order effects (weight clamping, pre-radius merges).
pub fn end_to_end_factor(effective_eps: f64) -> f64 {
    3.0 + 8.0 * effective_eps
}

impl<P: Clone + SpaceUsage> MergeableSummary for MiniBallCovering<P> {
    /// Lemma 4 union: concatenate the representative sets.  Valid as an
    /// (ε,k,z)-covering of the combined input whenever the parts'
    /// per-part optima are bounded by the combined optimum — the
    /// precondition every MPC round arranges before unioning.
    ///
    /// Concatenation also makes representative *order* a pure function
    /// of the tree shape and each leaf's internal order.  The engine's
    /// delta-aware solver leans on this: when an ingest only bumps
    /// weights (every absorb lands on an existing representative), the
    /// re-merged summary lists the same representatives at the same
    /// positions, so the solver's cached candidate ladder and distance
    /// matrix remain valid verbatim.
    fn merge(&mut self, other: Self) {
        self.reps.extend(other.reps);
        self.mini_radius = self.mini_radius.max(other.mini_radius);
        self.greedy_radius = self.greedy_radius.max(other.greedy_radius);
    }

    /// `δ = ε·r/3` with `r ≥ opt`, so the drift `mini_radius` certifies
    /// `ε′ = 3·δ/r`.  A zero greedy radius means the covering only
    /// merged exact duplicates: zero drift.
    fn effective_eps(&self) -> f64 {
        if self.greedy_radius > 0.0 {
            3.0 * self.mini_radius / self.greedy_radius
        } else {
            0.0
        }
    }

    fn words(&self) -> usize {
        SpaceUsage::words(self)
    }
}

/// One level of the balanced merge tree: adjacent elements paired in
/// order, with an odd tail carried unpaired (`None` on the right).
///
/// This is the **single definition of the tree's shape**.  The composed
/// ε′ accounting (`ε′ = ε(1 + ⌈log₂ s⌉/2)` for the streaming summaries)
/// and the determinism guarantee of parallel executors both depend on
/// every consumer building exactly this tree: [`merge_tree`] folds the
/// levels sequentially, and the resident engine maps each level's pairs
/// over its worker pool — bit-identical results by construction.
pub fn merge_level<S>(layer: Vec<S>) -> Vec<(S, Option<S>)> {
    let mut pairs = Vec::with_capacity(layer.len().div_ceil(2));
    let mut it = layer.into_iter();
    while let Some(left) = it.next() {
        pairs.push((left, it.next()));
    }
    pairs
}

/// Merges summaries pairwise in a fixed balanced-tree order until one
/// remains; returns `None` on an empty input.  The tree shape depends
/// only on the input length (see [`merge_level`]), and the composed ε′
/// grows with the tree *depth* (⌈log₂ s⌉ merge generations) rather than
/// with `s − 1` as a left fold would.
pub fn merge_tree<S: MergeableSummary>(mut layer: Vec<S>) -> Option<S> {
    while layer.len() > 1 {
        layer = merge_level(layer)
            .into_iter()
            .map(|(mut left, right)| {
                if let Some(right) = right {
                    left.merge(right);
                }
                left
            })
            .collect();
    }
    layer.pop()
}

/// Number of [`merge_level`] rounds a tree over `leaves` inputs performs
/// before one summary remains: `⌈log₂ leaves⌉` (0 for zero or one leaf).
/// This is the generation count the composed ε′ accounting charges —
/// cache-reusing executors must re-merge a dirty leaf's path through
/// exactly this many levels.
pub fn tree_depth(leaves: usize) -> usize {
    let mut depth = 0;
    let mut width = leaves;
    while width > 1 {
        width = width.div_ceil(2);
        depth += 1;
    }
    depth
}

/// The leaves covered by node `index` of level `level` in the balanced
/// merge tree over `leaves` inputs (level 0 is the leaves themselves,
/// level [`tree_depth`] the root): `[index·2^level, (index+1)·2^level)`
/// clipped to `leaves`.
///
/// This is the cache key of an incremental re-merge: a cached interior
/// node may be reused iff no leaf in its span changed, because
/// [`merge_level`] pairs adjacent nodes — node `(ℓ+1, i)` is built from
/// `(ℓ, 2i)` and `(ℓ, 2i+1)`, so spans compose exactly this way (an
/// unpaired odd tail carries the left child's span unchanged, and both
/// expressions clip to the same range).  The returned range is empty iff
/// the node does not exist at that level.
pub fn leaf_span(level: usize, index: usize, leaves: usize) -> std::ops::Range<usize> {
    let width = 1usize << level.min(usize::BITS as usize - 1);
    let lo = index.saturating_mul(width).min(leaves);
    let hi = (index.saturating_add(1)).saturating_mul(width).min(leaves);
    lo..hi
}

/// Validates that two summaries built over a metric agree on it enough to
/// merge (helper for implementors that cannot compare metrics directly:
/// doubling dimension is the only observable parameter).
pub fn compatible_metrics<P, M: MetricSpace<P>>(a: &M, b: &M) -> bool {
    a.doubling_dim() == b.doubling_dim()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::composed_eps;
    use crate::mbc::mbc_construction;
    use kcz_metric::{total_weight, unit_weighted, L2};

    fn covering_of(points: &[[f64; 2]], eps: f64) -> MiniBallCovering<[f64; 2]> {
        mbc_construction(&L2, &unit_weighted(points), 2, 1, eps)
    }

    #[test]
    fn union_merge_preserves_weight_and_drift_budget() {
        let a_pts: Vec<[f64; 2]> = (0..20).map(|i| [i as f64 * 0.1, 0.0]).collect();
        let b_pts: Vec<[f64; 2]> = (0..30).map(|i| [50.0 + i as f64 * 0.1, 0.0]).collect();
        let mut a = covering_of(&a_pts, 0.5);
        let b = covering_of(&b_pts, 0.25);
        let (da, db) = (a.mini_radius, b.mini_radius);
        a.merge(b);
        assert_eq!(a.total_weight(), 50);
        assert_eq!(a.mini_radius, da.max(db));
        // Every input point still has a representative within the merged
        // mini radius (each side's drift is untouched by concatenation).
        for p in a_pts.iter().chain(&b_pts) {
            let d = a
                .reps
                .iter()
                .map(|r| L2.dist(p, &r.point))
                .fold(f64::INFINITY, f64::min);
            assert!(d <= a.mini_radius + 1e-12, "{p:?} at {d}");
        }
    }

    #[test]
    fn effective_eps_reads_back_the_construction_eps() {
        let pts: Vec<[f64; 2]> = (0..40)
            .map(|i| [(i % 7) as f64 * 3.0, (i / 7) as f64])
            .collect();
        for eps in [0.25, 0.5, 1.0] {
            let mbc = covering_of(&pts, eps);
            assert!(
                (mbc.effective_eps() - eps).abs() < 1e-12,
                "eps {eps} read back as {}",
                mbc.effective_eps()
            );
        }
        // Degenerate: all weight within the outlier budget → r = 0 → ε′ = 0.
        let tiny = mbc_construction(&L2, &unit_weighted(&[[1.0, 1.0]]), 1, 5, 0.5);
        assert_eq!(tiny.effective_eps(), 0.0);
    }

    #[test]
    fn words_matches_space_usage() {
        let mbc = covering_of(&[[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]], 1.0);
        assert_eq!(
            MergeableSummary::words(&mbc),
            kcz_metric::SpaceUsage::words(&mbc)
        );
    }

    #[test]
    fn merge_tree_is_balanced_and_total() {
        let parts: Vec<MiniBallCovering<[f64; 2]>> = (0..5)
            .map(|s| {
                let pts: Vec<[f64; 2]> = (0..10)
                    .map(|i| [s as f64 * 100.0 + i as f64, 0.0])
                    .collect();
                covering_of(&pts, 0.5)
            })
            .collect();
        let merged = merge_tree(parts).expect("non-empty");
        assert_eq!(total_weight(&merged.reps), 50);
        assert!(merge_tree(Vec::<MiniBallCovering<[f64; 2]>>::new()).is_none());
    }

    #[test]
    fn weight_only_bumps_preserve_merged_representative_order() {
        // The delta-aware solver's pure-bump fast path assumes that if
        // no leaf gained or lost a representative, the merged summary's
        // representative positions are bit-identical and only weights
        // moved.  Union merging is concatenation, so this must hold for
        // any leaf's weights bumped by any amount.
        let parts: Vec<MiniBallCovering<[f64; 2]>> = (0..5)
            .map(|s| {
                let pts: Vec<[f64; 2]> = (0..8)
                    .map(|i| [s as f64 * 100.0 + i as f64 * 5.0, 0.0])
                    .collect();
                covering_of(&pts, 0.5)
            })
            .collect();
        let before = merge_tree(parts.clone()).expect("non-empty");
        let mut bumped = parts;
        bumped[1].reps[3].weight += 7;
        bumped[4].reps[0].weight += 1;
        let after = merge_tree(bumped).expect("non-empty");
        assert_eq!(before.reps.len(), after.reps.len());
        for (i, (b, a)) in before.reps.iter().zip(&after.reps).enumerate() {
            assert_eq!(
                b.point.map(f64::to_bits),
                a.point.map(f64::to_bits),
                "rep {i} moved position under a weight-only bump"
            );
            assert!(a.weight >= b.weight, "rep {i} lost weight");
        }
        assert_eq!(
            total_weight(&after.reps),
            total_weight(&before.reps) + 8,
            "exactly the bumped mass arrives"
        );
    }

    #[test]
    fn end_to_end_factor_tracks_lemma5_composition() {
        assert_eq!(end_to_end_factor(0.0), 3.0);
        assert_eq!(end_to_end_factor(0.5), 7.0);
        // Recompressing a merged union pays Lemma 5: the factor for the
        // composed ε matches the harness's MPC bound chain.
        let eps = 0.4;
        assert!((end_to_end_factor(composed_eps(eps, eps)) - (3.0 + 8.0 * 0.96)).abs() < 1e-12);
    }

    #[test]
    fn metric_compatibility_is_doubling_dim() {
        assert!(compatible_metrics::<[f64; 2], _>(&L2, &L2));
    }

    #[test]
    fn tree_depth_counts_merge_level_rounds() {
        assert_eq!(tree_depth(0), 0);
        assert_eq!(tree_depth(1), 0);
        for leaves in 2..=64usize {
            // Count the rounds the real reduction performs.
            let mut rounds = 0;
            let mut layer: Vec<usize> = (0..leaves).collect();
            while layer.len() > 1 {
                layer = merge_level(layer).into_iter().map(|(l, _)| l).collect();
                rounds += 1;
            }
            assert_eq!(tree_depth(leaves), rounds, "leaves = {leaves}");
            assert_eq!(tree_depth(leaves), (leaves as f64).log2().ceil() as usize);
        }
    }

    #[test]
    fn leaf_span_matches_merge_level_pairing() {
        // Build the tree over labelled leaf sets and check every node's
        // set equals its `leaf_span` — the span formula and the pairing
        // of `merge_level` must be the same shape definition.
        for leaves in 1..=17usize {
            let mut layer: Vec<Vec<usize>> = (0..leaves).map(|i| vec![i]).collect();
            let mut level = 0;
            loop {
                for (i, node) in layer.iter().enumerate() {
                    let span = leaf_span(level, i, leaves);
                    assert_eq!(
                        node.clone(),
                        span.collect::<Vec<_>>(),
                        "leaves = {leaves}, level = {level}, node = {i}"
                    );
                }
                // Nodes past the level's width must have empty spans.
                assert!(leaf_span(level, layer.len(), leaves).is_empty());
                if layer.len() == 1 {
                    break;
                }
                layer = merge_level(layer)
                    .into_iter()
                    .map(|(mut l, r)| {
                        if let Some(r) = r {
                            l.extend(r);
                        }
                        l
                    })
                    .collect();
                level += 1;
            }
            assert_eq!(level, tree_depth(leaves));
        }
    }
}
