//! `UpdateCoreset` — Algorithm 4 of the paper.
//!
//! Re-clusters an existing weighted set at granularity `δ`: sweep the
//! points, let each unabsorbed point absorb everything within `δ`.  The
//! streaming algorithm (Algorithm 3) calls this every time it doubles its
//! radius estimate; Lemma 16 shows the accumulated representative error
//! stays at most `ε·r` because `r` doubles between calls.

use kcz_metric::{MetricSpace, Weighted};

use crate::mbc::greedy_partition;

/// `UpdateCoreset(Q, δ)`: returns a weighted subset of `Q` in which any two
/// points are more than `δ` apart, with weights aggregated group-wise
/// (weight property of Definition 2 preserved).
pub fn update_coreset<P: Clone, M: MetricSpace<P>>(
    metric: &M,
    q: &[Weighted<P>],
    delta: f64,
) -> Vec<Weighted<P>> {
    assert!(delta >= 0.0, "δ must be non-negative");
    greedy_partition(metric, q, delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcz_metric::{total_weight, unit_weighted, L2};

    #[test]
    fn output_points_are_pairwise_far() {
        let raw: Vec<[f64; 2]> = (0..50).map(|i| [i as f64 * 0.3, 0.0]).collect();
        let pts = unit_weighted(&raw);
        let out = update_coreset(&L2, &pts, 1.0);
        for i in 0..out.len() {
            for j in (i + 1)..out.len() {
                assert!(L2.dist(&out[i].point, &out[j].point) > 1.0);
            }
        }
        assert_eq!(total_weight(&out), 50);
    }

    #[test]
    fn every_input_has_close_representative() {
        let raw: Vec<[f64; 2]> = (0..50)
            .map(|i| [(i * 17 % 23) as f64, (i * 13 % 19) as f64])
            .collect();
        let pts = unit_weighted(&raw);
        let delta = 4.0;
        let out = update_coreset(&L2, &pts, delta);
        for p in &raw {
            let d = out
                .iter()
                .map(|q| L2.dist(p, &q.point))
                .fold(f64::INFINITY, f64::min);
            assert!(d <= delta, "point {p:?} has nearest rep at {d}");
        }
    }

    #[test]
    fn zero_delta_merges_only_duplicates() {
        let pts = unit_weighted(&[[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]]);
        let out = update_coreset(&L2, &pts, 0.0);
        assert_eq!(out.len(), 2);
        assert_eq!(total_weight(&out), 3);
    }

    #[test]
    fn weights_aggregate() {
        let pts = vec![
            Weighted::new([0.0, 0.0], 5),
            Weighted::new([0.1, 0.0], 7),
            Weighted::new([9.0, 0.0], 11),
        ];
        let out = update_coreset(&L2, &pts, 0.5);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].weight, 12);
        assert_eq!(out[1].weight, 11);
    }
}
