//! Empirical validation of the (ε,k,z)-coreset conditions (Definition 1).
//!
//! Tests and the quality experiments (`EXPERIMENTS.md`, F8) use these
//! checkers to confirm that each algorithm's output actually behaves like a
//! coreset, with optimal radii computed by the exact discrete solver.

use kcz_kcenter::{cost::uncovered_weight, exact_discrete};
use kcz_metric::{total_weight, MetricSpace, Weighted};

/// Outcome of a Definition-1 validation.
#[derive(Debug, Clone)]
pub struct CoresetReport {
    /// Optimal radius on the original set (discrete candidates).
    pub opt_original: f64,
    /// Optimal radius on the coreset (same candidate set).
    pub opt_coreset: f64,
    /// `opt_coreset / opt_original` (1.0 when both are 0).
    pub ratio: f64,
    /// Whether condition (1) holds within `[1−ε_eff, 1+ε_eff]`.
    pub condition1: bool,
    /// Whether condition (2) held for the coreset's optimal ball set.
    pub condition2: bool,
    /// Whether the total weights agree (Definition 2(1)).
    pub weight_preserved: bool,
}

/// Validates both coreset conditions for `coreset` against `original`.
///
/// `eps_eff` is the *effective* error to test against — callers composing
/// coverings (Lemma 5) pass the composed value, e.g. `3ε` for the MPC
/// pipelines.  Candidate centers are the original points, which keeps both
/// optima in the same discrete formulation (see `DESIGN.md` #6).
pub fn validate_coreset<P: Clone + PartialEq, M: MetricSpace<P>>(
    metric: &M,
    original: &[Weighted<P>],
    coreset: &[Weighted<P>],
    k: usize,
    z: u64,
    eps_eff: f64,
) -> CoresetReport {
    let candidates: Vec<P> = original.iter().map(|p| p.point.clone()).collect();
    let opt_original = exact_discrete(metric, original, k, z, &candidates).radius;
    let star = exact_discrete(metric, coreset, k, z, &candidates);
    let opt_coreset = star.radius;

    let ratio = if opt_original == 0.0 {
        if opt_coreset == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        opt_coreset / opt_original
    };
    // Discrete-candidate slack: both directions of Definition 1(1) pick up
    // one ε·opt additive term (Lemma 3's proof), so test against ±ε_eff
    // with a small numerical cushion.
    let tol = 1e-9 + eps_eff * opt_original;
    let condition1 = opt_coreset <= opt_original + tol && opt_coreset >= opt_original - tol;

    // Condition (2): take the coreset's optimal ball set (radius
    // opt_coreset, outlier weight ≤ z on the coreset) and expand by
    // ε_eff·opt_original; the expanded balls must leave ≤ z weight of the
    // original uncovered.
    let condition2 = if star.centers.is_empty() {
        total_weight(original) <= z
    } else {
        let expanded = opt_coreset + eps_eff * opt_original + 1e-9;
        uncovered_weight(metric, original, &star.centers, expanded) <= z
    };

    let weight_preserved = total_weight(original) == total_weight(coreset);

    CoresetReport {
        opt_original,
        opt_coreset,
        ratio,
        condition1,
        condition2,
        weight_preserved,
    }
}

/// Maximum distance from any original point to its nearest coreset point —
/// the covering-property radius (Definition 2(2)).  `None` when the
/// coreset is empty but the original is not.
pub fn covering_radius<P, M: MetricSpace<P>>(
    metric: &M,
    original: &[Weighted<P>],
    coreset: &[Weighted<P>],
) -> Option<f64> {
    if original.is_empty() {
        return Some(0.0);
    }
    if coreset.is_empty() {
        return None;
    }
    let mut worst = 0.0f64;
    for p in original {
        let (_, d) = metric
            .nearest_weighted(&p.point, coreset)
            .expect("coreset checked non-empty above");
        worst = worst.max(d);
    }
    Some(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mbc::mbc_construction;
    use kcz_metric::{unit_weighted, L2};

    fn instance() -> Vec<Weighted<[f64; 2]>> {
        let mut raw = vec![];
        for i in 0..20 {
            let a = i as f64;
            raw.push([a * 0.05, (a * 0.07).sin() * 0.1]);
            raw.push([30.0 + a * 0.05, 30.0 + (a * 0.11).cos() * 0.1]);
        }
        raw.push([300.0, -300.0]);
        raw.push([-300.0, 300.0]);
        unit_weighted(&raw)
    }

    #[test]
    fn mbc_passes_validation() {
        let pts = instance();
        let mbc = mbc_construction(&L2, &pts, 2, 2, 0.4);
        let report = validate_coreset(&L2, &pts, &mbc.reps, 2, 2, 0.4);
        assert!(report.condition1, "{report:?}");
        assert!(report.condition2, "{report:?}");
        assert!(report.weight_preserved, "{report:?}");
    }

    #[test]
    fn bogus_coreset_fails_validation() {
        let pts = instance();
        // A "coreset" that collapses everything to one far-away point.
        let fake = vec![Weighted::new([1e6, 1e6], total_weight(&pts))];
        let report = validate_coreset(&L2, &pts, &fake, 2, 2, 0.4);
        assert!(!report.condition2 || !report.condition1, "{report:?}");
    }

    #[test]
    fn dropping_weight_detected() {
        let pts = instance();
        let mbc = mbc_construction(&L2, &pts, 2, 2, 0.4);
        let mut reps = mbc.reps.clone();
        reps.pop();
        let report = validate_coreset(&L2, &pts, &reps, 2, 2, 0.4);
        assert!(!report.weight_preserved);
    }

    #[test]
    fn covering_radius_bounds_mbc() {
        let pts = instance();
        let mbc = mbc_construction(&L2, &pts, 2, 2, 0.4);
        let cr = covering_radius(&L2, &pts, &mbc.reps).unwrap();
        assert!(cr <= mbc.mini_radius + 1e-12);
        assert_eq!(covering_radius(&L2, &pts, &[]), None);
        assert_eq!(covering_radius::<[f64; 2], _>(&L2, &[], &[]), Some(0.0));
    }
}
