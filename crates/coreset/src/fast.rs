//! Grid-accelerated mini-ball partitions for Euclidean points.
//!
//! The generic [`crate::update_coreset`] is `O(n²)` in the worst case; for
//! `L2` points a hash grid with cell side `δ` restricts each absorption
//! scan to the `3^D` neighbouring cells, which is near-linear for
//! realistic inputs.  The output is *identical* to the generic path —
//! absorption is set-semantics over "unabsorbed points within δ", so
//! candidate enumeration order cannot change the result — and the
//! equivalence is enforced by tests and the `ablation` experiment.

use kcz_metric::grid::GridIndex;
use kcz_metric::{MetricSpace, Weighted, L2};

use crate::mbc::greedy_partition;

/// Grid-accelerated `UpdateCoreset(Q, δ)` for Euclidean points under `L2`.
/// Produces exactly the same output as
/// [`crate::update_coreset`]`(&L2, points, delta)`.
pub fn update_coreset_grid<const D: usize>(
    points: &[Weighted<[f64; D]>],
    delta: f64,
) -> Vec<Weighted<[f64; D]>> {
    assert!(delta >= 0.0, "δ must be non-negative");
    if delta == 0.0 || points.len() < 32 {
        // Degenerate cell side, or too small to amortise index setup.
        return greedy_partition(&L2, points, delta);
    }
    let n = points.len();
    let mut index = GridIndex::<D>::new(delta);
    for (i, wp) in points.iter().enumerate() {
        index.insert(&wp.point, i);
    }
    let mut absorbed = vec![false; n];
    let mut reps: Vec<Weighted<[f64; D]>> = Vec::new();
    for i in 0..n {
        if absorbed[i] {
            continue;
        }
        absorbed[i] = true;
        index.remove(&points[i].point, i);
        let mut weight = points[i].weight;
        let mut taken: Vec<usize> = Vec::new();
        index.for_each_near(&points[i].point, |j| {
            if !absorbed[j] && L2.dist(&points[i].point, &points[j].point) <= delta {
                taken.push(j);
            }
        });
        for j in taken {
            // `for_each_near` may visit an index once per bucket cell, so
            // guard against double-absorption.
            if !absorbed[j] {
                absorbed[j] = true;
                index.remove(&points[j].point, j);
                weight = weight.saturating_add(points[j].weight);
            }
        }
        reps.push(Weighted {
            point: points[i].point,
            weight,
        });
    }
    reps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update_coreset;

    fn pseudo_random_points(n: usize, seed: u64) -> Vec<Weighted<[f64; 2]>> {
        let mut s = seed | 1;
        let mut unit = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| Weighted::new([unit() * 100.0, unit() * 100.0], 1 + (i as u64 % 3)))
            .collect()
    }

    #[test]
    fn identical_to_generic_path() {
        for seed in [1u64, 7, 42] {
            let pts = pseudo_random_points(500, seed);
            for delta in [0.5f64, 3.0, 25.0] {
                let naive = update_coreset(&L2, &pts, delta);
                let fast = update_coreset_grid(&pts, delta);
                assert_eq!(naive.len(), fast.len(), "seed={seed} δ={delta}");
                for (a, b) in naive.iter().zip(&fast) {
                    assert_eq!(a.point, b.point, "seed={seed} δ={delta}");
                    assert_eq!(a.weight, b.weight, "seed={seed} δ={delta}");
                }
            }
        }
    }

    #[test]
    fn small_and_zero_delta_fall_back() {
        let pts = pseudo_random_points(8, 3);
        let out = update_coreset_grid(&pts, 0.0);
        assert_eq!(out.len(), 8);
        let out = update_coreset_grid(&pts, 1e9);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn duplicates_merge() {
        let pts = vec![
            Weighted::new([5.0, 5.0], 2),
            Weighted::new([5.0, 5.0], 3),
            Weighted::new([50.0, 50.0], 1),
        ];
        let out = update_coreset_grid(&pts, 1.0);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].weight, 5);
    }
}
