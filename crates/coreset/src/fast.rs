//! Index-accelerated mini-ball partitions for Euclidean points.
//!
//! The generic [`crate::update_coreset`] is `O(n²)` in the worst case; for
//! `L2` points a bucket-grid [`NeighborIndex`] with cell side `δ` restricts
//! each absorption scan to the `3^D` neighbouring cells, which is
//! near-linear for realistic inputs.  The output is *identical* to the
//! generic path — absorption is set-semantics over "unabsorbed points
//! within δ", both paths classify with the same deferred-`sqrt` predicate,
//! and candidate enumeration order cannot change the result — and the
//! equivalence is enforced by tests and the `ablation` experiment.

use kcz_metric::{GridBucketIndex, NeighborIndex, Weighted, L2};

use crate::mbc::greedy_partition;

/// Index-accelerated `UpdateCoreset(Q, δ)` for Euclidean points under `L2`.
/// Produces exactly the same output as
/// [`crate::update_coreset`]`(&L2, points, delta)`.
pub fn update_coreset_grid<const D: usize>(
    points: &[Weighted<[f64; D]>],
    delta: f64,
) -> Vec<Weighted<[f64; D]>> {
    assert!(delta >= 0.0, "δ must be non-negative");
    if delta == 0.0 || points.len() < 32 {
        // Degenerate cell side, or too small to amortise index setup.
        return greedy_partition(&L2, points, delta);
    }
    let mut index = GridBucketIndex::<D>::new(delta);
    for (i, wp) in points.iter().enumerate() {
        index.insert(&wp.point, i);
    }
    absorb_sweep(points, delta, index)
}

/// The absorb sweep of Algorithm 4 over any [`NeighborIndex`]: each
/// still-indexed point in input order becomes a representative, absorbs
/// (and un-indexes) everything within `delta`, and aggregates the weights.
///
/// The index must already contain id `i` at `points[i].point` for every
/// `i`.  Because absorbed ids are removed eagerly, every `within` query
/// returns only live candidates — the pruning that makes the grid-backed
/// index near-linear.
pub fn absorb_sweep<P: Clone, I: NeighborIndex<P>>(
    points: &[Weighted<P>],
    delta: f64,
    mut index: I,
) -> Vec<Weighted<P>> {
    let n = points.len();
    debug_assert_eq!(index.len(), n, "index must hold every input id");
    let mut absorbed = vec![false; n];
    let mut reps: Vec<Weighted<P>> = Vec::new();
    let mut near: Vec<usize> = Vec::new();
    for i in 0..n {
        if absorbed[i] {
            continue;
        }
        absorbed[i] = true;
        index.remove(&points[i].point, i);
        let mut weight = points[i].weight;
        index.within(&points[i].point, delta, &mut near);
        for &j in &near {
            absorbed[j] = true;
            index.remove(&points[j].point, j);
            weight = weight.saturating_add(points[j].weight);
        }
        reps.push(Weighted {
            point: points[i].point.clone(),
            weight,
        });
    }
    reps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update_coreset;
    use kcz_metric::BruteForceIndex;

    fn pseudo_random_points(n: usize, seed: u64) -> Vec<Weighted<[f64; 2]>> {
        let mut s = seed | 1;
        let mut unit = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| Weighted::new([unit() * 100.0, unit() * 100.0], 1 + (i as u64 % 3)))
            .collect()
    }

    #[test]
    fn identical_to_generic_path() {
        for seed in [1u64, 7, 42] {
            let pts = pseudo_random_points(500, seed);
            for delta in [0.5f64, 3.0, 25.0] {
                let naive = update_coreset(&L2, &pts, delta);
                let fast = update_coreset_grid(&pts, delta);
                assert_eq!(naive.len(), fast.len(), "seed={seed} δ={delta}");
                for (a, b) in naive.iter().zip(&fast) {
                    assert_eq!(a.point, b.point, "seed={seed} δ={delta}");
                    assert_eq!(a.weight, b.weight, "seed={seed} δ={delta}");
                }
            }
        }
    }

    #[test]
    fn brute_force_index_sweep_matches_grid_sweep() {
        // The same sweep over either NeighborIndex implementation produces
        // the same partition — the abstraction does not leak into results.
        let pts = pseudo_random_points(400, 11);
        for delta in [0.75f64, 5.0] {
            let mut brute = BruteForceIndex::new(L2);
            for (i, wp) in pts.iter().enumerate() {
                brute.insert(&wp.point, i);
            }
            let via_brute = absorb_sweep(&pts, delta, brute);
            let via_grid = update_coreset_grid(&pts, delta);
            assert_eq!(via_brute.len(), via_grid.len(), "δ={delta}");
            for (a, b) in via_brute.iter().zip(&via_grid) {
                assert_eq!(a.point, b.point, "δ={delta}");
                assert_eq!(a.weight, b.weight, "δ={delta}");
            }
        }
    }

    #[test]
    fn small_and_zero_delta_fall_back() {
        let pts = pseudo_random_points(8, 3);
        let out = update_coreset_grid(&pts, 0.0);
        assert_eq!(out.len(), 8);
        let out = update_coreset_grid(&pts, 1e9);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn duplicates_merge() {
        let pts = vec![
            Weighted::new([5.0, 5.0], 2),
            Weighted::new([5.0, 5.0], 3),
            Weighted::new([50.0, 50.0], 1),
        ];
        let out = update_coreset_grid(&pts, 1.0);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].weight, 5);
    }
}
