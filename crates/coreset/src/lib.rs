//! (ε,k,z)-coresets via **mini-ball coverings** — the paper's central
//! primitive (Section 2).
//!
//! A weighted subset `P* ⊆ P` is an *(ε,k,z)-mini-ball covering* of `P`
//! (Definition 2) when `P` can be partitioned into groups `Q_i`, one per
//! representative `q_i ∈ P*`, such that
//!
//! 1. **weight property** — `w(q_i) = Σ_{p∈Q_i} w(p)`, and
//! 2. **covering property** — `dist(p, q_i) ≤ ε·opt_{k,z}(P)` for `p ∈ Q_i`.
//!
//! Lemma 3 shows every mini-ball covering is an (ε,k,z)-coreset
//! (Definition 1).  This crate provides:
//!
//! * [`mbc::mbc_construction`] — Algorithm 1: `Greedy` radius, then greedy
//!   mini-ball partition at granularity `ε·r/3`; size ≤ `k(12/ε)^d + z`
//!   (Lemma 7);
//! * [`update::update_coreset`] — Algorithm 4: re-clustering of an existing
//!   covering at a coarser granularity (used by the streaming algorithm);
//! * [`compose`] — the union (Lemma 4) and transitive (Lemma 5) operations
//!   that let MPC machines and streaming passes combine coverings;
//! * [`merge`] — the [`merge::MergeableSummary`] trait making that
//!   composability first-class (one ε′-bookkeeping path shared by the MPC
//!   coordinator, the sharded engine and the conformance harness), plus
//!   the balanced [`merge::merge_tree`] reduction;
//! * [`bounds`] — the size/capacity formulas of Lemmas 6–7 and Algorithm 3;
//! * [`validate`] — empirical checkers for both Definition-1 conditions,
//!   used by tests and the quality experiments.

#![warn(missing_docs)]

pub mod bounds;
pub mod compose;
pub mod fast;
pub mod mbc;
pub mod merge;
pub mod update;
pub mod validate;

pub use bounds::{mbc_size_bound, streaming_capacity};
pub use compose::union_coverings;
pub use fast::{absorb_sweep, update_coreset_grid};
pub use mbc::{mbc_construction, mbc_construction_with, MiniBallCovering};
pub use merge::{
    end_to_end_factor, leaf_span, merge_level, merge_tree, tree_depth, MergeableSummary,
};
pub use update::update_coreset;
