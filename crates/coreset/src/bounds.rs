//! Size and capacity formulas from Lemmas 6–7 and Algorithm 3.

/// Lemma 7: `MBCConstruction(P, k, z, ε)` returns at most
/// `k·(12/ε)^d + z` representatives (doubling dimension `d`).
///
/// Saturates at `u64::MAX` for parameter combinations whose bound
/// overflows — the bound is a threshold, never an allocation size.
pub fn mbc_size_bound(k: usize, z: u64, eps: f64, d: usize) -> u64 {
    packing_bound(k, z, 12.0 / eps, d)
}

/// Algorithm 3's capacity threshold: the streaming structure re-clusters
/// whenever it reaches `k·(16/ε)^d + z` representatives.
pub fn streaming_capacity(k: usize, z: u64, eps: f64, d: usize) -> u64 {
    packing_bound(k, z, 16.0 / eps, d)
}

/// Lemma 6 packing bound with an explicit ratio: a set of pairwise
/// distance `> δ` inside an optimal solution's balls has at most
/// `k·⌈ratio⌉^d + z` points, where `ratio = 4·opt/δ`.
pub fn packing_bound(k: usize, z: u64, ratio: f64, d: usize) -> u64 {
    assert!(ratio.is_finite() && ratio > 0.0, "ratio must be positive");
    let per_ball = ratio.ceil().powi(d as i32);
    if !per_ball.is_finite() || per_ball >= u64::MAX as f64 {
        return u64::MAX;
    }
    (k as u64).saturating_mul(per_ball as u64).saturating_add(z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma7_values() {
        // k(12/ε)^d + z with ε=1, d=2, k=2, z=3: 2·144 + 3.
        assert_eq!(mbc_size_bound(2, 3, 1.0, 2), 291);
        // d = 0 degenerates to k + z.
        assert_eq!(mbc_size_bound(4, 7, 0.5, 0), 11);
    }

    #[test]
    fn capacity_larger_than_size_bound() {
        for d in 0..4 {
            for &eps in &[0.1, 0.5, 1.0] {
                assert!(streaming_capacity(3, 5, eps, d) >= mbc_size_bound(3, 5, eps, d));
            }
        }
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        assert_eq!(mbc_size_bound(10, 0, 1e-9, 8), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_ratio() {
        let _ = packing_bound(1, 0, 0.0, 2);
    }
}
