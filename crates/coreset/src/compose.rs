//! Composition of mini-ball coverings: the union property (Lemma 4) and
//! the transitive property (Lemma 5).
//!
//! * **Union** — if `P` is partitioned into `P_1, …, P_s` and each `P*_i`
//!   is an (ε,k,z_i)-mini-ball covering with `opt_{k,z_i}(P_i) ≤
//!   opt_{k,z}(P)`, then `∪_i P*_i` is an (ε,k,z)-mini-ball covering of
//!   `P`.  Computationally this is concatenation; the lemma's value is in
//!   *when* it may be applied, which the MPC algorithms arrange.
//! * **Transitive** — an (ε,·)-covering of a (γ,·)-covering of `P` is an
//!   (ε+γ+εγ,·)-covering of `P`.  Computationally: run `MBCConstruction`
//!   again on the representatives; [`recompress`] does exactly that and
//!   [`composed_eps`] tracks the error product.

use kcz_kcenter::charikar::GreedyParams;
use kcz_metric::{MetricSpace, Weighted};

use crate::mbc::{mbc_construction_with, MiniBallCovering};

/// Lemma 4: union of mini-ball coverings is their concatenation.
pub fn union_coverings<P>(parts: impl IntoIterator<Item = Vec<Weighted<P>>>) -> Vec<Weighted<P>> {
    let mut out = Vec::new();
    for mut p in parts {
        out.append(&mut p);
    }
    out
}

/// Lemma 5 error composition: a (γ)-covering recompressed at error (ε)
/// is an (ε + γ + εγ)-covering.
pub fn composed_eps(eps: f64, gamma: f64) -> f64 {
    eps + gamma + eps * gamma
}

/// Recompress a covering: `MBCConstruction` on the representatives
/// (the coordinator step of every MPC algorithm in the paper).
pub fn recompress<P: Clone, M: MetricSpace<P>>(
    metric: &M,
    covering: &[Weighted<P>],
    k: usize,
    z: u64,
    eps: f64,
) -> MiniBallCovering<P> {
    mbc_construction_with(metric, covering, k, z, eps, &GreedyParams::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mbc::mbc_construction;
    use kcz_metric::{total_weight, unit_weighted, L2};

    #[test]
    fn union_is_concatenation_preserving_weight() {
        let a = unit_weighted(&[[0.0, 0.0], [1.0, 0.0]]);
        let b = unit_weighted(&[[5.0, 0.0]]);
        let u = union_coverings([a.clone(), b.clone()]);
        assert_eq!(u.len(), 3);
        assert_eq!(total_weight(&u), total_weight(&a) + total_weight(&b));
    }

    #[test]
    fn composed_eps_matches_lemma5() {
        assert_eq!(composed_eps(0.1, 0.2), 0.1 + 0.2 + 0.02);
        // R-fold self-composition gives (1+ε)^R − 1 (Lemma 34).
        let eps = 0.1;
        let mut acc: f64 = 0.0;
        for _ in 0..4 {
            acc = composed_eps(eps, acc);
        }
        assert!((acc - (1.1f64.powi(4) - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn recompress_preserves_weight_and_shrinks() {
        let raw: Vec<[f64; 2]> = (0..60)
            .map(|i| [(i % 2 * 40) as f64 + (i as f64) * 0.01, 0.0])
            .collect();
        let pts = unit_weighted(&raw);
        let first = mbc_construction(&L2, &pts, 2, 0, 0.2);
        let second = recompress(&L2, &first.reps, 2, 0, 0.8);
        assert_eq!(second.total_weight(), total_weight(&pts));
        assert!(second.len() <= first.len());
        // Transitive covering: every original point is near a level-2 rep,
        // within (ε+γ+εγ)·opt ≤ composed bound with opt ≤ greedy radius.
        let bound = composed_eps(0.8, 0.2) * first.greedy_radius;
        for p in &raw {
            let d = second
                .reps
                .iter()
                .map(|q| L2.dist(p, &q.point))
                .fold(f64::INFINITY, f64::min);
            assert!(d <= bound + 1e-12, "point {p:?} at {d} > {bound}");
        }
    }
}
