//! Metamorphic cross-checks on inputs too large for the exact oracle:
//! transformations with a known effect on the optimum (power-of-two
//! scaling, duplication with a doubled budget, far-outlier injection with
//! a raised budget) must shift every pipeline's verdict predictably.
//!
//! The band arithmetic: each bounded pipeline certifies
//! `opt_cont ≤ radius ≤ factor·opt_disc + additive` with
//! `opt_disc ≤ 2·opt_cont`, so for two runs on instances with the *same*
//! optimum, `radius_a ≤ 2·factor_a·radius_b + additive_a` (and
//! symmetrically) — no oracle required.

use kcz_harness::{all_pipelines, Scenario, Verdict, SIDE_BITS};
use kcz_workloads::{gaussian_clusters, shuffled};

fn scenario(points: Vec<[f64; 2]>, k: usize, z: u64, side_bits: u32) -> Scenario {
    Scenario {
        name: "metamorphic",
        description: "metamorphic test instance",
        points,
        k,
        z,
        eps: 0.5,
        machines: 4,
        rounds: 2,
        side_bits,
        oracle: false,
        seed: 0x11E7A,
        mid_snapshots: false,
    }
}

/// Moderate clustered base instance with integer coordinates (n = 308).
fn base_points() -> Vec<[f64; 2]> {
    let inst = gaussian_clusters::<2>(3, 100, 5.0, 8, 0xBEE);
    kcz_harness::snap_to_grid(&inst.points)
}

fn run_all(sc: &Scenario) -> Vec<Verdict> {
    all_pipelines().iter().map(|p| p.run(sc)).collect()
}

/// `radius_a ≤ 2·factor_a·radius_b + additive_a` for bounded pipelines
/// sharing an optimum (see the module docs).
fn assert_same_band(a: &Verdict, b: &Verdict, what: &str) {
    let (Some(ba), Some(bb)) = (a.bound, b.bound) else {
        return; // unbounded adapter (Gonzalez with z > 0): nothing certified
    };
    assert!(
        a.radius <= 2.0 * ba.factor * b.radius + ba.additive + 1e-9,
        "{what}: {} radius {} vs {} within factor {}",
        a.pipeline,
        a.radius,
        b.radius,
        2.0 * ba.factor
    );
    assert!(
        b.radius <= 2.0 * bb.factor * a.radius + bb.additive + 1e-9,
        "{what}: {} radius {} vs {} within factor {}",
        b.pipeline,
        b.radius,
        a.radius,
        2.0 * bb.factor
    );
}

#[test]
fn power_of_two_scaling_is_exact_for_continuous_pipelines() {
    let pts = base_points();
    let scaled: Vec<[f64; 2]> = pts.iter().map(|p| [2.0 * p[0], 2.0 * p[1]]).collect();
    // Doubled coordinates need one more universe bit.
    let sc = scenario(pts, 3, 8, SIDE_BITS + 1);
    let sc2 = scenario(scaled, 3, 8, SIDE_BITS + 1);
    for p in all_pipelines() {
        let (a, b) = (p.run(&sc), p.run(&sc2));
        if p.name() == "stream/dynamic" || p.name() == "engine/sharded" {
            // Not bit-exact under scaling, but band-preserving: the
            // dynamic sketch's grid cells do not scale with the data,
            // and the engine's value-hash router keys on coordinate bit
            // patterns, so doubled inputs route to different shards.
            // The optima differ by exactly 2x here, so the same-optimum
            // helper does not apply:
            // b.radius ≤ factor·opt₂ᵈ + add = 2·factor·opt₁ᵈ + add
            //          ≤ 4·factor·a.radius + add   (a.radius ≥ opt₁ᵈ/2)
            // a.radius ≤ factor·opt₁ᵈ + add ≤ factor·b.radius + add
            //            (b.radius ≥ opt₂ᶜ = 2·opt₁ᶜ ≥ opt₁ᵈ).
            let (ba, bb) = (a.bound.unwrap(), b.bound.unwrap());
            assert!(
                b.radius <= 4.0 * bb.factor * a.radius + bb.additive + 1e-9,
                "dynamic scaling: {} vs {}",
                b.radius,
                a.radius
            );
            assert!(
                a.radius <= ba.factor * b.radius + ba.additive + 1e-9,
                "dynamic scaling: {} vs {}",
                a.radius,
                b.radius
            );
            continue;
        }
        assert_eq!(
            b.radius,
            2.0 * a.radius,
            "{}: scaling must be exact (IEEE powers of two)",
            p.name()
        );
        assert_eq!(b.uncovered, a.uncovered, "{}", p.name());
        assert_eq!(b.centers, a.centers, "{}", p.name());
    }
}

#[test]
fn duplicating_points_with_doubled_budget_preserves_the_band() {
    let pts = base_points();
    let mut doubled = Vec::with_capacity(pts.len() * 2);
    for p in &pts {
        doubled.push(*p);
        doubled.push(*p);
    }
    let sc = scenario(pts, 3, 8, SIDE_BITS);
    let sc2 = scenario(doubled, 3, 16, SIDE_BITS);
    for p in all_pipelines() {
        let (a, b) = (p.run(&sc), p.run(&sc2));
        assert!(b.radius.is_finite(), "{}", p.name());
        assert!(b.uncovered <= sc2.z, "{}: {}", p.name(), b.uncovered);
        assert_same_band(&a, &b, "duplication");
    }
}

#[test]
fn injecting_far_outliers_with_raised_budget_preserves_the_band() {
    let pts = base_points();
    let mut with_noise = pts.clone();
    // Far from the base box (coordinates < ~2500 after snapping) and from
    // each other; still inside the universe.
    with_noise.extend([
        [60000.0, 60000.0],
        [60000.0, 100.0],
        [100.0, 60000.0],
        [50000.0, 30000.0],
    ]);
    let sc = scenario(pts, 3, 8, SIDE_BITS);
    let sc2 = scenario(with_noise, 3, 12, SIDE_BITS);
    for p in all_pipelines() {
        let (a, b) = (p.run(&sc), p.run(&sc2));
        assert!(b.uncovered <= sc2.z, "{}: {}", p.name(), b.uncovered);
        assert_same_band(&a, &b, "outlier injection");
    }
}

#[test]
fn permutation_preserves_the_band_for_every_pipeline() {
    let pts = base_points();
    let perm = shuffled(&pts, 0x5EED);
    let sc = scenario(pts, 3, 8, SIDE_BITS);
    let sc2 = scenario(perm, 3, 8, SIDE_BITS);
    for p in all_pipelines() {
        let (a, b) = (p.run(&sc), p.run(&sc2));
        assert_same_band(&a, &b, "permutation");
        assert!(b.uncovered <= sc.z, "{}", p.name());
    }
}

#[test]
fn pipelines_agree_pairwise_within_their_bands() {
    // Cross-model consistency without an oracle: all bounded pipelines on
    // one instance bracket the same opt, so any two verdicts are within
    // the product band of each other.
    let sc = scenario(base_points(), 3, 8, SIDE_BITS);
    let verdicts = run_all(&sc);
    for a in &verdicts {
        for b in &verdicts {
            assert_same_band(a, b, "pairwise");
        }
    }
    // And the benign instance should in practice cluster far tighter
    // than the worst-case band: no bounded pipeline may be 4x another.
    let bounded: Vec<&Verdict> = verdicts.iter().filter(|v| v.bound.is_some()).collect();
    let min = bounded
        .iter()
        .map(|v| v.radius)
        .fold(f64::INFINITY, f64::min);
    let max = bounded.iter().map(|v| v.radius).fold(0.0f64, f64::max);
    assert!(
        max <= 4.0 * min + 1e-9,
        "spread too wide on a benign instance: [{min}, {max}]"
    );
}
