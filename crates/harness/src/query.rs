//! Query conformance: every answer served from a published snapshot is
//! re-checked against brute force **on that same snapshot**, and the
//! epoch's certified ratio bound is re-checked against the exact oracle.
//!
//! The read side (`kcz-serve`) promises three things per epoch, and this
//! module makes each one a checkable verdict:
//!
//! 1. **Exactness** — `assign(p)` returns the true nearest center of the
//!    served epoch, at the exact scalar distance (the deferred-`sqrt`
//!    kernels must be invisible), and the batched path answers exactly
//!    like the scalar path;
//! 2. **Verdict coherence** — `classify(p, r)` says covered iff the
//!    assigned distance is `≤ r`, and at the radius that the epoch's
//!    centers actually achieve on the full input, the uncovered weight
//!    fits the outlier budget `z`;
//! 3. **The paper bound** — that achieved radius is within the epoch's
//!    certified `(3+8ε′)·opt` against [`kcz_kcenter::exact_discrete`]
//!    (oracle scenarios), the same bound the write-side pipeline
//!    certifies.
//!
//! Violations are strings ready for the conformance judge; `kcz
//! conformance` merges them with the pipeline violations and exits 3 if
//! any survive.

use kcz_kcenter::cost_with_outliers;
use kcz_metric::{total_weight, MetricSpace, L2};
use kcz_serve::QueryEngine;
use std::sync::Arc;

use crate::pipeline::scenario_engine;
use crate::report::exact_radius;
use crate::scenario::{catalog, Scenario, Tier};

/// Float tolerance for the oracle-bound re-check (matches the pipeline
/// verdicts' slack).
const TOL: f64 = 1e-6;

/// Runs the query-conformance check over the tier's catalog: builds the
/// resident engine per scenario, publishes a snapshot, and re-checks
/// every served answer.  Scenarios are mapped over the shared worker
/// pool; the returned violations are in catalog order.  Empty means the
/// read side conforms.
pub fn query_violations(tier: Tier) -> Vec<String> {
    kcz_engine::runtime::global()
        .scoped_map(catalog(tier), |_, sc| scenario_violations(&sc))
        .into_iter()
        .flatten()
        .collect()
}

/// The per-scenario body of [`query_violations`].
fn scenario_violations(sc: &Scenario) -> Vec<String> {
    let mut out = Vec::new();
    if sc.is_empty() {
        return out;
    }
    // The one shared construction path (`scenario_engine`): this check
    // judges bit-for-bit the snapshot the engine pipeline's verdict
    // certified.
    let query = QueryEngine::new(Arc::new(scenario_engine(sc)));
    let view = query.refresh();
    let tag = |what: &str| format!("{} / query/{what}", sc.name);

    let weighted = sc.weighted();
    let total = total_weight(&weighted);
    let centers = view.centers();
    if centers.is_empty() {
        // Legitimate only when the whole weight fits the budget.
        if total > sc.z {
            out.push(format!(
                "{}: no centers served although weight {total} exceeds z = {}",
                tag("assign"),
                sc.z
            ));
        }
        return out;
    }

    // 1. Exactness: served assignment == brute-force nearest on the
    //    same frozen snapshot, at the exact scalar distance.
    let batched = query.assign_batch(&sc.points);
    for (p, served) in sc.points.iter().zip(&batched) {
        let Some(a) = served else {
            out.push(format!("{}: no answer for {p:?}", tag("assign")));
            continue;
        };
        let brute = centers
            .iter()
            .map(|c| L2.dist(p, c))
            .fold(f64::INFINITY, f64::min);
        let direct = L2.dist(p, &centers[a.center]);
        if a.dist != direct || a.dist != brute {
            out.push(format!(
                "{}: {p:?} served center {} at {:.9}, scalar {:.9}, brute-force {:.9}",
                tag("assign"),
                a.center,
                a.dist,
                direct,
                brute
            ));
        }
        if a.epoch != view.epoch() {
            out.push(format!(
                "{}: answer epoch {} != served epoch {}",
                tag("assign"),
                a.epoch,
                view.epoch()
            ));
        }
        // The batched path must be indistinguishable from the scalar one.
        if view.assign(p) != Some(*a) {
            out.push(format!("{}: batched != scalar for {p:?}", tag("batch")));
        }
    }

    // 2. Verdict coherence at the radius the epoch's centers actually
    //    achieve on the full input: uncovered weight must fit z, and
    //    every verdict must agree with its own assignment distance.
    let achieved = cost_with_outliers(&L2, &weighted, centers, sc.z);
    let mut uncovered = 0u64;
    for (wp, verdict) in weighted
        .iter()
        .zip(query.classify_batch(&sc.points, achieved))
    {
        let expect = verdict.dist <= achieved;
        if verdict.covered != expect {
            out.push(format!(
                "{}: {:?} covered = {} but dist {:.9} vs r {:.9}",
                tag("classify"),
                wp.point,
                verdict.covered,
                verdict.dist,
                achieved
            ));
        }
        if !verdict.covered {
            uncovered += wp.weight;
        }
        if verdict.bound_factor != view.bound_factor() {
            out.push(format!(
                "{}: verdict quotes factor {} instead of the epoch's {}",
                tag("classify"),
                verdict.bound_factor,
                view.bound_factor()
            ));
        }
    }
    if uncovered > sc.z {
        out.push(format!(
            "{}: {uncovered} weight uncovered at the achieved radius exceeds z = {}",
            tag("classify"),
            sc.z
        ));
    }

    // 3. The epoch's certified bound against the exact oracle.
    if let Some(opt) = exact_radius(sc) {
        if achieved > (view.bound_factor() + TOL) * opt + TOL {
            out.push(format!(
                "{}: achieved radius {:.6} > {:.2}·opt (opt = {:.6})",
                tag("bound"),
                achieved,
                view.bound_factor(),
                opt
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_tier_serves_conformant_answers() {
        let violations = query_violations(Tier::Smoke);
        assert!(violations.is_empty(), "{violations:#?}");
    }

    #[test]
    fn single_scenario_check_is_clean_and_cheap() {
        let sc = catalog(Tier::Smoke)
            .into_iter()
            .find(|s| s.name == "duplicate_mass")
            .unwrap();
        assert!(scenario_violations(&sc).is_empty());
        // The z ≥ n scenario must serve an empty (yet conformant) view.
        let sc = catalog(Tier::Smoke)
            .into_iter()
            .find(|s| s.name == "budget_swallows_all")
            .unwrap();
        assert!(scenario_violations(&sc).is_empty());
    }
}
