//! Delta-solver conformance: every epoch the delta-aware Charikar
//! solver publishes is certified **bit-for-bit** against a persistent
//! cold-solver engine walking the identical publish schedule.
//!
//! The delta solver's contract is bit-identity *by construction*: each
//! feasibility probe is answered either by a certified cached verdict
//! (provably equal to what a fresh disk-greedy run would return) or by
//! actually running disk-greedy, so the binary search takes the exact
//! same path as a cold solve.  This module replays each scenario in
//! ingest batches on two incremental engines that differ only in
//! [`kcz_engine::SolverMode`], publishing both on the same stride, and
//! compares radius, guess, centers, and uncovered weight at the bit
//! level.  The probe accounting is checked against the same invariant
//! the unit tests assert: `probes + reused_verdicts` on the delta side
//! must equal the cold side's probe count, because reuse may only
//! *answer* probes, never add or remove them.
//!
//! Violations carry the `solver/` tag and ride the conformance report's
//! `incremental_violations` array, so the JSON schema — and the
//! byte-pinned golden — stay stable.

use kcz_engine::{Engine, EngineConfig, SolverMode};
use kcz_metric::L2;

use crate::pipeline::ENGINE_BATCH;
use crate::scenario::{catalog, Scenario, Tier};

/// At most this many epochs are certified per scenario (same stride
/// policy as the incremental-publish check): batches are published on a
/// stride, always including the final prefix.
const MAX_EPOCHS: usize = 12;

/// Runs the delta-vs-cold solver check over the tier's catalog.
/// Scenarios are mapped over the shared worker pool; the returned
/// violations are in catalog order.  Empty means every delta-solved
/// epoch is bit-identical to the persistent cold solve.
pub fn solver_violations(tier: Tier) -> Vec<String> {
    kcz_engine::runtime::global()
        .scoped_map(catalog(tier), |_, sc| scenario_violations(&sc))
        .into_iter()
        .flatten()
        .collect()
}

/// The per-scenario body of [`solver_violations`].
fn scenario_violations(sc: &Scenario) -> Vec<String> {
    let mut out = Vec::new();
    if sc.is_empty() {
        return out;
    }
    let tag = |what: &str| format!("{} / solver/{what}", sc.name);
    let cfg = EngineConfig::new(sc.machines, sc.k, sc.z, sc.eps);
    let delta = Engine::new(L2, cfg.with_solver(SolverMode::Delta));
    // The oracle is *persistent*, not from-scratch: it walks the same
    // incremental publish schedule so both solvers see the identical
    // sequence of merged summaries, isolating the solver as the only
    // difference between the two engines.
    let cold = Engine::new(L2, cfg.with_solver(SolverMode::Cold));
    let batches: Vec<&[[f64; 2]]> = sc.points.chunks(ENGINE_BATCH).collect();
    let stride = batches.len().div_ceil(MAX_EPOCHS).max(1);
    for (i, batch) in batches.iter().enumerate() {
        delta.ingest(batch);
        cold.ingest(batch);
        if (i + 1) % stride != 0 && i + 1 != batches.len() {
            continue;
        }
        let ds = delta.publish();
        let cs = cold.publish();
        if ds.epoch != cs.epoch {
            out.push(format!(
                "{}: delta epoch {} vs cold epoch {}",
                tag("epoch"),
                ds.epoch,
                cs.epoch
            ));
            break;
        }
        let same_centers = ds.centers.len() == cs.centers.len()
            && ds
                .centers
                .iter()
                .zip(&cs.centers)
                .all(|(a, b)| a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()));
        if ds.radius.to_bits() != cs.radius.to_bits()
            || ds.guess.to_bits() != cs.guess.to_bits()
            || ds.uncovered != cs.uncovered
            || !same_centers
        {
            out.push(format!(
                "{}: epoch {}: radius {:.9} vs {:.9}, guess {:.9} vs {:.9}, \
                 excluded {} vs {}, {} vs {} centers — delta solve diverged from cold",
                tag("publish"),
                ds.epoch,
                ds.radius,
                cs.radius,
                ds.guess,
                cs.guess,
                ds.uncovered,
                cs.uncovered,
                ds.centers.len(),
                cs.centers.len()
            ));
        }
        // Verdict reuse may only *answer* probes the cold search would
        // have made, never change which probes the search makes.
        if ds.stats.solve_probes + ds.stats.reused_verdicts != cs.stats.solve_probes {
            out.push(format!(
                "{}: epoch {}: delta ran {} probes + reused {} verdicts, cold ran {} probes",
                tag("probes"),
                ds.epoch,
                ds.stats.solve_probes,
                ds.stats.reused_verdicts,
                cs.stats.solve_probes
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_tier_delta_solves_match_cold() {
        let violations = solver_violations(Tier::Smoke);
        assert!(violations.is_empty(), "{violations:#?}");
    }

    #[test]
    fn steady_state_epochs_reuse_verdicts() {
        // Streams each smoke scenario, then forces a steady-state
        // epoch: one already-seen point re-ingested is a pure weight
        // bump to the merged summary, the cheapest delta the solver
        // certifies.  Not every scenario reuses (a recompressed merge
        // or tied pick gains conservatively falls back to cold — still
        // bit-identical, just uncached), but across the catalog the
        // verdict cache must answer at least some probes.
        let mut reused = 0usize;
        for sc in catalog(Tier::Smoke) {
            if sc.is_empty() {
                continue;
            }
            let cfg = EngineConfig::new(sc.machines, sc.k, sc.z, sc.eps);
            let engine = Engine::new(L2, cfg);
            for batch in sc.points.chunks(ENGINE_BATCH) {
                engine.ingest(batch);
                reused += engine.publish().stats.reused_verdicts;
            }
            engine.ingest(&sc.points[..1]);
            reused += engine.publish().stats.reused_verdicts;
        }
        assert!(reused > 0, "no epoch reused any cached verdict");
    }
}
