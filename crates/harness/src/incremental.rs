//! Incremental-publish conformance: every epoch an incremental engine
//! publishes mid-stream is certified against a **from-scratch** engine
//! fed the same prefix — a fresh full-republish engine with no tree
//! cache, no warm state, and no publish history.
//!
//! The engine's incremental mode promises that dirty-shard re-merging
//! and the warm-started solve are pure optimizations: the published
//! radius, excluded-outlier weight, and certified `(3 + 8ε′)` bound
//! factor are bit-identical to what a cold rebuild of the same prefix
//! publishes.  This module replays each scenario in ingest batches,
//! publishing along the way, and re-derives every checked epoch from
//! scratch; the final epoch's certified bound is additionally checked
//! against the exact discrete oracle (oracle scenarios), the same
//! judgment the pipeline verdicts get.
//!
//! Violations are strings ready for the conformance judge; `kcz
//! conformance` merges them with the pipeline and query violations and
//! exits 3 if any survive.

use kcz_engine::{Engine, EngineConfig};
use kcz_kcenter::cost_with_outliers;
use kcz_metric::L2;

use crate::pipeline::ENGINE_BATCH;
use crate::report::exact_radius;
use crate::scenario::{catalog, Scenario, Tier};

/// Float tolerance for the oracle-bound re-check (matches the pipeline
/// verdicts' slack).
const TOL: f64 = 1e-6;

/// At most this many epochs are certified per scenario: batches are
/// published on a stride, always including the final prefix, so large
/// full-tier scenarios stay affordable without thinning small ones.
const MAX_EPOCHS: usize = 12;

/// Runs the incremental-publish check over the tier's catalog.
/// Scenarios are mapped over the shared worker pool; the returned
/// violations are in catalog order.  Empty means every incremental
/// epoch is certified.
pub fn incremental_violations(tier: Tier) -> Vec<String> {
    kcz_engine::runtime::global()
        .scoped_map(catalog(tier), |_, sc| scenario_violations(&sc))
        .into_iter()
        .flatten()
        .collect()
}

/// The per-scenario body of [`incremental_violations`].
fn scenario_violations(sc: &Scenario) -> Vec<String> {
    let mut out = Vec::new();
    if sc.is_empty() {
        return out;
    }
    let tag = |what: &str| format!("{} / incremental/{what}", sc.name);
    let cfg = EngineConfig::new(sc.machines, sc.k, sc.z, sc.eps);
    let engine = Engine::new(L2, cfg);
    let batches: Vec<&[[f64; 2]]> = sc.points.chunks(ENGINE_BATCH).collect();
    let stride = batches.len().div_ceil(MAX_EPOCHS).max(1);
    let mut epochs = 0u64;
    let mut fed = 0usize;
    let mut last = None;
    for (i, batch) in batches.iter().enumerate() {
        engine.ingest(batch);
        fed += batch.len();
        if (i + 1) % stride != 0 && i + 1 != batches.len() {
            continue;
        }
        epochs += 1;
        let snap = engine.publish();
        if snap.epoch != epochs {
            out.push(format!(
                "{}: epoch {} after {} publishes with new data",
                tag("epoch"),
                snap.epoch,
                epochs
            ));
        }
        // The from-scratch oracle: a cold full-republish engine fed the
        // identical prefix, publishing exactly once.
        let scratch = Engine::new(L2, cfg.full_republish());
        for b in &batches[..=i] {
            scratch.ingest(b);
        }
        let oracle = scratch.snapshot();
        if snap.radius.to_bits() != oracle.radius.to_bits()
            || snap.uncovered != oracle.uncovered
            || snap.bound_factor.to_bits() != oracle.bound_factor.to_bits()
            || snap.effective_eps.to_bits() != oracle.effective_eps.to_bits()
            || snap.stats.summary_words != oracle.stats.summary_words
        {
            out.push(format!(
                "{}: prefix of {fed} points: radius {:.9} vs {:.9}, excluded {} vs {}, \
                 factor {:.6} vs {:.6} — incremental publish diverged from scratch",
                tag("publish"),
                snap.radius,
                oracle.radius,
                snap.uncovered,
                oracle.uncovered,
                snap.bound_factor,
                oracle.bound_factor
            ));
        }
        last = Some(snap);
    }
    // The final incremental epoch's certified bound against the exact
    // discrete oracle — the same `(3 + 8ε′)·opt` judgment the pipeline
    // verdicts get, applied to a snapshot produced through the dirty
    // re-merge + warm-solve path.
    if let (Some(snap), Some(opt)) = (last, exact_radius(sc)) {
        if !snap.centers.is_empty() {
            let achieved = cost_with_outliers(&L2, &sc.weighted(), &snap.centers, sc.z);
            if achieved > (snap.bound_factor + TOL) * opt + TOL {
                out.push(format!(
                    "{}: achieved radius {:.6} > {:.2}·opt (opt = {:.6})",
                    tag("bound"),
                    achieved,
                    snap.bound_factor,
                    opt
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_tier_incremental_epochs_are_certified() {
        let violations = incremental_violations(Tier::Smoke);
        assert!(violations.is_empty(), "{violations:#?}");
    }

    #[test]
    fn single_scenario_certifies_multiple_epochs() {
        // The churn scenario spans many ENGINE_BATCH chunks, so the
        // strided replay certifies several genuine incremental epochs.
        let sc = catalog(Tier::Smoke)
            .into_iter()
            .find(|s| s.name == "churn_under_snapshot")
            .unwrap_or_else(|| catalog(Tier::Smoke).into_iter().next().unwrap());
        assert!(scenario_violations(&sc).is_empty());
        // The z ≥ n scenario publishes empty-but-conformant epochs.
        let sc = catalog(Tier::Smoke)
            .into_iter()
            .find(|s| s.name == "budget_swallows_all")
            .unwrap();
        assert!(scenario_violations(&sc).is_empty());
    }
}
