//! Churn conformance: the engine's sliding-window and decayed backends,
//! judged by from-scratch oracles.
//!
//! Three judgments per tier:
//!
//! * **Window / suffix replay** — every scenario is replayed through a
//!   windowed engine with mid-stream publishes; each checked epoch must
//!   be bit-identical to a brand-new windowed engine fed *only the
//!   unexpired suffix* of the arrival stream (no cache, no warm state,
//!   no expired point ever seen), every published representative and
//!   center must be a live-suffix location, and the final epoch's
//!   certified `(3 + 8ε′)` bound is re-measured against the exact
//!   discrete optimum *of the suffix* (oracle scenarios).
//! * **Decay / schedule replay** — every scenario is replayed through a
//!   decayed engine alongside a persistent full-republish engine
//!   publishing at the same instants; the two must agree bit for bit
//!   (decay prune timing is part of the publish schedule, so the oracle
//!   shares it).
//! * **Decay / expiry** — a fixed two-phase stream: once the arrival
//!   clock has moved many half-lives past phase 1, no phase-1 location
//!   may survive into the published summary or centers.
//!
//! Violations are strings ready for the conformance judge; they carry
//! the `churn/` tag and ride the incremental violations array in the
//! JSON report, keeping the report schema (and the byte-pinned golden)
//! stable.

use std::collections::HashSet;

use kcz_engine::{Engine, EngineConfig, Snapshot, WINDOW_RHO_MIN};
use kcz_kcenter::{cost_with_outliers, exact_discrete};
use kcz_metric::{Weighted, L2};

use crate::pipeline::ENGINE_BATCH;
use crate::scenario::{catalog, Scenario, Tier};

/// Float tolerance for the oracle-bound re-check (matches the pipeline
/// verdicts' slack).
const TOL: f64 = 1e-6;

/// At most this many epochs are certified per scenario per mode.
const MAX_EPOCHS: usize = 8;

/// Runs the churn checks over the tier's catalog plus the fixed decay
/// expiry stream.  Scenarios are mapped over the shared worker pool; the
/// returned violations are in catalog order.  Empty means every churn
/// epoch is certified.
pub fn churn_violations(tier: Tier) -> Vec<String> {
    let mut out: Vec<String> = kcz_engine::runtime::global()
        .scoped_map(catalog(tier), |_, sc| {
            let mut v = window_violations(&sc);
            v.extend(decay_violations(&sc));
            v
        })
        .into_iter()
        .flatten()
        .collect();
    out.extend(decay_expiry_violations());
    out
}

/// The bit-identity surface two published epochs are compared on.
fn bits(snap: &Snapshot<[f64; 2]>) -> impl PartialEq + std::fmt::Debug {
    (
        snap.radius.to_bits(),
        snap.uncovered,
        snap.bound_factor.to_bits(),
        snap.effective_eps.to_bits(),
        snap.stats.summary_words,
        snap.centers
            .iter()
            .map(|c| [c[0].to_bits(), c[1].to_bits()])
            .collect::<Vec<_>>(),
        snap.coreset
            .iter()
            .map(|w| (w.point[0].to_bits(), w.point[1].to_bits(), w.weight))
            .collect::<Vec<_>>(),
    )
}

/// Window checks for one scenario: suffix-replay bit-identity per
/// checked epoch, live-suffix membership, and the final-epoch bound
/// against the exact optimum of the suffix.
fn window_violations(sc: &Scenario) -> Vec<String> {
    let mut out = Vec::new();
    if sc.is_empty() {
        return out;
    }
    let tag = |what: &str| format!("{} / churn/window/{what}", sc.name);
    // Half the stream (floored to whole batches' worth of slack): most
    // scenarios see genuine expiry, tiny ones degrade to no-expiry runs
    // that still certify the machinery.
    let window = (sc.points.len() as u64 / 2).max(16);
    let cfg = EngineConfig::new(sc.machines, sc.k, sc.z, sc.eps).windowed(window);
    let engine = Engine::new(L2, cfg);
    let batches: Vec<&[[f64; 2]]> = sc.points.chunks(ENGINE_BATCH).collect();
    let stride = batches.len().div_ceil(MAX_EPOCHS).max(1);
    let mut fed = 0usize;
    let mut last: Option<(Snapshot<[f64; 2]>, usize)> = None;
    for (i, batch) in batches.iter().enumerate() {
        engine.ingest(batch);
        fed += batch.len();
        if (i + 1) % stride != 0 && i + 1 != batches.len() {
            continue;
        }
        let snap = engine.publish();
        if snap.clock != fed as u64 {
            out.push(format!(
                "{}: clock {} after {fed} arrivals",
                tag("clock"),
                snap.clock
            ));
        }
        let live = fed.min(window as usize);
        let suffix = &sc.points[fed - live..fed];
        // Oracle: a brand-new windowed engine that has only ever seen
        // the unexpired suffix, publishing once.
        let scratch = Engine::new(L2, cfg.full_republish());
        scratch.ingest(suffix);
        let oracle = scratch.snapshot();
        if bits(&snap) != bits(&oracle) {
            out.push(format!(
                "{}: suffix of {live} arrivals at clock {}: radius {:.9} vs {:.9}, \
                 excluded {} vs {} — windowed publish diverged from suffix replay",
                tag("replay"),
                snap.clock,
                snap.radius,
                oracle.radius,
                snap.uncovered,
                oracle.uncovered
            ));
        }
        // Membership: everything the epoch publishes must be a live
        // location — an expired point in the summary is the staleness
        // bug the backend state versions exist to close.
        let live_set: HashSet<[u64; 2]> = suffix
            .iter()
            .map(|p| [p[0].to_bits(), p[1].to_bits()])
            .collect();
        for p in snap
            .coreset
            .iter()
            .map(|w| &w.point)
            .chain(snap.centers.iter())
        {
            if !live_set.contains(&[p[0].to_bits(), p[1].to_bits()]) {
                out.push(format!(
                    "{}: published location {p:?} is not in the live window",
                    tag("membership")
                ));
                break;
            }
        }
        last = Some(((*snap).clone(), live));
    }
    // The final epoch's certified bound, judged against the exact
    // discrete optimum of the window it summarizes.
    if let (Some((snap, live)), true) = (last, sc.oracle) {
        let suffix: Vec<Weighted<[f64; 2]>> = sc.points[sc.points.len() - live..]
            .iter()
            .map(|&p| Weighted::new(p, 1))
            .collect();
        let mut distinct: Vec<[f64; 2]> = Vec::new();
        let mut seen: HashSet<[u64; 2]> = HashSet::new();
        for w in &suffix {
            if seen.insert([w.point[0].to_bits(), w.point[1].to_bits()]) {
                distinct.push(w.point);
            }
        }
        if !snap.centers.is_empty() && !distinct.is_empty() {
            let opt = exact_discrete(&L2, &suffix, sc.k, sc.z, &distinct).radius;
            let achieved = cost_with_outliers(&L2, &suffix, &snap.centers, sc.z);
            // The window pass's guess granularity contributes the same
            // `ε·ρ_min` additive slack the sliding pipeline certifies.
            let slack = sc.eps * WINDOW_RHO_MIN + TOL;
            if achieved > (snap.bound_factor + TOL) * opt + slack {
                out.push(format!(
                    "{}: achieved radius {:.6} on the live window > {:.2}·opt \
                     (opt = {:.6})",
                    tag("bound"),
                    achieved,
                    snap.bound_factor,
                    opt
                ));
            }
        }
    }
    out
}

/// Decay checks for one scenario: the incremental publish path against a
/// persistent full-republish engine sharing the publish schedule.
fn decay_violations(sc: &Scenario) -> Vec<String> {
    let mut out = Vec::new();
    if sc.is_empty() {
        return out;
    }
    let tag = |what: &str| format!("{} / churn/decay/{what}", sc.name);
    let half_life = (sc.points.len() as f64 / 4.0).max(8.0);
    let cfg = EngineConfig::new(sc.machines, sc.k, sc.z, sc.eps).decayed(half_life);
    let incremental = Engine::new(L2, cfg);
    let cold = Engine::new(L2, cfg.full_republish());
    let batches: Vec<&[[f64; 2]]> = sc.points.chunks(ENGINE_BATCH).collect();
    let stride = batches.len().div_ceil(MAX_EPOCHS).max(1);
    for (i, batch) in batches.iter().enumerate() {
        incremental.ingest(batch);
        cold.ingest(batch);
        if (i + 1) % stride != 0 && i + 1 != batches.len() {
            continue;
        }
        let (a, b) = (incremental.publish(), cold.publish());
        if a.epoch != b.epoch || bits(&a) != bits(&b) {
            out.push(format!(
                "{}: epoch {} vs {}: radius {:.9} vs {:.9}, excluded {} vs {} — \
                 incremental decay publish diverged from the full-republish engine",
                tag("replay"),
                a.epoch,
                b.epoch,
                a.radius,
                b.radius,
                a.uncovered,
                b.uncovered
            ));
        }
    }
    out
}

/// The fixed two-phase expiry stream: phase 1 clusters near the origin,
/// then the stream moves far away for many half-lives of arrivals.  The
/// final published epoch must contain no phase-1 location — decayed
/// weight below ½ must actually be dropped, not just down-weighted.
fn decay_expiry_violations() -> Vec<String> {
    let mut out = Vec::new();
    let tag = |what: &str| format!("decay_expiry / churn/decay/{what}");
    let half_life = 32.0;
    let cfg = EngineConfig::new(4, 2, 4, 0.5).decayed(half_life);
    let engine = Engine::new(L2, cfg);
    let phase1: Vec<[f64; 2]> = (0..64).map(|i| [(i % 8) as f64, (i / 8) as f64]).collect();
    engine.ingest(&phase1);
    let early = engine.publish();
    if !early.centers.iter().any(|c| c[0] < 100.0) {
        out.push(format!(
            "{}: phase-1 publish has no near center: {:?}",
            tag("phase1"),
            early.centers
        ));
    }
    // Phase 2: 64 rounds of 64 far arrivals — 4096 stamps, 128
    // half-lives; every phase-1 weight decays to ~2⁻¹²⁸.
    let phase2: Vec<[f64; 2]> = (0..64)
        .map(|i| [5000.0 + (i % 8) as f64, 5000.0 + (i / 8) as f64])
        .collect();
    for _ in 0..64 {
        engine.ingest(&phase2);
    }
    let late = engine.publish();
    for p in late
        .coreset
        .iter()
        .map(|w| &w.point)
        .chain(late.centers.iter())
    {
        if p[0] < 1000.0 {
            out.push(format!(
                "{}: phase-1 location {p:?} survived {} arrivals (~128 \
                 half-lives) into the published epoch",
                tag("survivor"),
                64 * 64
            ));
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_tier_churn_epochs_are_certified() {
        let violations = churn_violations(Tier::Smoke);
        assert!(violations.is_empty(), "{violations:#?}");
    }

    #[test]
    fn the_decay_expiry_stream_is_clean() {
        assert!(decay_expiry_violations().is_empty());
    }
}
