//! Cross-model conformance harness for the k-center-with-outliers suite.
//!
//! The paper's central claim is that its streaming and MPC algorithms
//! match the offline `(3+ε)`-approximation.  This crate makes that claim
//! *executable*: one [`Scenario`] catalog (benign blobs plus adversarial
//! annuli, two-scale clusters, duplicate mass, colinear sets, outlier
//! bursts, drift-with-churn), one [`Pipeline`] trait adapting every
//! solver — offline Charikar/Gonzalez, insertion-only, sliding-window,
//! fully dynamic, the four MPC algorithms, and the resident sharded
//! engine — to a single
//! `run(scenario) → Verdict` surface, and a judge
//! ([`run_conformance`] / [`ConformanceReport::violations`]) that checks
//! every verdict's radius against the exact discrete optimum and the
//! per-algorithm ratio bound from the paper.
//!
//! The read side is judged too: [`query_violations`] rebuilds the
//! resident engine per scenario, publishes a snapshot, and re-checks
//! every answer the query layer serves (exact nearest-center agreement,
//! classify coherence, the epoch's certified bound) — see [`query`].
//! And so is the engine's incremental-publish mode:
//! [`incremental_violations`] replays each scenario with mid-stream
//! publishes and certifies every checked epoch bit-for-bit against a
//! from-scratch engine fed the same prefix — see [`incremental`].
//! The opt-in columnar f32 storage mode is certified empirically:
//! [`f32_violations`] replays each scenario through an f32 engine and
//! re-measures every published radius in f64 against the
//! budget-widened `(3 + 8ε′)·opt` — see [`f32cert`].
//! The churn-capable backends are judged by from-scratch oracles:
//! [`churn_violations`] certifies windowed epochs bit-for-bit against
//! unexpired-suffix replays (plus live-membership and a suffix-optimum
//! bound check) and decayed epochs against a full-republish engine on
//! the same publish schedule — see [`churn`].
//! The metrics layer's MPC communication accounting is certified too:
//! [`obs_violations`] re-runs the four MPC algorithms per scenario and
//! checks that each run's per-round word counts are complete (they sum
//! to the total) and that recording them through a [`kcz_obs::Registry`]
//! reproduces them exactly — see [`obscheck`].
//! The delta-aware Charikar solver is verified against cold:
//! [`solver_violations`] replays each scenario on two engines differing
//! only in solver mode and bit-compares every published epoch (radius,
//! guess, centers, uncovered weight, probe accounting) — see
//! [`solvecheck`].
//!
//! The facade exposes this as `kcz conformance [--tier smoke|full]
//! [--json <path>]`; CI runs the smoke tier on every push and fails on
//! any ratio-bound or query-conformance violation.

#![warn(missing_docs)]

pub mod churn;
pub mod f32cert;
pub mod incremental;
pub mod obscheck;
pub mod pipeline;
pub mod query;
pub mod report;
pub mod scenario;
pub mod solvecheck;

pub use churn::churn_violations;
pub use f32cert::f32_violations;
pub use incremental::incremental_violations;
pub use obscheck::obs_violations;
pub use pipeline::{all_pipelines, Model, Pipeline, RadiusBound, Verdict};
pub use query::query_violations;
pub use report::{exact_radius, run_conformance, within_bound, ConformanceReport, ScenarioReport};
pub use scenario::{catalog, snap_to_grid, Scenario, Tier, SIDE_BITS};
pub use solvecheck::solver_violations;
