//! f32 storage-mode conformance: the engine's opt-in columnar f32 mode
//! is certified **empirically**, in f64, against the same judgments the
//! default mode gets.
//!
//! `--precision f32` stores shard representatives in f32 coordinate
//! lanes, so absorb decisions are made through f32 distance tests.  The
//! mode's contract is that the rounding error is paid for up front: the
//! published ε′ folds in [`kcz_metric::F32_EPS_BUDGET`], widening the
//! certified `3 + 8ε′` factor, and every published radius must still
//! honor that widened bound when **re-measured in f64** against the
//! exact oracle.  This module replays each scenario through an
//! incremental f32 engine, certifies every checked epoch bit-for-bit
//! against a from-scratch f32 engine fed the same prefix (the
//! incremental machinery must be precision-agnostic), and re-measures
//! the final epoch's coverage radius with the f64 kernels against
//! `(3 + 8ε′)·opt`.
//!
//! Violations are strings ready for the conformance judge; `kcz
//! conformance` merges them with the pipeline, query, and incremental
//! violations and exits 3 if any survive.

use kcz_engine::{Engine, EngineConfig};
use kcz_kcenter::cost_with_outliers;
use kcz_metric::{total_weight, Precision, L2};

use crate::pipeline::ENGINE_BATCH;
use crate::report::exact_radius;
use crate::scenario::{catalog, Scenario, Tier};

/// Float tolerance for the oracle-bound re-check (matches the pipeline
/// verdicts' slack).
const TOL: f64 = 1e-6;

/// At most this many epochs are certified per scenario (the same stride
/// rule as the incremental check).
const MAX_EPOCHS: usize = 12;

/// Runs the f32 storage-mode check over the tier's catalog.  Scenarios
/// are mapped over the shared worker pool; the returned violations are
/// in catalog order.  Empty means the f32 mode is certified: every
/// incremental f32 epoch matches a from-scratch f32 replay bit-for-bit,
/// and every final radius honors the budget-widened bound in f64.
pub fn f32_violations(tier: Tier) -> Vec<String> {
    kcz_engine::runtime::global()
        .scoped_map(catalog(tier), |_, sc| scenario_violations(&sc))
        .into_iter()
        .flatten()
        .collect()
}

/// The per-scenario body of [`f32_violations`].
fn scenario_violations(sc: &Scenario) -> Vec<String> {
    let mut out = Vec::new();
    if sc.is_empty() {
        return out;
    }
    let tag = |what: &str| format!("{} / f32/{what}", sc.name);
    let cfg = EngineConfig::new(sc.machines, sc.k, sc.z, sc.eps).with_precision(Precision::F32);
    let engine = Engine::new(L2, cfg);
    let batches: Vec<&[[f64; 2]]> = sc.points.chunks(ENGINE_BATCH).collect();
    let stride = batches.len().div_ceil(MAX_EPOCHS).max(1);
    let mut fed = 0usize;
    let mut last = None;
    for (i, batch) in batches.iter().enumerate() {
        engine.ingest(batch);
        fed += batch.len();
        if (i + 1) % stride != 0 && i + 1 != batches.len() {
            continue;
        }
        let snap = engine.publish();
        // The from-scratch oracle: a cold full-republish f32 engine fed
        // the identical prefix.  Incremental re-merging must stay a pure
        // optimization regardless of the storage precision.
        let scratch = Engine::new(L2, cfg.full_republish());
        for b in &batches[..=i] {
            scratch.ingest(b);
        }
        let oracle = scratch.snapshot();
        if snap.radius.to_bits() != oracle.radius.to_bits()
            || snap.uncovered != oracle.uncovered
            || snap.bound_factor.to_bits() != oracle.bound_factor.to_bits()
            || snap.effective_eps.to_bits() != oracle.effective_eps.to_bits()
            || snap.stats.summary_words != oracle.stats.summary_words
        {
            out.push(format!(
                "{}: prefix of {fed} points: radius {:.9} vs {:.9}, excluded {} vs {}, \
                 factor {:.6} vs {:.6} — incremental f32 publish diverged from scratch",
                tag("publish"),
                snap.radius,
                oracle.radius,
                snap.uncovered,
                oracle.uncovered,
                snap.bound_factor,
                oracle.bound_factor
            ));
        }
        last = Some(snap);
    }
    // ε′ must carry the folded budget — an f32 engine publishing the
    // narrow f64 factor would certify a bound its absorb sweeps never
    // honored.  The relation is exact: the widened ε′ is computed as
    // `ε′_f64 · (1 + F32_EPS_BUDGET)` and the merge structure (hence
    // the drift composition) is identical across precisions, so the
    // comparison holds bit-for-bit.
    if let Some(snap) = &last {
        let f64_engine = Engine::new(
            L2,
            EngineConfig::new(sc.machines, sc.k, sc.z, sc.eps).full_republish(),
        );
        for b in &batches {
            f64_engine.ingest(b);
        }
        let widened = f64_engine.snapshot().effective_eps * (1.0 + kcz_metric::F32_EPS_BUDGET);
        if snap.effective_eps.to_bits() != widened.to_bits() {
            out.push(format!(
                "{}: published ε′ {:.9} ≠ budget-widened f64 ε′ {:.9}",
                tag("eps"),
                snap.effective_eps,
                widened
            ));
        }
    }
    // The empirical certification: re-measure the final f32 epoch's
    // coverage radius with the f64 kernels over the original stream and
    // judge it against the budget-widened `(3 + 8ε′)·opt`.
    if let Some(snap) = &last {
        let total = total_weight(&sc.weighted());
        if snap.uncovered > sc.z && total > sc.z {
            out.push(format!(
                "{}: excluded weight {} exceeds z = {}",
                tag("uncovered"),
                snap.uncovered,
                sc.z
            ));
        }
    }
    if let (Some(snap), Some(opt)) = (last, exact_radius(sc)) {
        if !snap.centers.is_empty() {
            let achieved = cost_with_outliers(&L2, &sc.weighted(), &snap.centers, sc.z);
            if achieved > (snap.bound_factor + TOL) * opt + TOL {
                out.push(format!(
                    "{}: f64-remeasured radius {:.6} > {:.2}·opt (opt = {:.6})",
                    tag("bound"),
                    achieved,
                    snap.bound_factor,
                    opt
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_tier_f32_mode_is_certified() {
        let violations = f32_violations(Tier::Smoke);
        assert!(violations.is_empty(), "{violations:#?}");
    }

    #[test]
    fn single_scenario_replays_multiple_f32_epochs() {
        // The churn scenario spans many ENGINE_BATCH chunks, so the
        // strided replay certifies several genuine f32 epochs, each
        // against its own from-scratch f32 engine.
        let sc = catalog(Tier::Smoke)
            .into_iter()
            .find(|s| s.name == "churn_under_snapshot")
            .unwrap_or_else(|| catalog(Tier::Smoke).into_iter().next().unwrap());
        assert!(scenario_violations(&sc).is_empty());
    }
}
