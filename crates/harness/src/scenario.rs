//! The shared scenario catalog: every conformance scenario is one
//! concrete `(points, k, z, ε)` instance that *all* pipelines run on.
//!
//! Catalog invariants, relied on by the [`crate::pipeline`] adapters:
//!
//! * coordinates are **integer-valued** `f64`s inside `[0, 2^side_bits)`,
//!   so the fully dynamic pipeline (which lives on the discrete universe
//!   `[Δ]²` of Section 5) sees bit-for-bit the same point multiset as the
//!   continuous pipelines;
//! * `points` is in **stream order** — insertion-only and sliding-window
//!   structures consume it as-is, the MPC adapters partition it
//!   round-robin, the offline solvers ignore order;
//! * scenarios with `oracle = true` are small enough for
//!   [`kcz_kcenter::exact_discrete`] over the distinct points
//!   (`C(n_distinct, k)` within the solver's work bound), so the harness
//!   can assert each pipeline's paper ratio bound against ground truth.

use kcz_metric::{unit_weighted, Weighted};
use kcz_workloads::{
    annulus, colinear, drifting_stream, duplicate_heavy, gaussian_clusters, outlier_burst,
    two_scale_clusters,
};

/// Which slice of the catalog to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Small-`n`, oracle-checked scenarios only (< 60 s; CI runs this).
    Smoke,
    /// Smoke plus the large-`n` scenarios (cross-checked pairwise, no
    /// exact oracle).
    Full,
}

/// One conformance scenario: a workload every pipeline must handle.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable identifier (used in reports and goldens).
    pub name: &'static str,
    /// What the scenario stresses.
    pub description: &'static str,
    /// The point multiset, in stream order.  Integer-valued coordinates
    /// in `[0, 2^side_bits)`.
    pub points: Vec<[f64; 2]>,
    /// Number of centers.
    pub k: usize,
    /// Outlier budget (weight).
    pub z: u64,
    /// Coreset accuracy parameter handed to every coreset pipeline.
    pub eps: f64,
    /// Machine count for the MPC adapters.
    pub machines: usize,
    /// Round count for the R-round MPC adapter.
    pub rounds: usize,
    /// Discrete-universe side bits for the fully dynamic adapter
    /// (`side_bits · 2 ≤ 63`; every coordinate is `< 2^side_bits`).
    pub side_bits: u32,
    /// Whether `exact_discrete` ground truth is feasible (small `n`).
    pub oracle: bool,
    /// Seed the scenario's generators were run with.
    pub seed: u64,
    /// Whether the resident-engine adapter should take a snapshot after
    /// every ingested batch (the churn-under-snapshot stress): queries
    /// issued mid-burst must not disturb ingest or the certified bound.
    pub mid_snapshots: bool,
}

impl Scenario {
    /// The points as a unit-weighted set (the form the solvers consume).
    pub fn weighted(&self) -> Vec<Weighted<[f64; 2]>> {
        unit_weighted(&self.points)
    }

    /// Distinct points (candidate centers for the exact oracle).
    pub fn distinct_points(&self) -> Vec<[f64; 2]> {
        let mut keys: Vec<[u64; 2]> = self
            .points
            .iter()
            .map(|p| [p[0].to_bits(), p[1].to_bits()])
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys.iter()
            .map(|k| [f64::from_bits(k[0]), f64::from_bits(k[1])])
            .collect()
    }

    /// Number of points (`n`).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the scenario is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Universe side bits shared by the whole catalog.
pub const SIDE_BITS: u32 = 16;

/// Translates the point set into the positive quadrant (margin 8) and
/// rounds every coordinate to the nearest integer, clamped into
/// `[0, 2^SIDE_BITS)` — the canonical form the catalog invariants demand.
///
/// Rounding happens at *generation* time, so every pipeline sees the same
/// (already snapped) instance; conformance never compares a rounded run
/// against an unrounded one.
pub fn snap_to_grid(points: &[[f64; 2]]) -> Vec<[f64; 2]> {
    let side = (1u64 << SIDE_BITS) as f64;
    let (mut lo_x, mut lo_y) = (f64::INFINITY, f64::INFINITY);
    for p in points {
        lo_x = lo_x.min(p[0]);
        lo_y = lo_y.min(p[1]);
    }
    points
        .iter()
        .map(|p| {
            [
                (p[0] - lo_x + 8.0).round().clamp(0.0, side - 1.0),
                (p[1] - lo_y + 8.0).round().clamp(0.0, side - 1.0),
            ]
        })
        .collect()
}

/// Planted-outlier count of a [`drifting_stream`] output: the generator
/// places outliers at `y ≥ 10⁴·σ` while cluster points stay near `y ≈ 0`
/// (see `kcz_workloads::streams`), so thresholding at the midpoint
/// `5·10³·σ` classifies them exactly.  Shared by the smoke and full
/// catalogs so the scenario's `z` cannot drift out of sync with the
/// generator.
fn drift_outlier_count(raw: &[[f64; 2]], sigma: f64) -> u64 {
    raw.iter().filter(|p| p[1] >= 5e3 * sigma).count() as u64
}

fn scenario(
    name: &'static str,
    description: &'static str,
    raw: Vec<[f64; 2]>,
    k: usize,
    z: u64,
    oracle: bool,
    seed: u64,
) -> Scenario {
    assert!(k >= 1, "scenario {name}: k must be at least 1");
    Scenario {
        name,
        description,
        points: snap_to_grid(&raw),
        k,
        z,
        eps: 0.5,
        machines: 4,
        rounds: 2,
        side_bits: SIDE_BITS,
        oracle,
        seed,
        mid_snapshots: false,
    }
}

/// The catalog.  `Tier::Smoke` returns the oracle-checked scenarios only;
/// `Tier::Full` appends the large-`n` ones.
pub fn catalog(tier: Tier) -> Vec<Scenario> {
    let mut out = Vec::new();

    // 1. Well-separated Gaussian blobs with planted far outliers: the
    //    benign baseline every pipeline should ace.
    let inst = gaussian_clusters::<2>(3, 18, 6.0, 4, 0xA1);
    out.push(scenario(
        "gaussian_blobs",
        "3 separated Gaussian clusters + 4 planted far outliers",
        inst.points,
        3,
        4,
        true,
        0xA1,
    ));

    // 2. Ring around a core blob: the continuous optimum center sits in
    //    the annulus hole, maximizing the discrete-center gap.
    let mut ring = annulus(28, [800.0, 800.0], 300.0, 320.0, 0xA2);
    ring.extend(annulus(20, [800.0, 800.0], 0.0, 6.0, 0xA2 ^ 1));
    ring.extend([[3600.0, 3600.0], [100.0, 3900.0], [3900.0, 200.0]]);
    out.push(scenario(
        "annulus_core",
        "ring + central blob + 3 far outliers (discrete-center gap)",
        ring,
        2,
        3,
        true,
        0xA2,
    ));

    // 3. Two clusters at wildly different scales: a single granularity
    //    derived from the wrong scale breaks naive coresets.
    let mut ts = two_scale_clusters(20, 20, 3.0, 150.0, 2500.0, 0xA3);
    ts.extend([[6000.0, 500.0], [500.0, 6000.0]]);
    out.push(scenario(
        "two_scale",
        "tight cluster (r=3) + wide cluster (r=150) + 2 outliers",
        ts,
        2,
        2,
        true,
        0xA3,
    ));

    // 4. Heavy duplicate mass: 6 distinct sites × 10 copies.  Streaming
    //    structures must merge duplicates while r = 0; any site's weight
    //    (10) exceeds z (5), so no site may be discarded wholesale.
    out.push(scenario(
        "duplicate_mass",
        "6 distinct sites, 10 copies each; every site outweighs z",
        duplicate_heavy(6, 10, 400.0, 0xA4),
        2,
        5,
        true,
        0xA4,
    ));

    // 5. Colinear points: degenerate 1-D geometry with maximal greedy
    //    tie-breaking, plus off-line outliers.
    let mut line = colinear(56, [100.0, 500.0], [30.0, 0.0]);
    line.extend([[900.0, 4100.0], [950.0, 4100.0], [1000.0, 4200.0]]);
    out.push(scenario(
        "colinear",
        "56 evenly spaced points on a line + 3 off-line outliers",
        line,
        3,
        3,
        true,
        0xA5,
    ));

    // 6. Outlier burst: all z outliers arrive consecutively mid-stream —
    //    the adversarial arrival order for streaming structures.
    out.push(scenario(
        "outlier_burst",
        "two clusters; 6 consecutive far outliers at stream position 25",
        outlier_burst(54, 6, 25, 4.0, 0xA6),
        2,
        6,
        true,
        0xA6,
    ));

    // 7. Drift with churn: cluster centers advance every arrival, with
    //    occasional far outliers.  z is the planted outlier count.
    let raw = drifting_stream(60, 2, 2.0, 1.5, 0.07, 0xA7);
    let z_drift = drift_outlier_count(&raw, 2.0);
    out.push(scenario(
        "drift_churn",
        "2 drifting clusters over 60 arrivals + rate-0.07 outliers",
        raw,
        2,
        z_drift,
        true,
        0xA7,
    ));

    // 8. All points identical: opt = 0; every pipeline must answer
    //    exactly 0 without establishing a radius.
    out.push(scenario(
        "identical_points",
        "40 copies of one point; opt = 0 in every model",
        vec![[700.0, 900.0]; 40],
        2,
        3,
        true,
        0xA8,
    ));

    // 9. k = 1 with a single disk cluster + 2 outliers.
    let mut disk = annulus(40, [400.0, 400.0], 0.0, 12.0, 0xA9);
    disk.extend([[3000.0, 300.0], [200.0, 3200.0]]);
    out.push(scenario(
        "single_cluster_k1",
        "one disk cluster, k=1, 2 far outliers",
        disk,
        1,
        2,
        true,
        0xA9,
    ));

    // 10. z ≥ n: the whole input fits in the outlier budget; radius 0
    //     and an empty (or trivial) solution everywhere.
    out.push(scenario(
        "budget_swallows_all",
        "20 points, z = 25 ≥ n: defined zero-radius answer required",
        colinear(20, [100.0, 100.0], [50.0, 7.0]),
        2,
        25,
        true,
        0xAA,
    ));

    if tier == Tier::Full {
        let inst = gaussian_clusters::<2>(5, 300, 4.0, 20, 0xB1);
        out.push(scenario(
            "large_gaussian",
            "5 clusters × 300 points + 20 outliers (no oracle)",
            inst.points,
            5,
            20,
            false,
            0xB1,
        ));

        let raw = drifting_stream(1600, 3, 2.0, 1.0, 0.01, 0xB2);
        let z_drift = drift_outlier_count(&raw, 2.0);
        out.push(scenario(
            "large_drift",
            "3 drifting clusters over 1600 arrivals (no oracle)",
            raw,
            3,
            z_drift,
            false,
            0xB2,
        ));

        out.push(scenario(
            "large_duplicates",
            "40 sites × 50 copies (n=2000, 40 distinct; no oracle)",
            duplicate_heavy(40, 50, 150.0, 0xB3),
            4,
            30,
            false,
            0xB3,
        ));

        // Engine stressor: 90% of the mass is one duplicated site, so
        // value-hash routing lands it all on a single shard.  The skewed
        // shard must absorb the mass into one representative while the
        // scatter keeps the other shards live; interleaved arrival makes
        // every ingest batch skewed, not just the stream as a whole.
        let mut hot = Vec::with_capacity(500);
        for p in annulus(50, [1000.0, 1000.0], 0.0, 400.0, 0xB4) {
            hot.extend([[5000.0, 5000.0]; 9]);
            hot.push(p);
        }
        out.push(scenario(
            "hot_shard_skew",
            "450 copies of one site (one hot shard) + 50 scattered points",
            hot,
            3,
            10,
            true,
            0xB4,
        ));

        // Engine stressor: snapshots taken after every batch, including
        // mid-burst — the query path (clone + merge-tree + solve) must
        // not disturb ingest or the certified bound.
        let mut churn = scenario(
            "churn_under_snapshot",
            "two clusters, 8 consecutive far outliers mid-stream; snapshot per batch",
            outlier_burst(192, 8, 60, 4.0, 0xB5),
            2,
            8,
            true,
            0xB5,
        );
        churn.mid_snapshots = true;
        out.push(churn);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_deterministic_and_snapped() {
        let a = catalog(Tier::Full);
        let b = catalog(Tier::Full);
        assert_eq!(a.len(), b.len());
        let side = (1u64 << SIDE_BITS) as f64;
        for (sa, sb) in a.iter().zip(&b) {
            assert_eq!(sa.name, sb.name);
            assert_eq!(sa.points, sb.points, "{}", sa.name);
            for p in &sa.points {
                for &c in p {
                    assert_eq!(c, c.round(), "{}: non-integer coord {c}", sa.name);
                    assert!((0.0..side).contains(&c), "{}: {c} out of range", sa.name);
                }
            }
        }
    }

    #[test]
    fn smoke_tier_is_oracle_only_and_large_enough() {
        let smoke = catalog(Tier::Smoke);
        assert!(smoke.len() >= 8, "need ≥ 8 smoke scenarios");
        for sc in &smoke {
            assert!(sc.oracle, "{} must be oracle-checkable", sc.name);
            assert!(sc.k >= 1);
        }
        let full = catalog(Tier::Full);
        assert!(full.len() > smoke.len());
        assert!(full.iter().any(|s| !s.oracle));
    }

    #[test]
    fn distinct_points_dedups() {
        let sc = catalog(Tier::Smoke)
            .into_iter()
            .find(|s| s.name == "duplicate_mass")
            .unwrap();
        assert_eq!(sc.len(), 60);
        assert_eq!(sc.distinct_points().len(), 6);
        let ident = catalog(Tier::Smoke)
            .into_iter()
            .find(|s| s.name == "identical_points")
            .unwrap();
        assert_eq!(ident.distinct_points().len(), 1);
    }

    #[test]
    fn drift_scenario_has_planted_outliers() {
        let sc = catalog(Tier::Smoke)
            .into_iter()
            .find(|s| s.name == "drift_churn")
            .unwrap();
        assert!(
            sc.z >= 1,
            "drift scenario should plant at least one outlier"
        );
        assert!(sc.z < sc.len() as u64 / 2);
    }
}
