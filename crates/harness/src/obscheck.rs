//! Observability conformance: the MPC communication accounting the
//! metrics layer exports is certified against the algorithms' own
//! `MpcRunStats`.
//!
//! The paper's Table 1 states *per-round* communication bounds, so the
//! registry exports one counter per round
//! (`mpc.<alg>.round<i>.comm_words`) next to the total.  This module
//! re-runs the four MPC algorithms on each catalog scenario (the same
//! round-robin partition the pipeline adapter uses) and checks, per run:
//!
//! 1. the per-round split is complete — `round_comm_words.len()` equals
//!    the algorithm's round count and the entries sum to `comm_words`;
//! 2. the registry is faithful — recording the run into a fresh
//!    [`kcz_obs::Registry`] reproduces every per-round word count and the
//!    total exactly (no lost or double-counted words on the way out).
//!
//! Each checked run is also recorded into the caller's session
//! [`MetricsHandle`], so a `kcz conformance --metrics` export carries the
//! accumulated `mpc.*` accounting that this pass just certified.
//!
//! Violations carry the `obs/` tag and ride the conformance report's
//! `incremental_violations` array, so the JSON schema — and the
//! byte-pinned golden — stay stable.

use kcz_kcenter::charikar::GreedyParams;
use kcz_metric::L2;
use kcz_mpc::{ceccarello_one_round, one_round_randomized, r_round, two_round, MpcRunStats};
use kcz_obs::{MetricsHandle, Registry};
use kcz_workloads::round_robin;

use crate::scenario::{catalog, Scenario, Tier};

/// Runs the observability check over the tier's catalog.  Scenarios are
/// mapped over the shared worker pool; the returned violations are in
/// catalog order.  Empty means every MPC run's per-round communication
/// split is complete and the registry reproduces it exactly.  Recording
/// into `metrics` is cumulative across the whole pass (pass
/// [`MetricsHandle::disabled`] to check without exporting).
pub fn obs_violations(tier: Tier, metrics: &MetricsHandle) -> Vec<String> {
    kcz_engine::runtime::global()
        .scoped_map(catalog(tier), |_, sc| scenario_violations(&sc, metrics))
        .into_iter()
        .flatten()
        .collect()
}

/// The per-scenario body of [`obs_violations`].
fn scenario_violations(sc: &Scenario, metrics: &MetricsHandle) -> Vec<String> {
    let mut out = Vec::new();
    if sc.is_empty() {
        return out;
    }
    let parts = round_robin(&sc.points, sc.machines);
    let params = GreedyParams::default();
    let runs: [(&'static str, MpcRunStats); 4] = [
        (
            "two_round",
            two_round(&L2, &parts, sc.k, sc.z, sc.eps, &params)
                .output
                .stats,
        ),
        (
            "one_round",
            one_round_randomized(&L2, &parts, sc.k, sc.z, sc.eps, &params)
                .output
                .stats,
        ),
        (
            "r_round",
            r_round(&L2, &parts, sc.k, sc.z, sc.eps, sc.rounds, &params).stats,
        ),
        (
            "baseline",
            ceccarello_one_round(&L2, &parts, sc.k, sc.z, sc.eps, &params).stats,
        ),
    ];
    for (alg, stats) in runs {
        let tag = |what: &str| format!("{} / obs/mpc/{alg}/{what}", sc.name);
        if stats.round_comm_words.len() != stats.rounds {
            out.push(format!(
                "{}: {} per-round entries for {} rounds",
                tag("rounds"),
                stats.round_comm_words.len(),
                stats.rounds
            ));
        }
        let sum: u64 = stats.round_comm_words.iter().sum();
        if sum != stats.comm_words {
            out.push(format!(
                "{}: per-round words {:?} sum to {} but the run sent {}",
                tag("sum"),
                stats.round_comm_words,
                sum,
                stats.comm_words
            ));
        }
        // Registry faithfulness: one recorded run into a fresh registry
        // must reproduce the stats bit for bit.
        let local = Registry::new();
        stats.record_comm(&MetricsHandle::new(&local), alg);
        let total_name = format!("mpc.{alg}.comm_words");
        if local.counter_value(&total_name) != Some(stats.comm_words) {
            out.push(format!(
                "{}: registry {total_name} = {:?}, run sent {}",
                tag("registry"),
                local.counter_value(&total_name),
                stats.comm_words
            ));
        }
        for (i, &w) in stats.round_comm_words.iter().enumerate() {
            let name = format!("mpc.{alg}.round{}.comm_words", i + 1);
            if local.counter_value(&name) != Some(w) {
                out.push(format!(
                    "{}: registry {name} = {:?}, round sent {w}",
                    tag("registry"),
                    local.counter_value(&name)
                ));
            }
        }
        // The certified run also feeds the session export.
        stats.record_comm(metrics, alg);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_tier_accounting_is_certified() {
        let violations = obs_violations(Tier::Smoke, &MetricsHandle::disabled());
        assert!(violations.is_empty(), "{violations:#?}");
    }

    #[test]
    fn session_registry_accumulates_certified_totals() {
        let registry = Registry::new();
        let handle = MetricsHandle::new(&registry);
        let violations = obs_violations(Tier::Smoke, &handle);
        assert!(violations.is_empty(), "{violations:#?}");
        // Every algorithm's totals landed in the session registry, and
        // the exported per-round counters sum back to the exported total.
        for alg in ["two_round", "one_round", "r_round", "baseline"] {
            let total = registry
                .counter_value(&format!("mpc.{alg}.comm_words"))
                .unwrap_or_else(|| panic!("missing mpc.{alg}.comm_words"));
            assert!(total > 0, "mpc.{alg} recorded no communication");
            let per_round: u64 = registry
                .counters()
                .into_iter()
                .filter(|(name, _)| {
                    name.starts_with(&format!("mpc.{alg}.round")) && name.ends_with(".comm_words")
                })
                .map(|(_, v)| v)
                .sum();
            assert_eq!(per_round, total, "mpc.{alg} round split disagrees");
        }
    }
}
