//! Running the catalog and judging the verdicts.
//!
//! For oracle scenarios the judge is [`kcz_kcenter::exact_discrete`] over
//! the scenario's distinct points; a verdict *violates* conformance when
//!
//! * its excluded-outlier weight exceeds `z`,
//! * its radius is not finite,
//! * it carries a [`RadiusBound`](crate::pipeline::RadiusBound) and
//!   `radius > factor·opt + additive`, or
//! * its radius is *impossibly good* — below `opt/2`, which no genuine
//!   k-center solution can reach (the discrete optimum is at most twice
//!   the continuous one), signalling an objective mismatch rather than a
//!   clever algorithm.

use kcz_kcenter::exact_discrete;
use kcz_metric::total_weight;

use crate::pipeline::{all_pipelines, Verdict};
use crate::scenario::{catalog, Scenario, Tier};

/// All verdicts for one scenario, plus the oracle radius when available.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The scenario that was run.
    pub scenario: Scenario,
    /// `exact_discrete` optimum over the distinct points (oracle
    /// scenarios only).
    pub exact: Option<f64>,
    /// One verdict per pipeline, in pipeline order.
    pub verdicts: Vec<Verdict>,
}

/// The whole conformance run.
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    /// Which tier was run.
    pub tier: Tier,
    /// Pipeline names, in the order verdicts are listed.
    pub pipelines: Vec<&'static str>,
    /// Per-scenario results.
    pub scenarios: Vec<ScenarioReport>,
}

/// Ground truth for an oracle scenario: the optimal radius with centers
/// restricted to the distinct input points.  `None` for non-oracle
/// scenarios.
pub fn exact_radius(sc: &Scenario) -> Option<f64> {
    if !sc.oracle {
        return None;
    }
    let candidates = sc.distinct_points();
    if candidates.is_empty() {
        return Some(0.0);
    }
    Some(exact_discrete(&kcz_metric::L2, &sc.weighted(), sc.k, sc.z, &candidates).radius)
}

/// Runs every pipeline over the tier's catalog.
///
/// Scenarios are mapped over the workspace's shared worker pool
/// ([`kcz_engine::runtime::global`]) — the full tier's large instances
/// run concurrently, and `scoped_map`'s order preservation keeps the
/// report (and thus the golden JSON) deterministic.  Pipelines that fan
/// out internally (MPC rounds, engine shards) nest on the same pool.
pub fn run_conformance(tier: Tier) -> ConformanceReport {
    let pipelines = all_pipelines();
    let names: Vec<&'static str> = pipelines.iter().map(|p| p.name()).collect();
    let scenarios = kcz_engine::runtime::global().scoped_map(catalog(tier), |_, sc| {
        let exact = exact_radius(&sc);
        let verdicts = pipelines.iter().map(|p| p.run(&sc)).collect();
        ScenarioReport {
            scenario: sc,
            exact,
            verdicts,
        }
    });
    ConformanceReport {
        tier,
        pipelines: names,
        scenarios,
    }
}

/// Whether a verdict satisfies its bound against the oracle radius.
/// `None` when either the bound or the oracle is absent.
pub fn within_bound(v: &Verdict, exact: Option<f64>) -> Option<bool> {
    let (b, e) = (v.bound?, exact?);
    Some(v.radius <= b.factor * e + b.additive)
}

impl ConformanceReport {
    /// Every conformance violation in the run, as human-readable lines.
    /// Empty means the run conforms.
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for sr in &self.scenarios {
            let sc = &sr.scenario;
            let total = total_weight(&sc.weighted());
            for v in &sr.verdicts {
                let tag = format!("{} / {}", sc.name, v.pipeline);
                if !v.radius.is_finite() {
                    out.push(format!("{tag}: non-finite radius {}", v.radius));
                    continue;
                }
                if v.uncovered > sc.z && total > sc.z {
                    out.push(format!(
                        "{tag}: excluded weight {} exceeds z = {}",
                        v.uncovered, sc.z
                    ));
                }
                if let Some(false) = within_bound(v, sr.exact) {
                    let b = v.bound.expect("within_bound requires a bound");
                    out.push(format!(
                        "{tag}: radius {:.6} > {:.2}·opt + {:.3} (opt = {:.6})",
                        v.radius,
                        b.factor,
                        b.additive,
                        sr.exact.expect("within_bound requires the oracle"),
                    ));
                }
                if let Some(e) = sr.exact {
                    if v.radius < e / 2.0 - 1e-9 {
                        out.push(format!(
                            "{tag}: radius {:.6} below opt/2 = {:.6} — objective mismatch",
                            v.radius,
                            e / 2.0
                        ));
                    }
                }
            }
        }
        out
    }

    /// Machine-readable JSON (hand-rolled: the workspace is offline and
    /// carries no serde).  Key order and float formatting (6 decimals)
    /// are fixed, so the output is golden-testable.  Equivalent to
    /// [`to_json_with_violations`](Self::to_json_with_violations) with
    /// no read-side or incremental verdicts.
    pub fn to_json(&self) -> String {
        self.to_json_with_violations(&[], &[])
    }

    /// [`to_json`](Self::to_json) with the read side's verdicts folded
    /// in; see [`to_json_with_violations`](Self::to_json_with_violations).
    pub fn to_json_with_query_violations(&self, query_violations: &[String]) -> String {
        self.to_json_with_violations(query_violations, &[])
    }

    /// [`to_json`](Self::to_json) with the out-of-band verdicts folded
    /// in: the query-conformance check ([`crate::query_violations`]),
    /// the incremental-publish check ([`crate::incremental_violations`]),
    /// and the f32 storage-mode check ([`crate::f32_violations`], whose
    /// entries are tagged `f32/…` and ride the incremental array so the
    /// report schema stays stable) are judged out of band of the
    /// pipeline verdicts, but a machine-read report must not look clean
    /// while the run exits 3 — the trailing `query_violations` and
    /// `incremental_violations` arrays record what the serving layer,
    /// the incremental engine, or the f32 mode failed.
    pub fn to_json_with_violations(
        &self,
        query_violations: &[String],
        incremental_violations: &[String],
    ) -> String {
        let mut s = String::with_capacity(1 << 14);
        s.push_str("{\n");
        s.push_str(&format!(
            "  \"tier\": \"{}\",\n",
            match self.tier {
                Tier::Smoke => "smoke",
                Tier::Full => "full",
            }
        ));
        s.push_str("  \"pipelines\": [");
        for (i, p) in self.pipelines.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{p}\""));
        }
        s.push_str("],\n  \"scenarios\": [\n");
        for (si, sr) in self.scenarios.iter().enumerate() {
            let sc = &sr.scenario;
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": \"{}\",\n", sc.name));
            s.push_str(&format!(
                "      \"n\": {}, \"k\": {}, \"z\": {}, \"eps\": {},\n",
                sc.len(),
                sc.k,
                sc.z,
                fmt_f64(sc.eps)
            ));
            s.push_str(&format!("      \"exact\": {},\n", fmt_opt(sr.exact)));
            s.push_str("      \"verdicts\": [\n");
            for (vi, v) in sr.verdicts.iter().enumerate() {
                let ratio = match sr.exact {
                    Some(e) if e > 0.0 && v.radius.is_finite() => fmt_f64(v.radius / e),
                    _ => "null".to_string(),
                };
                let (bf, ba) = match v.bound {
                    Some(b) => (fmt_f64(b.factor), fmt_f64(b.additive)),
                    None => ("null".to_string(), "null".to_string()),
                };
                let wb = match within_bound(v, sr.exact) {
                    Some(b) => b.to_string(),
                    None => "null".to_string(),
                };
                s.push_str(&format!(
                    "        {{\"pipeline\": \"{}\", \"radius\": {}, \"ratio\": {}, \
                     \"uncovered\": {}, \"centers\": {}, \"coreset_size\": {}, \
                     \"space_words\": {}, \"rounds\": {}, \"bound_factor\": {}, \
                     \"bound_additive\": {}, \"within_bound\": {}}}{}\n",
                    v.pipeline,
                    fmt_opt(v.radius.is_finite().then_some(v.radius)),
                    ratio,
                    v.uncovered,
                    v.centers,
                    v.coreset_size,
                    v.space_words,
                    v.rounds,
                    bf,
                    ba,
                    wb,
                    if vi + 1 < sr.verdicts.len() { "," } else { "" }
                ));
            }
            s.push_str("      ]\n");
            s.push_str(&format!(
                "    }}{}\n",
                if si + 1 < self.scenarios.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n  \"query_violations\": [");
        push_string_array(&mut s, query_violations);
        s.push_str("],\n  \"incremental_violations\": [");
        push_string_array(&mut s, incremental_violations);
        s.push_str("]\n}\n");
        s
    }

    /// A fixed-width text table for terminal consumption.
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        for sr in &self.scenarios {
            let sc = &sr.scenario;
            s.push_str(&format!(
                "scenario {:<22} n={:<5} k={} z={:<3} {}\n",
                sc.name,
                sc.len(),
                sc.k,
                sc.z,
                match sr.exact {
                    Some(e) => format!("opt={e:.4}"),
                    None => "opt=n/a".to_string(),
                }
            ));
            for v in &sr.verdicts {
                let ratio = match sr.exact {
                    Some(e) if e > 0.0 && v.radius.is_finite() => format!("{:>6.3}", v.radius / e),
                    _ => "     -".to_string(),
                };
                let ok = match within_bound(v, sr.exact) {
                    Some(true) => "ok",
                    Some(false) => "VIOLATION",
                    None => "--",
                };
                s.push_str(&format!(
                    "  {:<18} radius={:<12.6} ratio={ratio} excl={:<3} summary={:<5} \
                     words={:<7} rounds={} {}\n",
                    v.pipeline, v.radius, v.uncovered, v.coreset_size, v.space_words, v.rounds, ok
                ));
            }
        }
        s
    }
}

/// Appends the comma-separated, escaped body of a JSON string array.
fn push_string_array(s: &mut String, items: &[String]) {
    for (i, v) in items.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!(
            "\"{}\"",
            v.replace('\\', "\\\\").replace('"', "\\\"")
        ));
    }
}

fn fmt_f64(x: f64) -> String {
    format!("{x:.6}")
}

fn fmt_opt(x: Option<f64>) -> String {
    match x {
        Some(v) => fmt_f64(v),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_agrees_with_planted_zero() {
        let sc = catalog(Tier::Smoke)
            .into_iter()
            .find(|s| s.name == "identical_points")
            .unwrap();
        assert_eq!(exact_radius(&sc), Some(0.0));
        let sc = catalog(Tier::Smoke)
            .into_iter()
            .find(|s| s.name == "budget_swallows_all")
            .unwrap();
        assert_eq!(exact_radius(&sc), Some(0.0));
    }

    #[test]
    fn json_shape_is_parseable_enough() {
        // One tiny synthetic report; full runs are exercised by the
        // facade's integration tests.
        let sc = catalog(Tier::Smoke)
            .into_iter()
            .find(|s| s.name == "duplicate_mass")
            .unwrap();
        let pipelines = all_pipelines();
        let report = ConformanceReport {
            tier: Tier::Smoke,
            pipelines: pipelines.iter().map(|p| p.name()).collect(),
            scenarios: vec![ScenarioReport {
                exact: exact_radius(&sc),
                verdicts: pipelines.iter().map(|p| p.run(&sc)).collect(),
                scenario: sc,
            }],
        };
        let json = report.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.contains("\"tier\": \"smoke\""));
        assert!(json.contains("\"pipeline\": \"offline/charikar\""));
        assert!(json.contains("\"within_bound\": "));
        assert!(json.contains("\"query_violations\": []"));
        assert!(json.contains("\"incremental_violations\": []"));
        // Out-of-band verdicts fold into the machine-readable report (so
        // a failing run never writes a clean-looking JSON), escaped
        // safely.  f32-mode entries ride the incremental array under
        // their `f32/` tag.
        let with_viols = report.to_json_with_violations(
            &[r#"x / query/assign: "bad" answer"#.to_string()],
            &[
                "y / incremental/publish: diverged".to_string(),
                "z / f32/bound: radius blew the budget".to_string(),
            ],
        );
        assert!(with_viols.contains(r#""query_violations": ["x / query/assign: \"bad\" answer"]"#));
        assert!(with_viols.contains(
            r#""incremental_violations": ["y / incremental/publish: diverged", "z / f32/bound: radius blew the budget"]"#
        ));
        assert_eq!(json.matches("\"name\": ").count(), 1);
        // Balanced braces/brackets (a cheap structural check without a
        // JSON parser in the dependency set).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(report.violations().is_empty(), "{:?}", report.violations());
        assert!(report.render_table().contains("duplicate_mass"));
    }
}
