//! The `Pipeline` trait: one `run(scenario) → Verdict` surface over every
//! solver in the suite, each annotated with the paper guarantee it
//! asserts.
//!
//! Every adapter reports its radius **the same way**: the returned center
//! set is re-measured on the *full original* point multiset with outlier
//! budget `z` ([`kcz_kcenter::cost_with_outliers`]), so verdicts are
//! directly comparable across models regardless of what summary the
//! pipeline solved on.  Alongside the radius each adapter emits the
//! [`RadiusBound`] it certifies (`radius ≤ factor·opt + additive` against
//! the discrete optimum of [`kcz_kcenter::exact_discrete`]); the bounds
//! are per-run because some (the dynamic pipeline's grid term, the
//! sliding window's `ρ_min` floor) depend on what the run observed.
//!
//! Which paper guarantee each adapter asserts:
//!
//! | pipeline | guarantee | bound |
//! |----------|-----------|-------|
//! | `offline/charikar` | Charikar et al. 3-approx (Lemma 8's substrate) | `3·opt` |
//! | `offline/gonzalez` | Gonzalez 2-approx — only for `z = 0` | `2·opt`, `z=0` only |
//! | `stream/insertion` | Theorem 18 (ε,k,z)-coreset, Lemma 16 drift `ε·opt` | `(3+8ε)·opt` |
//! | `stream/sliding`   | de Berg–Monemizadeh–Zhong window coreset (§6 bound) | `(3+8ε)·opt + ε·ρ_min` |
//! | `stream/dynamic`   | Theorem 21 relaxed coreset (cell-center reps) | `3·opt + 5·2^level` |
//! | `mpc/two-round`    | Theorem 10 (`3ε`-coreset, budgets ≤ 2z) | `(3+8ε')·opt`, `ε' = 2ε+ε²` |
//! | `mpc/one-round`    | Theorem 33 (random distribution w.h.p.) | `(3+8ε')·opt` |
//! | `mpc/r-round`      | Theorem 35 (`(1+ε)^R−1` composition) | `(3+8ε')·opt`, `ε' = (1+ε)^R−1` |
//! | `mpc/baseline`     | Ceccarello et al. 1-round (`(k+z)/ε^d` space) | `(3+8ε')·opt` |
//! | `engine/sharded`   | Lemma 4/5 shard merges ([`kcz_coreset::MergeableSummary`]) | `(3+8ε')·opt`, `ε' = (1+⌈log₂s⌉/2)·ε` |
//!
//! The coreset factor `3 + 8ε'` is one shared derivation,
//! [`kcz_coreset::end_to_end_factor`] (see its docs for the
//! `(3 + 7ε')·opt` chain plus the one-ε' margin); every adapter feeds it
//! the ε' its summary *actually certifies* — the summary's own
//! `effective_eps` bookkeeping, not a per-pipeline formula re-derived
//! here.

use kcz_coreset::end_to_end_factor;
use kcz_engine::{Engine, EngineConfig};
use kcz_kcenter::charikar::GreedyParams;
use kcz_kcenter::{cost_with_outliers, farthest_first, greedy, uncovered_weight};
use kcz_metric::{stats, total_weight, SpaceUsage, Weighted, L2};
use kcz_mpc::{ceccarello_one_round, one_round_randomized, r_round, two_round, MpcCoreset};
use kcz_streaming::{DynamicKCenter, InsertionOnlyCoreset, SlidingWindowCoreset};
use kcz_workloads::round_robin;

use crate::scenario::Scenario;

/// Which computational model a pipeline lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// Sequential, whole input in memory.
    Offline,
    /// One-pass (insertion-only / sliding-window / fully dynamic).
    Streaming,
    /// Massively parallel (simulated rounds).
    Mpc,
    /// Resident sharded ingest engine (concurrent batched streams).
    Engine,
}

impl Model {
    /// Lower-case label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Model::Offline => "offline",
            Model::Streaming => "streaming",
            Model::Mpc => "mpc",
            Model::Engine => "engine",
        }
    }
}

/// A certified upper bound `radius ≤ factor·opt + additive`, where `opt`
/// is the discrete optimum over the scenario's distinct points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadiusBound {
    /// Multiplicative factor against the discrete optimum.
    pub factor: f64,
    /// Additive slack (grid quantization, ρ floors, float tolerance).
    pub additive: f64,
}

/// What one pipeline reports for one scenario.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// Name of the pipeline that produced this verdict.
    pub pipeline: &'static str,
    /// Radius of the returned centers measured on the full input with
    /// outlier budget `z` (infinite when the pipeline failed to produce a
    /// feasible solution).
    pub radius: f64,
    /// Weight left uncovered at `radius` (the excluded outliers; ≤ `z`
    /// for a conforming pipeline).
    pub uncovered: u64,
    /// Number of centers returned (≤ `k`).
    pub centers: usize,
    /// Size of the summary the final solve ran on (`n` for offline).
    pub coreset_size: usize,
    /// Peak storage of the summary structure in machine words
    /// (0 = not tracked; offline pipelines hold the raw input).
    pub space_words: usize,
    /// Communication rounds (MPC pipelines; 0 otherwise).
    pub rounds: usize,
    /// The paper ratio bound this run certifies, when one applies.
    pub bound: Option<RadiusBound>,
}

/// One solver adapted to the conformance surface.
pub trait Pipeline: Send + Sync {
    /// Stable identifier, `model/algorithm`.
    fn name(&self) -> &'static str;
    /// The computational model the pipeline lives in.
    fn model(&self) -> Model;
    /// Runs the pipeline on a scenario and reports a [`Verdict`].
    fn run(&self, sc: &Scenario) -> Verdict;
}

/// Every pipeline in the suite, in report order.
pub fn all_pipelines() -> Vec<Box<dyn Pipeline>> {
    vec![
        Box::new(OfflineCharikar),
        Box::new(OfflineGonzalez),
        Box::new(InsertionPipeline),
        Box::new(SlidingPipeline),
        Box::new(DynamicPipeline),
        Box::new(MpcPipeline::TwoRound),
        Box::new(MpcPipeline::OneRound),
        Box::new(MpcPipeline::RRound),
        Box::new(MpcPipeline::Baseline),
        Box::new(EnginePipeline),
    ]
}

/// Float tolerance folded into every additive bound term.
const TOL: f64 = 1e-6;

/// Measures a center set on the full scenario input: the smallest radius
/// leaving ≤ `z` weight uncovered, plus the weight actually excluded.
///
/// An empty center set is feasible only when the whole weight fits the
/// budget; otherwise the verdict is `(∞, total)` — surfaced as a
/// violation rather than a panic, since a non-conforming pipeline is
/// exactly what the harness exists to catch.
fn measure(points: &[Weighted<[f64; 2]>], centers: &[[f64; 2]], z: u64) -> (f64, u64) {
    let total = total_weight(points);
    if total <= z {
        // Radius 0 is optimal; still report what the returned centers
        // leave uncovered at that radius (the whole weight only when the
        // pipeline returned no centers at all).
        let u = if centers.is_empty() {
            total
        } else {
            uncovered_weight(&L2, points, centers, 0.0)
        };
        return (0.0, u);
    }
    if centers.is_empty() {
        return (f64::INFINITY, total);
    }
    let r = cost_with_outliers(&L2, points, centers, z);
    let u = uncovered_weight(&L2, points, centers, r);
    (r, u)
}

fn verdict(
    name: &'static str,
    sc: &Scenario,
    centers: &[[f64; 2]],
    coreset_size: usize,
    space_words: usize,
    rounds: usize,
    bound: Option<RadiusBound>,
) -> Verdict {
    let (radius, uncovered) = measure(&sc.weighted(), centers, sc.z);
    Verdict {
        pipeline: name,
        radius,
        uncovered,
        centers: centers.len(),
        coreset_size,
        space_words,
        rounds,
        bound,
    }
}

/// The end-to-end coreset bound `3 + 8ε'`, with the factor supplied by
/// the one shared derivation in [`kcz_coreset::end_to_end_factor`] — the
/// same arithmetic the MPC coordinators and the resident engine report.
fn coreset_bound(effective_eps: f64, additive: f64) -> Option<RadiusBound> {
    Some(RadiusBound {
        factor: end_to_end_factor(effective_eps) + TOL,
        additive: additive + TOL,
    })
}

// ---------------------------------------------------------------- offline

/// Charikar–Khuller–Mount–Narasimhan greedy on the raw input: the
/// 3-approximation every coreset pipeline's bound is anchored to.
struct OfflineCharikar;

impl Pipeline for OfflineCharikar {
    fn name(&self) -> &'static str {
        "offline/charikar"
    }
    fn model(&self) -> Model {
        Model::Offline
    }
    fn run(&self, sc: &Scenario) -> Verdict {
        let pts = sc.weighted();
        let sol = greedy(&L2, &pts, sc.k, sc.z);
        verdict(
            self.name(),
            sc,
            &sol.centers,
            sc.len(),
            pts.words(),
            0,
            Some(RadiusBound {
                factor: 3.0 + TOL,
                additive: TOL,
            }),
        )
    }
}

/// Gonzalez farthest-first traversal with `k` centers.  A 2-approximation
/// for plain k-center only: with `z > 0` the traversal chases outliers
/// and certifies nothing, so the bound is attached only when `z = 0` —
/// running it against outlier scenarios anyway documents the failure mode
/// the paper's algorithms exist to avoid.
struct OfflineGonzalez;

impl Pipeline for OfflineGonzalez {
    fn name(&self) -> &'static str {
        "offline/gonzalez"
    }
    fn model(&self) -> Model {
        Model::Offline
    }
    fn run(&self, sc: &Scenario) -> Verdict {
        let pts = sc.weighted();
        let ff = farthest_first(&L2, &pts, sc.k, 0);
        let bound = (sc.z == 0).then_some(RadiusBound {
            factor: 2.0 + TOL,
            additive: TOL,
        });
        verdict(
            self.name(),
            sc,
            &ff.centers,
            sc.len(),
            pts.words(),
            0,
            bound,
        )
    }
}

// -------------------------------------------------------------- streaming

/// Algorithm 3 (insertion-only coreset, Theorem 18) + Charikar greedy on
/// the maintained coreset.  Drift ≤ `ε·r ≤ ε·opt` (Lemma 16).
struct InsertionPipeline;

impl Pipeline for InsertionPipeline {
    fn name(&self) -> &'static str {
        "stream/insertion"
    }
    fn model(&self) -> Model {
        Model::Streaming
    }
    fn run(&self, sc: &Scenario) -> Verdict {
        let mut alg = InsertionOnlyCoreset::new(L2, sc.k, sc.z, sc.eps);
        for p in &sc.points {
            alg.insert(*p);
        }
        let sol = greedy(&L2, alg.coreset(), sc.k, sc.z);
        // ε' from the summary's own bookkeeping (= ε for a pure stream).
        let bound = coreset_bound(alg.effective_eps(), 0.0);
        verdict(
            self.name(),
            sc,
            &sol.centers,
            alg.coreset().len(),
            alg.peak_words(),
            0,
            bound,
        )
    }
}

/// Sliding-window coreset queried with the window spanning the whole
/// stream, + Charikar greedy on the returned points.  The smallest
/// reliable guess satisfies `ρ ≤ 2·opt` (one doubling past the packing
/// bound), so drift `ε·ρ/2 ≤ ε·opt`; when `opt < ρ_min` the drift floor
/// `ε·ρ_min` moves into the additive term.
struct SlidingPipeline;

impl Pipeline for SlidingPipeline {
    fn name(&self) -> &'static str {
        "stream/sliding"
    }
    fn model(&self) -> Model {
        Model::Streaming
    }
    fn run(&self, sc: &Scenario) -> Verdict {
        if sc.is_empty() {
            return verdict(self.name(), sc, &[], 0, 0, 0, None);
        }
        let diam = stats::max_pairwise_distance(&L2, &sc.points).unwrap_or(0.0);
        let (rho_min, rho_max) = if diam > 0.0 {
            let min_pos = stats::min_pairwise_distance(&L2, &sc.points).unwrap_or(diam);
            ((min_pos / 2.0).max(diam / (1u64 << 24) as f64), diam)
        } else {
            (1.0, 1.0) // all points identical: any guess yields one cluster
        };
        let mut alg =
            SlidingWindowCoreset::new(L2, sc.k, sc.z, sc.eps, sc.len() as u64, rho_min, rho_max);
        for p in &sc.points {
            alg.insert(*p);
        }
        let (centers, size) = match alg.query() {
            Some(q) => (greedy(&L2, &q.coreset, sc.k, sc.z).centers, q.coreset.len()),
            None => (Vec::new(), 0),
        };
        verdict(
            self.name(),
            sc,
            &centers,
            size,
            alg.peak_words(),
            0,
            coreset_bound(sc.eps, sc.eps * rho_min),
        )
    }
}

/// Algorithm 5 (fully dynamic sketch over `[Δ]²`) + Charikar greedy on
/// the recovered relaxed coreset (Theorem 21).  Representatives are cell
/// centers of the recovered grid level, so the bound's additive term is
/// the grid quantization: at level ℓ every point is within
/// `δ = 2^ℓ·√2/2` of its representative, and the solve chain pays ≤ 7δ
/// (≤ `5·2^ℓ`).
struct DynamicPipeline;

impl Pipeline for DynamicPipeline {
    fn name(&self) -> &'static str {
        "stream/dynamic"
    }
    fn model(&self) -> Model {
        Model::Streaming
    }
    fn run(&self, sc: &Scenario) -> Verdict {
        let mut alg = DynamicKCenter::<2>::new(
            sc.side_bits,
            sc.k,
            sc.z,
            sc.eps,
            0.01,
            sc.seed ^ 0xD15C_0000,
        );
        let side = (1u64 << sc.side_bits) as f64;
        for p in &sc.points {
            debug_assert!(
                p[0] == p[0].round() && p[1] == p[1].round() && p[0] < side && p[1] < side,
                "dynamic pipeline requires integer coordinates in [0, 2^side_bits)"
            );
            alg.insert(&[p[0] as u64, p[1] as u64]);
        }
        match alg.solve() {
            Ok(sol) => verdict(
                self.name(),
                sc,
                &sol.centers,
                sol.coreset_size,
                alg.space_words(),
                0,
                Some(RadiusBound {
                    factor: 3.0 + TOL,
                    additive: 5.0 * (1u64 << sol.level) as f64 + TOL,
                }),
            ),
            // A failed sketch recovery (probability ≤ δ per query) is an
            // infeasible verdict, not a crash.
            Err(_) => verdict(self.name(), sc, &[], 0, alg.space_words(), 0, None),
        }
    }
}

// ------------------------------------------------------------------- MPC

/// The four MPC pipelines share one adapter body: partition the stream
/// round-robin over `machines`, run the algorithm, Charikar-solve the
/// coordinator's coreset.  Each variant's `effective_eps` (as reported by
/// the algorithm itself) parameterizes the bound.
enum MpcPipeline {
    /// Algorithm 2 (Theorem 10): deterministic, any distribution.
    TwoRound,
    /// Algorithm 6 (Theorem 33): randomized-distribution assumption —
    /// round-robin spreads the outliers evenly, satisfying it.
    OneRound,
    /// Algorithm 7 (Theorem 35): R-round tree reduction.
    RRound,
    /// Ceccarello–Pietracaprina–Pucci-style 1-round baseline.
    Baseline,
}

impl Pipeline for MpcPipeline {
    fn name(&self) -> &'static str {
        match self {
            MpcPipeline::TwoRound => "mpc/two-round",
            MpcPipeline::OneRound => "mpc/one-round",
            MpcPipeline::RRound => "mpc/r-round",
            MpcPipeline::Baseline => "mpc/baseline",
        }
    }
    fn model(&self) -> Model {
        Model::Mpc
    }
    fn run(&self, sc: &Scenario) -> Verdict {
        let parts = round_robin(&sc.points, sc.machines);
        let params = GreedyParams::default();
        let out: MpcCoreset<[f64; 2]> = match self {
            MpcPipeline::TwoRound => two_round(&L2, &parts, sc.k, sc.z, sc.eps, &params).output,
            MpcPipeline::OneRound => {
                one_round_randomized(&L2, &parts, sc.k, sc.z, sc.eps, &params).output
            }
            MpcPipeline::RRound => r_round(&L2, &parts, sc.k, sc.z, sc.eps, sc.rounds, &params),
            MpcPipeline::Baseline => ceccarello_one_round(&L2, &parts, sc.k, sc.z, sc.eps, &params),
        };
        let sol = greedy(&L2, &out.coreset, sc.k, sc.z);
        verdict(
            self.name(),
            sc,
            &sol.centers,
            out.stats.coreset_size,
            out.stats
                .worker_peak_words
                .max(out.stats.coordinator_peak_words),
            out.stats.rounds,
            coreset_bound(out.effective_eps, 0.0),
        )
    }
}

// ---------------------------------------------------------------- engine

/// The resident sharded ingest engine: `machines` shards of the
/// insertion-only coreset behind the value-hash router, batched ingest on
/// the shared worker pool, one merged snapshot at end of stream.  For
/// scenarios flagged `mid_snapshots` (churn-under-snapshot) a snapshot is
/// additionally taken after every batch, so the final verdict comes from
/// an engine that kept answering queries mid-burst.
///
/// The certified ε′ is the merged summary's own bookkeeping (ε widened by
/// ε/2 per merge generation, ⌈log₂ shards⌉ of them) — sharding shows up
/// in the bound's factor, and conformance checks it against the same
/// oracle as the single-stream pipeline.
struct EnginePipeline;

/// Batch size the adapter feeds the engine with (small enough that every
/// catalog scenario spans several batches).
pub(crate) const ENGINE_BATCH: usize = 16;

/// Builds and feeds the resident engine for one scenario — the **single
/// construction path** shared by the engine pipeline's verdict and the
/// query-conformance check ([`crate::query_violations`]), so both sides
/// judge the identical snapshot by construction rather than by two code
/// paths staying config-identical.
pub(crate) fn scenario_engine(sc: &Scenario) -> Engine<[f64; 2], L2> {
    let engine = Engine::new(L2, EngineConfig::new(sc.machines, sc.k, sc.z, sc.eps));
    for batch in sc.points.chunks(ENGINE_BATCH) {
        engine.ingest(batch);
        if sc.mid_snapshots {
            // Churn-under-snapshot: the query path must not disturb
            // ingest; only the last snapshot feeds the verdict.
            let _ = engine.snapshot();
        }
    }
    engine
}

impl Pipeline for EnginePipeline {
    fn name(&self) -> &'static str {
        "engine/sharded"
    }
    fn model(&self) -> Model {
        Model::Engine
    }
    fn run(&self, sc: &Scenario) -> Verdict {
        let snap = scenario_engine(sc).snapshot();
        verdict(
            self.name(),
            sc,
            &snap.centers,
            snap.coreset.len(),
            // Per-machine measure: worst shard, or the coordinator-side
            // merge transient, whichever peaked higher (the MPC
            // convention applied to the resident engine).
            snap.stats
                .shard_peak_words
                .max(snap.stats.merge_transient_words),
            0,
            coreset_bound(snap.effective_eps, 0.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{catalog, Tier};

    #[test]
    fn pipeline_names_are_unique_and_cover_models() {
        let ps = all_pipelines();
        assert!(ps.len() >= 7, "the catalog promises ≥ 7 pipelines");
        let mut names: Vec<_> = ps.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ps.len(), "duplicate pipeline name");
        for m in [Model::Offline, Model::Streaming, Model::Mpc, Model::Engine] {
            assert!(ps.iter().any(|p| p.model() == m), "no pipeline for {m:?}");
        }
    }

    #[test]
    fn identical_points_yield_zero_everywhere() {
        let sc = catalog(Tier::Smoke)
            .into_iter()
            .find(|s| s.name == "identical_points")
            .unwrap();
        for p in all_pipelines() {
            let v = p.run(&sc);
            assert_eq!(v.radius, 0.0, "{}: radius {}", v.pipeline, v.radius);
            assert!(v.uncovered <= sc.z, "{}", v.pipeline);
        }
    }

    #[test]
    fn budget_swallowing_scenario_is_zero_radius() {
        let sc = catalog(Tier::Smoke)
            .into_iter()
            .find(|s| s.name == "budget_swallows_all")
            .unwrap();
        for p in all_pipelines() {
            let v = p.run(&sc);
            assert_eq!(v.radius, 0.0, "{}: radius {}", v.pipeline, v.radius);
        }
    }

    #[test]
    fn measure_flags_missing_centers() {
        let pts = kcz_metric::unit_weighted(&[[0.0f64, 0.0], [1.0, 0.0]]);
        let (r, u) = measure(&pts, &[], 0);
        assert!(r.is_infinite());
        assert_eq!(u, 2);
        let (r, u) = measure(&pts, &[], 5);
        assert_eq!(r, 0.0);
        assert_eq!(u, 2);
    }
}
