//! Minimal markdown table printer for experiment output.

/// A markdown table accumulated row by row.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(width) {
                line.push_str(&format!(" {c:<w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('|');
        for w in &width {
            out.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &width));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let r = t.render();
        assert!(r.contains("| name   | value |"));
        assert!(r.contains("| longer | 22    |"));
        assert!(r.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
