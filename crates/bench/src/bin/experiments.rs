//! Experiment harness: regenerates the measured counterpart of every row
//! of the paper's Table 1 and of each lower-bound construction (the
//! paper's "figures").  See `EXPERIMENTS.md` for the index and for the
//! recorded outputs.
//!
//! Usage: `cargo run -p kcz-bench --release --bin experiments -- <id|all>
//! [--json <path>]` where `<id>` is one of: t1_mpc, t1_rround, t1_stream,
//! t1_dynamic, t1_sliding, f1_mbc, f2_lb_insertion, f5_lb_dynamic,
//! f6_lb_sliding, f8_quality, ablation, ext_dynamic.
//!
//! `--json <path>` additionally writes machine-readable per-run metrics
//! (wall time, rebuilds, peak words, coreset sizes, …) so successive PRs
//! can track a performance trajectory from committed `BENCH_*.json` files.

use kcz_bench::Table;
use kcz_coreset::validate::validate_coreset;
use kcz_coreset::{mbc_construction, mbc_size_bound, streaming_capacity};
use kcz_kcenter::charikar::{greedy_with, GreedyParams};
use kcz_kcenter::greedy;
use kcz_lowerbounds::{line_lb, DynamicLb, InsertionLb, SlidingLb};
use kcz_metric::{total_weight, unit_weighted, Weighted, L2};
use kcz_mpc::{ceccarello_one_round, one_round_randomized, r_round, two_round};
use kcz_streaming::baselines::{ceccarello_stream, mk_doubling};
use kcz_streaming::dynamic::paper_sparsity;
use kcz_streaming::{DynamicCoreset, InsertionOnlyCoreset, SlidingWindowCoreset};
use kcz_workloads::{
    churn_schedule, concentrated_partition, drifting_stream, gaussian_clusters, grid_clusters,
    random_partition, shuffled,
};
use std::collections::HashSet;

/// Buffered `println!`: experiments render into a `String` so the driver
/// can map them over the shared worker pool and still print the reports
/// in catalog order.
macro_rules! say {
    ($w:expr, $($arg:tt)*) => {{
        use std::fmt::Write as _;
        let _ = writeln!($w, $($arg)*);
    }};
}

/// An experiment renders its report into the provided buffer.
type Experiment = fn(&mut String);

/// Canonical experiment table: drives the CLI index, the execution plan
/// and the order of `--json` records (concurrent execution appends
/// records as experiments finish; `write_json` restores this order).
const EXPERIMENTS: [(&str, Experiment); 12] = [
    ("t1_mpc", t1_mpc),
    ("t1_rround", t1_rround),
    ("t1_stream", t1_stream),
    ("t1_dynamic", t1_dynamic),
    ("t1_sliding", t1_sliding),
    ("f1_mbc", f1_mbc),
    ("f2_lb_insertion", f2_lb_insertion),
    ("f5_lb_dynamic", f5_lb_dynamic),
    ("f6_lb_sliding", f6_lb_sliding),
    ("f8_quality", f8_quality),
    ("ablation", ablation),
    ("ext_dynamic", ext_dynamic),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            match it.next() {
                Some(p) => json_path = Some(p.clone()),
                None => {
                    eprintln!("missing value for --json");
                    std::process::exit(2);
                }
            }
        } else if which.is_some() {
            eprintln!("expected a single experiment id, got `{a}` after another id");
            std::process::exit(2);
        } else {
            which = Some(a.clone());
        }
    }
    let which = which.unwrap_or_else(|| "all".into());
    let t0 = std::time::Instant::now();
    let selected: Vec<(&'static str, Experiment)> = EXPERIMENTS
        .into_iter()
        .filter(|(name, _)| which == "all" || which == *name)
        .collect();
    if selected.is_empty() {
        eprintln!("unknown experiment `{which}`; see --help text in the module docs");
        std::process::exit(2);
    }
    // Map the selected experiments over the shared worker pool (each
    // renders into its own buffer; `scoped_map` preserves catalog order,
    // so stdout is byte-identical to a sequential run).  Per-experiment
    // wall times include pool contention when several run at once — pass
    // a single id for clean timing of one experiment.
    let outputs = kcz_engine::runtime::global().scoped_map(selected, |_, (name, f)| {
        let t = std::time::Instant::now();
        let mut w = String::new();
        f(&mut w);
        (name, w, t.elapsed())
    });
    for (name, body, elapsed) in outputs {
        print!("{body}");
        record_run(name, "total", elapsed.as_secs_f64() * 1e3, &[]);
    }
    eprintln!("\n(total experiment time: {:.1?})", t0.elapsed());
    if let Some(path) = json_path {
        if let Err(e) = write_json(&path) {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("(per-run metrics written to {path})");
    }
}

/// One machine-readable measurement: an experiment, a case label within
/// it, wall time, and named numeric metrics.
struct RunRecord {
    experiment: &'static str,
    case: String,
    wall_ms: f64,
    metrics: Vec<(&'static str, f64)>,
}

/// Collected measurements of this process (appended as experiments run,
/// drained by `write_json`).
static REPORT: std::sync::Mutex<Vec<RunRecord>> = std::sync::Mutex::new(Vec::new());

/// Appends one measurement to the report.
fn record_run(
    experiment: &'static str,
    case: impl Into<String>,
    wall_ms: f64,
    metrics: &[(&'static str, f64)],
) {
    REPORT.lock().expect("report lock").push(RunRecord {
        experiment,
        case: case.into(),
        wall_ms,
        metrics: metrics.to_vec(),
    });
}

/// Writes the report as JSON (hand-rolled: the workspace is offline and
/// carries no serde).  All metric values are finite, so plain `{}`
/// formatting yields valid JSON numbers.
fn write_json(path: &str) -> std::io::Result<()> {
    let esc = |s: &str| -> String {
        s.chars()
            .flat_map(|c| match c {
                '"' => "\\\"".chars().collect::<Vec<_>>(),
                '\\' => "\\\\".chars().collect(),
                c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                c => vec![c],
            })
            .collect()
    };
    let mut report = REPORT.lock().expect("report lock");
    // Concurrent experiments append their records as they finish; restore
    // the canonical order (stable, so records within one experiment keep
    // their run order and its "total" stays last).
    report.sort_by_key(|r| {
        EXPERIMENTS
            .iter()
            .position(|(n, _)| *n == r.experiment)
            .unwrap_or(usize::MAX)
    });
    let mut body = String::from("{\n  \"schema\": \"kcz-bench-experiments/v1\",\n  \"runs\": [\n");
    for (i, r) in report.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"experiment\": \"{}\", \"case\": \"{}\", \"wall_ms\": {:.3}",
            esc(r.experiment),
            esc(&r.case),
            r.wall_ms
        ));
        for (k, v) in &r.metrics {
            body.push_str(&format!(", \"{}\": {}", esc(k), v));
        }
        body.push_str(if i + 1 == report.len() { "}\n" } else { "},\n" });
    }
    body.push_str("  ]\n}\n");
    std::fs::write(path, body)
}

fn quality(coreset: &[Weighted<[f64; 2]>], direct_radius: f64, k: usize, z: u64) -> f64 {
    greedy(&L2, coreset, k, z).radius / direct_radius.max(1e-12)
}

/// T1-mpc: worker/coordinator storage and communication of the MPC
/// algorithms as the outlier count z grows (Table 1, MPC rows).
fn t1_mpc(w: &mut String) {
    say!(
        w,
        "\n## T1-mpc — MPC rows of Table 1 (m = 8 machines, k = 3, ε = 0.5, n ≈ 3200)\n"
    );
    let (k, eps, m) = (3usize, 0.5f64, 8usize);
    let params = GreedyParams::default();
    let mut t = Table::new(&[
        "z",
        "algorithm",
        "rounds",
        "worker[w]",
        "coord[w]",
        "comm[w]",
        "coreset",
        "quality",
    ]);
    for z in [8u64, 32, 128] {
        let inst = gaussian_clusters::<2>(k, 1000, 1.0, z as usize, 42 + z);
        let direct = greedy(&L2, &unit_weighted(&inst.points), k, z).radius;
        let adv = concentrated_partition(&inst.points, &inst.outlier_flags, m);
        let rnd = random_partition(&inst.points, m, 7);

        let t_run = std::time::Instant::now();
        let two = two_round(&L2, &adv, k, z, eps, &params);
        let t_two = t_run.elapsed();
        let t_run = std::time::Instant::now();
        let one = one_round_randomized(&L2, &rnd, k, z, eps, &params);
        let t_one = t_run.elapsed();
        let t_run = std::time::Instant::now();
        let base = ceccarello_one_round(&L2, &adv, k, z, eps, &params);
        let t_base = t_run.elapsed();
        for ((name, s), wall) in [
            ("two_round", &two.output.stats),
            ("one_round", &one.output.stats),
            ("baseline", &base.stats),
        ]
        .into_iter()
        .zip([t_two, t_one, t_base])
        {
            record_run(
                "t1_mpc",
                format!("z={z} {name}"),
                wall.as_secs_f64() * 1e3,
                &[
                    ("worker_words", s.worker_peak_words as f64),
                    ("coordinator_words", s.coordinator_peak_words as f64),
                    ("comm_words", s.comm_words as f64),
                    ("coreset_size", s.coreset_size as f64),
                ],
            );
        }
        for (name, s, q) in [
            (
                "2-round (here, adversarial)",
                &two.output.stats,
                quality(&two.output.coreset, direct, k, z),
            ),
            (
                "1-round (here, random)",
                &one.output.stats,
                quality(&one.output.coreset, direct, k, z),
            ),
            (
                "1-round CPP19 (adversarial)",
                &base.stats,
                quality(&base.coreset, direct, k, z),
            ),
        ] {
            t.row(vec![
                z.to_string(),
                name.into(),
                s.rounds.to_string(),
                s.worker_peak_words.to_string(),
                s.coordinator_peak_words.to_string(),
                s.comm_words.to_string(),
                s.coreset_size.to_string(),
                format!("{q:.3}"),
            ]);
        }
    }
    w.push_str(&t.render());
    say!(
        w,
        "\nShape check: the 2-round worker column must stay flat in z (log z"
    );
    say!(
        w,
        "vector term only) while the CPP19 baseline's comm/coordinator grow with z."
    );
}

/// T1-rround: the rounds-vs-memory trade-off (Table 1, R-round row).
fn t1_rround(w: &mut String) {
    say!(
        w,
        "\n## T1-rround — R-round trade-off (m = 16 machines, k = 2, ε = 0.2)\n"
    );
    let (k, z, eps, m) = (2usize, 16u64, 0.2f64, 16usize);
    let params = GreedyParams::default();
    let inst = gaussian_clusters::<2>(k, 1200, 1.0, z as usize, 5);
    let direct = greedy(&L2, &unit_weighted(&inst.points), k, z).radius;
    let parts = concentrated_partition(&inst.points, &inst.outlier_flags, m);
    let mut t = Table::new(&[
        "R",
        "eps_eff",
        "worker[w]",
        "coord[w]",
        "comm[w]",
        "coreset",
        "quality",
    ]);
    for rounds in [1usize, 2, 3, 4] {
        let res = r_round(&L2, &parts, k, z, eps, rounds, &params);
        t.row(vec![
            rounds.to_string(),
            format!("{:.3}", res.effective_eps),
            res.stats.worker_peak_words.to_string(),
            res.stats.coordinator_peak_words.to_string(),
            res.stats.comm_words.to_string(),
            res.stats.coreset_size.to_string(),
            format!("{:.3}", quality(&res.coreset, direct, k, z)),
        ]);
    }
    w.push_str(&t.render());
    say!(
        w,
        "\nShape check: coordinator words shrink as R grows; error grows as (1+ε)^R − 1."
    );
}

/// T1-stream: live space of Algorithm 3 vs the streaming baselines as ε
/// shrinks and z grows (Table 1, insertion-only rows).
fn t1_stream(w: &mut String) {
    say!(
        w,
        "\n## T1-stream — insertion-only rows of Table 1 (k = 2, n = 20000)\n"
    );
    let k = 2usize;
    let n = 20_000usize;
    let mut t = Table::new(&[
        "eps",
        "z",
        "ours peak[w]",
        "CPP19 peak[w]",
        "MK peak[w]",
        "ours q",
        "CPP19 q",
        "MK q",
    ]);
    for &eps in &[1.0f64, 0.5] {
        for &z in &[16u64, 64, 256] {
            let inst = gaussian_clusters::<2>(k, (n - z as usize) / k, 1.0, z as usize, 11 + z);
            let stream = shuffled(&inst.points, 3);
            let mut ours = InsertionOnlyCoreset::new(L2, k, z, eps);
            let mut cpp = ceccarello_stream(L2, k, z, eps);
            let mut mk = mk_doubling(L2, k, z);
            let t_run = std::time::Instant::now();
            for p in &stream {
                ours.insert(*p);
            }
            record_run(
                "t1_stream",
                format!("eps={eps} z={z}"),
                t_run.elapsed().as_secs_f64() * 1e3,
                &[
                    ("points", stream.len() as f64),
                    ("peak_words", ours.peak_words() as f64),
                    ("rebuilds", ours.rebuilds() as f64),
                    ("coreset_size", ours.coreset().len() as f64),
                ],
            );
            for p in &stream {
                cpp.insert(*p);
                mk.insert(*p);
            }
            let direct = greedy(&L2, &unit_weighted(&inst.points), k, z).radius;
            t.row(vec![
                format!("{eps}"),
                z.to_string(),
                ours.peak_words().to_string(),
                cpp.peak_words().to_string(),
                mk.peak_words().to_string(),
                format!("{:.3}", quality(ours.coreset(), direct, k, z)),
                format!("{:.3}", quality(cpp.coreset(), direct, k, z)),
                format!("{:.3}", quality(mk.coreset(), direct, k, z)),
            ]);
        }
    }
    w.push_str(&t.render());
    say!(
        w,
        "\nShape check: ours grows like k/ε^d + z; CPP19 like (k+z)/ε^d (watch the"
    );
    say!(
        w,
        "z sweep at fixed ε); MK stays O(k+z) small but pays in quality: an O(1)"
    );
    say!(
        w,
        "band at best, and when its summary has ≤ k+z points the reported radius"
    );
    say!(
        w,
        "can collapse to 0 — exactly the Ω(k+z) degeneracy of Lemma 15."
    );
}

/// T1-dynamic: sketch space vs log Δ and z (Table 1, fully dynamic row).
fn t1_dynamic(w: &mut String) {
    say!(
        w,
        "\n## T1-dynamic — fully dynamic row of Table 1 (k = 2, ε = 1)\n"
    );
    let (k, eps) = (2usize, 1.0f64);
    let mut t = Table::new(&[
        "log Δ",
        "z",
        "s",
        "space[w]",
        "level used",
        "coreset",
        "quality vs live",
    ]);
    for &side_bits in &[8u32, 12, 16, 20] {
        for &z in &[4u64, 16] {
            let s = paper_sparsity(k, z, eps, 2) as usize;
            let mut sketch = DynamicCoreset::<2>::new(side_bits, s, 0.01, 21);
            let base =
                grid_clusters::<2>(side_bits, k, 300, (1u64 << side_bits) / 64, z as usize, 9);
            let ops = churn_schedule(&base, 500, 13);
            let mut live: HashSet<[u64; 2]> = HashSet::new();
            for op in &ops {
                if op.insert {
                    sketch.insert(&op.point);
                    live.insert(op.point);
                } else {
                    sketch.delete(&op.point);
                    live.remove(&op.point);
                }
            }
            let (coreset, level) = sketch.coreset().expect("recovery");
            let live_pts: Vec<[f64; 2]> = live.iter().map(|p| [p[0] as f64, p[1] as f64]).collect();
            let direct = greedy(&L2, &unit_weighted(&live_pts), k, z).radius;
            t.row(vec![
                side_bits.to_string(),
                z.to_string(),
                s.to_string(),
                sketch.space_words().to_string(),
                level.to_string(),
                coreset.len().to_string(),
                format!("{:.3}", quality(&coreset, direct, k, z)),
            ]);
        }
    }
    w.push_str(&t.render());
    say!(
        w,
        "\nShape check: space grows roughly linearly in log Δ at fixed (k, z, ε)"
    );
    say!(w, "(the paper's bound is (k/ε^d + z)·polylog(kΔ/εδ)).");
}

/// T1-sliding: sliding-window storage vs window, z and guesses.
fn t1_sliding(w: &mut String) {
    say!(w, "\n## T1-sliding — sliding-window rows (k = 2, ε = 1)\n");
    let (k, eps) = (2usize, 1.0f64);
    let mut t = Table::new(&[
        "W",
        "z",
        "guesses",
        "peak[w]",
        "coreset",
        "quality vs window",
    ]);
    for &window in &[2_000u64, 8_000] {
        for &z in &[2u64, 8] {
            let n = (window * 3) as usize;
            let stream = drifting_stream(n, k, 1.0, 0.05, 0.0, 17);
            let mut alg = SlidingWindowCoreset::new(L2, k, z, eps, window, 1.0, 4096.0);
            let mut q_last = None;
            for p in &stream {
                alg.insert(*p);
                q_last = None;
                if alg.time() == n as u64 {
                    q_last = alg.query();
                }
            }
            let q = q_last.expect("final window query");
            let lo = n - window as usize;
            let win = unit_weighted(&stream[lo..]);
            let direct = greedy(&L2, &win, k, z).radius;
            t.row(vec![
                window.to_string(),
                z.to_string(),
                alg.num_guesses().to_string(),
                alg.peak_words().to_string(),
                q.coreset.len().to_string(),
                format!("{:.3}", quality(&q.coreset, direct, k, z)),
            ]);
        }
    }
    w.push_str(&t.render());
    say!(
        w,
        "\nShape check: peak grows with z (the z+1 points per mini-ball) and with"
    );
    say!(
        w,
        "the number of guesses (log σ), matching O((kz/ε^d) log σ)."
    );
}

/// F1: mini-ball covering sizes vs the Lemma 7 bound (paper Figure 1).
fn f1_mbc(w: &mut String) {
    say!(
        w,
        "\n## F1-mbc — MBCConstruction sizes vs Lemma 7 (k = 3, z = 20, n = 6020)\n"
    );
    let (k, z) = (3usize, 20u64);
    let inst = gaussian_clusters::<2>(k, 2000, 1.0, z as usize, 23);
    let weighted = unit_weighted(&inst.points);
    let mut t = Table::new(&[
        "eps",
        "|MBC|",
        "bound k(12/ε)^d+z",
        "compression",
        "covering radius",
        "ε·r/3",
    ]);
    for &eps in &[0.25f64, 0.5, 1.0] {
        let t_run = std::time::Instant::now();
        let mbc = mbc_construction(&L2, &weighted, k, z, eps);
        record_run(
            "f1_mbc",
            format!("eps={eps}"),
            t_run.elapsed().as_secs_f64() * 1e3,
            &[
                ("input", weighted.len() as f64),
                ("coreset_size", mbc.len() as f64),
            ],
        );
        let cr = kcz_coreset::validate::covering_radius(&L2, &weighted, &mbc.reps).unwrap();
        t.row(vec![
            format!("{eps}"),
            mbc.len().to_string(),
            mbc_size_bound(k, z, eps, 2).to_string(),
            format!("{:.1}x", inst.points.len() as f64 / mbc.len() as f64),
            format!("{cr:.3}"),
            format!("{:.3}", eps * mbc.greedy_radius / 3.0),
        ]);
    }
    w.push_str(&t.render());
    say!(
        w,
        "\nShape check: |MBC| well under the bound, halving ε roughly 4x-es the size (d = 2)."
    );
}

/// F2: the insertion-only lower bounds driven against Algorithm 3.
fn f2_lb_insertion(w: &mut String) {
    say!(
        w,
        "\n## F2-lb-insertion — Theorem 11 constructions vs Algorithm 3\n"
    );
    let mut t = Table::new(&[
        "construction",
        "k",
        "z",
        "eps",
        "forced points",
        "alg stored",
        "retained?",
    ]);
    for (k, z, eps) in [(6usize, 3usize, 1.0 / 16.0), (8, 6, 1.0 / 8.0)] {
        let lb = InsertionLb::<2>::new(k, z, eps);
        let mut alg = InsertionOnlyCoreset::new(L2, k, z as u64, lb.eps);
        for p in &lb.points {
            alg.insert(*p);
        }
        let stored: HashSet<[u64; 2]> = alg
            .coreset()
            .iter()
            .map(|w| [w.point[0].to_bits(), w.point[1].to_bits()])
            .collect();
        let retained = lb.points[..lb.n_cluster_points()]
            .iter()
            .all(|p| stored.contains(&[p[0].to_bits(), p[1].to_bits()]));
        t.row(vec![
            "Lemma 12 grid-clusters".into(),
            k.to_string(),
            z.to_string(),
            format!("{:.4}", lb.eps),
            lb.n_cluster_points().to_string(),
            alg.coreset().len().to_string(),
            retained.to_string(),
        ]);
    }
    for (k, z) in [(3usize, 4usize), (5, 10)] {
        let (pts, _) = line_lb(k, z);
        let mut alg = InsertionOnlyCoreset::new(kcz_metric::Line, k, z as u64, 0.9);
        for p in &pts {
            alg.insert(*p);
        }
        t.row(vec![
            "Lemma 15 line".into(),
            k.to_string(),
            z.to_string(),
            "0.9".into(),
            (k + z).to_string(),
            alg.coreset().len().to_string(),
            (alg.coreset().len() == k + z).to_string(),
        ]);
    }
    w.push_str(&t.render());
    say!(
        w,
        "\nShape check: `alg stored` ≥ `forced points` and every forced point retained —"
    );
    say!(
        w,
        "the algorithm meets the Ω(k/ε^d + z) bound exactly where the adversary aims."
    );
}

/// F5: dynamic sketch space scaling on the Theorem 28 construction.
fn f5_lb_dynamic(w: &mut String) {
    say!(
        w,
        "\n## F5-lb-dynamic — Theorem 28 construction vs Algorithm 5\n"
    );
    let mut t = Table::new(&[
        "log Δ",
        "construction pts",
        "groups g",
        "sketch space[w]",
        "recoverable at every scale",
    ]);
    for &side_bits in &[12u32, 16, 20] {
        let lb = DynamicLb::new(4, 2, 0.25, side_bits);
        let mut sketch = DynamicCoreset::<2>::new(side_bits, 128, 0.01, 31);
        let mut live: HashSet<[u64; 2]> = HashSet::new();
        for p in lb.all_points() {
            sketch.insert(&p);
            live.insert(p);
        }
        let mut ok = true;
        for m_star in (1..=lb.g).rev() {
            for p in lb.deletion_schedule(m_star) {
                if live.remove(&p) {
                    sketch.delete(&p);
                }
            }
            match sketch.coreset() {
                Ok((c, _)) => ok &= total_weight(&c) == live.len() as u64,
                Err(_) => ok = false,
            }
        }
        t.row(vec![
            side_bits.to_string(),
            lb.n_points().to_string(),
            lb.g.to_string(),
            sketch.space_words().to_string(),
            ok.to_string(),
        ]);
    }
    w.push_str(&t.render());
    say!(
        w,
        "\nShape check: sketch space grows with log Δ (the lower bound says it must),"
    );
    say!(
        w,
        "and the sketch answers correctly after the adversary deletes down to any scale."
    );
}

/// F6: sliding-window storage on the Theorem 30 construction.
fn f6_lb_sliding(w: &mut String) {
    say!(
        w,
        "\n## F6-lb-sliding — Theorem 30 construction vs the sliding-window structure\n"
    );
    let mut t = Table::new(&[
        "k",
        "z",
        "g (log σ)",
        "target kzs·g",
        "alg stored",
        "stored/target",
    ]);
    for (k, z, g) in [
        (5usize, 3usize, 1usize),
        (5, 3, 2),
        (5, 3, 3),
        (5, 6, 2),
        (7, 3, 2),
    ] {
        let eps = 1.0 / 24.0;
        let lb = SlidingLb::new(k, z, eps, g);
        let mut alg = SlidingWindowCoreset::new(L2, k, z as u64, eps, lb.window_hint(), 0.5, 1e6);
        for p in &lb.arrivals {
            alg.insert(*p);
        }
        let stored = alg.stored_points();
        t.row(vec![
            k.to_string(),
            z.to_string(),
            g.to_string(),
            lb.target_size().to_string(),
            stored.to_string(),
            format!("{:.2}", stored as f64 / lb.target_size() as f64),
        ]);
    }
    w.push_str(&t.render());
    say!(
        w,
        "\nShape check: stored grows with each of k, z and g — the three factors of"
    );
    say!(
        w,
        "the Ω((kz/ε^d)·log σ) lower bound (ratios stay within a constant band)."
    );
}

/// F8: Definition-1 validation for every algorithm on one instance.
fn f8_quality(w: &mut String) {
    say!(
        w,
        "\n## F8-quality — Definition 1 checks for every algorithm (k = 2, z = 5, ε = 0.4)\n"
    );
    let (k, z, eps) = (2usize, 5u64, 0.4f64);
    let inst = gaussian_clusters::<2>(k, 40, 1.0, z as usize, 51);
    let weighted = unit_weighted(&inst.points);
    let params = GreedyParams::default();
    let mut t = Table::new(&[
        "algorithm",
        "eps_eff",
        "opt(P)",
        "opt(P*)",
        "ratio",
        "cond1",
        "cond2",
        "weight",
    ]);
    let mut record = |name: &str, coreset: &[Weighted<[f64; 2]>], eps_eff: f64| {
        let r = validate_coreset(&L2, &weighted, coreset, k, z, eps_eff);
        t.row(vec![
            name.into(),
            format!("{eps_eff:.2}"),
            format!("{:.3}", r.opt_original),
            format!("{:.3}", r.opt_coreset),
            format!("{:.3}", r.ratio),
            r.condition1.to_string(),
            r.condition2.to_string(),
            r.weight_preserved.to_string(),
        ]);
    };

    let mbc = mbc_construction(&L2, &weighted, k, z, eps);
    record("MBCConstruction (Alg 1)", &mbc.reps, eps);

    let adv = concentrated_partition(&inst.points, &inst.outlier_flags, 4);
    let two = two_round(&L2, &adv, k, z, eps, &params);
    record(
        "MPC 2-round (Alg 2)",
        &two.output.coreset,
        two.output.effective_eps,
    );

    let rnd = random_partition(&inst.points, 4, 3);
    let one = one_round_randomized(&L2, &rnd, k, z, eps, &params);
    record(
        "MPC 1-round (Alg 6)",
        &one.output.coreset,
        one.output.effective_eps,
    );

    let rr = r_round(&L2, &adv, k, z, eps, 2, &params);
    record("MPC R-round (Alg 7, R=2)", &rr.coreset, rr.effective_eps);

    let base = ceccarello_one_round(&L2, &adv, k, z, eps, &params);
    record("MPC CPP19 baseline", &base.coreset, base.effective_eps);

    let mut stream = InsertionOnlyCoreset::new(L2, k, z, eps);
    for p in shuffled(&inst.points, 1) {
        stream.insert(p);
    }
    record("Streaming (Alg 3)", stream.coreset(), eps);

    w.push_str(&t.render());
    say!(w, "\nShape check: every row reports cond1 = cond2 = weight = true and a ratio in [1−ε_eff, 1+ε_eff].");
}

/// Ablations of the design choices called out in DESIGN.md.
fn ablation(w: &mut String) {
    say!(w, "\n## Ablation — design choices\n");

    // (a) Greedy candidate sets: exact pairwise vs geometric grid.
    let inst = gaussian_clusters::<2>(3, 180, 1.0, 8, 61);
    let weighted = unit_weighted(&inst.points);
    let mut t = Table::new(&["greedy variant", "radius", "time"]);
    let exact_params = GreedyParams {
        exact_candidates_max_n: usize::MAX,
        ..Default::default()
    };
    let geo_params = GreedyParams {
        exact_candidates_max_n: 0,
        ..Default::default()
    };
    for (name, p) in [
        ("exact pairwise candidates", &exact_params),
        ("geometric grid (η=1%)", &geo_params),
    ] {
        let t0 = std::time::Instant::now();
        let sol = greedy_with(&L2, &weighted, 3, 8, p);
        t.row(vec![
            name.into(),
            format!("{:.4}", sol.radius),
            format!("{:.1?}", t0.elapsed()),
        ]);
    }
    w.push_str(&t.render());

    // (b) Streaming capacity: the paper's k(16/ε)^d + z vs tighter/looser.
    say!(w, "");
    let (k, z, eps) = (2usize, 40u64, 0.5f64);
    let inst2 = gaussian_clusters::<2>(k, 4000, 1.0, z as usize, 71);
    let stream = shuffled(&inst2.points, 2);
    let direct = greedy(&L2, &unit_weighted(&inst2.points), k, z).radius;
    let mut t = Table::new(&["capacity policy", "capacity", "peak[w]", "quality"]);
    let paper_cap = streaming_capacity(k, z, eps, 2);
    for (name, cap) in [
        ("paper: k(16/ε)^d + z", paper_cap),
        (
            "tight: k(8/ε)^d + z",
            kcz_coreset::bounds::packing_bound(k, z, 8.0 / eps, 2),
        ),
        ("loose: 4x paper", paper_cap * 4),
    ] {
        let mut alg = kcz_streaming::DoublingCoreset::new(L2, k, z, eps / 2.0, cap);
        for p in &stream {
            alg.insert(*p);
        }
        t.row(vec![
            name.into(),
            cap.to_string(),
            alg.peak_words().to_string(),
            format!("{:.3}", quality(alg.coreset(), direct, k, z)),
        ]);
    }
    w.push_str(&t.render());
    say!(
        w,
        "\nShape check: tighter capacity saves space; quality holds while capacity ≥ the"
    );
    say!(
        w,
        "packing bound at the data's effective doubling dimension (Lemma 6's slack)."
    );

    // (c) Mini-ball partition: generic O(n²) sweep vs the grid-indexed
    // sweep (identical outputs by construction; see kcz-coreset::fast).
    say!(w, "");
    let big = gaussian_clusters::<2>(4, 12_000, 1.0, 50, 81);
    let weighted_big = unit_weighted(&big.points);
    let delta = 0.5;
    let mut t = Table::new(&["partition variant", "n", "reps", "time"]);
    let t0 = std::time::Instant::now();
    let naive = kcz_coreset::update_coreset(&L2, &weighted_big, delta);
    let t_naive = t0.elapsed();
    let t0 = std::time::Instant::now();
    let fast = kcz_coreset::update_coreset_grid(&weighted_big, delta);
    let t_fast = t0.elapsed();
    assert_eq!(naive.len(), fast.len(), "grid path must match generic path");
    for (case, wall, reps) in [
        ("partition_generic", t_naive, naive.len()),
        ("partition_grid", t_fast, fast.len()),
    ] {
        record_run(
            "ablation",
            case,
            wall.as_secs_f64() * 1e3,
            &[("input", weighted_big.len() as f64), ("reps", reps as f64)],
        );
    }
    t.row(vec![
        "generic O(n²) sweep".into(),
        weighted_big.len().to_string(),
        naive.len().to_string(),
        format!("{t_naive:.1?}"),
    ]);
    t.row(vec![
        "grid-indexed sweep".into(),
        weighted_big.len().to_string(),
        fast.len().to_string(),
        format!("{t_fast:.1?}"),
    ]);
    w.push_str(&t.render());
}

/// Extension: the paper's Section-5 remarks made executable — the
/// deterministic Vandermonde dynamic sketch vs the randomized one, and
/// the fully dynamic (3+ε)-approximate solver built on the sketch.
fn ext_dynamic(w: &mut String) {
    use kcz_streaming::{DeterministicDynamicCoreset, DynamicKCenter};
    say!(
        w,
        "\n## EXT-dynamic — deterministic variant and the dynamic solver (Section 5 remarks)\n"
    );
    let side_bits = 10u32;
    let s = 64usize;
    let base = grid_clusters::<2>(side_bits, 2, 200, 16, 8, 3);
    let ops = churn_schedule(&base, 400, 7);

    let mut t = Table::new(&[
        "variant",
        "space[w]",
        "update time/op",
        "query time",
        "coreset",
        "exact?",
    ]);
    // Randomized (Algorithm 5 as published).
    let mut rnd = DynamicCoreset::<2>::new(side_bits, s, 0.01, 5);
    let t0 = std::time::Instant::now();
    for op in &ops {
        if op.insert {
            rnd.insert(&op.point);
        } else {
            rnd.delete(&op.point);
        }
    }
    let upd_rnd = t0.elapsed() / ops.len() as u32;
    let t0 = std::time::Instant::now();
    let (c_rnd, _) = rnd.coreset().expect("randomized recovery");
    let q_rnd = t0.elapsed();
    t.row(vec![
        "randomized (Alg 5)".into(),
        rnd.space_words().to_string(),
        format!("{upd_rnd:.1?}"),
        format!("{q_rnd:.1?}"),
        c_rnd.len().to_string(),
        "w.h.p.".into(),
    ]);
    // Deterministic (Vandermonde syndromes + Prony decoding).
    let mut det = DeterministicDynamicCoreset::<2>::new(side_bits, s);
    let t0 = std::time::Instant::now();
    for op in &ops {
        if op.insert {
            det.insert(&op.point);
        } else {
            det.delete(&op.point);
        }
    }
    let upd_det = t0.elapsed() / ops.len() as u32;
    let t0 = std::time::Instant::now();
    let (c_det, _) = det.coreset().expect("deterministic recovery");
    let q_det = t0.elapsed();
    t.row(vec![
        "deterministic (Vandermonde)".into(),
        det.space_words().to_string(),
        format!("{upd_det:.1?}"),
        format!("{q_det:.1?}"),
        c_det.len().to_string(),
        "certain".into(),
    ]);
    w.push_str(&t.render());
    say!(
        w,
        "\nTrade-off: the deterministic sketch stores only 2s field elements per level"
    );
    say!(
        w,
        "(no hash rows), but pays an O(U·s) Chien search per query — usable only for"
    );
    say!(
        w,
        "small universes, exactly the caveat the paper's Section 5 discussion leaves open."
    );

    // Dynamic (3+ε)-approximate solver with fast updates.
    say!(w, "");
    let (k, z, eps) = (2usize, 8u64, 1.0f64);
    let mut solver = DynamicKCenter::<2>::new(side_bits, k, z, eps, 0.01, 9);
    let mut live: HashSet<[u64; 2]> = HashSet::new();
    let mut t = Table::new(&[
        "after ops",
        "live",
        "solver radius",
        "direct greedy",
        "ratio",
    ]);
    for (i, op) in ops.iter().enumerate() {
        if op.insert {
            solver.insert(&op.point);
            live.insert(op.point);
        } else {
            solver.delete(&op.point);
            live.remove(&op.point);
        }
        if (i + 1) % (ops.len() / 4) == 0 {
            let sol = solver.solve().expect("solve");
            let pts: Vec<[f64; 2]> = live.iter().map(|p| [p[0] as f64, p[1] as f64]).collect();
            let direct = greedy(&L2, &unit_weighted(&pts), k, z).radius;
            t.row(vec![
                (i + 1).to_string(),
                live.len().to_string(),
                format!("{:.2}", sol.radius),
                format!("{direct:.2}"),
                format!("{:.3}", sol.radius / direct.max(1e-12)),
            ]);
        }
    }
    w.push_str(&t.render());
    say!(
        w,
        "\nThe solver's update cost is the sketch update (independent of the live count);"
    );
    say!(
        w,
        "its answers track the direct greedy within the 3(1+O(ε)) band — the paper's"
    );
    say!(
        w,
        "'fully dynamic k-center with outliers with fast update time' corollary."
    );
}
