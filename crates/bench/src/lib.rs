//! Shared helpers for the experiment harness and the Criterion benches.
//!
//! The binary `experiments` (in `src/bin/`) regenerates the measured
//! counterpart of every Table-1 row and every lower-bound figure; the
//! benches in `benches/` measure throughput of the individual primitives.
//! See `EXPERIMENTS.md` at the workspace root for the index.

#![warn(missing_docs)]

pub mod table;

pub use table::Table;
