//! T1-dynamic bench: per-update and per-query cost of the fully dynamic
//! sketch (Algorithm 5) as the universe grows (Table 1, fully dynamic row).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kcz_streaming::DynamicCoreset;
use kcz_workloads::{churn_schedule, grid_clusters};
use std::hint::black_box;

fn bench_dynamic(c: &mut Criterion) {
    let mut g = c.benchmark_group("dynamic_update");
    g.sample_size(10);
    for &side_bits in &[10u32, 16, 22] {
        let base = grid_clusters::<2>(side_bits, 2, 100, (1u64 << side_bits) / 32, 8, 5);
        let ops = churn_schedule(&base, 200, 7);
        g.throughput(Throughput::Elements(ops.len() as u64));
        g.bench_with_input(BenchmarkId::new("updates", side_bits), &ops, |b, ops| {
            b.iter(|| {
                let mut sk = DynamicCoreset::<2>::new(side_bits, 64, 0.01, 11);
                for op in ops {
                    if op.insert {
                        sk.insert(&op.point);
                    } else {
                        sk.delete(&op.point);
                    }
                }
                black_box(sk.net_updates())
            });
        });
        // Query cost on a populated sketch.
        let mut sk = DynamicCoreset::<2>::new(side_bits, 64, 0.01, 11);
        for op in &ops {
            if op.insert {
                sk.insert(&op.point);
            } else {
                sk.delete(&op.point);
            }
        }
        g.bench_with_input(BenchmarkId::new("query", side_bits), &sk, |b, sk| {
            b.iter(|| black_box(sk.coreset().map(|(c, l)| (c.len(), l))));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dynamic);
criterion_main!(benches);
