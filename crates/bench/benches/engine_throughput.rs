//! `engine_throughput` — batched sharded ingest ([`kcz_engine::Engine`])
//! vs the single-stream insertion-only coreset at n = 10⁶, shards ∈
//! {1, 4, 8}.  Measured medians are recorded in `BENCH_engine.json` at
//! the repo root.
//!
//! Where the sharded win comes from: on a multi-core host the engine
//! additionally parallelizes the per-shard insert loops over the worker
//! pool, but the effect measured here is *algorithmic* and survives a
//! single core — the value-hash router partitions the representative set
//! across shards, so an absorb query scans only the owning shard's
//! representatives (≈ 1/s of the single-stream scan).  The workload
//! makes that scan the dominant cost, the regime the resident engine
//! exists for: heavy arrival traffic over a large site population
//! (duplicate-rich sensor streams, the catalog's hot-shard theme).
//!
//! The bench also carries the allocation-regression assert for the
//! absorb path (see [`absorb_path_is_allocation_free`]): a steady-state
//! insert that lands on an existing representative must not allocate —
//! the guard for the fix that removed the per-call clone of every
//! representative from the summary's pairwise-distance scan.  The same
//! assert covers the *instrumented* absorb (span + counter recording
//! through a live registry), and
//! [`instrumentation_overhead_guardrail`] pins the metrics layer's
//! ingest cost to < 3% of the uninstrumented median.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kcz_engine::{Engine, EngineConfig, SolverMode};
use kcz_metric::{Precision, L2};
use kcz_obs::{MetricsHandle, Registry};
use kcz_streaming::InsertionOnlyCoreset;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

/// Allocation counter wrapped around the system allocator, so the bench
/// can assert the absorb path performs zero allocations at steady state.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const N: usize = 1_000_000;
/// Distinct sites.  Below the streaming capacity for (k, z, ε) below, so
/// the summary holds one representative per site and never re-clusters —
/// the absorb scan over ~`SITES` representatives is the steady state.
const SITES: usize = 1_500;
const K: usize = 8;
const Z: u64 = 32;
const EPS: f64 = 1.0;

/// Site `i` of the 50 × 30 grid (spacing ≫ the absorb threshold, so
/// distinct sites never merge into one representative).
fn site_point(i: usize) -> [f64; 2] {
    [(i % 50) as f64 * 1e4, (i / 50) as f64 * 1e4]
}

/// `n` arrivals over the `SITES` grid sites in seeded pseudo-random order.
fn arrivals(n: usize) -> Vec<[f64; 2]> {
    let mut s = 0x0E16_5EED_u64;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            site_point((s >> 16) as usize % SITES)
        })
        .collect()
}

/// Regression guard: once a representative exists for a site, inserting
/// that site again (the absorb path: one columnar find-within scan over
/// the mirror + a saturating weight bump + the words recount) must not
/// allocate — in either lane precision.  The warm-up misses build the
/// mirror (lazily on the first insert, appended per miss), so the
/// counted steady state touches only stack state.
fn absorb_path_is_allocation_free(stream: &[[f64; 2]]) {
    for precision in [Precision::F64, Precision::F32] {
        let mut alg = InsertionOnlyCoreset::with_precision(L2, K, Z, EPS, precision);
        // Deterministic warm-up: one representative per site, so every
        // stream arrival below lands on the absorb path.
        for site in 0..SITES {
            alg.insert(site_point(site));
        }
        let reps_before = alg.coreset().len();
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for p in &stream[..4 * SITES] {
            alg.insert(*p);
        }
        let allocations = ALLOCATIONS.load(Ordering::Relaxed) - before;
        assert_eq!(
            alg.coreset().len(),
            reps_before,
            "warm-up must have established every representative"
        );
        assert_eq!(
            allocations, 0,
            "absorb-path inserts ({precision}) allocated {allocations} times \
             (the scan must borrow the mirror, not rebuild or clone it)"
        );
        println!(
            "engine_throughput/absorb_alloc_regression[{precision}]: \
             0 allocations over {} absorbs — ok",
            4 * SITES
        );
    }
}

/// The instrumented absorb path must be just as allocation-free: one
/// span (two monotonic clock reads + one atomic histogram record) and
/// one counter bump per insert touch only pre-registered atomics.
/// Registration happens once up front — steady-state recording never
/// takes the registry lock or names a metric.
fn instrumented_absorb_is_allocation_free(stream: &[[f64; 2]]) {
    let registry = Registry::new();
    let metrics = MetricsHandle::new(&registry);
    // Pre-registered instruments: the only allocating step.
    let span = metrics.stage("bench.absorb.span_ns");
    let absorbs = metrics.counter("bench.absorb.inserts");
    let mut alg = InsertionOnlyCoreset::new(L2, K, Z, EPS);
    for site in 0..SITES {
        alg.insert(site_point(site));
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for p in &stream[..4 * SITES] {
        let t = span.start();
        alg.insert(*p);
        t.finish();
        absorbs.incr();
    }
    let allocations = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocations, 0,
        "instrumented absorb-path inserts allocated {allocations} times \
         (recording must touch only pre-registered atomics)"
    );
    let hist = registry
        .histogram_snapshot("bench.absorb.span_ns")
        .expect("span registered");
    assert_eq!(hist.count(), (4 * SITES) as u64);
    assert_eq!(
        registry.counter_value("bench.absorb.inserts"),
        Some((4 * SITES) as u64)
    );
    println!(
        "engine_throughput/instrumented_absorb_alloc_regression: \
         0 allocations over {} recorded absorbs — ok",
        4 * SITES
    );
}

/// Overhead guardrail for the metrics layer: a fully instrumented
/// engine (live registry, monotonic clock, per-batch spans) must ingest
/// the stream within 3% of the uninstrumented engine's median.  Runs
/// are interleaved so ambient drift hits both sides equally.
fn instrumentation_overhead_guardrail(stream: &[[f64; 2]]) {
    let run = |metrics: &MetricsHandle| {
        let t0 = std::time::Instant::now();
        let engine = Engine::new(L2, EngineConfig::new(8, K, Z, EPS)).with_metrics(metrics);
        for batch in stream.chunks(4096) {
            engine.ingest(batch);
        }
        black_box(engine.snapshot().coreset.len());
        t0.elapsed().as_secs_f64()
    };
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    const REPEATS: usize = 7;
    let registry = Registry::new();
    let live = MetricsHandle::new(&registry);
    let off = MetricsHandle::disabled();
    let (mut base, mut inst) = (Vec::new(), Vec::new());
    run(&off); // one unmeasured warm-up for the allocator and the pool
    for _ in 0..REPEATS {
        base.push(run(&off));
        inst.push(run(&live));
    }
    let (b, i) = (median(base), median(inst));
    println!(
        "engine_throughput/instrumentation_overhead: uninstrumented median \
         {:.1} ms, instrumented {:.1} ms ({:+.2}%)",
        b * 1e3,
        i * 1e3,
        (i / b - 1.0) * 100.0
    );
    assert!(
        i <= b * 1.03,
        "instrumented ingest median {:.3} ms exceeds 3% over the \
         uninstrumented {:.3} ms",
        i * 1e3,
        b * 1e3
    );
}

fn bench_engine(c: &mut Criterion) {
    let stream = arrivals(N);
    absorb_path_is_allocation_free(&stream);
    instrumented_absorb_is_allocation_free(&stream);
    instrumentation_overhead_guardrail(&stream);

    let mut g = c.benchmark_group("engine_ingest");
    g.sample_size(5);
    g.throughput(Throughput::Elements(N as u64));

    g.bench_with_input(BenchmarkId::new("single_stream", N), &stream, |b, s| {
        b.iter(|| {
            let mut alg = InsertionOnlyCoreset::new(L2, K, Z, EPS);
            for p in s {
                alg.insert(*p);
            }
            black_box(alg.coreset().len())
        });
    });

    for shards in [1usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("sharded", shards), &stream, |b, s| {
            b.iter(|| {
                let engine = Engine::new(L2, EngineConfig::new(shards, K, Z, EPS));
                for batch in s.chunks(4096) {
                    engine.ingest(batch);
                }
                black_box(engine.snapshot().coreset.len())
            });
        });
    }
    // The instrumented engine at the reference shard count: same
    // ingest, plus per-batch spans and counters through a live
    // registry — its median rides next to `sharded/8` in
    // BENCH_engine.json as the recorded overhead evidence.
    g.bench_with_input(
        BenchmarkId::new("sharded_instrumented", 8),
        &stream,
        |b, s| {
            let registry = Registry::new();
            let metrics = MetricsHandle::new(&registry);
            b.iter(|| {
                let engine =
                    Engine::new(L2, EngineConfig::new(8, K, Z, EPS)).with_metrics(&metrics);
                for batch in s.chunks(4096) {
                    engine.ingest(batch);
                }
                black_box(engine.snapshot().coreset.len())
            });
        },
    );
    // The f32 absorb mirror at the same shard counts: published points
    // stay f64, only the absorb scan runs on f32 lanes.
    for shards in [1usize, 8] {
        g.bench_with_input(BenchmarkId::new("sharded_f32", shards), &stream, |b, s| {
            b.iter(|| {
                let cfg = EngineConfig::new(shards, K, Z, EPS).with_precision(Precision::F32);
                let engine = Engine::new(L2, cfg);
                for batch in s.chunks(4096) {
                    engine.ingest(batch);
                }
                black_box(engine.snapshot().coreset.len())
            });
        });
    }
    g.finish();

    // Republish cadence: one shard touched between publishes — the
    // resident serving steady state.  Incremental re-merges only the
    // dirty root-to-leaf path of the merge tree (≤ ⌈log₂ shards⌉ pair
    // merges instead of shards − 1) and clones only the dirty shard;
    // full rebuilds the whole tree every publish.  All modes produce
    // bit-identical snapshots; `incremental` runs the default
    // delta-aware solver (feasibility probes answered from certified
    // cached verdicts), `incremental_cold` isolates its win by forcing
    // a from-scratch solve on the same re-merge path.
    let mut g = c.benchmark_group("engine_republish");
    g.sample_size(10);
    for (label, solver, full) in [
        ("incremental", SolverMode::Delta, false),
        ("incremental_cold", SolverMode::Cold, false),
        ("full", SolverMode::Delta, true),
    ] {
        g.bench_function(BenchmarkId::new(label, 8), |b| {
            let mut cfg = EngineConfig::new(8, K, Z, EPS).with_solver(solver);
            if full {
                cfg = cfg.full_republish();
            }
            let engine = Engine::new(L2, cfg);
            for batch in stream[..200_000].chunks(4096) {
                engine.ingest(batch);
            }
            engine.publish();
            let mut i = 0usize;
            b.iter(|| {
                engine.ingest(&[site_point(i % SITES)]);
                i += 1;
                black_box(engine.publish().epoch)
            });
        });
    }
    // Delta-size sweep: D points ingested between publishes.  At D = 1
    // the merged summary moves by a single weight bump and nearly every
    // feasibility verdict re-certifies; as D grows the delta adds fresh
    // representatives, certificates start failing, and the solver
    // degrades gracefully toward the cold cost.  D ≥ 64 also dirties
    // several of the 8 value-hash shards per publish (the multi-dirty-
    // shard case), so the sweep covers re-merge width as well.
    for d in [1usize, 64, 4096] {
        g.bench_function(BenchmarkId::new("delta_sweep", d), |b| {
            let engine = Engine::new(L2, EngineConfig::new(8, K, Z, EPS));
            for batch in stream[..200_000].chunks(4096) {
                engine.ingest(batch);
            }
            engine.publish();
            let mut i = 0usize;
            b.iter(|| {
                let batch: Vec<[f64; 2]> = (0..d).map(|j| site_point((i + j) % SITES)).collect();
                engine.ingest(&batch);
                i += d;
                black_box(engine.publish().epoch)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
