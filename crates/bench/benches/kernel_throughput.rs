//! Kernel bench: scalar per-point `dist` loops vs the batched one-to-many
//! kernels and pruned absorb queries of `kcz-metric`, across
//! n ∈ {10³, 10⁴, 10⁵}.  The batched `dist_many` must beat the scalar
//! loop at n = 10⁵ — the contract the hot-path refactor rests on — and
//! the columnar (SoA) kernels must beat the AoS kernels again on the
//! same queries (blocked lanes, stable-rustc autovectorization), with
//! the f32 lane mode on top for the halved memory traffic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kcz_metric::{MetricSpace, Precision, L2};
use kcz_workloads::uniform_box;
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_throughput");
    g.sample_size(20);
    for &n in &[1_000usize, 10_000, 100_000] {
        let pts: Vec<[f64; 2]> = uniform_box(n, 1000.0, 7);
        // A query outside the cloud: absorb scans must walk the whole
        // array, so scalar and batched variants do identical work.
        let q = [-500.0, -500.0];
        let r = 1.0;
        g.throughput(Throughput::Elements(n as u64));

        // One-to-many distances: scalar `dist` per point ...
        g.bench_with_input(BenchmarkId::new("one_to_many_scalar", n), &pts, |b, pts| {
            b.iter(|| {
                let mut m = f64::INFINITY;
                for p in pts {
                    m = m.min(L2.dist(&q, p));
                }
                black_box(m)
            });
        });
        // ... vs the batched kernel (squared accumulation, one sqrt pass).
        let mut buf = Vec::with_capacity(n);
        g.bench_with_input(
            BenchmarkId::new("one_to_many_batched", n),
            &pts,
            |b, pts| {
                b.iter(|| {
                    L2.dist_many(&q, pts, &mut buf);
                    black_box(buf.iter().copied().fold(f64::INFINITY, f64::min))
                });
            },
        );
        // `nearest` skips even the final sqrt pass (one sqrt total).
        g.bench_with_input(BenchmarkId::new("nearest_kernel", n), &pts, |b, pts| {
            b.iter(|| black_box(L2.nearest(&q, pts)));
        });

        // Absorb-candidate query: scalar scan with per-point sqrt ...
        g.bench_with_input(BenchmarkId::new("absorb_scalar", n), &pts, |b, pts| {
            b.iter(|| black_box(pts.iter().position(|p| L2.dist(&q, p) <= r)));
        });
        // ... vs the pruned kernel (squared threshold, no sqrt at all).
        g.bench_with_input(BenchmarkId::new("absorb_batched", n), &pts, |b, pts| {
            b.iter(|| black_box(L2.find_within(&q, pts, r)));
        });

        // Ball-cover counting, the greedy's gain initialisation.
        g.bench_with_input(BenchmarkId::new("count_within", n), &pts, |b, pts| {
            b.iter(|| black_box(L2.count_within(&[500.0, 500.0], pts, 100.0)));
        });

        // The columnar (SoA) kernels over the same queries — AoS vs
        // columnar at both lane precisions.  f64 columns are
        // bit-identical to the AoS kernels; f32 columns halve the lane
        // traffic under the certified error budget.
        let cols64 = L2
            .build_columns(&pts, Precision::F64)
            .expect("L2 has columnar kernels");
        let cols32 = L2
            .build_columns(&pts, Precision::F32)
            .expect("L2 has columnar kernels");
        let mut cbuf = Vec::with_capacity(n);
        for (label, cols) in [("columnar_f64", &cols64), ("columnar_f32", &cols32)] {
            g.bench_with_input(
                BenchmarkId::new(format!("one_to_many_{label}"), n),
                cols,
                |b, cols| {
                    b.iter(|| {
                        L2.col_dist_many(cols, &q, &mut cbuf);
                        black_box(cbuf.iter().copied().fold(f64::INFINITY, f64::min))
                    });
                },
            );
            g.bench_with_input(
                BenchmarkId::new(format!("nearest_{label}"), n),
                cols,
                |b, cols| {
                    b.iter(|| black_box(L2.col_nearest(cols, &q)));
                },
            );
            g.bench_with_input(
                BenchmarkId::new(format!("absorb_{label}"), n),
                cols,
                |b, cols| {
                    b.iter(|| black_box(L2.col_find_within(cols, &q, r)));
                },
            );
            g.bench_with_input(
                BenchmarkId::new(format!("count_within_{label}"), n),
                cols,
                |b, cols| {
                    b.iter(|| black_box(L2.col_count_within(cols, &[500.0, 500.0], 100.0)));
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
