//! F1-mbc bench: throughput of `MBCConstruction` (Algorithm 1), the
//! primitive every MPC machine and the coordinator run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kcz_coreset::mbc_construction;
use kcz_metric::{unit_weighted, L2};
use kcz_workloads::gaussian_clusters;
use std::hint::black_box;

fn bench_mbc(c: &mut Criterion) {
    let mut g = c.benchmark_group("mbc_construction");
    g.sample_size(10);
    for &n_per in &[250usize, 1000] {
        for &eps in &[0.5f64, 1.0] {
            let inst = gaussian_clusters::<2>(3, n_per, 1.0, 12, 7);
            let pts = unit_weighted(&inst.points);
            let id = BenchmarkId::new(format!("k3_z12_eps{eps}"), 3 * n_per + 12);
            g.bench_with_input(id, &pts, |b, pts| {
                b.iter(|| black_box(mbc_construction(&L2, pts, 3, 12, eps)));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_mbc);
criterion_main!(benches);
