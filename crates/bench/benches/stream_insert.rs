//! T1-stream bench: per-point update cost of the insertion-only
//! structures — Algorithm 3 against the CPP19-style and MK-style
//! baselines (Table 1, insertion-only rows).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kcz_metric::L2;
use kcz_streaming::baselines::{ceccarello_stream, mk_doubling};
use kcz_streaming::InsertionOnlyCoreset;
use kcz_workloads::{gaussian_clusters, shuffled};
use std::hint::black_box;

fn bench_stream(c: &mut Criterion) {
    let (k, z, eps) = (2usize, 32u64, 0.5f64);
    let inst = gaussian_clusters::<2>(k, 5000, 1.0, z as usize, 3);
    let stream = shuffled(&inst.points, 1);

    let mut g = c.benchmark_group("stream_insert");
    g.sample_size(10);
    g.throughput(Throughput::Elements(stream.len() as u64));

    g.bench_with_input(
        BenchmarkId::new("alg3_ours", stream.len()),
        &stream,
        |b, s| {
            b.iter(|| {
                let mut alg = InsertionOnlyCoreset::new(L2, k, z, eps);
                for p in s {
                    alg.insert(*p);
                }
                black_box(alg.coreset().len())
            });
        },
    );
    g.bench_with_input(BenchmarkId::new("cpp19", stream.len()), &stream, |b, s| {
        b.iter(|| {
            let mut alg = ceccarello_stream(L2, k, z, eps);
            for p in s {
                alg.insert(*p);
            }
            black_box(alg.coreset().len())
        });
    });
    g.bench_with_input(
        BenchmarkId::new("mk_doubling", stream.len()),
        &stream,
        |b, s| {
            b.iter(|| {
                let mut alg = mk_doubling(L2, k, z);
                for p in s {
                    alg.insert(*p);
                }
                black_box(alg.coreset().len())
            });
        },
    );
    g.finish();
}

criterion_group!(benches, bench_stream);
criterion_main!(benches);
