//! `query_throughput` — batched vs scalar point-query serving
//! ([`kcz_serve::QueryEngine`]) at n = 10⁶ Zipf-skewed queries against
//! centers published by the resident engine.  Measured medians are
//! recorded in `BENCH_serve.json` at the repo root.
//!
//! Where the batched win comes from: the scalar path pays one view
//! acquisition (read-lock + `Arc` clone) *per request* — the honest cost
//! of a front door that may be refreshed under it at any time — while
//! the batched path acquires once per batch, answers every query under
//! that single frozen epoch, and fans `1024`-query chunks over the
//! shared worker pool.  Per-query distance work is one deferred-`sqrt`
//! kernel scan over `k` centers in both paths, so at serving-realistic
//! `k` the acquisition overhead is the margin (plus parallel speedup
//! when cores exist); the mixed-trace case exercises the same query
//! paths through the [`kcz_serve::LoadDriver`] with ingest and refresh
//! interleaved.
//!
//! The bench also carries the metrics layer's read-side guards: a
//! recorded scalar query (counter bump + view acquisition + kernel
//! scan) must not allocate at steady state
//! ([`recorded_query_is_allocation_free`]), and the instrumented
//! batched path must answer within 3% of the uninstrumented median
//! ([`assign_overhead_guardrail`]).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kcz_engine::{Engine, EngineConfig};
use kcz_metric::L2;
use kcz_obs::{MetricsHandle, Registry};
use kcz_serve::{DriverConfig, LoadDriver, QueryEngine};
use kcz_workloads::{mixed_trace, query_trace};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Allocation counter wrapped around the system allocator (one
/// `#[global_allocator]` per bench binary), so the bench can assert the
/// recorded scalar query path performs zero allocations at steady state.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const N_QUERIES: usize = 1_000_000;
const N_INGEST: usize = 50_000;
const K: usize = 8;
const Z: u64 = 64;
const EPS: f64 = 1.0;
const SHARDS: usize = 4;

/// The cluster cores the ingest stream and the query keys both draw
/// from, hottest-first (the Zipf ranking of `query_trace`).
fn sites() -> Vec<[f64; 2]> {
    (0..K)
        .map(|i| [(i % 4) as f64 * 5e3, (i / 4) as f64 * 5e3])
        .collect()
}

/// An engine with `N_INGEST` points ingested and one epoch published.
fn serving_engine() -> Arc<Engine<[f64; 2], L2>> {
    let engine = Arc::new(Engine::new(L2, EngineConfig::new(SHARDS, K, Z, EPS)));
    let stream = query_trace(N_INGEST, &sites(), 0.0, 40.0, 0.001, 0x1A57);
    for batch in stream.chunks(4096) {
        engine.ingest(batch);
    }
    let snap = engine.publish();
    assert_eq!(snap.centers.len(), K, "all planted clusters solved");
    engine
}

/// A recorded scalar query — counter bump, view acquisition (read-lock
/// plus `Arc` clone), deferred-`sqrt` kernel scan over `k` centers —
/// must not allocate: the instruments are pre-registered atomics and
/// the answer is returned by value.
fn recorded_query_is_allocation_free(probes: &[[f64; 2]]) {
    let registry = Registry::new();
    let metrics = MetricsHandle::new(&registry);
    let query = QueryEngine::with_metrics(serving_engine(), &metrics);
    query.refresh();
    // Warm-up: fault in any lazy state off the counted path.
    let mut covered = 0usize;
    for p in &probes[..64] {
        covered += query.assign(p).is_some() as usize;
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for p in &probes[..8192] {
        covered += query.assign(p).is_some() as usize;
    }
    let allocations = ALLOCATIONS.load(Ordering::Relaxed) - before;
    black_box(covered);
    assert_eq!(
        allocations, 0,
        "recorded scalar queries allocated {allocations} times \
         (the instrumented serve path must touch only pre-registered atomics)"
    );
    assert_eq!(
        registry.counter_value("query.scalar.queries"),
        Some(64 + 8192),
        "every served query must be counted"
    );
    println!(
        "query_throughput/recorded_query_alloc_regression: \
         0 allocations over 8192 recorded queries — ok"
    );
}

/// Overhead guardrail for the read side: the instrumented batched
/// assign (view/kernel spans + per-batch counters through a live
/// registry) must answer within 3% of the uninstrumented median.
fn assign_overhead_guardrail(probes: &[[f64; 2]]) {
    let run = |metrics: &MetricsHandle| {
        let query = QueryEngine::with_metrics(serving_engine(), metrics);
        query.refresh();
        let t0 = std::time::Instant::now();
        black_box(query.assign_batch(probes).iter().flatten().count());
        t0.elapsed().as_secs_f64()
    };
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    const REPEATS: usize = 7;
    let registry = Registry::new();
    let live = MetricsHandle::new(&registry);
    let off = MetricsHandle::disabled();
    let (mut base, mut inst) = (Vec::new(), Vec::new());
    run(&off); // one unmeasured warm-up for the allocator and the pool
    for _ in 0..REPEATS {
        base.push(run(&off));
        inst.push(run(&live));
    }
    let (b, i) = (median(base), median(inst));
    println!(
        "query_throughput/assign_instrumentation_overhead: uninstrumented \
         median {:.1} ms, instrumented {:.1} ms ({:+.2}%)",
        b * 1e3,
        i * 1e3,
        (i / b - 1.0) * 100.0
    );
    assert!(
        i <= b * 1.03,
        "instrumented batched assign median {:.3} ms exceeds 3% over the \
         uninstrumented {:.3} ms",
        i * 1e3,
        b * 1e3
    );
}

fn bench_query(c: &mut Criterion) {
    let engine = serving_engine();
    let query = QueryEngine::new(Arc::clone(&engine));
    query.refresh();
    // Zipf-skewed keys: 90% near the (rank-weighted) cluster cores, 10%
    // far probes.
    let probes = query_trace(N_QUERIES, &sites(), 1.1, 60.0, 0.1, 0x9E4B);
    recorded_query_is_allocation_free(&probes);
    assign_overhead_guardrail(&probes);

    let mut g = c.benchmark_group("query_assign");
    g.sample_size(5);
    g.throughput(Throughput::Elements(N_QUERIES as u64));
    // Both sides produce the same `Vec<Option<Assignment>>` — the
    // comparison is per-request serving vs one batch, not output shape.
    g.bench_with_input(BenchmarkId::new("scalar", N_QUERIES), &probes, |b, ps| {
        b.iter(|| {
            let answers: Vec<_> = ps.iter().map(|p| query.assign(p)).collect();
            black_box(answers.iter().flatten().count())
        });
    });
    g.bench_with_input(BenchmarkId::new("batched", N_QUERIES), &probes, |b, ps| {
        b.iter(|| black_box(query.assign_batch(ps).iter().flatten().count()));
    });
    // The instrumented batched path — its median rides next to
    // `batched` in BENCH_serve.json as the recorded overhead evidence.
    g.bench_with_input(
        BenchmarkId::new("batched_instrumented", N_QUERIES),
        &probes,
        |b, ps| {
            let registry = Registry::new();
            let metrics = MetricsHandle::new(&registry);
            let query = QueryEngine::with_metrics(Arc::clone(&engine), &metrics);
            query.refresh();
            b.iter(|| black_box(query.assign_batch(ps).iter().flatten().count()));
        },
    );
    g.finish();

    // Mixed read/write replay through the load driver: 4:1 reads to
    // writes, refresh every 4096 ops — the serving steady state.
    let writes = query_trace(N_QUERIES / 100, &sites(), 0.0, 40.0, 0.001, 0x77);
    let reads = query_trace(N_QUERIES / 25, &sites(), 1.1, 60.0, 0.1, 0x78);
    let trace = mixed_trace(&writes, &reads, 0x79);
    let mut g = c.benchmark_group("query_mixed");
    g.sample_size(3);
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_with_input(BenchmarkId::new("driver", trace.len()), &trace, |b, t| {
        b.iter(|| {
            let driver = LoadDriver::new(
                serving_engine(),
                DriverConfig {
                    ingest_batch: 1024,
                    refresh_every: 4096,
                    classify_radius: None,
                },
            );
            let report = driver.run(t);
            black_box((report.answer_digest, report.final_epoch))
        });
    });
    g.finish();

    // One informational replay with the report's own accounting — the
    // numbers recorded in BENCH_serve.json alongside the medians.
    let driver = LoadDriver::new(
        serving_engine(),
        DriverConfig {
            ingest_batch: 1024,
            refresh_every: 4096,
            classify_radius: None,
        },
    );
    let report = driver.run(&trace);
    println!(
        "query_mixed/driver_report: ops={} queries={} qps={:.0} query_p50_ns<={} \
         query_p99_ns<={} refreshes={} final_epoch={}",
        report.ops,
        report.queries,
        report.queries_per_sec(),
        report.query_latency.quantile_ns(0.5),
        report.query_latency.quantile_ns(0.99),
        report.refreshes,
        report.final_epoch
    );
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
