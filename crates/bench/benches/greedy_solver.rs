//! Substrate bench: the Charikar-et-al. greedy (`Greedy(P, k, z)`), the
//! inner loop of every mini-ball construction, in both candidate modes,
//! plus Gonzalez farthest-first for reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kcz_kcenter::charikar::{greedy_with, GreedyParams};
use kcz_kcenter::farthest_first;
use kcz_metric::{unit_weighted, L2};
use kcz_workloads::gaussian_clusters;
use std::hint::black_box;

fn bench_greedy(c: &mut Criterion) {
    let mut g = c.benchmark_group("greedy_solver");
    g.sample_size(10);
    for &n_per in &[60usize, 250] {
        let inst = gaussian_clusters::<2>(3, n_per, 1.0, 10, 29);
        let pts = unit_weighted(&inst.points);
        let n = pts.len();
        let exact = GreedyParams {
            exact_candidates_max_n: usize::MAX,
            ..Default::default()
        };
        let geo = GreedyParams {
            exact_candidates_max_n: 0,
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::new("charikar_exact", n), &pts, |b, pts| {
            b.iter(|| black_box(greedy_with(&L2, pts, 3, 10, &exact).radius));
        });
        g.bench_with_input(BenchmarkId::new("charikar_geometric", n), &pts, |b, pts| {
            b.iter(|| black_box(greedy_with(&L2, pts, 3, 10, &geo).radius));
        });
        g.bench_with_input(BenchmarkId::new("gonzalez_k13", n), &pts, |b, pts| {
            b.iter(|| black_box(farthest_first(&L2, pts, 13, 0).radius));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_greedy);
criterion_main!(benches);
