//! T1-sliding bench: per-arrival cost of the sliding-window structure as
//! z (points kept per mini-ball) and the guess count (log σ) grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kcz_metric::L2;
use kcz_streaming::SlidingWindowCoreset;
use kcz_workloads::drifting_stream;
use std::hint::black_box;

fn bench_sliding(c: &mut Criterion) {
    let stream = drifting_stream(8000, 2, 1.0, 0.03, 0.001, 13);
    let mut g = c.benchmark_group("sliding_insert");
    g.sample_size(10);
    g.throughput(Throughput::Elements(stream.len() as u64));
    for &z in &[2u64, 8] {
        for &rho_max in &[64.0f64, 4096.0] {
            let id = BenchmarkId::new(format!("z{z}"), rho_max as u64);
            g.bench_with_input(id, &stream, |b, s| {
                b.iter(|| {
                    let mut alg = SlidingWindowCoreset::new(L2, 2, z, 1.0, 2000, 1.0, rho_max);
                    for p in s {
                        alg.insert(*p);
                    }
                    black_box(alg.query().map(|q| q.coreset.len()))
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_sliding);
criterion_main!(benches);
