//! T1-mpc bench: end-to-end wall time of the MPC algorithms (the rounds
//! execute machine-locally in parallel threads; Table 1, MPC rows).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kcz_kcenter::charikar::GreedyParams;
use kcz_metric::L2;
use kcz_mpc::{ceccarello_one_round, one_round_randomized, r_round, two_round};
use kcz_workloads::{concentrated_partition, gaussian_clusters, random_partition};
use std::hint::black_box;

fn bench_mpc(c: &mut Criterion) {
    let (k, z, eps, m) = (3usize, 24u64, 0.5f64, 8usize);
    let inst = gaussian_clusters::<2>(k, 700, 1.0, z as usize, 17);
    let n = inst.points.len();
    let adv = concentrated_partition(&inst.points, &inst.outlier_flags, m);
    let rnd = random_partition(&inst.points, m, 3);
    let params = GreedyParams::default();

    let mut g = c.benchmark_group("mpc_round");
    g.sample_size(10);
    g.bench_with_input(BenchmarkId::new("two_round_adv", n), &adv, |b, parts| {
        b.iter(|| {
            black_box(
                two_round(&L2, parts, k, z, eps, &params)
                    .output
                    .coreset
                    .len(),
            )
        });
    });
    g.bench_with_input(BenchmarkId::new("one_round_rnd", n), &rnd, |b, parts| {
        b.iter(|| {
            black_box(
                one_round_randomized(&L2, parts, k, z, eps, &params)
                    .output
                    .coreset
                    .len(),
            )
        });
    });
    g.bench_with_input(BenchmarkId::new("r_round_3", n), &adv, |b, parts| {
        b.iter(|| black_box(r_round(&L2, parts, k, z, eps, 3, &params).coreset.len()));
    });
    g.bench_with_input(BenchmarkId::new("cpp19_baseline", n), &adv, |b, parts| {
        b.iter(|| {
            black_box(
                ceccarello_one_round(&L2, parts, k, z, eps, &params)
                    .coreset
                    .len(),
            )
        });
    });
    g.finish();
}

criterion_group!(benches, bench_mpc);
criterion_main!(benches);
