//! Adversarial instance generators realising the paper's lower-bound
//! constructions.
//!
//! The paper proves four space lower bounds; each proof is a concrete
//! family of point sets plus an adversarial continuation ("probes") that
//! punishes any algorithm storing less than the bound.  These modules
//! build those families so the experiments can (a) feed them to the
//! actual algorithms and watch the predicted space materialise, and
//! (b) verify the constructions' geometric claims with the exact solver:
//!
//! * [`insertion`] — Lemma 12's grid-cluster construction
//!   (`Ω(k/ε^d)`) and Lemma 15's 1-D construction (`Ω(k+z)`), together
//!   giving Theorem 11's `Ω(k/ε^d + z)`;
//! * [`dynamic`] — Theorem 28's scaled-group construction with a deletion
//!   schedule (`Ω((k/ε^d)·log Δ + z)`);
//! * [`sliding`] — Theorem 30's group/subgroup construction
//!   (`Ω((kz/ε^d)·log σ)`), the bound showing the de Berg–Monemizadeh–
//!   Zhong algorithm optimal.

#![warn(missing_docs)]

pub mod dynamic;
pub mod insertion;
pub mod sliding;

pub use dynamic::DynamicLb;
pub use insertion::{line_lb, InsertionLb};
pub use sliding::SlidingLb;
