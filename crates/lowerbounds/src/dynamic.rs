//! Theorem 28's fully-dynamic lower-bound construction
//! (`Ω((k/ε^d)·log Δ + z)`), in dimension 2 over the discrete universe
//! `[Δ]²`.
//!
//! Each of the `k − 2d + 1` clusters stacks `g = ½·log Δ − 2` *groups*:
//! group `m` is the `(λ+1)²` integer grid scaled by `2^m`, minus the
//! lexicographically smallest octant, which recursively hosts the groups
//! `m−1, …, 1`.  Deleting all groups `≥ m*` and probing near a dropped
//! point of group `m*` breaks any algorithm that stored fewer than
//! `Ω((k/ε²)·log Δ)` points — the adversary can aim at *any* scale, so
//! every scale must be retained.  The deletion schedule here lets the
//! experiments drive exactly that interaction against Algorithm 5.

/// The Theorem 28 construction (d = 2).
#[derive(Debug, Clone)]
pub struct DynamicLb {
    /// Universe exponent: coordinates lie in `[0, 2^side_bits)`.
    pub side_bits: u32,
    /// `clusters[i][m-1]` = the points of group `G_i^m`.
    pub clusters: Vec<Vec<Vec<[u64; 2]>>>,
    /// The `z` outlier points.
    pub outliers: Vec<[u64; 2]>,
    /// Grid parameter `λ` (even, ≥ 2).
    pub lambda: usize,
    /// Number of groups per cluster (`g = ½ log Δ − 2`, at least 1).
    pub g: usize,
    /// Target `k`.
    pub k: usize,
    /// Target `z`.
    pub z: usize,
}

impl DynamicLb {
    /// Builds the construction.  Panics if the geometry does not fit into
    /// `[0, 2^side_bits)²` for the requested parameters.
    pub fn new(k: usize, z: usize, eps: f64, side_bits: u32) -> Self {
        const D: usize = 2;
        assert!(k >= 2 * D, "Theorem 28 needs k ≥ 2d");
        assert!(eps > 0.0 && eps <= 1.0);
        assert!(side_bits >= 6, "universe too small for any group");
        // λ = 1/(4dε), rounded to an even integer ≥ 2 (the proof assumes
        // λ/2 ∈ N).
        let lambda = {
            let raw = (1.0 / (4.0 * D as f64 * eps)).round() as usize;
            (raw.max(2) + 1) & !1usize
        };
        let h = D as f64 * (lambda as f64 + 2.0) / 2.0;
        let r = (h * h - 2.0 * h + D as f64).sqrt();
        let g = ((side_bits as usize) / 2).saturating_sub(2).max(1);
        let spacing = (1u64 << (g + 2)) * (h + r).ceil() as u64;
        let cluster_extent = (lambda as u64) << g;

        let n_clusters = k - 2 * D + 1;
        let side = 1u64 << side_bits;
        let total_extent = (z as u64 + n_clusters as u64) * spacing + cluster_extent + spacing;
        assert!(
            total_extent < side,
            "construction width {total_extent} exceeds universe side {side}; \
             increase side_bits or decrease k/z/λ"
        );

        // Outliers first (left of the clusters), all on one row.
        let mut outliers = Vec::with_capacity(z);
        for i in 0..z {
            outliers.push([(i as u64) * spacing, 0]);
        }
        let cluster_base = (z as u64) * spacing + spacing;

        let half = lambda / 2;
        let mut clusters = Vec::with_capacity(n_clusters);
        for c in 0..n_clusters {
            let ox = cluster_base + (c as u64) * (cluster_extent + spacing);
            let mut groups = Vec::with_capacity(g);
            for m in 1..=g {
                let step = 1u64 << m;
                let mut pts = Vec::new();
                for x in 0..=lambda {
                    for y in 0..=lambda {
                        // Omit the lexicographically smallest octant: it
                        // hosts the smaller-scale groups.
                        if x <= half && y <= half {
                            continue;
                        }
                        pts.push([ox + x as u64 * step, y as u64 * step]);
                    }
                }
                groups.push(pts);
            }
            clusters.push(groups);
        }
        DynamicLb {
            side_bits,
            clusters,
            outliers,
            lambda,
            g,
            k,
            z,
        }
    }

    /// Points per group: `(λ+1)² − (λ/2+1)² = Ω(1/ε²)`.
    pub fn group_size(&self) -> usize {
        (self.lambda + 1).pow(2) - (self.lambda / 2 + 1).pow(2)
    }

    /// All points in insertion order (outliers, then clusters by group).
    pub fn all_points(&self) -> Vec<[u64; 2]> {
        let mut out = self.outliers.clone();
        for c in &self.clusters {
            for grp in c {
                out.extend_from_slice(grp);
            }
        }
        out
    }

    /// Total number of points: `(k−2d+1)·g·group_size + z` — the
    /// `Ω((k/ε²)·log Δ + z)` quantity.
    pub fn n_points(&self) -> usize {
        self.clusters.len() * self.g * self.group_size() + self.z
    }

    /// The adversary's deletion list for scale `m*` (1-based): every point
    /// of every group `m ≥ m*` in every cluster.
    pub fn deletion_schedule(&self, m_star: usize) -> Vec<[u64; 2]> {
        assert!(m_star >= 1 && m_star <= self.g);
        let mut out = Vec::new();
        for c in &self.clusters {
            for grp in &c[m_star - 1..] {
                out.extend_from_slice(grp);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_formula() {
        let lb = DynamicLb::new(5, 3, 0.125, 16);
        // λ = 1/(8·0.125) = round(1) → max(2) even → 2; group size 9−4 = 5.
        assert_eq!(lb.lambda, 2);
        assert_eq!(lb.group_size(), 5);
        assert_eq!(lb.clusters.len(), 2);
        assert_eq!(lb.g, 6);
        assert_eq!(lb.n_points(), 2 * 6 * 5 + 3);
        assert_eq!(lb.all_points().len(), lb.n_points());
    }

    #[test]
    fn all_points_inside_universe() {
        let lb = DynamicLb::new(6, 4, 0.125, 18);
        let side = 1u64 << 18;
        for p in lb.all_points() {
            assert!(p[0] < side && p[1] < side, "{p:?} outside [0,{side})²");
        }
    }

    #[test]
    fn groups_scale_geometrically() {
        let lb = DynamicLb::new(4, 1, 0.125, 16);
        let g1 = &lb.clusters[0][0];
        let g2 = &lb.clusters[0][1];
        // Group m has grid step 2^m: y-extent doubles between groups.
        let ymax1 = g1.iter().map(|p| p[1]).max().unwrap();
        let ymax2 = g2.iter().map(|p| p[1]).max().unwrap();
        assert_eq!(ymax2, 2 * ymax1);
    }

    #[test]
    fn deletion_schedule_takes_suffix() {
        let lb = DynamicLb::new(5, 2, 0.125, 16);
        let all = lb.deletion_schedule(1);
        assert_eq!(all.len(), lb.clusters.len() * lb.g * lb.group_size());
        let top = lb.deletion_schedule(lb.g);
        assert_eq!(top.len(), lb.clusters.len() * lb.group_size());
        assert!(top.len() < all.len());
    }

    #[test]
    #[should_panic(expected = "exceeds universe")]
    fn oversized_construction_rejected() {
        let _ = DynamicLb::new(40, 400, 0.01, 10);
    }
}
