//! The insertion-only lower-bound constructions (Theorem 11).
//!
//! **Lemma 12** (`Ω(k/ε^d)`): `k − 2d + 1` grid clusters — each a
//! `(λ+1)^d` integer grid with `λ = 1/(4dε)` — spaced `4(h+r)` apart,
//! plus `z` outliers on the negative axis, where `h = d(λ+2)/2` and
//! `r = √(h² − 2h + d)`.  Any deterministic streaming algorithm that drops
//! a cluster point `p*` is broken by inserting the `2d` probe points
//! `p* ± (h+r)·e_j`: the true optimum is `(h+r)/2` (Claim 13) while the
//! coreset's optimum is at most `r` (Claim 14), and `r < (1−ε)(h+r)/2`
//! (Lemma 41) — contradiction.
//!
//! **Lemma 15** (`Ω(k+z)`): the integers `1..k+z` on a line; inserting
//! `k+z+1` makes the optimum `1/2` while any coreset that dropped a point
//! can be clustered at radius `0`.

/// The Lemma 12 construction in dimension `D`.
#[derive(Debug, Clone)]
pub struct InsertionLb<const D: usize> {
    /// Cluster points followed by the `z` outliers.
    pub points: Vec<[f64; D]>,
    /// Number of clusters (`k − 2D + 1`).
    pub n_clusters: usize,
    /// Points per cluster (`(λ+1)^D`).
    pub cluster_size: usize,
    /// Grid parameter `λ = 1/(4Dε)` (rounded up to ≥ 1).
    pub lambda: usize,
    /// `h = D(λ+2)/2`.
    pub h: f64,
    /// `r = √(h² − 2h + D)`.
    pub r: f64,
    /// The `k` the construction targets.
    pub k: usize,
    /// The `z` the construction targets.
    pub z: usize,
    /// The effective ε (`1/(4Dλ)` after rounding λ).
    pub eps: f64,
}

impl<const D: usize> InsertionLb<D> {
    /// Builds the construction for the given `k ≥ 2D` and `z`, with ε
    /// chosen via `λ = max(1, round(1/(4Dε)))`.
    pub fn new(k: usize, z: usize, eps: f64) -> Self {
        assert!(D >= 1);
        assert!(k >= 2 * D, "Lemma 12 needs k ≥ 2d");
        assert!(eps > 0.0 && eps <= 1.0);
        let lambda = ((1.0 / (4.0 * D as f64 * eps)).round() as usize).max(1);
        let eps_eff = 1.0 / (4.0 * D as f64 * lambda as f64);
        let h = D as f64 * (lambda as f64 + 2.0) / 2.0;
        let r = (h * h - 2.0 * h + D as f64).sqrt();
        let n_clusters = k - 2 * D + 1;
        let cluster_size = (lambda + 1).pow(D as u32);
        let spacing = 4.0 * (h + r);

        let mut points = Vec::with_capacity(n_clusters * cluster_size + z);
        // Clusters along axis 0, each an integer grid of side λ.
        for c in 0..n_clusters {
            let origin = c as f64 * (lambda as f64 + spacing);
            let mut idx = [0usize; D];
            loop {
                let mut p = [0.0; D];
                p[0] = origin + idx[0] as f64;
                for j in 1..D {
                    p[j] = idx[j] as f64;
                }
                points.push(p);
                // Odometer over {0..λ}^D.
                let mut carry = true;
                for slot in idx.iter_mut() {
                    if *slot < lambda {
                        *slot += 1;
                        carry = false;
                        break;
                    }
                    *slot = 0;
                }
                if carry {
                    break;
                }
            }
        }
        // Outliers on the negative axis at pairwise distance ≥ 4(h+r).
        for i in 1..=z {
            let mut p = [0.0; D];
            p[0] = -(spacing * i as f64);
            points.push(p);
        }
        InsertionLb {
            points,
            n_clusters,
            cluster_size,
            lambda,
            h,
            r,
            k,
            z,
            eps: eps_eff,
        }
    }

    /// Number of cluster (non-outlier) points — the `Ω(k/ε^d)` quantity a
    /// correct coreset must retain.
    pub fn n_cluster_points(&self) -> usize {
        self.n_clusters * self.cluster_size
    }

    /// The `2d` probe points `p* ± (h+r)·e_j` for a chosen cluster point.
    /// The paper gives them weight 2; callers inserting unweighted streams
    /// should insert each twice.
    pub fn probes(&self, p_star: &[f64; D]) -> Vec<[f64; D]> {
        let mut out = Vec::with_capacity(2 * D);
        for j in 0..D {
            let mut plus = *p_star;
            plus[j] += self.h + self.r;
            let mut minus = *p_star;
            minus[j] -= self.h + self.r;
            out.push(plus);
            out.push(minus);
        }
        out
    }

    /// Lemma 41's inequality `r < (1−ε)(r+h)/2`, which makes the probe
    /// argument go through.  Exposed so tests/experiments can check it for
    /// the instantiated parameters.
    pub fn gap_inequality_holds(&self) -> bool {
        self.r < (1.0 - self.eps) * (self.r + self.h) / 2.0
    }
}

/// Lemma 15's 1-D construction: the points `1, 2, …, k+z` (as `f64`s) and
/// the probe `k+z+1`.
pub fn line_lb(k: usize, z: usize) -> (Vec<f64>, f64) {
    let pts: Vec<f64> = (1..=(k + z)).map(|i| i as f64).collect();
    (pts, (k + z + 1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcz_kcenter::exact_discrete;
    use kcz_metric::{unit_weighted, Line, MetricSpace, Weighted, L2};

    #[test]
    fn structure_counts() {
        let lb = InsertionLb::<2>::new(6, 3, 1.0 / 16.0);
        // λ = 1/(4·2·(1/16)) = 2, clusters = 6−4+1 = 3, each (2+1)² = 9.
        assert_eq!(lb.lambda, 2);
        assert_eq!(lb.n_clusters, 3);
        assert_eq!(lb.cluster_size, 9);
        assert_eq!(lb.points.len(), 27 + 3);
        assert!(lb.gap_inequality_holds());
    }

    #[test]
    fn claims_13_and_14_hold_numerically() {
        // Small instantiation where the exact solver is feasible.
        let lb = InsertionLb::<2>::new(4, 1, 1.0 / 8.0);
        assert_eq!(lb.n_clusters, 1);
        let k = lb.k;
        let z = lb.z as u64;

        // Pick p* = an interior-ish cluster point and build P(t').
        let p_star = lb.points[0];
        let probes = lb.probes(&p_star);
        let mut full: Vec<Weighted<[f64; 2]>> = unit_weighted(&lb.points);
        for pr in &probes {
            full.push(Weighted::new(*pr, 2));
        }
        let cand: Vec<[f64; 2]> = full.iter().map(|w| w.point).collect();
        let opt_full = exact_discrete(&L2, &full, k, z, &cand).radius;
        // Claim 13: opt(P(t')) ≥ (h+r)/2.
        assert!(
            opt_full >= (lb.h + lb.r) / 2.0 - 1e-9,
            "opt {} < (h+r)/2 = {}",
            opt_full,
            (lb.h + lb.r) / 2.0
        );

        // Claim 14: dropping p* allows radius ≤ r.
        let dropped: Vec<Weighted<[f64; 2]>> =
            full.iter().filter(|w| w.point != p_star).cloned().collect();
        let cand2: Vec<[f64; 2]> = dropped.iter().map(|w| w.point).collect();
        // Allow centers anywhere among a denser candidate set: the paper
        // places centers at p* ± h·e_j, so add those.
        let mut cand2 = cand2;
        for j in 0..2 {
            let mut c = p_star;
            c[j] += lb.h;
            cand2.push(c);
            let mut c = p_star;
            c[j] -= lb.h;
            cand2.push(c);
        }
        let opt_dropped = exact_discrete(&L2, &dropped, k, z, &cand2).radius;
        assert!(
            opt_dropped <= lb.r + 1e-9,
            "dropped opt {} > r = {}",
            opt_dropped,
            lb.r
        );

        // The contradiction of Theorem 11:
        // (1−ε)·opt(P) > r ≥ opt(P*) breaks Definition 1(1).
        assert!((1.0 - lb.eps) * opt_full > opt_dropped + 1e-9);
    }

    #[test]
    fn outliers_far_from_clusters() {
        let lb = InsertionLb::<2>::new(6, 4, 1.0 / 16.0);
        let spacing = 4.0 * (lb.h + lb.r);
        let outliers = &lb.points[lb.n_cluster_points()..];
        assert_eq!(outliers.len(), 4);
        for o in outliers {
            for p in &lb.points[..lb.n_cluster_points()] {
                assert!(L2.dist(o, p) >= spacing - 1e-9);
            }
        }
    }

    #[test]
    fn line_lb_probe_halves_radius() {
        let (pts, probe) = line_lb(2, 3);
        assert_eq!(pts.len(), 5);
        let mut w = unit_weighted(&pts);
        let mut cand = pts.clone();
        // Before the probe: k+z points, radius 0 (each point a center or
        // an outlier).
        let before = exact_discrete(&Line, &w, 2, 3, &cand).radius;
        assert_eq!(before, 0.0);
        // After the probe: k+z+1 points at unit spacing, radius 1/2 with
        // midpoint candidates.
        w.push(Weighted::unit(probe));
        cand.push(probe);
        for i in 1..(cand.len()) {
            cand.push(i as f64 + 0.5);
        }
        let after = exact_discrete(&Line, &w, 2, 3, &cand).radius;
        assert!((after - 0.5).abs() < 1e-9, "after = {after}");
    }

    #[test]
    #[should_panic(expected = "k ≥ 2d")]
    fn small_k_rejected() {
        let _ = InsertionLb::<2>::new(3, 1, 0.1);
    }
}
