//! Theorem 30's sliding-window lower-bound construction
//! (`Ω((kz/ε^d)·log σ)`), in dimension 2 under the `L∞` metric.
//!
//! Each of the `k − 2d + 1` clusters holds `g = ½ log σ − 1` groups; each
//! group `j` holds `s = λ² − ((λ+1)/2)²` subgroups placed in the odd cells
//! of a `(2λ−1)²` cell grid of side `2^j·ζ` (minus the lexicographically
//! smallest octant, which recursively hosts the finer groups); each
//! subgroup is the `z+1` lexicographically smallest points of a
//! `(ζ+1)²`-point grid with step `2^j`, `ζ = ⌊√z⌋`.  Points arrive in
//! decreasing `(j, ℓ, i)` order, so every subgroup expires at a distinct
//! time and an algorithm must track `Ω(kzs·g)` expiration times
//! (Claim 31).  The experiments feed the arrival order to the
//! sliding-window algorithm and measure its storage against this target.

/// The Theorem 30 construction (d = 2, `L∞`).
#[derive(Debug, Clone)]
pub struct SlidingLb {
    /// Points in adversarial arrival order.
    pub arrivals: Vec<[f64; 2]>,
    /// Points per subgroup (`z+1`).
    pub subgroup_size: usize,
    /// Subgroups per group (`s = λ² − ((λ+1)/2)²`).
    pub s: usize,
    /// Groups per cluster (`g`, the `½ log σ − 1` levels).
    pub g: usize,
    /// Grid parameter `λ = 1/(8ε)` rounded to an odd integer.
    pub lambda: usize,
    /// Subgroup grid parameter `ζ = ⌊√z⌋`.
    pub zeta: usize,
    /// Target `k`.
    pub k: usize,
    /// Target `z`.
    pub z: usize,
}

impl SlidingLb {
    /// Builds the construction with `g` scale levels (the paper sets
    /// `g = ½ log σ − 1`; passing `g` directly lets experiments sweep σ).
    pub fn new(k: usize, z: usize, eps: f64, g: usize) -> Self {
        const D: usize = 2;
        assert!(k >= 2 * D, "Theorem 30 needs k ≥ 2d");
        assert!(z >= 1, "needs at least one outlier");
        assert!(g >= 1, "need at least one scale level");
        assert!(eps > 0.0 && eps <= 1.0);
        // λ = 1/(8ε), rounded to an odd integer ≥ 1.
        let lambda = {
            let raw = (1.0 / (8.0 * eps)).round() as usize;
            if raw % 2 == 1 {
                raw.max(1)
            } else {
                (raw + 1).max(1)
            }
        };
        let zeta = (z as f64).sqrt().floor() as usize;
        let zeta = zeta.max(1);
        let s = lambda * lambda - lambda.div_ceil(2) * lambda.div_ceil(2);
        let n_clusters = k - 2 * D + 1;
        let cluster_extent = ((2 * lambda - 1) as f64) * (1u64 << g) as f64 * zeta as f64;
        let cluster_gap = 4.0 * (1u64 << g) as f64 * zeta as f64 * (2.0 * lambda as f64);

        // subgroup_points[j-1] = offsets of the z+1 lexicographically
        // smallest points of the step-2^j grid.
        let take = z + 1;
        let mut subgroup_offsets: Vec<Vec<[f64; 2]>> = Vec::with_capacity(g);
        for j in 1..=g {
            let step = (1u64 << j) as f64;
            let mut offs = Vec::with_capacity(take);
            'outer: for x in 0..=zeta {
                for y in 0..=zeta {
                    offs.push([x as f64 * step, y as f64 * step]);
                    if offs.len() == take {
                        break 'outer;
                    }
                }
            }
            assert!(
                offs.len() == take,
                "(ζ+1)² = {} grid points cannot host z+1 = {take} (z too large \
                 for ζ = ⌊√z⌋ grid; this cannot happen since (ζ+1)² ≥ z+1)",
                (zeta + 1) * (zeta + 1)
            );
            subgroup_offsets.push(offs);
        }

        // Odd cells of the (2λ−1)² grid, minus the smallest octant; the
        // cells are indexed 1..=2λ−1 per axis.
        let mut gamma_cells: Vec<[usize; 2]> = Vec::with_capacity(s);
        for cx in (1..=(2 * lambda - 1)).step_by(2) {
            for cy in (1..=(2 * lambda - 1)).step_by(2) {
                if cx <= lambda && cy <= lambda {
                    continue;
                }
                gamma_cells.push([cx, cy]);
            }
        }
        assert_eq!(gamma_cells.len(), s, "Γ_j must contain exactly s odd cells");

        // Arrival order: groups j descending, subgroups ℓ descending,
        // clusters i descending.
        let mut arrivals = Vec::with_capacity(n_clusters * g * s * take);
        for j in (1..=g).rev() {
            let cell_side = (1u64 << j) as f64 * zeta as f64;
            for l in (0..s).rev() {
                for i in (0..n_clusters).rev() {
                    let ox = i as f64 * (cluster_extent + cluster_gap);
                    let [cx, cy] = gamma_cells[l];
                    let sx = ox + (cx - 1) as f64 * cell_side;
                    let sy = (cy - 1) as f64 * cell_side;
                    for off in &subgroup_offsets[j - 1] {
                        arrivals.push([sx + off[0], sy + off[1]]);
                    }
                }
            }
        }
        SlidingLb {
            arrivals,
            subgroup_size: take,
            s,
            g,
            lambda,
            zeta,
            k,
            z,
        }
    }

    /// The `Ω((kz/ε²)·log σ)` target: number of *cluster* points, i.e.
    /// `(k−2d+1)·g·s·(z+1)`.
    pub fn target_size(&self) -> usize {
        (self.k - 3) * self.g * self.s * self.subgroup_size
    }

    /// A window length under which the full construction is alive.
    pub fn window_hint(&self) -> u64 {
        self.arrivals.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcz_metric::{Linf, MetricSpace};

    #[test]
    fn counts_match_formula() {
        let lb = SlidingLb::new(5, 4, 0.125, 3);
        // λ = 1, s = 1 − 1 = 0?  λ=1 gives s=0 — use a finer ε below.
        // For λ = 1 there are no valid cells; ensure we picked ε small
        // enough in this test to make s ≥ 1.
        let lb2 = SlidingLb::new(5, 4, 1.0 / 24.0, 3);
        assert_eq!(lb2.lambda, 3);
        assert_eq!(lb2.s, 9 - 4);
        assert_eq!(lb2.zeta, 2);
        assert_eq!(lb2.subgroup_size, 5);
        assert_eq!(
            lb2.arrivals.len(),
            2 * 3 * 5 * 5,
            "(k−3)·g·s·(z+1) arrivals"
        );
        assert_eq!(lb2.target_size(), lb2.arrivals.len());
        let _ = lb;
    }

    #[test]
    fn subgroup_points_are_tight_under_linf() {
        let lb = SlidingLb::new(4, 4, 1.0 / 24.0, 2);
        // Take the last z+1 arrivals: they form one subgroup of the finest
        // group (j = 1, step 2): L∞ diameter ≤ 2·ζ.
        let tail = &lb.arrivals[lb.arrivals.len() - lb.subgroup_size..];
        let mut diam = 0.0f64;
        for a in tail {
            for b in tail {
                diam = diam.max(Linf.dist(a, b));
            }
        }
        assert!(diam <= (2 * lb.zeta) as f64 + 1e-9, "diameter {diam}");
    }

    #[test]
    fn coarse_groups_arrive_first() {
        let lb = SlidingLb::new(4, 2, 1.0 / 24.0, 3);
        // The first arrival belongs to group g (step 2^g): its coordinates
        // are multiples of 2^g·(something) away from cluster origin —
        // verify the y-extent of the first subgroup is ≥ that of the last.
        let first = &lb.arrivals[..lb.subgroup_size];
        let last = &lb.arrivals[lb.arrivals.len() - lb.subgroup_size..];
        let extent = |pts: &[[f64; 2]]| -> f64 {
            let ymin = pts.iter().map(|p| p[1]).fold(f64::INFINITY, f64::min);
            let ymax = pts.iter().map(|p| p[1]).fold(f64::NEG_INFINITY, f64::max);
            ymax - ymin
        };
        assert!(extent(first) > extent(last));
    }

    #[test]
    fn all_coordinates_finite_nonnegative() {
        let lb = SlidingLb::new(6, 3, 1.0 / 16.0, 4);
        for p in &lb.arrivals {
            assert!(p[0].is_finite() && p[1].is_finite());
            assert!(p[0] >= 0.0 && p[1] >= 0.0);
        }
    }
}
