//! Barrier-scheduled concurrency tests: counters and histograms must
//! not lose updates under simultaneous multi-writer load, and a
//! snapshotter reading mid-storm must only ever see monotone values.

use kcz_obs::{MetricsHandle, Registry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

const WRITERS: usize = 8;
const PER_WRITER: u64 = 20_000;

#[test]
fn counter_totals_are_exact_under_contention() {
    let registry = Registry::new();
    let handle = MetricsHandle::new(&registry);
    let barrier = Arc::new(Barrier::new(WRITERS));
    let mut joins = Vec::new();
    for w in 0..WRITERS {
        let h = handle.clone();
        let b = barrier.clone();
        joins.push(thread::spawn(move || {
            // Register before the barrier so the measured storm is
            // pure recording.
            let ops = h.counter("obs.test.ops");
            let hist = h.histogram("obs.test.lat_ns");
            b.wait();
            for i in 0..PER_WRITER {
                ops.incr();
                hist.record_ns((w as u64) * 7 + (i % 1000));
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let expected = WRITERS as u64 * PER_WRITER;
    assert_eq!(registry.counter_value("obs.test.ops"), Some(expected));
    let h = registry.histogram_snapshot("obs.test.lat_ns").unwrap();
    assert_eq!(h.count(), expected, "histogram lost observations");
    assert_eq!(h.buckets().iter().sum::<u64>(), expected);
}

#[test]
fn snapshotter_sees_monotone_counts_while_writers_run() {
    let registry = Registry::new();
    let handle = MetricsHandle::new(&registry);
    let done = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(WRITERS + 1));

    let snapshotter = {
        let r = registry.clone();
        let done = done.clone();
        let b = barrier.clone();
        thread::spawn(move || {
            b.wait();
            let mut last = 0u64;
            let mut snaps = 0u64;
            while !done.load(Ordering::Acquire) {
                if let Some(h) = r.histogram_snapshot("obs.test.lat_ns") {
                    // Mid-storm snapshots may straddle in-flight records
                    // (bucket bumped, count not yet) — but the count
                    // itself must never move backwards, and no snapshot
                    // may exceed the final total.
                    let c = h.count();
                    assert!(c >= last, "count went backwards: {c} < {last}");
                    assert!(c <= WRITERS as u64 * PER_WRITER);
                    last = c;
                }
                snaps += 1;
            }
            snaps
        })
    };

    let mut joins = Vec::new();
    for w in 0..WRITERS {
        let h = handle.clone();
        let b = barrier.clone();
        joins.push(thread::spawn(move || {
            let hist = h.histogram("obs.test.lat_ns");
            b.wait();
            for i in 0..PER_WRITER {
                hist.record_ns((w as u64) << (i % 20));
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    done.store(true, Ordering::Release);
    let snaps = snapshotter.join().unwrap();
    assert!(snaps > 0);
    let h = registry.histogram_snapshot("obs.test.lat_ns").unwrap();
    assert_eq!(h.count(), WRITERS as u64 * PER_WRITER);
}
