//! Property tests for the histogram algebra: merge is associative and
//! commutative, quantiles are monotone, and the atomic multi-writer
//! histogram agrees with the single-writer value type.

use kcz_obs::{AtomicHistogram, LatencyHistogram};
use proptest::prelude::*;

/// Random observation streams spanning every bucket magnitude.
fn arb_obs(max_n: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec((0u32..63, 0u64..1000), 0..max_n).prop_map(|v| {
        v.into_iter()
            .map(|(shift, off)| (1u64 << shift) + off)
            .collect()
    })
}

fn hist_of(obs: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::default();
    for &ns in obs {
        h.record_ns(ns);
    }
    h
}

proptest! {
    // Pinned case count and RNG seed: tier-1 CI must never flake, and any
    // failure must reproduce exactly from a plain rerun.
    #![proptest_config(ProptestConfig {
        cases: 32,
        rng_seed: 0x0B5_0B5,
        ..ProptestConfig::default()
    })]

    #[test]
    fn merge_is_associative_and_commutative(a in arb_obs(40), b in arb_obs(40), c in arb_obs(40)) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        // (a ∪ b) ∪ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ∪ (b ∪ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        // b ∪ a == a ∪ b
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);
        // And all equal recording the concatenated stream directly.
        let mut union = a.clone();
        union.extend_from_slice(&b);
        union.extend_from_slice(&c);
        prop_assert_eq!(&left, &hist_of(&union));
    }

    #[test]
    fn merge_conserves_count_total_and_max(a in arb_obs(50), b in arb_obs(50)) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut m = ha.clone();
        m.merge(&hb);
        prop_assert_eq!(m.count(), ha.count() + hb.count());
        prop_assert_eq!(m.total_ns(), ha.total_ns() + hb.total_ns());
        prop_assert_eq!(m.max_ns(), ha.max_ns().max(hb.max_ns()));
        prop_assert_eq!(m.buckets().iter().sum::<u64>(), m.count());
    }

    #[test]
    fn quantiles_are_monotone_in_q(obs in arb_obs(60), qs in prop::collection::vec(0.0f64..1.001, 2..8)) {
        let h = hist_of(&obs);
        let mut sorted = qs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let bounds: Vec<u64> = sorted.iter().map(|&q| h.quantile_ns(q)).collect();
        for w in bounds.windows(2) {
            prop_assert!(w[0] <= w[1], "quantile bounds not monotone: {:?}", bounds);
        }
        // The extreme quantiles bracket the observations.
        if !obs.is_empty() {
            prop_assert_eq!(h.quantile_ns(1.0), h.max_ns());
            let min = *obs.iter().min().unwrap();
            prop_assert!(h.quantile_ns(0.0) >= min.min(h.quantile_ns(0.0)));
            prop_assert!(h.quantile_ns(0.0) <= h.max_ns());
        }
    }

    #[test]
    fn atomic_histogram_agrees_with_value_type(obs in arb_obs(60)) {
        let atomic = AtomicHistogram::default();
        for &ns in &obs {
            atomic.record_ns(ns);
        }
        prop_assert_eq!(atomic.snapshot(), hist_of(&obs));
        // merge_from then snapshot doubles every statistic except max.
        atomic.merge_from(&hist_of(&obs));
        let doubled = atomic.snapshot();
        prop_assert_eq!(doubled.count(), 2 * obs.len() as u64);
        prop_assert_eq!(doubled.max_ns(), hist_of(&obs).max_ns());
    }
}
