//! Pluggable time source for span tracing.
//!
//! Production uses [`MonotonicClock`] (a process-local `Instant`
//! origin); tests that need seed-stable recorded output use
//! [`TickClock`], which advances a fixed number of "nanoseconds" per
//! reading — so a fixed single-threaded operation sequence produces a
//! byte-identical metrics export on every run and every host.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotone nanosecond source.  Implementations must be cheap and
/// allocation-free: `now_ns` is called on hot paths.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary fixed origin.  Must never go
    /// backwards.
    fn now_ns(&self) -> u64;
}

/// Wall-clock time from a process-local [`Instant`] origin.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is the moment of construction.
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

/// Deterministic clock: every reading advances the time by a fixed
/// step, so a fixed sequence of instrumented operations on one thread
/// observes the same timestamps on every run.  Spans timed against a
/// `TickClock` measure *readings consumed between start and finish*,
/// not wall time — exactly what seed-stable goldens need.
#[derive(Debug)]
pub struct TickClock {
    step: u64,
    ticks: AtomicU64,
}

impl TickClock {
    /// A tick clock advancing `step` "nanoseconds" per reading.
    pub fn new(step: u64) -> Self {
        TickClock {
            step,
            ticks: AtomicU64::new(0),
        }
    }
}

impl Clock for TickClock {
    fn now_ns(&self) -> u64 {
        self.ticks.fetch_add(self.step, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_monotone() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn tick_clock_advances_deterministically() {
        let c = TickClock::new(10);
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 10);
        assert_eq!(c.now_ns(), 20);
    }
}
