//! The `kcz-metrics/v1` JSON export surface.
//!
//! Hand-rolled (the workspace is offline; no serde) with a pinned,
//! deterministic shape: top-level `schema`, then `counters`, `gauges`,
//! and `histograms` objects with name-sorted keys.  Each histogram
//! reports `count`, `total_ns`, `mean_ns`, `max_ns`, the p50/p90/p99
//! upper bounds, and its non-empty buckets as `[bucket_index, count]`
//! pairs.  Consumers (the CI metrics-smoke step, dashboards) key off
//! `schema` and must treat unknown fields as forward-compatible.

use crate::registry::Registry;

/// The schema tag stamped into every export.
pub const SCHEMA: &str = "kcz-metrics/v1";

/// Minimal JSON string escaping for metric names (which are plain
/// ASCII identifiers in practice, but escaping is cheap insurance).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn push_scalar_map(out: &mut String, key: &str, entries: &[(String, u64)], last: bool) {
    out.push_str(&format!("  \"{key}\": {{\n"));
    for (i, (name, value)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        out.push_str(&format!("    \"{}\": {}{}\n", escape(name), value, comma));
    }
    out.push_str(if last { "  }\n" } else { "  },\n" });
}

impl Registry {
    /// Serializes the registry as `kcz-metrics/v1` JSON.  Byte-stable
    /// for a given registry state: keys are name-sorted and every
    /// number is an integer, so a deterministic clock plus a fixed
    /// operation sequence yields a byte-identical export.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        push_scalar_map(&mut out, "counters", &self.counters(), false);
        push_scalar_map(&mut out, "gauges", &self.gauges(), false);
        let hists = self.histograms();
        out.push_str("  \"histograms\": {\n");
        for (i, (name, h)) in hists.iter().enumerate() {
            let comma = if i + 1 == hists.len() { "" } else { "," };
            let buckets: Vec<String> = h
                .buckets()
                .iter()
                .enumerate()
                .filter(|(_, &b)| b > 0)
                .map(|(idx, &b)| format!("[{idx}, {b}]"))
                .collect();
            out.push_str(&format!(
                "    \"{}\": {{\"count\": {}, \"total_ns\": {}, \"mean_ns\": {}, \
                 \"max_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \
                 \"buckets\": [{}]}}{}\n",
                escape(name),
                h.count(),
                h.total_ns(),
                h.mean_ns(),
                h.max_ns(),
                h.quantile_ns(0.50),
                h.quantile_ns(0.90),
                h.quantile_ns(0.99),
                buckets.join(", "),
                comma,
            ));
        }
        out.push_str("  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_is_deterministic_and_schema_tagged() {
        let r = Registry::new();
        r.counter("b.second").add(2);
        r.counter("a.first").incr();
        r.gauge("size").set(41);
        r.histogram("lat_ns").record_ns(100);
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\n  \"schema\": \"kcz-metrics/v1\",\n"));
        // Name-sorted: a.first before b.second.
        assert!(a.find("a.first").unwrap() < a.find("b.second").unwrap());
        assert!(a.contains("\"count\": 1"));
        assert!(a.contains("\"buckets\": [[6, 1]]"));
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn empty_registry_exports_empty_sections() {
        let r = Registry::new();
        let j = r.to_json();
        assert!(j.contains("\"counters\": {\n  },"));
        assert!(j.contains("\"histograms\": {\n  }\n}"));
    }

    #[test]
    fn names_are_escaped() {
        let r = Registry::new();
        r.counter("weird\"name\\x").incr();
        let j = r.to_json();
        assert!(j.contains("weird\\\"name\\\\x"));
    }
}
