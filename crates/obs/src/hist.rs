//! Power-of-two latency histograms: fixed-size, mergeable, no
//! allocation after construction.
//!
//! [`LatencyHistogram`] is the single-writer value type (moved here
//! from `kcz-serve`, which re-exports it for compatibility); the
//! lock-free multi-writer counterpart lives in
//! [`crate::registry::AtomicHistogram`] and snapshots into this type,
//! so all quantile logic lives in exactly one place.

use std::time::Duration;

/// Power-of-two latency histogram: bucket `i` counts observations in
/// `[2^i, 2^{i+1})` nanoseconds, except bucket 0, which spans `[0, 2)`
/// so zero-duration observations are counted rather than misfiled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
    total_ns: u128,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; 64],
            count: 0,
            total_ns: 0,
            max_ns: 0,
        }
    }
}

/// Bucket index of an observation: `⌊log₂ ns⌋`, with 0 ns and 1 ns
/// both filed in bucket 0.
#[inline]
pub(crate) fn bucket_of(ns: u64) -> usize {
    (63 - (ns | 1).leading_zeros()) as usize
}

impl LatencyHistogram {
    /// Records one observation.  0 ns and 1 ns land in bucket 0;
    /// observations past `u64::MAX` ns saturate into the top bucket.
    pub fn record(&mut self, latency: Duration) {
        self.record_ns(latency.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one observation given directly in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.buckets[bucket_of(ns)] += 1;
        self.count += 1;
        self.total_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Folds another histogram into this one: bucket-wise counts add,
    /// totals add, maxima take the max.  Merging is associative and
    /// commutative (pinned by proptests), so per-shard histograms can
    /// be combined in any order.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Rebuilds a histogram from raw parts (the atomic snapshot path).
    pub(crate) fn from_parts(buckets: [u64; 64], count: u64, total_ns: u128, max_ns: u64) -> Self {
        LatencyHistogram {
            buckets,
            count,
            total_ns,
            max_ns,
        }
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations in nanoseconds.
    pub fn total_ns(&self) -> u128 {
        self.total_ns
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.total_ns / self.count as u128) as u64
        }
    }

    /// Largest observation in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Upper bucket bound covering quantile `q ∈ [0, 1]` — e.g.
    /// `quantile_ns(0.99)` is an upper bound on the p99 latency, at
    /// power-of-two resolution, never past the largest observation
    /// (so `quantile_ns(1.0) == max_ns()`).  0 when empty; `q` outside
    /// `[0, 1]` is clamped.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Nudge below the exact product before ceiling: a q·count that
        // lands on an integer boundary must select that rank, not the
        // next one up (0.99·100 computes as 99.000…01 in binary and
        // used to round to rank 100 — the p99 of 99 fast observations
        // and one slow one reported the slow one).
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64) - 1e-9)
            .ceil()
            .max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                // Inclusive bucket upper bound; 2^64 − 1 for the top
                // bucket (the old `1 << 63` understated any observation
                // past 2^63), clamped to the largest observation.
                let upper = ((1u128 << (i + 1)) - 1).min(u64::MAX as u128) as u64;
                return upper.min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Raw bucket counts (bucket `i` spans `[2^i, 2^{i+1})` ns;
    /// bucket 0 spans `[0, 2)`).
    pub fn buckets(&self) -> &[u64; 64] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_ordered() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.quantile_ns(0.5), 0);
        for ns in [100u64, 200, 400, 800, 1600, 3200, 1_000_000] {
            h.record(Duration::from_nanos(ns));
        }
        assert_eq!(h.count(), 7);
        assert!(h.quantile_ns(0.5) <= h.quantile_ns(0.99));
        assert!(h.quantile_ns(0.99) <= h.max_ns().next_power_of_two());
        assert!(h.mean_ns() > 0);
        assert_eq!(h.max_ns(), 1_000_000);
        assert_eq!(h.buckets().iter().sum::<u64>(), 7);
    }

    #[test]
    fn histogram_edge_observations_are_counted_not_misfiled() {
        let mut h = LatencyHistogram::default();
        // 0 ns and 1 ns both land in bucket 0 ([0, 2) ns)…
        h.record(Duration::from_nanos(0));
        h.record(Duration::from_nanos(1));
        // …and the largest representable observation saturates into the
        // top bucket.
        h.record(Duration::from_nanos(u64::MAX));
        assert_eq!(h.count(), 3);
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[63], 1);
        assert_eq!(h.max_ns(), u64::MAX);
        // q = 0 bounds the smallest observation's bucket; q = 1 returns
        // the largest actual observation, not 2^63 (the old top-bucket
        // understatement).  Out-of-range q clamps instead of panicking.
        assert_eq!(h.quantile_ns(0.0), 1);
        assert_eq!(h.quantile_ns(1.0), u64::MAX);
        assert_eq!(h.quantile_ns(-1.0), 1);
        assert_eq!(h.quantile_ns(2.0), u64::MAX);
        assert_eq!(h.mean_ns(), ((u64::MAX as u128 + 1) / 3) as u64);
    }

    #[test]
    fn histogram_quantile_rank_hits_exact_count_boundaries() {
        // 99 fast observations and one slow one: p99 must select rank
        // 99 (a fast one), not round 0.99·100 up to rank 100 (the slow
        // one).
        let mut h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(Duration::from_nanos(10));
        }
        h.record(Duration::from_micros(100));
        assert_eq!(h.quantile_ns(0.99), 15); // [8, 16) bucket bound
        assert_eq!(h.quantile_ns(0.991), 100_000); // clamped to max_ns

        // p50 of two observations is the lower one (rank 1 of 2).
        let mut h2 = LatencyHistogram::default();
        h2.record(Duration::from_nanos(10));
        h2.record(Duration::from_nanos(1000));
        assert_eq!(h2.quantile_ns(0.5), 15);
        assert_eq!(h2.quantile_ns(1.0), 1000);
    }

    #[test]
    fn merge_matches_recording_the_union() {
        let xs = [0u64, 1, 7, 100, 1_000_000, u64::MAX];
        let ys = [3u64, 100, 65_536];
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        let mut whole = LatencyHistogram::default();
        for &x in &xs {
            a.record_ns(x);
            whole.record_ns(x);
        }
        for &y in &ys {
            b.record_ns(y);
            whole.record_ns(y);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        // Merging an empty histogram is the identity.
        let before = a.clone();
        a.merge(&LatencyHistogram::default());
        assert_eq!(a, before);
    }
}
