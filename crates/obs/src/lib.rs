//! `kcz-obs`: the observability substrate of the k-center suite —
//! a lock-free metrics registry (counters, gauges, power-of-two
//! latency histograms), a span/stage tracer over a pluggable clock,
//! and a versioned JSON export surface (`kcz-metrics/v1`).
//!
//! Design contract, relied on by every instrumented hot path:
//!
//! - **Zero overhead when disabled.** [`MetricsHandle::disabled`]
//!   hands out detached counters/gauges (a relaxed atomic each — still
//!   readable, so accessors like `Engine::solves()` stay exact with
//!   metrics off) and stages/histograms that are plain `None` checks —
//!   a disabled stage never reads the clock.
//! - **Allocation-free recording.** Registration (naming an
//!   instrument) may lock and allocate; recording never does.  The
//!   counting-allocator benches in `kcz-bench` pin this for the
//!   instrumented absorb and query paths.
//! - **Deterministic exports on demand.** With a [`TickClock`], a
//!   fixed single-threaded operation sequence produces a
//!   byte-identical [`Registry::to_json`] export on every run — the
//!   seed-stability contract tests lean on.
//! - **Mergeable histograms.** [`LatencyHistogram`] (moved here from
//!   `kcz-serve`) merges associatively, so per-shard or per-run
//!   histograms combine into one distribution.

#![warn(missing_docs)]

pub mod clock;
pub mod export;
pub mod hist;
pub mod registry;

pub use clock::{Clock, MonotonicClock, TickClock};
pub use export::SCHEMA;
pub use hist::LatencyHistogram;
pub use registry::{
    AtomicHistogram, Counter, Gauge, HistogramHandle, MetricsHandle, Registry, Stage, StageTimer,
};
