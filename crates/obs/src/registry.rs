//! Lock-free metrics registry and the cheap handles hot paths record
//! through.
//!
//! Registration (naming an instrument) takes a mutex and may allocate;
//! recording (bumping a counter, filing a histogram observation,
//! finishing a span) is pure relaxed atomics — no locks, no
//! allocation, safe from any thread.  A disabled [`MetricsHandle`]
//! hands out detached instruments whose recording is a handful of
//! atomic ops on private cells (counters and gauges stay readable, so
//! accessors like `Engine::solves()` remain correct with metrics off)
//! and spans that never read the clock at all.

use crate::clock::{Clock, MonotonicClock};
use crate::hist::{bucket_of, LatencyHistogram};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Recovers a poisoned registration lock: registration only inserts
/// into a map, so a panicked registrant leaves it consistent.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A monotone named counter.  Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A counter not registered anywhere: recording still works (reads
    /// through [`Counter::get`] stay exact) but nothing exports it.
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A named gauge: last-written value wins.  Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// A gauge not registered anywhere.
    pub fn detached() -> Self {
        Gauge::default()
    }

    /// Stores `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if larger (a high-water mark).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.cell.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Lock-free multi-writer power-of-two histogram.  The mergeable
/// value-type counterpart ([`LatencyHistogram`]) owns all quantile
/// logic; this type only accumulates and snapshots.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; 64],
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    /// Records one observation in nanoseconds.  Lock- and
    /// allocation-free; concurrent records never lose updates.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Folds a single-writer histogram in (the shard-merge path: record
    /// locally without atomics, merge once at the end).
    pub fn merge_from(&self, h: &LatencyHistogram) {
        for (cell, &b) in self.buckets.iter().zip(h.buckets().iter()) {
            if b > 0 {
                cell.fetch_add(b, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(h.count(), Ordering::Relaxed);
        self.total_ns
            .fetch_add(h.total_ns().min(u64::MAX as u128) as u64, Ordering::Relaxed);
        self.max_ns.fetch_max(h.max_ns(), Ordering::Relaxed);
    }

    /// A value snapshot.  Exact once writers have quiesced; a snapshot
    /// taken mid-write may straddle an observation (count without
    /// bucket or vice versa) but never tears a single field.
    pub fn snapshot(&self) -> LatencyHistogram {
        let buckets = std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        LatencyHistogram::from_parts(
            buckets,
            self.count.load(Ordering::Relaxed),
            self.total_ns.load(Ordering::Relaxed) as u128,
            self.max_ns.load(Ordering::Relaxed),
        )
    }
}

/// A cheap handle onto a registered (or detached) histogram.
#[derive(Clone, Debug, Default)]
pub struct HistogramHandle {
    hist: Option<Arc<AtomicHistogram>>,
}

impl HistogramHandle {
    /// A handle that drops every observation.
    pub fn disabled() -> Self {
        HistogramHandle::default()
    }

    /// Whether observations are being kept.
    pub fn enabled(&self) -> bool {
        self.hist.is_some()
    }

    /// Records one observation in nanoseconds (no-op when disabled).
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        if let Some(h) = &self.hist {
            h.record_ns(ns);
        }
    }

    /// Records one observation as a [`Duration`].
    #[inline]
    pub fn record(&self, d: Duration) {
        if let Some(h) = &self.hist {
            h.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
        }
    }

    /// Folds a locally-accumulated histogram in (no-op when disabled).
    pub fn merge_from(&self, h: &LatencyHistogram) {
        if let Some(dst) = &self.hist {
            dst.merge_from(h);
        }
    }
}

/// A named span site: `start()` stamps the clock, `finish()` records
/// the elapsed nanoseconds into the site's histogram.  Disabled stages
/// skip the clock reads entirely.
#[derive(Clone)]
pub struct Stage {
    inner: Option<StageInner>,
}

#[derive(Clone)]
struct StageInner {
    hist: Arc<AtomicHistogram>,
    clock: Arc<dyn Clock>,
}

impl Stage {
    /// A stage that times nothing and never touches the clock.
    pub fn disabled() -> Self {
        Stage { inner: None }
    }

    /// Whether spans are being recorded.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span.  Allocation-free.
    #[inline]
    pub fn start(&self) -> StageTimer<'_> {
        StageTimer {
            stage: self,
            t0: self.inner.as_ref().map(|i| i.clock.now_ns()),
        }
    }
}

impl std::fmt::Debug for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stage")
            .field("enabled", &self.enabled())
            .finish()
    }
}

/// An open span; consume with [`StageTimer::finish`] to record it.
/// Dropping without finishing records nothing (abandoned spans from a
/// panicking stage must not skew the histogram).
#[must_use = "an unfinished span records nothing"]
pub struct StageTimer<'a> {
    stage: &'a Stage,
    t0: Option<u64>,
}

impl StageTimer<'_> {
    /// Closes the span, records it, and returns the elapsed
    /// nanoseconds (0 when the stage is disabled).
    #[inline]
    pub fn finish(self) -> u64 {
        match (&self.stage.inner, self.t0) {
            (Some(i), Some(t0)) => {
                let dt = i.clock.now_ns().saturating_sub(t0);
                i.hist.record_ns(dt);
                dt
            }
            _ => 0,
        }
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Arc<AtomicHistogram>>>,
}

/// The named-instrument store.  Cloning shares the store; instruments
/// registered under the same name share one cell (registration is
/// idempotent).
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, registering it at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        lock_recover(&self.inner.counters)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The gauge named `name`, registering it at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        lock_recover(&self.inner.gauges)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The histogram named `name`, registering it empty on first use.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let hist = lock_recover(&self.inner.histograms)
            .entry(name.to_string())
            .or_default()
            .clone();
        HistogramHandle { hist: Some(hist) }
    }

    /// Current value of a counter, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        lock_recover(&self.inner.counters)
            .get(name)
            .map(|c| c.get())
    }

    /// Current value of a gauge, if registered.
    pub fn gauge_value(&self, name: &str) -> Option<u64> {
        lock_recover(&self.inner.gauges).get(name).map(|g| g.get())
    }

    /// Value snapshot of a histogram, if registered.
    pub fn histogram_snapshot(&self, name: &str) -> Option<LatencyHistogram> {
        lock_recover(&self.inner.histograms)
            .get(name)
            .map(|h| h.snapshot())
    }

    /// All counters, name-sorted.
    pub fn counters(&self) -> Vec<(String, u64)> {
        lock_recover(&self.inner.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// All gauges, name-sorted.
    pub fn gauges(&self) -> Vec<(String, u64)> {
        lock_recover(&self.inner.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Value snapshots of all histograms, name-sorted.
    pub fn histograms(&self) -> Vec<(String, LatencyHistogram)> {
        lock_recover(&self.inner.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("counters", &self.counters().len())
            .field("gauges", &self.gauges().len())
            .field("histograms", &self.histograms().len())
            .finish()
    }
}

#[derive(Clone)]
struct HandleInner {
    registry: Registry,
    clock: Arc<dyn Clock>,
}

/// The instrumentation entry point consumers hold: either live
/// (backed by a [`Registry`] and a [`Clock`]) or disabled (every
/// instrument it hands out is a detached cell or a no-op).
#[derive(Clone, Default)]
pub struct MetricsHandle {
    inner: Option<HandleInner>,
}

impl MetricsHandle {
    /// The no-op handle: counters and gauges it hands out still count
    /// (privately), histograms and stages drop everything.
    pub fn disabled() -> Self {
        MetricsHandle::default()
    }

    /// A live handle over `registry`, timed by the monotonic wall
    /// clock.
    pub fn new(registry: &Registry) -> Self {
        Self::with_clock(registry, Arc::new(MonotonicClock::new()))
    }

    /// A live handle over `registry` with an explicit clock — pass a
    /// [`crate::TickClock`] for seed-stable recorded output.
    pub fn with_clock(registry: &Registry, clock: Arc<dyn Clock>) -> Self {
        MetricsHandle {
            inner: Some(HandleInner {
                registry: registry.clone(),
                clock,
            }),
        }
    }

    /// Whether this handle records anywhere visible.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The backing registry, when live.
    pub fn registry(&self) -> Option<&Registry> {
        self.inner.as_ref().map(|i| &i.registry)
    }

    /// A counter: registered under `name` when live, detached (still
    /// readable through [`Counter::get`]) when disabled.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(i) => i.registry.counter(name),
            None => Counter::detached(),
        }
    }

    /// A gauge: registered when live, detached when disabled.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(i) => i.registry.gauge(name),
            None => Gauge::detached(),
        }
    }

    /// A histogram handle: live when enabled, a no-op otherwise.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        match &self.inner {
            Some(i) => i.registry.histogram(name),
            None => HistogramHandle::disabled(),
        }
    }

    /// A span site recording into the histogram named `name`; disabled
    /// stages never read the clock.
    pub fn stage(&self, name: &str) -> Stage {
        match &self.inner {
            Some(i) => {
                let hist = lock_recover(&i.registry.inner.histograms)
                    .entry(name.to_string())
                    .or_default()
                    .clone();
                Stage {
                    inner: Some(StageInner {
                        hist,
                        clock: i.clock.clone(),
                    }),
                }
            }
            None => Stage::disabled(),
        }
    }
}

impl std::fmt::Debug for MetricsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsHandle")
            .field("enabled", &self.enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TickClock;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.incr();
        assert_eq!(r.counter_value("x"), Some(3));
        assert_eq!(a.get(), 3);
        assert_eq!(r.counters(), vec![("x".to_string(), 3)]);
    }

    #[test]
    fn detached_instruments_count_but_do_not_export() {
        let h = MetricsHandle::disabled();
        let c = h.counter("hidden");
        c.add(7);
        assert_eq!(c.get(), 7);
        let g = h.gauge("hidden");
        g.set(3);
        g.set_max(9);
        g.set_max(2);
        assert_eq!(g.get(), 9);
        let hist = h.histogram("hidden");
        hist.record_ns(5);
        assert!(!hist.enabled());
        let stage = h.stage("hidden");
        assert_eq!(stage.start().finish(), 0);
    }

    #[test]
    fn stage_records_tick_deltas() {
        let r = Registry::new();
        let h = MetricsHandle::with_clock(&r, Arc::new(TickClock::new(8)));
        let stage = h.stage("work_ns");
        assert_eq!(stage.start().finish(), 8);
        assert_eq!(stage.start().finish(), 8);
        let snap = r.histogram_snapshot("work_ns").unwrap();
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.total_ns(), 16);
        // An abandoned span records nothing.
        let t = stage.start();
        drop(t);
        assert_eq!(r.histogram_snapshot("work_ns").unwrap().count(), 2);
    }

    #[test]
    fn atomic_histogram_snapshot_matches_value_recording() {
        let a = AtomicHistogram::default();
        let mut v = LatencyHistogram::default();
        // Stay far from u64::MAX: the atomic total is a u64 (584 years
        // of nanoseconds), the value type's is a u128.
        for ns in [0u64, 1, 3, 900, 70_000, 1 << 52] {
            a.record_ns(ns);
            v.record_ns(ns);
        }
        assert_eq!(a.snapshot(), v);
        // merge_from folds a local histogram in.
        let b = AtomicHistogram::default();
        b.merge_from(&v);
        assert_eq!(b.snapshot().count(), v.count());
        assert_eq!(b.snapshot().max_ns(), v.max_ns());
    }
}
