//! The query-serving layer: the *read side* of the resident engine.
//!
//! The paper's pitch is that an ε-coreset is a summary **small enough to
//! query**: once `(3+ε)`-certified centers exist, point-level questions
//! — which center serves `p`?  is `p` an outlier at radius `r`?  which
//! centers are closest? — cost a scan over `k` centers, not over the
//! ingested multiset.  The rest of the workspace builds and certifies
//! those summaries (streaming, MPC, the sharded engine); this crate
//! finally *answers questions* against them, while ingest keeps running.
//!
//! Three layers:
//!
//! * [`SnapshotView`] — one immutable, epoch-numbered view: the solved
//!   centers, the certified `(3+8ε′)` bound data, and a
//!   [`kcz_metric::NeighborIndex`] built over the centers.  All query
//!   methods route through the batched [`kcz_metric::MetricSpace`]
//!   kernels.
//! * [`QueryEngine`] — the serving front: holds the engine plus the
//!   newest published view behind a brief read-lock.  Readers acquire a
//!   view (`Arc` clone) and query it without ever blocking ingest;
//!   [`QueryEngine::refresh`] republishes when the engine's data version
//!   advanced (reusing the engine's memoized snapshot path — an
//!   unchanged version costs neither a merge nor a solve).  Batched
//!   variants fan the queries over the shared [`kcz_engine::runtime`]
//!   pool.
//! * [`LoadDriver`] — a deterministic replayer for mixed read/write
//!   traces ([`kcz_workloads::TraceOp`]): configurable ingest batching
//!   and snapshot-refresh cadence, recording throughput, power-of-two
//!   latency histograms, and a seed-stable digest of every answer.
//!
//! # The epoch / consistency contract
//!
//! Readers never see a torn summary: a view is built from one published
//! [`kcz_engine::Snapshot`] and is immutable thereafter, so every answer
//! it produces is exact with respect to *that* epoch — the epoch number
//! and its certified `bound_factor = 3 + 8ε′` travel with each answer.
//! Ingest concurrent with a read affects only *later* epochs; a reader
//! holding a view keeps getting internally consistent answers until it
//! re-acquires.  The conformance harness (`kcz conformance`) re-checks
//! served answers against brute-force nearest-center on the same
//! snapshot and the epoch's ratio bound against the exact oracle.

#![warn(missing_docs)]

pub mod driver;
pub mod query;
pub mod view;

pub use driver::{DriverConfig, DriverReport, LatencyHistogram, LoadDriver};
pub use query::QueryEngine;
pub use view::{Assignment, Classification, SnapshotView};
