//! [`QueryEngine`]: the serving front over a shared [`Engine`].
//!
//! Holds the engine plus the newest published [`SnapshotView`] behind a
//! read-write lock.  Readers acquire the current view with one brief
//! read-lock and an `Arc` clone — they are never blocked by ingest
//! (which takes neither lock) and block each other not at all; only the
//! instant of a [`refresh`](QueryEngine::refresh) swap takes the write
//! lock.  Batched query variants acquire the view **once** and fan the
//! per-chunk kernel scans over the shared [`kcz_engine::runtime::Pool`],
//! which is both the throughput path (one view acquisition amortized
//! over the whole batch, worker-parallel chunks) and the consistency
//! path (a batch is answered entirely under one epoch).

use kcz_engine::runtime::{global, Pool};
use kcz_engine::Engine;
use kcz_metric::{MetricSpace, SpaceUsage};
use kcz_obs::{Counter, MetricsHandle, Stage};
use kcz_workloads::ShardKey;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::view::{Assignment, Classification, SnapshotView};

/// Acquire a read guard, shrugging off poison: the view lock only ever
/// stores a whole `Arc`, and the swap that installs one is infallible,
/// so a panic under the lock (a view construction that blew up inside
/// [`QueryEngine::refresh`]) cannot leave torn state behind.  The last
/// successfully installed view is still good; serve it.
fn read_recover<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

/// Write-side twin of [`read_recover`], for refreshers that follow a
/// panicked refresher.
fn write_recover<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

/// Queries per pool task in the batched paths: large enough that the
/// per-task overhead vanishes, small enough to spread across workers.
const QUERY_CHUNK: usize = 1024;

/// Instrument set of one query front.  Batched paths split into
/// view-acquisition vs kernel time; recording is atomics only, so the
/// steady-state query path stays allocation-free (pinned by the
/// counting-allocator bench in `kcz-bench`).
struct QueryInstruments {
    view_acquire: Stage,
    kernel: Stage,
    batches: Counter,
    batch_queries: Counter,
    scalar_queries: Counter,
    refreshes: Counter,
}

impl QueryInstruments {
    fn new(metrics: &MetricsHandle) -> Self {
        QueryInstruments {
            view_acquire: metrics.stage("query.batch.view_ns"),
            kernel: metrics.stage("query.batch.kernel_ns"),
            batches: metrics.counter("query.batches"),
            batch_queries: metrics.counter("query.batch.queries"),
            scalar_queries: metrics.counter("query.scalar.queries"),
            refreshes: metrics.counter("query.refreshes"),
        }
    }
}

/// The read-side front of one engine: publishes views, serves queries.
pub struct QueryEngine<P, M: MetricSpace<P>> {
    engine: Arc<Engine<P, M>>,
    pool: &'static Pool,
    view: RwLock<Arc<SnapshotView<P, M>>>,
    obs: QueryInstruments,
}

impl<P, M> QueryEngine<P, M>
where
    P: Clone + PartialEq + SpaceUsage + ShardKey + Send + Sync,
    M: MetricSpace<P> + Clone,
{
    /// Wraps an engine and publishes its current epoch as the initial
    /// view (an empty engine yields a center-less epoch-1 view; every
    /// query then answers `None`/outlier until data arrives and
    /// [`refresh`](Self::refresh) republishes).
    pub fn new(engine: Arc<Engine<P, M>>) -> Self {
        Self::with_metrics(engine, &MetricsHandle::disabled())
    }

    /// Like [`new`](Self::new), with batched queries timed
    /// (view-acquisition vs kernel spans) and served-query counters
    /// recorded through `metrics`.
    pub fn with_metrics(engine: Arc<Engine<P, M>>, metrics: &MetricsHandle) -> Self {
        let view = Arc::new(SnapshotView::new(engine.metric().clone(), engine.publish()));
        QueryEngine {
            engine,
            pool: global(),
            view: RwLock::new(view),
            obs: QueryInstruments::new(metrics),
        }
    }

    /// The engine being served.
    pub fn engine(&self) -> &Arc<Engine<P, M>> {
        &self.engine
    }

    /// The current view: one brief read-lock, one `Arc` clone.  Hold the
    /// returned view to answer any number of mutually consistent queries
    /// under its frozen epoch.
    ///
    /// A writer that panicked mid-refresh poisons the lock but cannot
    /// tear the stored `Arc` (the swap itself is infallible), so the
    /// poison flag is noise: readers recover the guard and keep serving
    /// the last installed view rather than propagating the panic to
    /// every subsequent request.
    pub fn view(&self) -> Arc<SnapshotView<P, M>> {
        Arc::clone(&read_recover(&self.view))
    }

    /// Republishes if the engine's data version advanced: asks the
    /// engine to publish (the memoized fast path returns the cached
    /// epoch without re-merging when nothing changed), and only when the
    /// epoch actually moved builds a fresh view and swaps it in.
    /// Returns the view that is current afterwards.
    ///
    /// View construction happens inside the write critical section after
    /// an epoch double-check, so concurrent refreshers build the view at
    /// most once per epoch; like [`view`](Self::view), the lock is
    /// recovered if a previous refresher panicked while holding it.
    pub fn refresh(&self) -> Arc<SnapshotView<P, M>> {
        let snap = self.engine.publish();
        let current = self.view();
        if current.epoch() == snap.epoch {
            return current;
        }
        let mut guard = write_recover(&self.view);
        // A racing refresher may have installed this epoch (or newer)
        // while we waited for the lock.
        if guard.epoch() >= snap.epoch {
            return Arc::clone(&guard);
        }
        let fresh = Arc::new(SnapshotView::new(self.engine.metric().clone(), snap));
        *guard = Arc::clone(&fresh);
        self.obs.refreshes.incr();
        fresh
    }

    /// [`SnapshotView::assign`] against the current view.
    pub fn assign(&self, p: &P) -> Option<Assignment> {
        self.obs.scalar_queries.incr();
        self.view().assign(p)
    }

    /// [`SnapshotView::classify`] against the current view.
    pub fn classify(&self, p: &P, r: f64) -> Classification {
        self.obs.scalar_queries.incr();
        self.view().classify(p, r)
    }

    /// [`SnapshotView::nearest_centers`] against the current view.
    pub fn nearest_centers(&self, p: &P, j: usize) -> Vec<Assignment> {
        self.obs.scalar_queries.incr();
        self.view().nearest_centers(p, j)
    }

    /// [`SnapshotView::window_span`] of the current view: the live
    /// arrival-stamp span a windowed engine's answers cover, `None`
    /// outside window mode.
    pub fn window_span(&self) -> Option<(u64, u64)> {
        self.view().window_span()
    }

    /// Batched assign: acquires the view once, answers every query under
    /// that single epoch, fanning `QUERY_CHUNK`-sized slices over the
    /// worker pool.  Results come back in input order.
    ///
    /// The batch writes into one preallocated output through disjoint
    /// `&mut` slices — no per-chunk allocation, no flatten copy — so the
    /// per-query cost is the kernel scan alone, with the view
    /// acquisition amortized over the whole batch (the scalar path pays
    /// it per request).
    pub fn assign_batch(&self, pts: &[P]) -> Vec<Option<Assignment>> {
        let t_view = self.obs.view_acquire.start();
        let view = self.view();
        t_view.finish();
        let mut out: Vec<Option<Assignment>> = vec![None; pts.len()];
        let tasks: Vec<(&[P], &mut [Option<Assignment>])> = pts
            .chunks(QUERY_CHUNK)
            .zip(out.chunks_mut(QUERY_CHUNK))
            .collect();
        let t_kernel = self.obs.kernel.start();
        self.pool.scoped_map(tasks, |_, (chunk, slots)| {
            for (p, slot) in chunk.iter().zip(slots.iter_mut()) {
                *slot = view.assign(p);
            }
        });
        t_kernel.finish();
        self.obs.batches.incr();
        self.obs.batch_queries.add(pts.len() as u64);
        out
    }

    /// Batched classify at one radius, single-epoch and
    /// allocation-shaped like [`assign_batch`](Self::assign_batch).
    pub fn classify_batch(&self, pts: &[P], r: f64) -> Vec<Classification> {
        let t_view = self.obs.view_acquire.start();
        let view = self.view();
        t_view.finish();
        let mut out: Vec<Option<Classification>> = vec![None; pts.len()];
        let tasks: Vec<(&[P], &mut [Option<Classification>])> = pts
            .chunks(QUERY_CHUNK)
            .zip(out.chunks_mut(QUERY_CHUNK))
            .collect();
        let t_kernel = self.obs.kernel.start();
        self.pool.scoped_map(tasks, |_, (chunk, slots)| {
            for (p, slot) in chunk.iter().zip(slots.iter_mut()) {
                *slot = Some(view.classify(p, r));
            }
        });
        t_kernel.finish();
        self.obs.batches.incr();
        self.obs.batch_queries.add(pts.len() as u64);
        out.into_iter()
            .map(|c| c.expect("every slot classified"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcz_engine::EngineConfig;
    use kcz_metric::L2;

    fn stream(n: usize) -> Vec<[f64; 2]> {
        let mut out = Vec::with_capacity(n);
        let mut s = 0xFEED_F00Du64;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for i in 0..n {
            if i % 30 == 29 {
                out.push([4000.0 + next() * 500.0, -2500.0]);
            } else if i % 2 == 0 {
                out.push([next() * 4.0, next() * 4.0]);
            } else {
                out.push([70.0 + next() * 4.0, 70.0 + next() * 4.0]);
            }
        }
        out
    }

    #[test]
    fn refresh_tracks_ingest_and_reuses_unchanged_epochs() {
        let engine = Arc::new(Engine::new(L2, EngineConfig::new(4, 2, 8, 0.5)));
        let query = QueryEngine::new(Arc::clone(&engine));
        let empty = query.view();
        assert!(empty.centers().is_empty());
        engine.ingest(&stream(120));
        // The cached view is stale until a refresh republishes.
        assert!(std::sync::Arc::ptr_eq(&query.view(), &empty));
        let fresh = query.refresh();
        assert_eq!(fresh.epoch(), empty.epoch() + 1);
        assert!(!fresh.centers().is_empty());
        // No new data: refresh is the memoized no-op, same view back.
        let again = query.refresh();
        assert!(std::sync::Arc::ptr_eq(&fresh, &again));
        assert_eq!(engine.solves(), 2, "empty + one data epoch");
    }

    #[test]
    fn batched_answers_equal_scalar_answers() {
        let engine = Arc::new(Engine::new(L2, EngineConfig::new(4, 2, 8, 0.5)));
        engine.ingest(&stream(200));
        let query = QueryEngine::new(Arc::clone(&engine));
        let probes = stream(300);
        let batched = query.assign_batch(&probes);
        assert_eq!(batched.len(), probes.len());
        for (p, b) in probes.iter().zip(&batched) {
            assert_eq!(*b, query.assign(p), "probe {p:?}");
        }
        let r = 5.0;
        let cls = query.classify_batch(&probes, r);
        for (p, c) in probes.iter().zip(&cls) {
            assert_eq!(*c, query.classify(p, r), "probe {p:?}");
        }
    }

    #[test]
    fn instrumented_batches_record_spans_and_counts() {
        use kcz_obs::{MetricsHandle, Registry, TickClock};
        let engine = Arc::new(Engine::new(L2, EngineConfig::new(4, 2, 8, 0.5)));
        let registry = Registry::new();
        let handle = MetricsHandle::with_clock(&registry, Arc::new(TickClock::new(5)));
        let query = QueryEngine::with_metrics(Arc::clone(&engine), &handle);
        engine.ingest(&stream(200));
        query.refresh();
        let probes = stream(300);
        query.assign_batch(&probes);
        query.classify_batch(&probes, 5.0);
        query.assign(&probes[0]);
        assert_eq!(registry.counter_value("query.batches"), Some(2));
        assert_eq!(registry.counter_value("query.batch.queries"), Some(600));
        assert_eq!(registry.counter_value("query.scalar.queries"), Some(1));
        assert_eq!(registry.counter_value("query.refreshes"), Some(1));
        let v = registry.histogram_snapshot("query.batch.view_ns").unwrap();
        let k = registry
            .histogram_snapshot("query.batch.kernel_ns")
            .unwrap();
        assert_eq!(v.count(), 2);
        assert_eq!(k.count(), 2);
        // The tick clock makes span durations deterministic: each span
        // consumes exactly two readings, one tick (5 "ns") apart.
        assert_eq!(v.total_ns(), 10);
        assert_eq!(k.total_ns(), 10);
    }

    #[test]
    fn a_held_view_stays_consistent_across_refreshes() {
        let engine = Arc::new(Engine::new(L2, EngineConfig::new(2, 2, 4, 0.5)));
        engine.ingest(&stream(100));
        let query = QueryEngine::new(Arc::clone(&engine));
        let held = query.refresh();
        let before: Vec<_> = stream(50).iter().map(|p| held.assign(p)).collect();
        engine.ingest(&stream(400));
        query.refresh();
        // The held view still answers from its frozen epoch.
        let after: Vec<_> = stream(50).iter().map(|p| held.assign(p)).collect();
        assert_eq!(before, after);
        // The current view moved on.
        assert!(query.view().epoch() > held.epoch());
    }
}
