//! [`SnapshotView`]: one immutable, epoch-numbered view of a published
//! snapshot, answering point queries against its solved centers.
//!
//! A view is built once from an [`Arc<Snapshot<P>>`] and never mutated:
//! every answer it produces is exact with respect to that frozen epoch,
//! and carries the epoch number plus the certified `3 + 8ε′` bound
//! factor so callers can quote the guarantee the answer was served
//! under.  All distance work routes through the batched
//! [`MetricSpace`] kernels; radius queries against the center set go
//! through a [`NeighborIndex`] built over the centers at view
//! construction.

use kcz_engine::{Backend, Snapshot};
use kcz_metric::{BruteForceIndex, ColumnSet, MetricSpace, NeighborIndex, Precision, Weighted};
use std::sync::Arc;

/// The answer to an [`assign`](SnapshotView::assign) query: which center
/// serves the point, at what distance, under which epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assignment {
    /// Index into the view's center array.
    pub center: usize,
    /// Exact distance to that center (equals the scalar metric distance;
    /// the kernels defer the `sqrt`, they never skip it here).
    pub dist: f64,
    /// The epoch the answer was served from.
    pub epoch: u64,
}

/// The verdict of a [`classify`](SnapshotView::classify) query: covered
/// or outlier at the tested radius, with the epoch's certified bound
/// attached.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Classification {
    /// The epoch the verdict was served from.
    pub epoch: u64,
    /// Nearest center, if the view has any centers.
    pub center: Option<usize>,
    /// Distance to the nearest center (`∞` when the view has none).
    pub dist: f64,
    /// The radius the point was tested against.
    pub radius: f64,
    /// `dist ≤ radius`: the point is served by some center at this
    /// radius.  Always `false` on a center-less view.
    pub covered: bool,
    /// The epoch's certified end-to-end ratio factor, `3 + 8ε′`: the
    /// epoch's solve radius, re-measured on everything ingested, is at
    /// most `bound_factor · opt`.
    pub bound_factor: f64,
    /// The epoch's solver-independent lower bound `r ≤ opt`.
    pub radius_bound: f64,
}

/// An immutable query view over one published engine snapshot.
///
/// Cheap to share (`Arc`), never blocks or is blocked by ingest, and
/// answers are mutually consistent by construction — they all read the
/// same frozen center set.
#[derive(Debug)]
pub struct SnapshotView<P, M: MetricSpace<P>> {
    metric: M,
    snap: Arc<Snapshot<P>>,
    /// Radius queries over the centers: the metric-agnostic kernel-backed
    /// index (center counts are `≤ k`, where brute force *is* the right
    /// index — the scan is one deferred-`sqrt` kernel pass).
    index: BruteForceIndex<P, M>,
    /// Columnar (f64) block of the frozen centers: `assign`, `classify`
    /// and `nearest_centers` serve from the blocked SoA kernels, which
    /// are bit-identical to the AoS scans per the metric crate's
    /// equivalence suite.  `None` for metrics without columnar kernels.
    cols: Option<ColumnSet>,
}

impl<P: Clone, M: MetricSpace<P> + Clone> Clone for SnapshotView<P, M> {
    fn clone(&self) -> Self {
        // Rebuild from the shared snapshot: the view is immutable, so a
        // reconstruction is indistinguishable from a field-wise copy.
        SnapshotView::new(self.metric.clone(), Arc::clone(&self.snap))
    }
}

impl<P: Clone, M: MetricSpace<P> + Clone> SnapshotView<P, M> {
    /// Builds a view over a published snapshot: clones the metric and
    /// indexes the snapshot's centers (AoS index plus the columnar
    /// center block).
    pub fn new(metric: M, snap: Arc<Snapshot<P>>) -> Self {
        let mut index = BruteForceIndex::new(metric.clone());
        for (i, c) in snap.centers.iter().enumerate() {
            index.insert(c, i);
        }
        let cols = metric.build_columns(&snap.centers, Precision::F64);
        SnapshotView {
            metric,
            snap,
            index,
            cols,
        }
    }

    /// Nearest center to `p` — the columnar kernel over the center block
    /// when available, the AoS kernel otherwise (identical bits either
    /// way: exact distances, smallest index on ties).
    fn nearest_center(&self, p: &P) -> Option<(usize, f64)> {
        match &self.cols {
            Some(cols) => self.metric.col_nearest(cols, p),
            None => self.metric.nearest(p, &self.snap.centers),
        }
    }

    /// The epoch this view serves.
    pub fn epoch(&self) -> u64 {
        self.snap.epoch
    }

    /// The underlying published snapshot.
    pub fn snapshot(&self) -> &Arc<Snapshot<P>> {
        &self.snap
    }

    /// The solved centers (the view's whole query surface).
    pub fn centers(&self) -> &[P] {
        &self.snap.centers
    }

    /// The epoch's merged coreset (for re-solves and diagnostics).
    pub fn coreset(&self) -> &[Weighted<P>] {
        &self.snap.coreset
    }

    /// The epoch's greedy solve radius on the merged coreset.
    pub fn radius(&self) -> f64 {
        self.snap.radius
    }

    /// The epoch's lower bound `r ≤ opt`.
    pub fn radius_bound(&self) -> f64 {
        self.snap.radius_bound
    }

    /// The feasible guess `r̂` the epoch's solve settled on
    /// (`radius ≤ 3·r̂`).
    pub fn guess(&self) -> f64 {
        self.snap.guess
    }

    /// Feasibility probes (`disk_greedy` runs) the epoch's solve spent.
    pub fn solve_probes(&self) -> usize {
        self.snap.stats.solve_probes
    }

    /// Probes the delta-aware solve answered from re-certified cached
    /// verdicts (always `0` under the cold solver).
    pub fn reused_verdicts(&self) -> usize {
        self.snap.stats.reused_verdicts
    }

    /// The ε′ the epoch's summary certifies.
    pub fn effective_eps(&self) -> f64 {
        self.snap.effective_eps
    }

    /// The global arrival clock at publish: how many points had entered
    /// ingest when this epoch was cut (each arrival occupies one stamp;
    /// a weighted point occupies one stamp carrying its mass).
    pub fn clock(&self) -> u64 {
        self.snap.clock
    }

    /// The backend mode the epoch was produced under.
    pub fn backend(&self) -> Backend {
        self.snap.backend
    }

    /// The time-windowed query contract: the span `(oldest, newest)` of
    /// live arrival stamps this epoch summarizes.  `Some` only for the
    /// window backend after the first arrival — every answer the view
    /// serves then clusters exactly the last `W` arrivals; `None` means
    /// the epoch summarizes the whole stream (insertion) or its decayed
    /// entirety (decay).
    pub fn window_span(&self) -> Option<(u64, u64)> {
        self.snap.window_span()
    }

    /// The epoch's certified end-to-end ratio factor, `3 + 8ε′`.
    pub fn bound_factor(&self) -> f64 {
        self.snap.bound_factor
    }

    /// Which center serves `p`: the nearest center by the batched
    /// `nearest` kernel (exact distances, smallest index on ties).
    /// `None` when the view has no centers (nothing ingested yet, or the
    /// whole weight fit the outlier budget).
    pub fn assign(&self, p: &P) -> Option<Assignment> {
        self.nearest_center(p).map(|(center, dist)| Assignment {
            center,
            dist,
            epoch: self.snap.epoch,
        })
    }

    /// Covered/outlier verdict for `p` at radius `r`, with the epoch's
    /// certified bound attached.  The verdict compares the *exact*
    /// nearest-center distance against `r` (scalar semantics, so callers
    /// re-checking with `dist` reproduce it bit-for-bit).
    pub fn classify(&self, p: &P, r: f64) -> Classification {
        let near = self.nearest_center(p);
        let (center, dist) = match near {
            Some((c, d)) => (Some(c), d),
            None => (None, f64::INFINITY),
        };
        Classification {
            epoch: self.snap.epoch,
            center,
            dist,
            radius: r,
            covered: center.is_some() && dist <= r,
            bound_factor: self.snap.bound_factor,
            radius_bound: self.snap.radius_bound,
        }
    }

    /// The `j` nearest centers, ascending by distance (ties by index).
    /// Fewer than `j` come back when the view has fewer centers.
    pub fn nearest_centers(&self, p: &P, j: usize) -> Vec<Assignment> {
        let mut dists = Vec::new();
        match &self.cols {
            Some(cols) => self.metric.col_dist_many(cols, p, &mut dists),
            None => self.metric.dist_many(p, &self.snap.centers, &mut dists),
        }
        let mut order: Vec<usize> = (0..dists.len()).collect();
        order.sort_by(|&a, &b| dists[a].total_cmp(&dists[b]).then(a.cmp(&b)));
        order
            .into_iter()
            .take(j)
            .map(|center| Assignment {
                center,
                dist: dists[center],
                epoch: self.snap.epoch,
            })
            .collect()
    }

    /// Indices of all centers within distance `r` of `p`, via the
    /// view's [`NeighborIndex`] (unspecified order; the deferred-`sqrt`
    /// kernel contract of [`MetricSpace`] applies).
    pub fn centers_within(&self, p: &P, r: f64, out: &mut Vec<usize>) {
        self.index.within(p, r, out);
    }

    /// Whether *any* center lies within `r` of `p` — the absorb-style
    /// early-exit cover test on the index.  Follows the deferred-`sqrt`
    /// kernel contract; use [`classify`](Self::classify) when the
    /// boundary must match scalar `dist ≤ r` exactly.
    pub fn covered_fast(&self, p: &P, r: f64) -> bool {
        self.index.absorb_candidate(p, r).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcz_engine::{Engine, EngineConfig};
    use kcz_metric::L2;

    fn view_over(pts: &[[f64; 2]]) -> SnapshotView<[f64; 2], L2> {
        let engine = Engine::new(L2, EngineConfig::new(2, 2, 1, 0.5));
        engine.ingest(pts);
        SnapshotView::new(L2, engine.publish())
    }

    fn two_clusters() -> Vec<[f64; 2]> {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push([i as f64 * 0.1, 0.0]);
            pts.push([100.0 + i as f64 * 0.1, 50.0]);
        }
        pts.push([5000.0, 5000.0]); // the one outlier
        pts
    }

    #[test]
    fn assign_matches_scalar_nearest() {
        let view = view_over(&two_clusters());
        assert_eq!(view.centers().len(), 2);
        for q in [[0.3, 0.2], [99.0, 49.0], [5000.0, 5000.0], [50.0, 25.0]] {
            let a = view.assign(&q).expect("centers exist");
            let brute = view
                .centers()
                .iter()
                .map(|c| L2.dist(&q, c))
                .fold(f64::INFINITY, f64::min);
            assert_eq!(a.dist, brute, "query {q:?}");
            assert_eq!(a.dist, L2.dist(&q, &view.centers()[a.center]));
            assert_eq!(a.epoch, view.epoch());
        }
    }

    #[test]
    fn classify_is_scalar_exact_and_carries_the_bound() {
        let view = view_over(&two_clusters());
        let q = [0.35, 0.0];
        let a = view.assign(&q).unwrap();
        let covered = view.classify(&q, a.dist);
        assert!(covered.covered, "its own distance must cover it");
        assert_eq!(covered.dist, a.dist);
        assert_eq!(covered.bound_factor, view.bound_factor());
        assert!(covered.bound_factor >= 3.0);
        let strict = view.classify(&q, a.dist * 0.5);
        assert!(!strict.covered);
        assert_eq!(strict.center, Some(a.center));
        // The far outlier is an outlier at any in-cluster radius.
        assert!(!view.classify(&[5000.0, 5000.0], 10.0).covered);
    }

    #[test]
    fn nearest_centers_is_sorted_and_prefix_consistent() {
        let view = view_over(&two_clusters());
        let q = [10.0, 5.0];
        let near = view.nearest_centers(&q, 5);
        assert_eq!(near.len(), view.centers().len().min(5));
        for w in near.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
        assert_eq!(near[0].center, view.assign(&q).unwrap().center);
        assert!(view.nearest_centers(&q, 0).is_empty());
    }

    #[test]
    fn centers_within_agrees_with_scalar_scan() {
        let view = view_over(&two_clusters());
        let q = [50.0, 25.0];
        let mut via_index = Vec::new();
        for r in [1.0, 60.0, 1000.0] {
            view.centers_within(&q, r, &mut via_index);
            via_index.sort_unstable();
            let scalar: Vec<usize> = view
                .centers()
                .iter()
                .enumerate()
                .filter(|(_, c)| L2.within(&q, c, r))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(via_index, scalar, "r = {r}");
            assert_eq!(view.covered_fast(&q, r), !scalar.is_empty());
        }
    }

    #[test]
    fn solver_accounting_is_visible() {
        let engine = Engine::new(L2, EngineConfig::new(2, 2, 1, 0.5));
        let pts = two_clusters();
        engine.ingest(&pts);
        engine.publish();
        engine.ingest(&[pts[0]]);
        let view = SnapshotView::new(L2, engine.publish());
        assert!(
            view.solve_probes() + view.reused_verdicts() > 0,
            "a republish must account its radius probes"
        );
        assert!(view.radius() <= 3.0 * view.guess() + 1e-9);
    }

    #[test]
    fn empty_view_answers_none_everywhere() {
        let engine = Engine::<[f64; 2], _>::new(L2, EngineConfig::new(2, 2, 3, 0.5));
        let view = SnapshotView::new(L2, engine.publish());
        assert!(view.centers().is_empty());
        assert_eq!(view.assign(&[1.0, 2.0]), None);
        let c = view.classify(&[1.0, 2.0], f64::INFINITY);
        assert!(!c.covered, "a center-less view covers nothing");
        assert_eq!(c.center, None);
        assert!(c.dist.is_infinite());
        assert!(view.nearest_centers(&[0.0, 0.0], 3).is_empty());
    }
}
