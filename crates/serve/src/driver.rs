//! [`LoadDriver`]: deterministic replay of mixed read/write traces
//! against an engine + query front, with throughput and latency
//! accounting.
//!
//! The driver consumes a [`TraceOp`] sequence (see
//! [`kcz_workloads::mixed_trace`]): writes accumulate into
//! `ingest_batch`-sized flushes, reads are served from the current
//! published view, and every `refresh_every` ops the view is
//! republished.  All scheduling knobs are part of [`DriverConfig`], so a
//! replay is **deterministic end to end**: the same trace and config
//! produce bit-identical answers — pinned by
//! [`DriverReport::answer_digest`], a seed-stable FNV fold over every
//! served `(epoch, center, dist)`.  Wall-clock numbers (throughput, the
//! latency histograms) are measured, not pinned.

use kcz_engine::Engine;
use kcz_metric::{MetricSpace, SpaceUsage};
use kcz_obs::MetricsHandle;
use kcz_workloads::{ShardKey, TraceOp};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::query::QueryEngine;

/// Replay knobs of one [`LoadDriver`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriverConfig {
    /// Writes accumulate into batches of this size before being flushed
    /// into the engine (the tail is flushed at end of trace).
    pub ingest_batch: usize,
    /// Republish cadence in trace ops; `0` refreshes only at the end of
    /// the trace, so every query is served from the initial view.
    pub refresh_every: u64,
    /// `Some(r)`: queries are `classify(p, r)` verdicts; `None`: queries
    /// are `assign(p)` lookups.
    pub classify_radius: Option<f64>,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            ingest_batch: 256,
            refresh_every: 1024,
            classify_radius: None,
        }
    }
}

// The power-of-two latency histogram was born here and moved to the
// observability crate once it grew shard-merging; this re-export keeps
// every `kcz_serve::driver::LatencyHistogram` (and `kcz_serve::…`)
// caller compiling against the single shared implementation.
pub use kcz_obs::LatencyHistogram;

/// What one replay did and how fast it went.
#[derive(Debug, Clone)]
pub struct DriverReport {
    /// Total trace ops replayed.
    pub ops: u64,
    /// Points written into the engine.
    pub ingested: u64,
    /// Queries served.
    pub queries: u64,
    /// Ingest flushes performed.
    pub flushes: u64,
    /// View refreshes performed (including the final one).
    pub refreshes: u64,
    /// The epoch current when the replay finished.
    pub final_epoch: u64,
    /// Seed-stable FNV digest over every served answer
    /// `(epoch, center, dist-bits)` — the determinism pin: same trace +
    /// same config ⇒ same digest, on any host.
    pub answer_digest: u64,
    /// Wall-clock for the whole replay.
    pub elapsed: Duration,
    /// Per-query serve latency.
    pub query_latency: LatencyHistogram,
    /// Per-flush ingest latency.
    pub ingest_latency: LatencyHistogram,
}

impl DriverReport {
    /// Served queries per second over the whole replay (0 when instant).
    pub fn queries_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.queries as f64 / secs
        } else {
            0.0
        }
    }
}

/// FNV-1a fold of one answer into the digest.
fn fold(digest: &mut u64, words: [u64; 3]) {
    for w in words {
        for b in w.to_le_bytes() {
            *digest ^= b as u64;
            *digest = digest.wrapping_mul(0x100000001b3);
        }
    }
}

/// Replays mixed read/write traces against one engine + query front.
pub struct LoadDriver<P, M: MetricSpace<P>> {
    query: QueryEngine<P, M>,
    cfg: DriverConfig,
    metrics: MetricsHandle,
}

impl<P, M> LoadDriver<P, M>
where
    P: Clone + PartialEq + SpaceUsage + ShardKey + Send + Sync,
    M: MetricSpace<P> + Clone,
{
    /// A driver over the given engine, with its own query front.
    pub fn new(engine: Arc<Engine<P, M>>, cfg: DriverConfig) -> Self {
        Self::with_metrics(engine, cfg, &MetricsHandle::disabled())
    }

    /// A driver whose replays publish their accounting through the
    /// registry behind `metrics`: the local latency histograms merge
    /// into `driver.query_ns` / `driver.ingest_ns` at the end of each
    /// run (recording stays single-writer and allocation-free in the
    /// loop), counters accumulate across runs, and the query front is
    /// instrumented too.
    pub fn with_metrics(
        engine: Arc<Engine<P, M>>,
        cfg: DriverConfig,
        metrics: &MetricsHandle,
    ) -> Self {
        assert!(cfg.ingest_batch >= 1, "ingest batch must be at least 1");
        LoadDriver {
            query: QueryEngine::with_metrics(engine, metrics),
            cfg,
            metrics: metrics.clone(),
        }
    }

    /// The query front the driver serves reads through (shareable with
    /// concurrent readers while a replay runs).
    pub fn query_engine(&self) -> &QueryEngine<P, M> {
        &self.query
    }

    /// Replays the trace: writes batch up and flush at `ingest_batch`,
    /// reads serve from the current view, the view republishes every
    /// `refresh_every` ops and once more at the end.  Returns the full
    /// accounting.
    pub fn run(&self, trace: &[TraceOp<P>]) -> DriverReport {
        let cfg = self.cfg;
        let t0 = Instant::now();
        let mut pending: Vec<P> = Vec::with_capacity(cfg.ingest_batch);
        let mut report = DriverReport {
            ops: 0,
            ingested: 0,
            queries: 0,
            flushes: 0,
            refreshes: 0,
            final_epoch: 0,
            answer_digest: 0xcbf29ce484222325,
            elapsed: Duration::ZERO,
            query_latency: LatencyHistogram::default(),
            ingest_latency: LatencyHistogram::default(),
        };
        for op in trace {
            report.ops += 1;
            match op {
                TraceOp::Ingest(p) => {
                    pending.push(p.clone());
                    if pending.len() >= cfg.ingest_batch {
                        self.flush(&mut pending, &mut report);
                    }
                }
                TraceOp::Query(p) => {
                    let q0 = Instant::now();
                    match cfg.classify_radius {
                        Some(r) => {
                            let c = self.query.classify(p, r);
                            fold(
                                &mut report.answer_digest,
                                [
                                    c.epoch,
                                    c.center.map_or(u64::MAX, |i| i as u64),
                                    (c.covered as u64) << 63 | c.dist.to_bits() >> 1,
                                ],
                            );
                        }
                        None => {
                            let a = self.query.assign(p);
                            match a {
                                Some(a) => fold(
                                    &mut report.answer_digest,
                                    [a.epoch, a.center as u64, a.dist.to_bits()],
                                ),
                                None => fold(&mut report.answer_digest, [0, u64::MAX, 0]),
                            }
                        }
                    }
                    report.query_latency.record(q0.elapsed());
                    report.queries += 1;
                }
            }
            if cfg.refresh_every > 0 && report.ops.is_multiple_of(cfg.refresh_every) {
                self.query.refresh();
                report.refreshes += 1;
            }
        }
        self.flush(&mut pending, &mut report);
        let last = self.query.refresh();
        report.refreshes += 1;
        report.final_epoch = last.epoch();
        report.elapsed = t0.elapsed();
        self.publish_metrics(&report);
        report
    }

    /// Folds one finished replay into the registry (no-op when the
    /// driver was built without metrics).
    fn publish_metrics(&self, report: &DriverReport) {
        if !self.metrics.enabled() {
            return;
        }
        self.metrics
            .histogram("driver.query_ns")
            .merge_from(&report.query_latency);
        self.metrics
            .histogram("driver.ingest_ns")
            .merge_from(&report.ingest_latency);
        self.metrics.counter("driver.ops").add(report.ops);
        self.metrics.counter("driver.ingested").add(report.ingested);
        self.metrics.counter("driver.queries").add(report.queries);
        self.metrics.counter("driver.flushes").add(report.flushes);
        self.metrics
            .counter("driver.refreshes")
            .add(report.refreshes);
        self.metrics
            .gauge("driver.final_epoch")
            .set(report.final_epoch);
    }

    fn flush(&self, pending: &mut Vec<P>, report: &mut DriverReport) {
        if pending.is_empty() {
            return;
        }
        let f0 = Instant::now();
        self.query.engine().ingest(pending);
        report.ingest_latency.record(f0.elapsed());
        report.ingested += pending.len() as u64;
        report.flushes += 1;
        pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcz_engine::EngineConfig;
    use kcz_metric::{total_weight, L2};
    use kcz_workloads::{mixed_trace, query_trace};

    fn sites() -> Vec<[f64; 2]> {
        vec![[0.0, 0.0], [300.0, 0.0], [0.0, 300.0], [300.0, 300.0]]
    }

    fn trace(n_writes: usize, n_reads: usize, seed: u64) -> Vec<TraceOp<[f64; 2]>> {
        let writes = query_trace(n_writes, &sites(), 0.8, 2.0, 0.02, seed);
        let reads = query_trace(n_reads, &sites(), 1.1, 3.0, 0.1, seed ^ 0xFF);
        mixed_trace(&writes, &reads, seed ^ 0xABCD)
    }

    fn engine() -> Arc<Engine<[f64; 2], L2>> {
        Arc::new(Engine::new(L2, EngineConfig::new(4, 4, 16, 0.5)))
    }

    #[test]
    fn replay_accounts_every_op_and_conserves_weight() {
        let t = trace(400, 300, 3);
        let driver = LoadDriver::new(
            engine(),
            DriverConfig {
                ingest_batch: 64,
                refresh_every: 100,
                classify_radius: None,
            },
        );
        let report = driver.run(&t);
        assert_eq!(report.ops, 700);
        assert_eq!(report.ingested, 400);
        assert_eq!(report.queries, 300);
        assert_eq!(report.query_latency.count(), 300);
        assert!(report.flushes >= 400 / 64);
        assert!(report.refreshes >= 7);
        assert!(report.final_epoch >= 1);
        // Weight conservation through the whole replay.
        let snap = driver.query_engine().engine().publish();
        assert_eq!(total_weight(&snap.coreset), 400);
        assert_eq!(snap.epoch, report.final_epoch);
    }

    #[test]
    fn same_trace_same_config_same_digest() {
        let t = trace(300, 200, 9);
        let cfg = DriverConfig {
            ingest_batch: 32,
            refresh_every: 64,
            classify_radius: None,
        };
        let a = LoadDriver::new(engine(), cfg).run(&t);
        let b = LoadDriver::new(engine(), cfg).run(&t);
        assert_eq!(a.answer_digest, b.answer_digest);
        assert_eq!(a.final_epoch, b.final_epoch);
        assert_eq!((a.flushes, a.refreshes), (b.flushes, b.refreshes));
        // A different refresh cadence serves from different epochs — the
        // digest is allowed to move, the accounting must not.
        let c = LoadDriver::new(
            engine(),
            DriverConfig {
                refresh_every: 16,
                ..cfg
            },
        )
        .run(&t);
        assert_eq!(c.ingested, a.ingested);
        assert_eq!(c.queries, a.queries);
    }

    #[test]
    fn classify_mode_replays_deterministically() {
        let t = trace(200, 200, 17);
        let cfg = DriverConfig {
            ingest_batch: 50,
            refresh_every: 40,
            classify_radius: Some(25.0),
        };
        let a = LoadDriver::new(engine(), cfg).run(&t);
        let b = LoadDriver::new(engine(), cfg).run(&t);
        assert_eq!(a.answer_digest, b.answer_digest);
        assert_eq!(a.queries, 200);
    }

    #[test]
    fn windowed_engine_replay_forgets_old_phases_and_stays_deterministic() {
        // A phase-shift trace against a sliding-window engine: by the
        // final refresh the window holds only last-regime arrivals, so
        // every served center must be a last-regime location — the
        // staleness an insertion-only engine would keep serving forever.
        use kcz_workloads::phase_shift_stream;
        let writes = phase_shift_stream(3, 200, 1.0, 5000.0, 21);
        let last_phase = &writes[400..];
        let reads: Vec<[f64; 2]> = last_phase.iter().step_by(10).copied().collect();
        let t = mixed_trace(&writes, &reads, 0x51D);
        let window = 200u64;
        let mk = || {
            Arc::new(Engine::new(
                L2,
                EngineConfig::new(4, 1, 2, 0.5).windowed(window),
            ))
        };
        let cfg = DriverConfig {
            ingest_batch: 64,
            refresh_every: 128,
            classify_radius: None,
        };
        let a = LoadDriver::new(mk(), cfg).run(&t);
        assert_eq!(a.ingested, 600);
        assert_eq!(a.queries, reads.len() as u64);
        // Same trace, same config, same windowed engine ⇒ same digest.
        let b = LoadDriver::new(mk(), cfg).run(&t);
        assert_eq!(a.answer_digest, b.answer_digest);
        assert_eq!(a.final_epoch, b.final_epoch);
        // The final view window spans exactly the last `window` stamps,
        // and its centers live in the last regime (x ≈ 5000, y ≈ 5000).
        let driver = LoadDriver::new(mk(), cfg);
        driver.run(&t);
        let view = driver.query_engine().view();
        assert_eq!(view.window_span(), Some((600 - window + 1, 600)));
        for c in view.centers() {
            assert!(
                c[0] > 4000.0 && c[1] > 4000.0,
                "stale center {c:?} served from an expired phase"
            );
        }
    }

    // The LatencyHistogram unit tests moved to `kcz-obs` with the type;
    // what stays here is the driver's use of it through the registry.
    #[test]
    fn instrumented_replay_publishes_exact_accounting() {
        use kcz_obs::Registry;
        let t = trace(400, 300, 3);
        let registry = Registry::new();
        let handle = MetricsHandle::new(&registry);
        let driver = LoadDriver::with_metrics(
            engine(),
            DriverConfig {
                ingest_batch: 64,
                refresh_every: 100,
                classify_radius: None,
            },
            &handle,
        );
        let report = driver.run(&t);
        // Registry accounting mirrors the report exactly.
        assert_eq!(registry.counter_value("driver.ops"), Some(report.ops));
        assert_eq!(
            registry.counter_value("driver.queries"),
            Some(report.queries)
        );
        assert_eq!(
            registry.counter_value("driver.ingested"),
            Some(report.ingested)
        );
        assert_eq!(
            registry.counter_value("driver.flushes"),
            Some(report.flushes)
        );
        assert_eq!(
            registry.gauge_value("driver.final_epoch"),
            Some(report.final_epoch)
        );
        let q = registry.histogram_snapshot("driver.query_ns").unwrap();
        assert_eq!(q.count(), report.query_latency.count());
        assert_eq!(q.total_ns(), report.query_latency.total_ns());
        // A second run merges on top rather than resetting.
        let report2 = driver.run(&t);
        assert_eq!(
            registry.counter_value("driver.ops"),
            Some(report.ops + report2.ops)
        );
        assert_eq!(
            registry
                .histogram_snapshot("driver.query_ns")
                .unwrap()
                .count(),
            report.query_latency.count() + report2.query_latency.count()
        );
    }
}
