//! [`LoadDriver`]: deterministic replay of mixed read/write traces
//! against an engine + query front, with throughput and latency
//! accounting.
//!
//! The driver consumes a [`TraceOp`] sequence (see
//! [`kcz_workloads::mixed_trace`]): writes accumulate into
//! `ingest_batch`-sized flushes, reads are served from the current
//! published view, and every `refresh_every` ops the view is
//! republished.  All scheduling knobs are part of [`DriverConfig`], so a
//! replay is **deterministic end to end**: the same trace and config
//! produce bit-identical answers — pinned by
//! [`DriverReport::answer_digest`], a seed-stable FNV fold over every
//! served `(epoch, center, dist)`.  Wall-clock numbers (throughput, the
//! latency histograms) are measured, not pinned.

use kcz_engine::Engine;
use kcz_metric::{MetricSpace, SpaceUsage};
use kcz_workloads::{ShardKey, TraceOp};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::query::QueryEngine;

/// Replay knobs of one [`LoadDriver`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriverConfig {
    /// Writes accumulate into batches of this size before being flushed
    /// into the engine (the tail is flushed at end of trace).
    pub ingest_batch: usize,
    /// Republish cadence in trace ops; `0` refreshes only at the end of
    /// the trace, so every query is served from the initial view.
    pub refresh_every: u64,
    /// `Some(r)`: queries are `classify(p, r)` verdicts; `None`: queries
    /// are `assign(p)` lookups.
    pub classify_radius: Option<f64>,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            ingest_batch: 256,
            refresh_every: 1024,
            classify_radius: None,
        }
    }
}

/// Power-of-two latency histogram: bucket `i` counts observations in
/// `[2^i, 2^{i+1})` nanoseconds, except bucket 0, which spans `[0, 2)`
/// so zero-duration observations are counted rather than misfiled.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
    total_ns: u128,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; 64],
            count: 0,
            total_ns: 0,
            max_ns: 0,
        }
    }
}

impl LatencyHistogram {
    /// Records one observation.  0 ns and 1 ns land in bucket 0;
    /// observations past `u64::MAX` ns saturate into the top bucket.
    pub fn record(&mut self, latency: Duration) {
        let ns = latency.as_nanos().min(u64::MAX as u128) as u64;
        let bucket = (63 - (ns | 1).leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.total_ns / self.count as u128) as u64
        }
    }

    /// Largest observation in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Upper bucket bound covering quantile `q ∈ [0, 1]` — e.g.
    /// `quantile_ns(0.99)` is an upper bound on the p99 latency, at
    /// power-of-two resolution, never past the largest observation
    /// (so `quantile_ns(1.0) == max_ns()`).  0 when empty; `q` outside
    /// `[0, 1]` is clamped.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Nudge below the exact product before ceiling: a q·count that
        // lands on an integer boundary must select that rank, not the
        // next one up (0.99·100 computes as 99.000…01 in binary and
        // used to round to rank 100 — the p99 of 99 fast observations
        // and one slow one reported the slow one).
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64) - 1e-9)
            .ceil()
            .max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                // Inclusive bucket upper bound; 2^64 − 1 for the top
                // bucket (the old `1 << 63` understated any observation
                // past 2^63), clamped to the largest observation.
                let upper = ((1u128 << (i + 1)) - 1).min(u64::MAX as u128) as u64;
                return upper.min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Raw bucket counts (bucket `i` spans `[2^i, 2^{i+1})` ns;
    /// bucket 0 spans `[0, 2)`).
    pub fn buckets(&self) -> &[u64; 64] {
        &self.buckets
    }
}

/// What one replay did and how fast it went.
#[derive(Debug, Clone)]
pub struct DriverReport {
    /// Total trace ops replayed.
    pub ops: u64,
    /// Points written into the engine.
    pub ingested: u64,
    /// Queries served.
    pub queries: u64,
    /// Ingest flushes performed.
    pub flushes: u64,
    /// View refreshes performed (including the final one).
    pub refreshes: u64,
    /// The epoch current when the replay finished.
    pub final_epoch: u64,
    /// Seed-stable FNV digest over every served answer
    /// `(epoch, center, dist-bits)` — the determinism pin: same trace +
    /// same config ⇒ same digest, on any host.
    pub answer_digest: u64,
    /// Wall-clock for the whole replay.
    pub elapsed: Duration,
    /// Per-query serve latency.
    pub query_latency: LatencyHistogram,
    /// Per-flush ingest latency.
    pub ingest_latency: LatencyHistogram,
}

impl DriverReport {
    /// Served queries per second over the whole replay (0 when instant).
    pub fn queries_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.queries as f64 / secs
        } else {
            0.0
        }
    }
}

/// FNV-1a fold of one answer into the digest.
fn fold(digest: &mut u64, words: [u64; 3]) {
    for w in words {
        for b in w.to_le_bytes() {
            *digest ^= b as u64;
            *digest = digest.wrapping_mul(0x100000001b3);
        }
    }
}

/// Replays mixed read/write traces against one engine + query front.
pub struct LoadDriver<P, M: MetricSpace<P>> {
    query: QueryEngine<P, M>,
    cfg: DriverConfig,
}

impl<P, M> LoadDriver<P, M>
where
    P: Clone + PartialEq + SpaceUsage + ShardKey + Send + Sync,
    M: MetricSpace<P> + Clone,
{
    /// A driver over the given engine, with its own query front.
    pub fn new(engine: Arc<Engine<P, M>>, cfg: DriverConfig) -> Self {
        assert!(cfg.ingest_batch >= 1, "ingest batch must be at least 1");
        LoadDriver {
            query: QueryEngine::new(engine),
            cfg,
        }
    }

    /// The query front the driver serves reads through (shareable with
    /// concurrent readers while a replay runs).
    pub fn query_engine(&self) -> &QueryEngine<P, M> {
        &self.query
    }

    /// Replays the trace: writes batch up and flush at `ingest_batch`,
    /// reads serve from the current view, the view republishes every
    /// `refresh_every` ops and once more at the end.  Returns the full
    /// accounting.
    pub fn run(&self, trace: &[TraceOp<P>]) -> DriverReport {
        let cfg = self.cfg;
        let t0 = Instant::now();
        let mut pending: Vec<P> = Vec::with_capacity(cfg.ingest_batch);
        let mut report = DriverReport {
            ops: 0,
            ingested: 0,
            queries: 0,
            flushes: 0,
            refreshes: 0,
            final_epoch: 0,
            answer_digest: 0xcbf29ce484222325,
            elapsed: Duration::ZERO,
            query_latency: LatencyHistogram::default(),
            ingest_latency: LatencyHistogram::default(),
        };
        for op in trace {
            report.ops += 1;
            match op {
                TraceOp::Ingest(p) => {
                    pending.push(p.clone());
                    if pending.len() >= cfg.ingest_batch {
                        self.flush(&mut pending, &mut report);
                    }
                }
                TraceOp::Query(p) => {
                    let q0 = Instant::now();
                    match cfg.classify_radius {
                        Some(r) => {
                            let c = self.query.classify(p, r);
                            fold(
                                &mut report.answer_digest,
                                [
                                    c.epoch,
                                    c.center.map_or(u64::MAX, |i| i as u64),
                                    (c.covered as u64) << 63 | c.dist.to_bits() >> 1,
                                ],
                            );
                        }
                        None => {
                            let a = self.query.assign(p);
                            match a {
                                Some(a) => fold(
                                    &mut report.answer_digest,
                                    [a.epoch, a.center as u64, a.dist.to_bits()],
                                ),
                                None => fold(&mut report.answer_digest, [0, u64::MAX, 0]),
                            }
                        }
                    }
                    report.query_latency.record(q0.elapsed());
                    report.queries += 1;
                }
            }
            if cfg.refresh_every > 0 && report.ops.is_multiple_of(cfg.refresh_every) {
                self.query.refresh();
                report.refreshes += 1;
            }
        }
        self.flush(&mut pending, &mut report);
        let last = self.query.refresh();
        report.refreshes += 1;
        report.final_epoch = last.epoch();
        report.elapsed = t0.elapsed();
        report
    }

    fn flush(&self, pending: &mut Vec<P>, report: &mut DriverReport) {
        if pending.is_empty() {
            return;
        }
        let f0 = Instant::now();
        self.query.engine().ingest(pending);
        report.ingest_latency.record(f0.elapsed());
        report.ingested += pending.len() as u64;
        report.flushes += 1;
        pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcz_engine::EngineConfig;
    use kcz_metric::{total_weight, L2};
    use kcz_workloads::{mixed_trace, query_trace};

    fn sites() -> Vec<[f64; 2]> {
        vec![[0.0, 0.0], [300.0, 0.0], [0.0, 300.0], [300.0, 300.0]]
    }

    fn trace(n_writes: usize, n_reads: usize, seed: u64) -> Vec<TraceOp<[f64; 2]>> {
        let writes = query_trace(n_writes, &sites(), 0.8, 2.0, 0.02, seed);
        let reads = query_trace(n_reads, &sites(), 1.1, 3.0, 0.1, seed ^ 0xFF);
        mixed_trace(&writes, &reads, seed ^ 0xABCD)
    }

    fn engine() -> Arc<Engine<[f64; 2], L2>> {
        Arc::new(Engine::new(L2, EngineConfig::new(4, 4, 16, 0.5)))
    }

    #[test]
    fn replay_accounts_every_op_and_conserves_weight() {
        let t = trace(400, 300, 3);
        let driver = LoadDriver::new(
            engine(),
            DriverConfig {
                ingest_batch: 64,
                refresh_every: 100,
                classify_radius: None,
            },
        );
        let report = driver.run(&t);
        assert_eq!(report.ops, 700);
        assert_eq!(report.ingested, 400);
        assert_eq!(report.queries, 300);
        assert_eq!(report.query_latency.count(), 300);
        assert!(report.flushes >= 400 / 64);
        assert!(report.refreshes >= 7);
        assert!(report.final_epoch >= 1);
        // Weight conservation through the whole replay.
        let snap = driver.query_engine().engine().publish();
        assert_eq!(total_weight(&snap.coreset), 400);
        assert_eq!(snap.epoch, report.final_epoch);
    }

    #[test]
    fn same_trace_same_config_same_digest() {
        let t = trace(300, 200, 9);
        let cfg = DriverConfig {
            ingest_batch: 32,
            refresh_every: 64,
            classify_radius: None,
        };
        let a = LoadDriver::new(engine(), cfg).run(&t);
        let b = LoadDriver::new(engine(), cfg).run(&t);
        assert_eq!(a.answer_digest, b.answer_digest);
        assert_eq!(a.final_epoch, b.final_epoch);
        assert_eq!((a.flushes, a.refreshes), (b.flushes, b.refreshes));
        // A different refresh cadence serves from different epochs — the
        // digest is allowed to move, the accounting must not.
        let c = LoadDriver::new(
            engine(),
            DriverConfig {
                refresh_every: 16,
                ..cfg
            },
        )
        .run(&t);
        assert_eq!(c.ingested, a.ingested);
        assert_eq!(c.queries, a.queries);
    }

    #[test]
    fn classify_mode_replays_deterministically() {
        let t = trace(200, 200, 17);
        let cfg = DriverConfig {
            ingest_batch: 50,
            refresh_every: 40,
            classify_radius: Some(25.0),
        };
        let a = LoadDriver::new(engine(), cfg).run(&t);
        let b = LoadDriver::new(engine(), cfg).run(&t);
        assert_eq!(a.answer_digest, b.answer_digest);
        assert_eq!(a.queries, 200);
    }

    #[test]
    fn windowed_engine_replay_forgets_old_phases_and_stays_deterministic() {
        // A phase-shift trace against a sliding-window engine: by the
        // final refresh the window holds only last-regime arrivals, so
        // every served center must be a last-regime location — the
        // staleness an insertion-only engine would keep serving forever.
        use kcz_workloads::phase_shift_stream;
        let writes = phase_shift_stream(3, 200, 1.0, 5000.0, 21);
        let last_phase = &writes[400..];
        let reads: Vec<[f64; 2]> = last_phase.iter().step_by(10).copied().collect();
        let t = mixed_trace(&writes, &reads, 0x51D);
        let window = 200u64;
        let mk = || {
            Arc::new(Engine::new(
                L2,
                EngineConfig::new(4, 1, 2, 0.5).windowed(window),
            ))
        };
        let cfg = DriverConfig {
            ingest_batch: 64,
            refresh_every: 128,
            classify_radius: None,
        };
        let a = LoadDriver::new(mk(), cfg).run(&t);
        assert_eq!(a.ingested, 600);
        assert_eq!(a.queries, reads.len() as u64);
        // Same trace, same config, same windowed engine ⇒ same digest.
        let b = LoadDriver::new(mk(), cfg).run(&t);
        assert_eq!(a.answer_digest, b.answer_digest);
        assert_eq!(a.final_epoch, b.final_epoch);
        // The final view window spans exactly the last `window` stamps,
        // and its centers live in the last regime (x ≈ 5000, y ≈ 5000).
        let driver = LoadDriver::new(mk(), cfg);
        driver.run(&t);
        let view = driver.query_engine().view();
        assert_eq!(view.window_span(), Some((600 - window + 1, 600)));
        for c in view.centers() {
            assert!(
                c[0] > 4000.0 && c[1] > 4000.0,
                "stale center {c:?} served from an expired phase"
            );
        }
    }

    #[test]
    fn histogram_quantiles_are_ordered() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.quantile_ns(0.5), 0);
        for ns in [100u64, 200, 400, 800, 1600, 3200, 1_000_000] {
            h.record(Duration::from_nanos(ns));
        }
        assert_eq!(h.count(), 7);
        assert!(h.quantile_ns(0.5) <= h.quantile_ns(0.99));
        assert!(h.quantile_ns(0.99) <= h.max_ns().next_power_of_two());
        assert!(h.mean_ns() > 0);
        assert_eq!(h.max_ns(), 1_000_000);
        assert_eq!(h.buckets().iter().sum::<u64>(), 7);
    }

    #[test]
    fn histogram_edge_observations_are_counted_not_misfiled() {
        let mut h = LatencyHistogram::default();
        // 0 ns and 1 ns both land in bucket 0 ([0, 2) ns)…
        h.record(Duration::from_nanos(0));
        h.record(Duration::from_nanos(1));
        // …and the largest representable observation saturates into the
        // top bucket.
        h.record(Duration::from_nanos(u64::MAX));
        assert_eq!(h.count(), 3);
        assert_eq!(h.buckets()[0], 2);
        assert_eq!(h.buckets()[63], 1);
        assert_eq!(h.max_ns(), u64::MAX);
        // q = 0 bounds the smallest observation's bucket; q = 1 returns
        // the largest actual observation, not 2^63 (the old top-bucket
        // understatement).  Out-of-range q clamps instead of panicking.
        assert_eq!(h.quantile_ns(0.0), 1);
        assert_eq!(h.quantile_ns(1.0), u64::MAX);
        assert_eq!(h.quantile_ns(-1.0), 1);
        assert_eq!(h.quantile_ns(2.0), u64::MAX);
        assert_eq!(h.mean_ns(), ((u64::MAX as u128 + 1) / 3) as u64);
    }

    #[test]
    fn histogram_quantile_rank_hits_exact_count_boundaries() {
        // 99 fast observations and one slow one: p99 must select rank
        // 99 (a fast one), not round 0.99·100 up to rank 100 (the slow
        // one).
        let mut h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(Duration::from_nanos(10));
        }
        h.record(Duration::from_micros(100));
        assert_eq!(h.quantile_ns(0.99), 15); // [8, 16) bucket bound
        assert_eq!(h.quantile_ns(0.991), 100_000); // clamped to max_ns

        // p50 of two observations is the lower one (rank 1 of 2).
        let mut h2 = LatencyHistogram::default();
        h2.record(Duration::from_nanos(10));
        h2.record(Duration::from_nanos(1000));
        assert_eq!(h2.quantile_ns(0.5), 15);
        assert_eq!(h2.quantile_ns(1.0), 1000);
    }
}
