//! Deterministic barrier-scheduled read/write test: writers ingest
//! through snapshot refreshes while readers query — every served answer
//! must be consistent with *some* published epoch (no torn snapshot),
//! and the write side's weight-conservation invariant must survive the
//! whole run.
//!
//! The schedule is fixed: `ROUNDS` barrier-separated rounds; in each
//! round every writer ingests its preassigned batch, a refresher
//! republishes the view, and every reader answers its preassigned probe
//! set from whatever view it acquires.  Which thread runs first within a
//! round is up to the scheduler — exactly the nondeterminism the serving
//! contract must tolerate.  Consistency is checked per answer: the
//! reader re-derives the answer by brute force *on the view it used*
//! (same frozen epoch), so any torn or cross-epoch state shows up as a
//! mismatch; epochs observed across the run must never regress below an
//! epoch the reader already saw.

use kcz_engine::{Engine, EngineConfig};
use kcz_metric::{total_weight, MetricSpace, L2};
use kcz_serve::QueryEngine;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

const WRITERS: usize = 3;
const READERS: usize = 2;
const ROUNDS: usize = 6;
const BATCH: usize = 12;
const PROBES: usize = 15;
const K: usize = 2;
const Z: u64 = 6;

/// Seeded xorshift point source: two integer-grid clusters + far
/// outliers (the same family the engine's own tests use).
fn points(n: usize, mut s: u64) -> Vec<[f64; 2]> {
    s |= 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let (x, y) = ((s >> 8) % 7, (s >> 24) % 7);
            match s % 35 {
                34 => [4000.0 + (s % 5) as f64 * 90.0, -2800.0],
                n if n % 2 == 0 => [x as f64, y as f64],
                _ => [250.0 + x as f64, 250.0 + y as f64],
            }
        })
        .collect()
}

/// An L2 delegate whose `Clone` can be armed to panic.  `refresh`
/// clones the metric while building the fresh view *inside* the view
/// write critical section, so arming this mid-run simulates a writer
/// dying while holding the lock — the poisoned-lock scenario the read
/// path must recover from.
#[derive(Debug)]
struct PanickyL2(Arc<AtomicBool>);

impl Clone for PanickyL2 {
    fn clone(&self) -> Self {
        assert!(
            !self.0.load(Ordering::SeqCst),
            "armed: metric clone blew up mid-refresh"
        );
        PanickyL2(Arc::clone(&self.0))
    }
}

impl MetricSpace<[f64; 2]> for PanickyL2 {
    fn dist(&self, a: &[f64; 2], b: &[f64; 2]) -> f64 {
        L2.dist(a, b)
    }
    fn doubling_dim(&self) -> usize {
        <L2 as MetricSpace<[f64; 2]>>::doubling_dim(&L2)
    }
}

#[test]
fn a_panicking_refresher_does_not_wedge_readers_or_later_refreshers() {
    let armed = Arc::new(AtomicBool::new(false));
    let engine = Arc::new(Engine::new(
        PanickyL2(Arc::clone(&armed)),
        EngineConfig::new(4, K, Z, 0.5),
    ));
    engine.ingest(&points(60, 0xABCD));
    let query = Arc::new(QueryEngine::new(Arc::clone(&engine)));
    let good = query.refresh();
    assert!(!good.centers().is_empty());

    // New data arrives and the engine publishes the new epoch up front
    // (disarmed), so the refresher below takes the memoized publish fast
    // path — its only metric clone is the one `refresh` performs while
    // building the fresh view inside the write critical section.
    engine.ingest(&points(60, 0x1234));
    engine.publish();
    armed.store(true, Ordering::SeqCst);
    let crashed = std::thread::spawn({
        let query = Arc::clone(&query);
        move || {
            query.refresh();
        }
    })
    .join();
    assert!(crashed.is_err(), "the armed clone must panic the refresher");
    armed.store(false, Ordering::SeqCst);

    // Readers recover the poisoned lock and keep serving the last
    // successfully installed view instead of propagating the panic.
    let view = query.view();
    assert_eq!(view.epoch(), good.epoch(), "last good view survives");
    for p in &points(10, 0xEE) {
        assert_eq!(view.assign(p), good.assign(p));
    }

    // The next refresher recovers too, and installs the new epoch.
    let fresh = query.refresh();
    assert!(
        fresh.epoch() > good.epoch(),
        "recovered refresh republishes"
    );
    assert_eq!(
        total_weight(&fresh.snapshot().coreset),
        120,
        "both batches are in the recovered epoch"
    );
    assert_eq!(query.view().epoch(), fresh.epoch());
}

#[test]
fn concurrent_reads_are_consistent_with_a_published_epoch() {
    // Fixed schedule: per-round writer batches and reader probe sets.
    let batches: Vec<Vec<Vec<[f64; 2]>>> = (0..ROUNDS)
        .map(|r| {
            (0..WRITERS)
                .map(|w| points(BATCH, (r * WRITERS + w) as u64 + 0xC0FFEE))
                .collect()
        })
        .collect();
    let probes: Vec<Vec<[f64; 2]>> = (0..READERS)
        .map(|rd| points(PROBES, rd as u64 + 0xBEEF))
        .collect();
    let total = (WRITERS * ROUNDS * BATCH) as u64;

    for trial in 0..3 {
        let engine = Arc::new(Engine::new(L2, EngineConfig::new(4, K, Z, 0.5)));
        let query = QueryEngine::new(Arc::clone(&engine));
        let barrier = Barrier::new(WRITERS + READERS + 1);
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let (engine, batches, barrier) = (&engine, &batches, &barrier);
                scope.spawn(move || {
                    for round in batches.iter() {
                        barrier.wait();
                        engine.ingest(&round[w]);
                    }
                });
            }
            // The refresher republishes mid-burst, every round.
            {
                let (query, barrier) = (&query, &barrier);
                scope.spawn(move || {
                    for _ in 0..ROUNDS {
                        barrier.wait();
                        query.refresh();
                    }
                });
            }
            for rd in 0..READERS {
                let (query, probes, barrier) = (&query, &probes, &barrier);
                scope.spawn(move || {
                    let mut last_epoch = 0u64;
                    for _ in 0..ROUNDS {
                        barrier.wait();
                        // Acquire once, answer the whole probe set under
                        // that single frozen epoch.
                        let view = query.view();
                        assert!(
                            view.epoch() >= last_epoch,
                            "reader {rd}: view regressed from epoch {last_epoch} to {}",
                            view.epoch()
                        );
                        last_epoch = view.epoch();
                        for p in &probes[rd] {
                            let answer = view.assign(p);
                            // Brute-force re-derivation on the same view:
                            // scalar distances over its frozen centers.
                            let brute = view
                                .centers()
                                .iter()
                                .map(|c| L2.dist(p, c))
                                .fold(f64::INFINITY, f64::min);
                            match answer {
                                Some(a) => {
                                    assert_eq!(a.dist, brute, "reader {rd}: torn answer for {p:?}");
                                    assert_eq!(
                                        a.dist,
                                        L2.dist(p, &view.centers()[a.center]),
                                        "reader {rd}: assignment does not point at its center"
                                    );
                                    assert_eq!(a.epoch, view.epoch());
                                    // The classify verdict agrees with the
                                    // assignment on the same view.
                                    let c = view.classify(p, a.dist);
                                    assert!(c.covered);
                                    assert_eq!(c.epoch, view.epoch());
                                    assert_eq!(c.bound_factor, view.bound_factor());
                                }
                                None => {
                                    assert!(
                                        view.centers().is_empty(),
                                        "reader {rd}: no answer despite centers"
                                    );
                                    assert!(brute.is_infinite());
                                }
                            }
                        }
                    }
                });
            }
        });

        // Weight conservation after the storm: every write of every
        // round is in the final published summary.
        let last = query.refresh();
        assert_eq!(
            total_weight(&last.snapshot().coreset),
            total,
            "trial {trial}"
        );
        assert_eq!(engine.points_ingested(), total, "trial {trial}");
        // The final view serves the final epoch, and batched answers on
        // it agree with scalar ones (single-epoch batching contract).
        let all_probes: Vec<[f64; 2]> = probes.iter().flatten().copied().collect();
        let batched = query.assign_batch(&all_probes);
        for (p, b) in all_probes.iter().zip(&batched) {
            assert_eq!(*b, last.assign(p), "trial {trial}: batched vs scalar");
        }
    }
}
