//! Golden fixtures for every generator: output hashes pinned per seed, so
//! any drift in a generator (a reordered RNG draw, a changed constant, a
//! refactor that silently alters the stream) is caught before it
//! invalidates committed conformance goldens and benchmark baselines.
//!
//! Coordinates are quantized to 2⁻¹⁰ before hashing: exact enough that
//! any real change trips the pin, coarse enough to tolerate ulp-level
//! differences in platform `libm` (`ln`/`cos` inside the Gaussian
//! samplers are the only non-IEEE-exact operations the generators use).

use kcz_workloads::{
    annulus, churn_schedule, colinear, drifting_stream, duplicate_heavy, gaussian_clusters,
    grid_clusters, mixed_trace, outlier_burst, query_trace, shuffled, two_scale_clusters,
    uniform_box, TraceOp,
};

/// FNV-1a over the quantized coordinates.
fn qhash<const D: usize>(pts: &[[f64; D]]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |v: i64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for p in pts {
        for &c in p.iter() {
            eat((c * 1024.0).round() as i64);
        }
    }
    h
}

fn ihash<const D: usize>(pts: &[[u64; D]]) -> u64 {
    let as_f: Vec<[f64; D]> = pts
        .iter()
        .map(|p| {
            let mut q = [0.0; D];
            for i in 0..D {
                q[i] = p[i] as f64;
            }
            q
        })
        .collect();
    qhash(&as_f)
}

#[test]
fn gaussian_clusters_pinned() {
    let inst = gaussian_clusters::<2>(3, 20, 1.5, 5, 42);
    assert_eq!(inst.points.len(), 65);
    assert_eq!(qhash(&inst.points), 0x893fa0d578338079);
    // High-dimensional variant (the conformance catalog is 2-D; the
    // generator itself must keep working for any D).
    let hd = gaussian_clusters::<6>(2, 8, 1.0, 3, 7);
    assert_eq!(hd.points.len(), 19);
    assert_eq!(qhash(&hd.points), 0x7db656c9536cc700);
}

#[test]
fn uniform_box_pinned() {
    let pts = uniform_box::<2>(100, 50.0, 1);
    assert_eq!(qhash(&pts), 0x5befc9e915140100);
    let pts3 = uniform_box::<3>(64, 8.0, 9);
    assert_eq!(qhash(&pts3), 0xbe35a24747547459);
}

#[test]
fn grid_clusters_pinned() {
    let pts = grid_clusters::<2>(10, 3, 40, 8, 10, 3);
    assert_eq!(ihash(&pts), 0xe16ac2c151778de9);
}

#[test]
fn annulus_pinned() {
    let pts = annulus(32, [100.0, 100.0], 30.0, 40.0, 9);
    assert_eq!(qhash(&pts), 0x824da40f65370e98);
}

#[test]
fn two_scale_clusters_pinned() {
    let pts = two_scale_clusters(16, 16, 2.0, 120.0, 1500.0, 5);
    assert_eq!(qhash(&pts), 0x1badf61c6e58e1ed);
}

#[test]
fn duplicate_heavy_pinned() {
    let pts = duplicate_heavy(6, 10, 400.0, 0xA4);
    assert_eq!(qhash(&pts), 0x6b8c9d01763ad92d);
}

#[test]
fn colinear_pinned() {
    let pts = colinear(20, [3.0, 4.0], [7.0, -1.0]);
    assert_eq!(qhash(&pts), 0x49ad9184d5aa7f2e);
}

#[test]
fn outlier_burst_pinned() {
    let pts = outlier_burst(54, 6, 25, 4.0, 0xA6);
    assert_eq!(qhash(&pts), 0x873004ce83485c7f);
}

#[test]
fn drifting_stream_pinned() {
    let pts = drifting_stream(200, 2, 1.0, 0.5, 0.1, 11);
    assert_eq!(qhash(&pts), 0x1098d19367f42c99);
}

#[test]
fn query_trace_pinned() {
    let sites: Vec<[f64; 2]> = (0..8)
        .map(|i| [i as f64 * 50.0, (i % 3) as f64 * 40.0])
        .collect();
    let qs = query_trace(128, &sites, 1.1, 2.0, 0.1, 0x51);
    assert_eq!(qs.len(), 128);
    assert_eq!(qhash(&qs), 0x539bb5b397e4fb6d);
}

#[test]
fn mixed_trace_pinned() {
    let ingest: Vec<[f64; 2]> = colinear(40, [0.0, 0.0], [3.0, 1.0]);
    let sites: Vec<[f64; 2]> = vec![[0.0, 0.0], [60.0, 20.0], [117.0, 39.0]];
    let queries = query_trace(24, &sites, 1.0, 1.0, 0.0, 0x52);
    // Flatten ops into points, tagging reads by a coordinate offset the
    // quantizer preserves, so the pin covers both content and schedule.
    let flat: Vec<[f64; 2]> = mixed_trace(&ingest, &queries, 0x53)
        .into_iter()
        .map(|op| match op {
            TraceOp::Ingest(p) => p,
            TraceOp::Query(p) => [p[0] + 100_000.0, p[1]],
        })
        .collect();
    assert_eq!(flat.len(), 64);
    assert_eq!(qhash(&flat), 0xfaa23a4295f4d8af);
}

#[test]
fn shuffle_and_churn_pinned() {
    let base: Vec<[u64; 2]> = (0..40u64).map(|i| [i, i * 3 % 17]).collect();
    assert_eq!(ihash(&shuffled(&base, 3)), 0x09cf2880673a13d1);
    let ops = churn_schedule(&base, 25, 9);
    let flat: Vec<[u64; 2]> = ops
        .iter()
        .map(|op| [op.point[0] * 2 + op.insert as u64, op.point[1]])
        .collect();
    assert_eq!(ihash(&flat), 0x1c0903eace00d81d);
}
