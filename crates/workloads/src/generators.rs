//! Point-set generators with planted structure.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated instance with known ground truth.
#[derive(Debug, Clone)]
pub struct ClusteredInstance<const D: usize> {
    /// All points: first the cluster points, then the outliers.
    pub points: Vec<[f64; D]>,
    /// Number of (non-outlier) cluster points.
    pub n_cluster_points: usize,
    /// Number of planted outliers.
    pub n_outliers: usize,
    /// The planted cluster centers.
    pub centers: Vec<[f64; D]>,
    /// Max distance of any cluster point to its own center — an upper
    /// bound on `opt_{k,z}` when all z outliers are discarded.
    pub planted_radius: f64,
    /// `outlier_flags[i]` is true iff `points[i]` is a planted outlier.
    pub outlier_flags: Vec<bool>,
}

fn dist<const D: usize>(a: &[f64; D], b: &[f64; D]) -> f64 {
    let mut s = 0.0;
    for i in 0..D {
        let d = a[i] - b[i];
        s += d * d;
    }
    s.sqrt()
}

/// Standard-normal sample via Box–Muller (the `rand` crate ships no
/// distributions; `rand_distr` is not among our allowed dependencies).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// `k` Gaussian clusters of `per_cluster` points with standard deviation
/// `sigma`, plus `z` far-away outliers.
///
/// Cluster centers are separated by at least `30σ`, outliers lie at least
/// `15σ` away from every center, so for the intended `(k, z)` the planted
/// structure is the essentially optimal clustering.
pub fn gaussian_clusters<const D: usize>(
    k: usize,
    per_cluster: usize,
    sigma: f64,
    z: usize,
    seed: u64,
) -> ClusteredInstance<D> {
    assert!(k >= 1 && per_cluster >= 1);
    assert!(sigma > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let arena = (k as f64).powf(1.0 / D as f64).ceil() * 60.0 * sigma + 60.0 * sigma;

    // Rejection-sample well-separated centers.
    let mut centers: Vec<[f64; D]> = Vec::with_capacity(k);
    let mut attempts = 0usize;
    while centers.len() < k {
        attempts += 1;
        assert!(attempts < 100_000, "could not separate {k} centers");
        let mut c = [0.0; D];
        for slot in c.iter_mut() {
            *slot = rng.random_range(0.0..arena);
        }
        if centers.iter().all(|e| dist(e, &c) >= 30.0 * sigma) {
            centers.push(c);
        }
    }

    let mut points = Vec::with_capacity(k * per_cluster + z);
    let mut planted_radius = 0.0f64;
    for c in &centers {
        for _ in 0..per_cluster {
            let mut p = *c;
            for slot in p.iter_mut() {
                *slot += sigma * gaussian(&mut rng);
            }
            planted_radius = planted_radius.max(dist(c, &p));
            points.push(p);
        }
    }
    let n_cluster_points = points.len();

    // Outliers: uniform in a larger box, far from every center.
    let mut placed = 0usize;
    attempts = 0;
    while placed < z {
        attempts += 1;
        assert!(attempts < 1_000_000, "could not place {z} outliers");
        let mut p = [0.0; D];
        for slot in p.iter_mut() {
            *slot = rng.random_range(-arena..2.0 * arena);
        }
        if centers.iter().all(|c| dist(c, &p) >= 15.0 * sigma) {
            points.push(p);
            placed += 1;
        }
    }

    let mut outlier_flags = vec![false; points.len()];
    for f in outlier_flags.iter_mut().skip(n_cluster_points) {
        *f = true;
    }
    ClusteredInstance {
        points,
        n_cluster_points,
        n_outliers: z,
        centers,
        planted_radius,
        outlier_flags,
    }
}

/// `n` points uniform in `[0, side]^D`.
pub fn uniform_box<const D: usize>(n: usize, side: f64, seed: u64) -> Vec<[f64; D]> {
    assert!(side > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut p = [0.0; D];
            for slot in p.iter_mut() {
                *slot = rng.random_range(0.0..side);
            }
            p
        })
        .collect()
}

/// Clustered *integer* points in the discrete universe `[0, 2^side_bits)^D`
/// for the fully dynamic experiments: `k` blobs of `per_cluster` points
/// with radius `spread` cells, plus `z` uniform outliers.  Duplicates are
/// removed (Algorithm 5's strict turnstile model counts multiplicities;
/// distinct points keep the schedules simple).
pub fn grid_clusters<const D: usize>(
    side_bits: u32,
    k: usize,
    per_cluster: usize,
    spread: u64,
    z: usize,
    seed: u64,
) -> Vec<[u64; D]> {
    assert!(side_bits >= 2 && (side_bits as usize) * D <= 63);
    let side = 1u64 << side_bits;
    assert!(spread > 0 && spread < side / 4);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<[u64; D]> = Vec::with_capacity(k * per_cluster + z);
    let mut centers = Vec::with_capacity(k);
    for _ in 0..k {
        let mut c = [0u64; D];
        for slot in c.iter_mut() {
            *slot = rng.random_range(spread * 2..side - spread * 2);
        }
        centers.push(c);
    }
    for c in &centers {
        for _ in 0..per_cluster {
            let mut p = *c;
            for slot in p.iter_mut() {
                let offset = rng.random_range(0..=2 * spread) as i64 - spread as i64;
                *slot = (*slot as i64 + offset).clamp(0, side as i64 - 1) as u64;
            }
            out.push(p);
        }
    }
    for _ in 0..z {
        let mut p = [0u64; D];
        for slot in p.iter_mut() {
            *slot = rng.random_range(0..side);
        }
        out.push(p);
    }
    out.sort_unstable();
    out.dedup();
    // Deterministic order again, independent of dedup artifacts.
    let mut rng2 = StdRng::seed_from_u64(seed ^ 0xABCD);
    for i in (1..out.len()).rev() {
        let j = rng2.random_range(0..=i);
        out.swap(i, j);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clusters_have_planted_structure() {
        let inst = gaussian_clusters::<2>(3, 50, 1.0, 7, 42);
        assert_eq!(inst.points.len(), 157);
        assert_eq!(inst.n_cluster_points, 150);
        assert_eq!(inst.n_outliers, 7);
        assert_eq!(inst.centers.len(), 3);
        // Centers well separated.
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert!(dist(&inst.centers[i], &inst.centers[j]) >= 30.0);
            }
        }
        // Outliers far from all centers.
        for (p, &is_out) in inst.points.iter().zip(&inst.outlier_flags) {
            if is_out {
                for c in &inst.centers {
                    assert!(dist(c, p) >= 15.0);
                }
            }
        }
        // Planted radius is plausible for σ=1, 50 points: a few σ.
        assert!(inst.planted_radius > 0.5 && inst.planted_radius < 10.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = gaussian_clusters::<2>(2, 10, 1.0, 3, 7);
        let b = gaussian_clusters::<2>(2, 10, 1.0, 3, 7);
        assert_eq!(a.points, b.points);
        let c = gaussian_clusters::<2>(2, 10, 1.0, 3, 8);
        assert_ne!(a.points, c.points);
    }

    #[test]
    fn uniform_in_bounds() {
        let pts = uniform_box::<3>(500, 10.0, 1);
        assert_eq!(pts.len(), 500);
        for p in &pts {
            for &c in p.iter() {
                assert!((0.0..=10.0).contains(&c));
            }
        }
    }

    #[test]
    fn grid_points_in_universe() {
        let pts = grid_clusters::<2>(10, 3, 40, 8, 10, 3);
        assert!(!pts.is_empty());
        for p in &pts {
            assert!(p[0] < 1024 && p[1] < 1024);
        }
        // Dedup means all distinct.
        let mut sorted = pts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), pts.len());
    }
}
