//! Point-set generators with planted structure.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated instance with known ground truth.
#[derive(Debug, Clone)]
pub struct ClusteredInstance<const D: usize> {
    /// All points: first the cluster points, then the outliers.
    pub points: Vec<[f64; D]>,
    /// Number of (non-outlier) cluster points.
    pub n_cluster_points: usize,
    /// Number of planted outliers.
    pub n_outliers: usize,
    /// The planted cluster centers.
    pub centers: Vec<[f64; D]>,
    /// Max distance of any cluster point to its own center — an upper
    /// bound on `opt_{k,z}` when all z outliers are discarded.
    pub planted_radius: f64,
    /// `outlier_flags[i]` is true iff `points[i]` is a planted outlier.
    pub outlier_flags: Vec<bool>,
}

fn dist<const D: usize>(a: &[f64; D], b: &[f64; D]) -> f64 {
    let mut s = 0.0;
    for i in 0..D {
        let d = a[i] - b[i];
        s += d * d;
    }
    s.sqrt()
}

/// Standard-normal sample via Box–Muller (the `rand` crate ships no
/// distributions; `rand_distr` is not among our allowed dependencies).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// `k` Gaussian clusters of `per_cluster` points with standard deviation
/// `sigma`, plus `z` far-away outliers.
///
/// Cluster centers are separated by at least `30σ`, outliers lie at least
/// `15σ` away from every center, so for the intended `(k, z)` the planted
/// structure is the essentially optimal clustering.
pub fn gaussian_clusters<const D: usize>(
    k: usize,
    per_cluster: usize,
    sigma: f64,
    z: usize,
    seed: u64,
) -> ClusteredInstance<D> {
    assert!(k >= 1 && per_cluster >= 1);
    assert!(sigma > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let arena = (k as f64).powf(1.0 / D as f64).ceil() * 60.0 * sigma + 60.0 * sigma;

    // Rejection-sample well-separated centers.
    let mut centers: Vec<[f64; D]> = Vec::with_capacity(k);
    let mut attempts = 0usize;
    while centers.len() < k {
        attempts += 1;
        assert!(attempts < 100_000, "could not separate {k} centers");
        let mut c = [0.0; D];
        for slot in c.iter_mut() {
            *slot = rng.random_range(0.0..arena);
        }
        if centers.iter().all(|e| dist(e, &c) >= 30.0 * sigma) {
            centers.push(c);
        }
    }

    let mut points = Vec::with_capacity(k * per_cluster + z);
    let mut planted_radius = 0.0f64;
    for c in &centers {
        for _ in 0..per_cluster {
            let mut p = *c;
            for slot in p.iter_mut() {
                *slot += sigma * gaussian(&mut rng);
            }
            planted_radius = planted_radius.max(dist(c, &p));
            points.push(p);
        }
    }
    let n_cluster_points = points.len();

    // Outliers: uniform in a larger box, far from every center.
    let mut placed = 0usize;
    attempts = 0;
    while placed < z {
        attempts += 1;
        assert!(attempts < 1_000_000, "could not place {z} outliers");
        let mut p = [0.0; D];
        for slot in p.iter_mut() {
            *slot = rng.random_range(-arena..2.0 * arena);
        }
        if centers.iter().all(|c| dist(c, &p) >= 15.0 * sigma) {
            points.push(p);
            placed += 1;
        }
    }

    let mut outlier_flags = vec![false; points.len()];
    for f in outlier_flags.iter_mut().skip(n_cluster_points) {
        *f = true;
    }
    ClusteredInstance {
        points,
        n_cluster_points,
        n_outliers: z,
        centers,
        planted_radius,
        outlier_flags,
    }
}

/// `n` points uniform in the annulus `r_inner ≤ ‖p − center‖ ≤ r_outer`
/// (area-uniform, so the ring is not over-dense near the inner radius).
///
/// With `r_inner = 0` this degenerates to a uniform disk, which is handy
/// for building blob-plus-ring composites.  An annulus is adversarial for
/// center-based methods: the optimal 1-center sits in the hole, far from
/// every input point, so discrete-center solvers pay their full factor-2
/// gap against the continuous optimum.
pub fn annulus(n: usize, center: [f64; 2], r_inner: f64, r_outer: f64, seed: u64) -> Vec<[f64; 2]> {
    assert!(0.0 <= r_inner && r_inner <= r_outer && r_outer > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let (lo2, hi2) = (r_inner * r_inner, r_outer * r_outer);
    (0..n)
        .map(|_| {
            let r2 = if hi2 > lo2 {
                rng.random_range(lo2..hi2)
            } else {
                lo2
            };
            let r = r2.sqrt();
            let theta = rng.random_range(0.0..std::f64::consts::TAU);
            [center[0] + r * theta.cos(), center[1] + r * theta.sin()]
        })
        .collect()
}

/// Two clusters at wildly different scales: a tight cluster of radius
/// `tight_radius` at the origin-ish and a wide cluster of radius
/// `wide_radius` at distance `separation` — the classic trap for a single
/// global granularity (`ε·r` derived from the wide scale merges the tight
/// cluster into one point; derived from the tight scale it blows up the
/// wide cluster's covering).  Points alternate tight/wide in stream order.
pub fn two_scale_clusters(
    n_tight: usize,
    n_wide: usize,
    tight_radius: f64,
    wide_radius: f64,
    separation: f64,
    seed: u64,
) -> Vec<[f64; 2]> {
    assert!(tight_radius >= 0.0 && wide_radius >= 0.0 && separation > 0.0);
    let tight = annulus(
        n_tight,
        [0.0, 0.0],
        0.0,
        tight_radius.max(1e-9),
        seed ^ 0x71,
    );
    let wide = annulus(
        n_wide,
        [separation, 0.0],
        0.0,
        wide_radius.max(1e-9),
        seed ^ 0x72,
    );
    let mut out = Vec::with_capacity(n_tight + n_wide);
    let (mut ti, mut wi) = (tight.into_iter(), wide.into_iter());
    loop {
        match (ti.next(), wi.next()) {
            (None, None) => break,
            (t, w) => out.extend(t.into_iter().chain(w)),
        }
    }
    out
}

/// A duplicate-heavy multiset: `locations` distinct sites on a jittered
/// grid with spacing `spacing`, each repeated `copies` times, in a
/// deterministic shuffled arrival order.  Exercises the `r = 0` /
/// min-pairwise-establishment paths of every streaming structure and the
/// weighted outlier budgeting of the offline solvers (a site's mass can
/// exceed `z`, forcing coverage).
pub fn duplicate_heavy(locations: usize, copies: usize, spacing: f64, seed: u64) -> Vec<[f64; 2]> {
    assert!(locations >= 1 && copies >= 1 && spacing > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let per_row = (locations as f64).sqrt().ceil() as usize;
    let sites: Vec<[f64; 2]> = (0..locations)
        .map(|i| {
            let jx: f64 = rng.random_range(-0.1..0.1);
            let jy: f64 = rng.random_range(-0.1..0.1);
            [
                (i % per_row) as f64 * spacing + jx * spacing,
                (i / per_row) as f64 * spacing + jy * spacing,
            ]
        })
        .collect();
    let mut out: Vec<[f64; 2]> = Vec::with_capacity(locations * copies);
    for s in &sites {
        out.extend(std::iter::repeat_n(*s, copies));
    }
    crate::streams::shuffled(&out, seed ^ 0xD0B1)
}

/// `n` evenly spaced points on the line `origin + i·step` — degenerate
/// one-dimensional geometry embedded in R², where every pairwise distance
/// is a multiple of `‖step‖` and greedy tie-breaking is maximally
/// contested.
pub fn colinear(n: usize, origin: [f64; 2], step: [f64; 2]) -> Vec<[f64; 2]> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            [origin[0] + t * step[0], origin[1] + t * step[1]]
        })
        .collect()
}

/// A stream of `n` arrivals from two unit-ish clusters with a consecutive
/// burst of `z` far outliers injected starting at stream position
/// `burst_at`: the adversarial arrival order for streaming structures,
/// which must absorb the whole outlier mass at once without evicting
/// cluster state.  Positions `burst_at..burst_at+z` are the outliers; the
/// caller knows exactly which arrivals are noise.
pub fn outlier_burst(n: usize, z: usize, burst_at: usize, sigma: f64, seed: u64) -> Vec<[f64; 2]> {
    assert!(
        z <= n && burst_at <= n - z,
        "burst must fit inside the stream"
    );
    assert!(sigma > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let cluster_arrival = |rng: &mut StdRng, i: usize| {
        let c = if i.is_multiple_of(2) {
            0.0
        } else {
            60.0 * sigma
        };
        [c + sigma * gaussian(rng), 0.5 * c + sigma * gaussian(rng)]
    };
    for i in 0..burst_at {
        let p = cluster_arrival(&mut rng, i);
        out.push(p);
    }
    for j in 0..z {
        // Outliers far from both clusters and from each other.
        out.push([
            500.0 * sigma + (j as f64) * 120.0 * sigma,
            -400.0 * sigma - (j as f64) * 90.0 * sigma,
        ]);
    }
    for i in burst_at + z..n {
        let p = cluster_arrival(&mut rng, i);
        out.push(p);
    }
    out
}

/// A point-query trace with Zipf-skewed site popularity: `n` query
/// points, each drawn near one of `sites` chosen with probability
/// `∝ 1/(rank+1)^zipf_s` (rank = position in `sites`, so callers order
/// sites hottest-first), jittered by a Gaussian of deviation `sigma`.
/// With probability `far_rate` the query is instead a *far* probe —
/// uniform in the sites' bounding box inflated by one full span per side
/// — modelling the outlier lookups a serving layer must also answer.
///
/// This is the read-side companion of the ingest generators: replayed
/// against a published snapshot it produces the skewed key distribution
/// (`zipf_s ≈ 1` is classic web traffic) the query engine is benched
/// and load-tested under.
pub fn query_trace(
    n: usize,
    sites: &[[f64; 2]],
    zipf_s: f64,
    sigma: f64,
    far_rate: f64,
    seed: u64,
) -> Vec<[f64; 2]> {
    assert!(!sites.is_empty(), "query trace needs at least one site");
    assert!(zipf_s >= 0.0 && sigma >= 0.0);
    assert!((0.0..=1.0).contains(&far_rate));
    let mut rng = StdRng::seed_from_u64(seed);
    // Cumulative Zipf weights over the site ranks (s = 0 is uniform).
    let mut cum = Vec::with_capacity(sites.len());
    let mut total = 0.0;
    for rank in 0..sites.len() {
        total += ((rank + 1) as f64).powf(-zipf_s);
        cum.push(total);
    }
    // Bounding box of the sites, for far-probe placement.
    let (mut lo, mut hi) = ([f64::INFINITY; 2], [f64::NEG_INFINITY; 2]);
    for s in sites {
        for d in 0..2 {
            lo[d] = lo[d].min(s[d]);
            hi[d] = hi[d].max(s[d]);
        }
    }
    let span = (hi[0] - lo[0]).max(hi[1] - lo[1]).max(1.0);
    (0..n)
        .map(|_| {
            if far_rate > 0.0 && rng.random_bool(far_rate) {
                [
                    rng.random_range(lo[0] - span..hi[0] + span),
                    rng.random_range(lo[1] - span..hi[1] + span),
                ]
            } else {
                let u = rng.random_range(0.0..total);
                let i = cum.partition_point(|&c| c <= u).min(sites.len() - 1);
                [
                    sites[i][0] + sigma * gaussian(&mut rng),
                    sites[i][1] + sigma * gaussian(&mut rng),
                ]
            }
        })
        .collect()
}

/// `n` points uniform in `[0, side]^D`.
pub fn uniform_box<const D: usize>(n: usize, side: f64, seed: u64) -> Vec<[f64; D]> {
    assert!(side > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut p = [0.0; D];
            for slot in p.iter_mut() {
                *slot = rng.random_range(0.0..side);
            }
            p
        })
        .collect()
}

/// Clustered *integer* points in the discrete universe `[0, 2^side_bits)^D`
/// for the fully dynamic experiments: `k` blobs of `per_cluster` points
/// with radius `spread` cells, plus `z` uniform outliers.  Duplicates are
/// removed (Algorithm 5's strict turnstile model counts multiplicities;
/// distinct points keep the schedules simple).
pub fn grid_clusters<const D: usize>(
    side_bits: u32,
    k: usize,
    per_cluster: usize,
    spread: u64,
    z: usize,
    seed: u64,
) -> Vec<[u64; D]> {
    assert!(side_bits >= 2 && (side_bits as usize) * D <= 63);
    let side = 1u64 << side_bits;
    assert!(spread > 0 && spread < side / 4);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<[u64; D]> = Vec::with_capacity(k * per_cluster + z);
    let mut centers = Vec::with_capacity(k);
    for _ in 0..k {
        let mut c = [0u64; D];
        for slot in c.iter_mut() {
            *slot = rng.random_range(spread * 2..side - spread * 2);
        }
        centers.push(c);
    }
    for c in &centers {
        for _ in 0..per_cluster {
            let mut p = *c;
            for slot in p.iter_mut() {
                let offset = rng.random_range(0..=2 * spread) as i64 - spread as i64;
                *slot = (*slot as i64 + offset).clamp(0, side as i64 - 1) as u64;
            }
            out.push(p);
        }
    }
    for _ in 0..z {
        let mut p = [0u64; D];
        for slot in p.iter_mut() {
            *slot = rng.random_range(0..side);
        }
        out.push(p);
    }
    out.sort_unstable();
    out.dedup();
    // Deterministic order again, independent of dedup artifacts.
    let mut rng2 = StdRng::seed_from_u64(seed ^ 0xABCD);
    for i in (1..out.len()).rev() {
        let j = rng2.random_range(0..=i);
        out.swap(i, j);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clusters_have_planted_structure() {
        let inst = gaussian_clusters::<2>(3, 50, 1.0, 7, 42);
        assert_eq!(inst.points.len(), 157);
        assert_eq!(inst.n_cluster_points, 150);
        assert_eq!(inst.n_outliers, 7);
        assert_eq!(inst.centers.len(), 3);
        // Centers well separated.
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert!(dist(&inst.centers[i], &inst.centers[j]) >= 30.0);
            }
        }
        // Outliers far from all centers.
        for (p, &is_out) in inst.points.iter().zip(&inst.outlier_flags) {
            if is_out {
                for c in &inst.centers {
                    assert!(dist(c, p) >= 15.0);
                }
            }
        }
        // Planted radius is plausible for σ=1, 50 points: a few σ.
        assert!(inst.planted_radius > 0.5 && inst.planted_radius < 10.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = gaussian_clusters::<2>(2, 10, 1.0, 3, 7);
        let b = gaussian_clusters::<2>(2, 10, 1.0, 3, 7);
        assert_eq!(a.points, b.points);
        let c = gaussian_clusters::<2>(2, 10, 1.0, 3, 8);
        assert_ne!(a.points, c.points);
    }

    #[test]
    fn uniform_in_bounds() {
        let pts = uniform_box::<3>(500, 10.0, 1);
        assert_eq!(pts.len(), 500);
        for p in &pts {
            for &c in p.iter() {
                assert!((0.0..=10.0).contains(&c));
            }
        }
    }

    #[test]
    fn annulus_respects_radii() {
        let c = [10.0, -5.0];
        let pts = annulus(200, c, 3.0, 4.0, 7);
        assert_eq!(pts.len(), 200);
        for p in &pts {
            let d = dist(&c, p);
            assert!((3.0 - 1e-9..=4.0 + 1e-9).contains(&d), "distance {d}");
        }
        // Degenerate disk and point cases.
        for p in annulus(50, c, 0.0, 2.0, 8) {
            assert!(dist(&c, &p) <= 2.0 + 1e-9);
        }
        assert_eq!(annulus(3, c, 2.0, 2.0, 9).len(), 3);
        assert_eq!(annulus(10, c, 1.0, 5.0, 4), annulus(10, c, 1.0, 5.0, 4));
    }

    #[test]
    fn two_scale_has_both_scales() {
        let pts = two_scale_clusters(30, 30, 2.0, 100.0, 1000.0, 5);
        assert_eq!(pts.len(), 60);
        let near = pts.iter().filter(|p| dist(p, &[0.0, 0.0]) <= 2.1).count();
        let far = pts
            .iter()
            .filter(|p| dist(p, &[1000.0, 0.0]) <= 100.1)
            .count();
        assert_eq!(near, 30);
        assert_eq!(far, 30);
    }

    #[test]
    fn duplicate_heavy_multiset_structure() {
        let pts = duplicate_heavy(6, 10, 50.0, 3);
        assert_eq!(pts.len(), 60);
        let mut sorted: Vec<[i64; 2]> = pts
            .iter()
            .map(|p| [p[0].to_bits() as i64, p[1].to_bits() as i64])
            .collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6, "exactly 6 distinct sites");
    }

    #[test]
    fn colinear_is_evenly_spaced() {
        let pts = colinear(10, [1.0, 2.0], [3.0, 0.0]);
        assert_eq!(pts.len(), 10);
        assert_eq!(pts[0], [1.0, 2.0]);
        assert_eq!(pts[9], [28.0, 2.0]);
        for w in pts.windows(2) {
            assert!((dist(&w[0], &w[1]) - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn outlier_burst_positions_are_planted() {
        let (n, z, at) = (50, 5, 20);
        let pts = outlier_burst(n, z, at, 1.0, 11);
        assert_eq!(pts.len(), n);
        for (i, p) in pts.iter().enumerate() {
            let is_far = p[0] >= 400.0 || p[1] <= -300.0;
            assert_eq!(is_far, (at..at + z).contains(&i), "position {i}: {p:?}");
        }
    }

    #[test]
    fn query_trace_is_skewed_toward_hot_sites() {
        let sites: Vec<[f64; 2]> = (0..10).map(|i| [i as f64 * 100.0, 0.0]).collect();
        let qs = query_trace(2000, &sites, 1.2, 1.0, 0.0, 7);
        assert_eq!(qs.len(), 2000);
        assert_eq!(qs, query_trace(2000, &sites, 1.2, 1.0, 0.0, 7));
        // Count queries landing near each site (σ = 1, spacing = 100).
        let near = |site: &[f64; 2]| qs.iter().filter(|q| dist(q, site).abs() < 50.0).count();
        let hot = near(&sites[0]);
        let cold = near(&sites[9]);
        assert!(
            hot > 2 * cold,
            "Zipf skew missing: hot {hot} vs cold {cold}"
        );
        let total_near: usize = sites.iter().map(near).sum();
        assert_eq!(
            total_near, 2000,
            "far_rate = 0 places every query near a site"
        );
    }

    #[test]
    fn query_trace_far_probes_leave_the_cores() {
        let sites: Vec<[f64; 2]> = (0..4).map(|i| [i as f64 * 10.0, 0.0]).collect();
        let qs = query_trace(1000, &sites, 1.0, 0.1, 0.3, 11);
        let far = qs
            .iter()
            .filter(|q| sites.iter().all(|s| dist(q, s) > 1.0))
            .count();
        assert!(
            (150..=450).contains(&far),
            "expected ~30% far probes, got {far}/1000"
        );
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn query_trace_rejects_empty_sites() {
        let _ = query_trace(10, &[], 1.0, 1.0, 0.0, 1);
    }

    #[test]
    fn grid_points_in_universe() {
        let pts = grid_clusters::<2>(10, 3, 40, 8, 10, 3);
        assert!(!pts.is_empty());
        for p in &pts {
            assert!(p[0] < 1024 && p[1] < 1024);
        }
        // Dedup means all distinct.
        let mut sorted = pts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), pts.len());
    }
}
