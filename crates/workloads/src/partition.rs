//! Distributing a point set over `m` MPC machines.
//!
//! Algorithm 6 assumes a *random* distribution; Algorithm 2 tolerates any
//! distribution.  [`concentrated_partition`] builds the adversarial case
//! the 2-round algorithm is designed for: all outliers dumped on a single
//! machine.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deals points round-robin over `m` machines.
pub fn round_robin<P: Clone>(points: &[P], m: usize) -> Vec<Vec<P>> {
    assert!(m >= 1, "need at least one machine");
    let mut out: Vec<Vec<P>> = vec![Vec::with_capacity(points.len() / m + 1); m];
    for (i, p) in points.iter().enumerate() {
        out[i % m].push(p.clone());
    }
    out
}

/// Assigns every point to a uniformly random machine (the distribution
/// assumption of Theorem 33).
pub fn random_partition<P: Clone>(points: &[P], m: usize, seed: u64) -> Vec<Vec<P>> {
    assert!(m >= 1, "need at least one machine");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<Vec<P>> = vec![Vec::new(); m];
    for p in points {
        out[rng.random_range(0..m)].push(p.clone());
    }
    out
}

/// Adversarial distribution: every flagged point (outlier) goes to machine
/// 0; the rest are dealt round-robin over machines `1..m` (or all of them
/// if `m == 1`).
pub fn concentrated_partition<P: Clone>(points: &[P], flags: &[bool], m: usize) -> Vec<Vec<P>> {
    assert!(m >= 1, "need at least one machine");
    assert_eq!(points.len(), flags.len(), "one flag per point");
    let mut out: Vec<Vec<P>> = vec![Vec::new(); m];
    let spread = m.max(2) - 1;
    let mut i = 0usize;
    for (p, &f) in points.iter().zip(flags) {
        if f || m == 1 {
            out[0].push(p.clone());
        } else {
            out[1 + i % spread].push(p.clone());
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_balances() {
        let pts: Vec<u32> = (0..100).collect();
        let parts = round_robin(&pts, 7);
        assert_eq!(parts.len(), 7);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 100);
        for p in &parts {
            assert!(p.len() == 14 || p.len() == 15);
        }
    }

    #[test]
    fn random_partition_covers_all() {
        let pts: Vec<u32> = (0..1000).collect();
        let parts = random_partition(&pts, 8, 5);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 1000);
        // Sanity: no machine starved (w.h.p. for n=1000, m=8).
        for p in &parts {
            assert!(p.len() > 50, "suspiciously unbalanced: {}", p.len());
        }
        // Determinism.
        assert_eq!(parts, random_partition(&pts, 8, 5));
    }

    #[test]
    fn concentrated_puts_flagged_on_machine_zero() {
        let pts: Vec<u32> = (0..20).collect();
        let flags: Vec<bool> = (0..20).map(|i| i % 4 == 0).collect();
        let parts = concentrated_partition(&pts, &flags, 4);
        assert_eq!(parts[0].len(), 5);
        for &p in &parts[0] {
            assert_eq!(p % 4, 0);
        }
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn single_machine_degenerates() {
        let pts: Vec<u32> = (0..5).collect();
        let parts = concentrated_partition(&pts, &[false; 5], 1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].len(), 5);
    }
}
