//! Distributing a point set over `m` MPC machines — and over the resident
//! engine's shards.
//!
//! Algorithm 6 assumes a *random* distribution; Algorithm 2 tolerates any
//! distribution.  [`concentrated_partition`] builds the adversarial case
//! the 2-round algorithm is designed for: all outliers dumped on a single
//! machine.  [`HashPartitioner`] is the *online* counterpart: a
//! splittable, stateless point→shard router (splitmix64 over the point's
//! bit pattern) that the sharded ingest engine uses to route batches —
//! deterministic given its seed, duplicate points always co-located,
//! and independent sub-partitioners derivable via [`HashPartitioner::split`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Types routable by [`HashPartitioner`]: a stable 64-bit key derived
/// from the value's bit pattern (equal points — including `-0.0` vs
/// `0.0` being *distinct* — map to equal keys, so duplicates always land
/// on the same shard).
pub trait ShardKey {
    /// The routing key.  Must be a pure function of the value.
    fn shard_key(&self) -> u64;
}

impl ShardKey for f64 {
    fn shard_key(&self) -> u64 {
        self.to_bits()
    }
}

impl ShardKey for u64 {
    fn shard_key(&self) -> u64 {
        *self
    }
}

impl<const D: usize> ShardKey for [f64; D] {
    fn shard_key(&self) -> u64 {
        let mut acc = 0xA076_1D64_78BD_642Fu64;
        for c in self {
            acc = splitmix64(acc ^ c.to_bits());
        }
        acc
    }
}

impl<const D: usize> ShardKey for [u64; D] {
    fn shard_key(&self) -> u64 {
        let mut acc = 0xA076_1D64_78BD_642Fu64;
        for c in self {
            acc = splitmix64(acc ^ c);
        }
        acc
    }
}

/// Weighted points route by their *point* only: a weight-`w` arrival is
/// `w` co-located unit arrivals, so it must land on the same shard the
/// unit arrivals would.
impl<P: ShardKey> ShardKey for kcz_metric::Weighted<P> {
    fn shard_key(&self) -> u64 {
        self.point.shard_key()
    }
}

/// The splitmix64 finalizer: a full-avalanche 64-bit mix, the standard
/// seed-splitting primitive (Steele–Lea–Flood).
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A stateless, splittable point→shard router.
///
/// Routing is `splitmix64(seed ⊕ key) mod shards`: deterministic given
/// `(seed, shards)`, independent of arrival order, and value-based — the
/// property the engine's merge path relies on (a point multiset splits
/// the same way no matter how it is batched).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashPartitioner {
    shards: usize,
    seed: u64,
}

impl HashPartitioner {
    /// A router over `shards ≥ 1` shards.
    pub fn new(shards: usize, seed: u64) -> Self {
        assert!(shards >= 1, "need at least one shard");
        HashPartitioner { shards, seed }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard index of one point.
    pub fn shard_of<K: ShardKey>(&self, p: &K) -> usize {
        (splitmix64(self.seed ^ p.shard_key()) % self.shards as u64) as usize
    }

    /// Splits a batch into per-shard sub-batches, preserving the batch's
    /// arrival order within each shard.
    pub fn split_batch<K: ShardKey + Clone>(&self, batch: &[K]) -> Vec<Vec<K>> {
        let mut out: Vec<Vec<K>> = vec![Vec::new(); self.shards];
        for p in batch {
            out[self.shard_of(p)].push(p.clone());
        }
        out
    }

    /// Derives an independent partitioner (the splittable-seed idiom):
    /// routing decisions of the child are uncorrelated with the parent's.
    pub fn split(&self, salt: u64) -> HashPartitioner {
        HashPartitioner {
            shards: self.shards,
            seed: splitmix64(self.seed.wrapping_add(splitmix64(salt))),
        }
    }
}

/// Deals points round-robin over `m` machines.
pub fn round_robin<P: Clone>(points: &[P], m: usize) -> Vec<Vec<P>> {
    assert!(m >= 1, "need at least one machine");
    let mut out: Vec<Vec<P>> = vec![Vec::with_capacity(points.len() / m + 1); m];
    for (i, p) in points.iter().enumerate() {
        out[i % m].push(p.clone());
    }
    out
}

/// Assigns every point to a uniformly random machine (the distribution
/// assumption of Theorem 33).
pub fn random_partition<P: Clone>(points: &[P], m: usize, seed: u64) -> Vec<Vec<P>> {
    assert!(m >= 1, "need at least one machine");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<Vec<P>> = vec![Vec::new(); m];
    for p in points {
        out[rng.random_range(0..m)].push(p.clone());
    }
    out
}

/// Adversarial distribution: every flagged point (outlier) goes to machine
/// 0; the rest are dealt round-robin over machines `1..m` (or all of them
/// if `m == 1`).
pub fn concentrated_partition<P: Clone>(points: &[P], flags: &[bool], m: usize) -> Vec<Vec<P>> {
    assert!(m >= 1, "need at least one machine");
    assert_eq!(points.len(), flags.len(), "one flag per point");
    let mut out: Vec<Vec<P>> = vec![Vec::new(); m];
    let spread = m.max(2) - 1;
    let mut i = 0usize;
    for (p, &f) in points.iter().zip(flags) {
        if f || m == 1 {
            out[0].push(p.clone());
        } else {
            out[1 + i % spread].push(p.clone());
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_balances() {
        let pts: Vec<u32> = (0..100).collect();
        let parts = round_robin(&pts, 7);
        assert_eq!(parts.len(), 7);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 100);
        for p in &parts {
            assert!(p.len() == 14 || p.len() == 15);
        }
    }

    #[test]
    fn random_partition_covers_all() {
        let pts: Vec<u32> = (0..1000).collect();
        let parts = random_partition(&pts, 8, 5);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 1000);
        // Sanity: no machine starved (w.h.p. for n=1000, m=8).
        for p in &parts {
            assert!(p.len() > 50, "suspiciously unbalanced: {}", p.len());
        }
        // Determinism.
        assert_eq!(parts, random_partition(&pts, 8, 5));
    }

    #[test]
    fn concentrated_puts_flagged_on_machine_zero() {
        let pts: Vec<u32> = (0..20).collect();
        let flags: Vec<bool> = (0..20).map(|i| i % 4 == 0).collect();
        let parts = concentrated_partition(&pts, &flags, 4);
        assert_eq!(parts[0].len(), 5);
        for &p in &parts[0] {
            assert_eq!(p % 4, 0);
        }
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn single_machine_degenerates() {
        let pts: Vec<u32> = (0..5).collect();
        let parts = concentrated_partition(&pts, &[false; 5], 1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].len(), 5);
    }

    #[test]
    fn hash_partitioner_is_deterministic_and_value_based() {
        let router = HashPartitioner::new(8, 42);
        let pts: Vec<[f64; 2]> = (0..500).map(|i| [i as f64, (i * 7) as f64]).collect();
        let a = router.split_batch(&pts);
        let b = router.split_batch(&pts);
        assert_eq!(a, b);
        let total: usize = a.iter().map(Vec::len).sum();
        assert_eq!(total, 500);
        // Duplicates co-locate: the same value always routes identically,
        // and batching does not change the routing.
        for p in &pts {
            assert_eq!(router.shard_of(p), router.shard_of(&p.clone()));
        }
        let (front, back) = pts.split_at(200);
        let mut rebatched = router.split_batch(front);
        for (shard, mut extra) in rebatched.iter_mut().zip(router.split_batch(back)) {
            shard.append(&mut extra);
        }
        assert_eq!(rebatched, a, "batch boundaries must not affect routing");
    }

    #[test]
    fn hash_partitioner_spreads_distinct_points() {
        let router = HashPartitioner::new(8, 7);
        let pts: Vec<[f64; 2]> = (0..4000).map(|i| [i as f64 * 0.5, -(i as f64)]).collect();
        let parts = router.split_batch(&pts);
        for (s, part) in parts.iter().enumerate() {
            assert!(
                part.len() > 250,
                "shard {s} starved: {} of 4000 (bad avalanche?)",
                part.len()
            );
        }
    }

    #[test]
    fn split_derives_an_independent_router() {
        let a = HashPartitioner::new(4, 1);
        let b = a.split(0xFEED);
        assert_eq!(b.shards(), 4);
        assert_ne!(a, b);
        let pts: Vec<[f64; 2]> = (0..256).map(|i| [i as f64, 0.0]).collect();
        let same = pts
            .iter()
            .filter(|p| a.shard_of(*p) == b.shard_of(*p))
            .count();
        // Uncorrelated routing agrees on ~1/shards of the points, not all.
        assert!(same < 128, "child router correlated: {same}/256 agree");
    }

    #[test]
    fn shard_keys_distinguish_values() {
        assert_ne!([0.0f64, 1.0].shard_key(), [1.0f64, 0.0].shard_key());
        assert_eq!([2.0f64, 3.0].shard_key(), [2.0f64, 3.0].shard_key());
        assert_ne!(5u64.shard_key(), 6u64.shard_key());
        assert_eq!(1.25f64.shard_key(), 1.25f64.to_bits());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = HashPartitioner::new(0, 1);
    }
}
