//! Synthetic workloads for the experiments: clustered data with planted
//! outliers, machine partitions (random and adversarial), stream
//! schedules (shuffles, insert/delete churn, drifting sliding windows),
//! and read-side traces (Zipf-skewed point queries, interleaved mixed
//! read/write schedules) for the serving layer.
//!
//! Every generator is deterministic given its seed, so experiments and
//! tests are reproducible bit-for-bit.

#![warn(missing_docs)]

pub mod generators;
pub mod partition;
pub mod streams;

pub use generators::{
    annulus, colinear, duplicate_heavy, gaussian_clusters, grid_clusters, outlier_burst,
    query_trace, two_scale_clusters, uniform_box, ClusteredInstance,
};
pub use partition::{
    concentrated_partition, random_partition, round_robin, HashPartitioner, ShardKey,
};
pub use streams::{
    churn_schedule, drifting_stream, mixed_trace, phase_shift_stream, shuffled, DynamicOp, TraceOp,
};
