//! Stream schedules: shuffles for insertion-only streams, insert/delete
//! churn for the fully dynamic model, and drifting distributions for the
//! sliding-window model.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A single fully-dynamic stream operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicOp<const D: usize> {
    /// The point being inserted or deleted.
    pub point: [u64; D],
    /// `true` = insertion, `false` = deletion.
    pub insert: bool,
}

/// Returns the points in a deterministic random order (Fisher–Yates).
pub fn shuffled<P: Clone>(points: &[P], seed: u64) -> Vec<P> {
    let mut out: Vec<P> = points.to_vec();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..out.len()).rev() {
        let j = rng.random_range(0..=i);
        out.swap(i, j);
    }
    out
}

/// A strict-turnstile schedule: insert all of `base`, then perform
/// `churn` delete/insert pairs that keep the live set inside `base`
/// (delete a live point, re-insert a currently absent one).  Never deletes
/// an absent point, so the stream is valid for Algorithm 5.
pub fn churn_schedule<const D: usize>(
    base: &[[u64; D]],
    churn: usize,
    seed: u64,
) -> Vec<DynamicOp<D>> {
    assert!(base.len() >= 2, "churn needs at least two points");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::with_capacity(base.len() + 2 * churn);
    let mut live: Vec<usize> = (0..base.len()).collect();
    let mut dead: Vec<usize> = Vec::new();
    for &p in base {
        ops.push(DynamicOp {
            point: p,
            insert: true,
        });
    }
    for _ in 0..churn {
        // Delete a live point...
        let li = rng.random_range(0..live.len());
        let victim = live.swap_remove(li);
        ops.push(DynamicOp {
            point: base[victim],
            insert: false,
        });
        dead.push(victim);
        // ...and resurrect a dead one (possibly the same) to keep the live
        // count roughly constant.
        let di = rng.random_range(0..dead.len());
        let reborn = dead.swap_remove(di);
        ops.push(DynamicOp {
            point: base[reborn],
            insert: true,
        });
        live.push(reborn);
    }
    ops
}

/// A sliding-window stream whose cluster centers drift: `n` arrivals from
/// `k` clusters whose centers advance by `drift` per arrival, with an
/// outlier (uniform far point) every `1/outlier_rate` arrivals on average.
pub fn drifting_stream(
    n: usize,
    k: usize,
    sigma: f64,
    drift: f64,
    outlier_rate: f64,
    seed: u64,
) -> Vec<[f64; 2]> {
    assert!(k >= 1 && sigma > 0.0 && (0.0..1.0).contains(&outlier_rate));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut centers: Vec<[f64; 2]> = (0..k).map(|i| [i as f64 * 40.0 * sigma, 0.0]).collect();
    let mut out = Vec::with_capacity(n);
    for t in 0..n {
        for c in centers.iter_mut() {
            c[0] += drift;
            c[1] += drift * 0.3;
        }
        if rng.random_bool(outlier_rate) {
            out.push([
                rng.random_range(-1e4 * sigma..1e4 * sigma),
                1e4 * sigma + rng.random_range(0.0..1e4 * sigma),
            ]);
        } else {
            let c = centers[t % k];
            let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.random_range(0.0..1.0);
            let g0 = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let g1 = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).sin();
            out.push([c[0] + sigma * g0, c[1] + sigma * g1]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn shuffle_is_permutation() {
        let pts: Vec<u32> = (0..100).collect();
        let s = shuffled(&pts, 3);
        assert_ne!(s, pts);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, pts);
        assert_eq!(s, shuffled(&pts, 3));
    }

    #[test]
    fn churn_is_strict_turnstile() {
        let base: Vec<[u64; 1]> = (0..50u64).map(|i| [i]).collect();
        let ops = churn_schedule(&base, 200, 9);
        let mut live: HashSet<[u64; 1]> = HashSet::new();
        for op in &ops {
            if op.insert {
                assert!(live.insert(op.point), "double insert of {:?}", op.point);
            } else {
                assert!(live.remove(&op.point), "deleting absent {:?}", op.point);
            }
        }
        assert_eq!(live.len(), 50, "churn preserves live count");
    }

    #[test]
    fn drifting_stream_moves() {
        let s = drifting_stream(500, 2, 1.0, 0.5, 0.0, 4);
        assert_eq!(s.len(), 500);
        // Late cluster points are far from early ones.
        let early = s[0];
        let late = s[498];
        let d = ((early[0] - late[0]).powi(2) + (early[1] - late[1]).powi(2)).sqrt();
        assert!(d > 50.0, "drift too small: {d}");
    }

    #[test]
    fn outliers_appear_at_requested_rate() {
        let s = drifting_stream(2000, 2, 1.0, 0.0, 0.1, 11);
        let outliers = s.iter().filter(|p| p[1] > 1e3).count();
        assert!((100..400).contains(&outliers), "outliers {outliers}");
    }
}
