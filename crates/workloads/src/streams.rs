//! Stream schedules: shuffles for insertion-only streams, insert/delete
//! churn for the fully dynamic model, and drifting distributions for the
//! sliding-window model.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A single fully-dynamic stream operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicOp<const D: usize> {
    /// The point being inserted or deleted.
    pub point: [u64; D],
    /// `true` = insertion, `false` = deletion.
    pub insert: bool,
}

/// One operation of a mixed read/write trace: either a write into the
/// resident engine or a point query against its published snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceOp<P> {
    /// Ingest this point (a write).
    Ingest(P),
    /// Query this point against the current published view (a read).
    Query(P),
}

/// Interleaves an ingest stream and a query stream into one mixed trace,
/// deterministically per seed.  Both streams are consumed completely and
/// keep their internal order; at each step the next op is drawn from one
/// of them with probability proportional to how many of its ops remain,
/// so the realized query:ingest ratio matches the input lengths and the
/// mix stays statistically uniform along the whole trace (no burst of
/// leftover queries at the tail).
pub fn mixed_trace<P: Clone>(ingest: &[P], queries: &[P], seed: u64) -> Vec<TraceOp<P>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(ingest.len() + queries.len());
    let (mut i, mut q) = (0usize, 0usize);
    while i < ingest.len() || q < queries.len() {
        let remaining_q = (queries.len() - q) as f64;
        let remaining = remaining_q + (ingest.len() - i) as f64;
        if rng.random_bool(remaining_q / remaining) {
            out.push(TraceOp::Query(queries[q].clone()));
            q += 1;
        } else {
            out.push(TraceOp::Ingest(ingest[i].clone()));
            i += 1;
        }
    }
    out
}

/// Returns the points in a deterministic random order (Fisher–Yates).
pub fn shuffled<P: Clone>(points: &[P], seed: u64) -> Vec<P> {
    let mut out: Vec<P> = points.to_vec();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..out.len()).rev() {
        let j = rng.random_range(0..=i);
        out.swap(i, j);
    }
    out
}

/// A strict-turnstile schedule: insert all of `base`, then perform
/// `churn` delete/insert pairs that keep the live set inside `base`
/// (delete a live point, re-insert a currently absent one).  Never deletes
/// an absent point, so the stream is valid for Algorithm 5.
pub fn churn_schedule<const D: usize>(
    base: &[[u64; D]],
    churn: usize,
    seed: u64,
) -> Vec<DynamicOp<D>> {
    assert!(base.len() >= 2, "churn needs at least two points");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::with_capacity(base.len() + 2 * churn);
    let mut live: Vec<usize> = (0..base.len()).collect();
    let mut dead: Vec<usize> = Vec::new();
    for &p in base {
        ops.push(DynamicOp {
            point: p,
            insert: true,
        });
    }
    for _ in 0..churn {
        // Delete a live point...
        let li = rng.random_range(0..live.len());
        let victim = live.swap_remove(li);
        ops.push(DynamicOp {
            point: base[victim],
            insert: false,
        });
        dead.push(victim);
        // ...and resurrect a dead one (possibly the same) to keep the live
        // count roughly constant.
        let di = rng.random_range(0..dead.len());
        let reborn = dead.swap_remove(di);
        ops.push(DynamicOp {
            point: base[reborn],
            insert: true,
        });
        live.push(reborn);
    }
    ops
}

/// A sliding-window stream whose cluster centers drift: `n` arrivals from
/// `k` clusters whose centers advance by `drift` per arrival, with an
/// outlier (uniform far point) every `1/outlier_rate` arrivals on average.
pub fn drifting_stream(
    n: usize,
    k: usize,
    sigma: f64,
    drift: f64,
    outlier_rate: f64,
    seed: u64,
) -> Vec<[f64; 2]> {
    assert!(k >= 1 && sigma > 0.0 && (0.0..1.0).contains(&outlier_rate));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut centers: Vec<[f64; 2]> = (0..k).map(|i| [i as f64 * 40.0 * sigma, 0.0]).collect();
    let mut out = Vec::with_capacity(n);
    for t in 0..n {
        for c in centers.iter_mut() {
            c[0] += drift;
            c[1] += drift * 0.3;
        }
        if rng.random_bool(outlier_rate) {
            out.push([
                rng.random_range(-1e4 * sigma..1e4 * sigma),
                1e4 * sigma + rng.random_range(0.0..1e4 * sigma),
            ]);
        } else {
            let c = centers[t % k];
            let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.random_range(0.0..1.0);
            let g0 = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let g1 = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).sin();
            out.push([c[0] + sigma * g0, c[1] + sigma * g1]);
        }
    }
    out
}

/// A phase-shift stream for the churn-capable engine backends: `phases`
/// successive regimes of `per_phase` arrivals each, every regime a
/// Gaussian cluster whose center jumps `gap` away from the previous one
/// (alternating axis directions so consecutive phases never overlap).
/// Once the arrival clock moves a window (or many half-lives) past a
/// phase boundary, a sliding-window or decayed backend must forget the
/// old regime entirely — an insertion-only summary keeps paying for it
/// forever.  Returns the arrivals in phase order.
pub fn phase_shift_stream(
    phases: usize,
    per_phase: usize,
    sigma: f64,
    gap: f64,
    seed: u64,
) -> Vec<[f64; 2]> {
    assert!(phases >= 1 && per_phase >= 1 && sigma > 0.0 && gap > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut center = [0.0f64, 0.0];
    let mut out = Vec::with_capacity(phases * per_phase);
    for phase in 0..phases {
        if phase > 0 {
            // Alternate the jump axis so the path never doubles back
            // onto a previous regime.
            if phase % 2 == 1 {
                center[0] += gap;
            } else {
                center[1] += gap;
            }
        }
        for _ in 0..per_phase {
            let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.random_range(0.0..1.0);
            let g0 = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let g1 = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).sin();
            out.push([center[0] + sigma * g0, center[1] + sigma * g1]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn shuffle_is_permutation() {
        let pts: Vec<u32> = (0..100).collect();
        let s = shuffled(&pts, 3);
        assert_ne!(s, pts);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, pts);
        assert_eq!(s, shuffled(&pts, 3));
    }

    #[test]
    fn churn_is_strict_turnstile() {
        let base: Vec<[u64; 1]> = (0..50u64).map(|i| [i]).collect();
        let ops = churn_schedule(&base, 200, 9);
        let mut live: HashSet<[u64; 1]> = HashSet::new();
        for op in &ops {
            if op.insert {
                assert!(live.insert(op.point), "double insert of {:?}", op.point);
            } else {
                assert!(live.remove(&op.point), "deleting absent {:?}", op.point);
            }
        }
        assert_eq!(live.len(), 50, "churn preserves live count");
    }

    #[test]
    fn mixed_trace_is_an_order_preserving_interleave() {
        let ingest: Vec<u32> = (0..70).collect();
        let queries: Vec<u32> = (1000..1030).collect();
        let trace = mixed_trace(&ingest, &queries, 5);
        assert_eq!(trace.len(), 100);
        assert_eq!(trace, mixed_trace(&ingest, &queries, 5));
        let (mut got_i, mut got_q) = (Vec::new(), Vec::new());
        for op in &trace {
            match op {
                TraceOp::Ingest(p) => got_i.push(*p),
                TraceOp::Query(p) => got_q.push(*p),
            }
        }
        assert_eq!(got_i, ingest, "writes keep their order");
        assert_eq!(got_q, queries, "reads keep their order");
        // The mix is spread along the trace, not dumped at the tail: the
        // first half must already contain reads.
        assert!(trace[..50].iter().any(|op| matches!(op, TraceOp::Query(_))));
    }

    #[test]
    fn mixed_trace_handles_empty_sides() {
        let pts: Vec<u8> = vec![1, 2, 3];
        let t = mixed_trace(&pts, &[], 1);
        assert!(t.iter().all(|op| matches!(op, TraceOp::Ingest(_))));
        let t = mixed_trace(&[], &pts, 1);
        assert!(t.iter().all(|op| matches!(op, TraceOp::Query(_))));
        assert!(mixed_trace::<u8>(&[], &[], 1).is_empty());
    }

    #[test]
    fn drifting_stream_moves() {
        let s = drifting_stream(500, 2, 1.0, 0.5, 0.0, 4);
        assert_eq!(s.len(), 500);
        // Late cluster points are far from early ones.
        let early = s[0];
        let late = s[498];
        let d = ((early[0] - late[0]).powi(2) + (early[1] - late[1]).powi(2)).sqrt();
        assert!(d > 50.0, "drift too small: {d}");
    }

    #[test]
    fn phase_shift_stream_separates_regimes() {
        let s = phase_shift_stream(3, 100, 1.0, 500.0, 7);
        assert_eq!(s.len(), 300);
        assert_eq!(s, phase_shift_stream(3, 100, 1.0, 500.0, 7));
        // Any two points of the same phase are close; any two points of
        // different phases are far (gap ≫ sigma).
        let dist =
            |a: [f64; 2], b: [f64; 2]| ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt();
        for w in [&s[..100], &s[100..200], &s[200..]] {
            for p in w {
                assert!(dist(*p, w[0]) < 100.0, "intra-phase spread too wide");
            }
        }
        assert!(dist(s[0], s[150]) > 250.0, "phases 0 and 1 overlap");
        assert!(dist(s[150], s[250]) > 250.0, "phases 1 and 2 overlap");
        assert!(dist(s[0], s[250]) > 250.0, "the path doubled back");
    }

    #[test]
    fn outliers_appear_at_requested_rate() {
        let s = drifting_stream(2000, 2, 1.0, 0.0, 0.1, 11);
        let outliers = s.iter().filter(|p| p[1] > 1e3).count();
        assert!((100..400).contains(&outliers), "outliers {outliers}");
    }
}
