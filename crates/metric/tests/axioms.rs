//! Property tests: the provided metrics satisfy the metric axioms, and
//! the doubling structure behaves as advertised across dimensions.

use kcz_metric::{GridL2, GridLinf, Line, Linf, MetricSpace, L2};
use proptest::prelude::*;

fn finite_coord() -> impl Strategy<Value = f64> {
    -1.0e6..1.0e6
}

proptest! {
    #[test]
    fn l2_axioms(ax in finite_coord(), ay in finite_coord(),
                 bx in finite_coord(), by in finite_coord(),
                 cx in finite_coord(), cy in finite_coord()) {
        let (a, b, c) = ([ax, ay], [bx, by], [cx, cy]);
        prop_assert_eq!(L2.dist(&a, &a), 0.0);
        prop_assert!((L2.dist(&a, &b) - L2.dist(&b, &a)).abs() < 1e-9);
        prop_assert!(L2.dist(&a, &c) <= L2.dist(&a, &b) + L2.dist(&b, &c) + 1e-6);
        prop_assert!(L2.dist(&a, &b) >= 0.0);
    }

    #[test]
    fn linf_axioms_and_dominance(ax in finite_coord(), ay in finite_coord(),
                                 bx in finite_coord(), by in finite_coord(),
                                 cx in finite_coord(), cy in finite_coord()) {
        let (a, b, c) = ([ax, ay], [bx, by], [cx, cy]);
        prop_assert_eq!(Linf.dist(&a, &a), 0.0);
        prop_assert!((Linf.dist(&a, &b) - Linf.dist(&b, &a)).abs() < 1e-9);
        prop_assert!(Linf.dist(&a, &c) <= Linf.dist(&a, &b) + Linf.dist(&b, &c) + 1e-6);
        // L∞ ≤ L2 ≤ √d·L∞ in R².
        let l2 = L2.dist(&a, &b);
        let li = Linf.dist(&a, &b);
        prop_assert!(li <= l2 + 1e-9);
        prop_assert!(l2 <= li * 2f64.sqrt() + 1e-9);
    }

    #[test]
    fn grid_metrics_agree_with_continuous(ax in 0u64..1_000_000, ay in 0u64..1_000_000,
                                          bx in 0u64..1_000_000, by in 0u64..1_000_000) {
        let (ga, gb) = ([ax, ay], [bx, by]);
        let (fa, fb) = ([ax as f64, ay as f64], [bx as f64, by as f64]);
        prop_assert!((GridL2.dist(&ga, &gb) - L2.dist(&fa, &fb)).abs() < 1e-6);
        prop_assert!((GridLinf.dist(&ga, &gb) - Linf.dist(&fa, &fb)).abs() < 1e-6);
    }

    #[test]
    fn line_metric_axioms(a in finite_coord(), b in finite_coord(), c in finite_coord()) {
        prop_assert_eq!(Line.dist(&a, &a), 0.0);
        prop_assert!((Line.dist(&a, &b) - Line.dist(&b, &a)).abs() < 1e-12);
        prop_assert!(Line.dist(&a, &c) <= Line.dist(&a, &b) + Line.dist(&b, &c) + 1e-9);
    }

    #[test]
    fn three_d_l2_triangle(coords in prop::collection::vec(finite_coord(), 9)) {
        let a = [coords[0], coords[1], coords[2]];
        let b = [coords[3], coords[4], coords[5]];
        let c = [coords[6], coords[7], coords[8]];
        prop_assert!(L2.dist(&a, &c) <= L2.dist(&a, &b) + L2.dist(&b, &c) + 1e-6);
        prop_assert_eq!(<L2 as MetricSpace<[f64; 3]>>::doubling_dim(&L2), 3);
    }

    #[test]
    fn grid_index_never_misses_neighbors(
        pts in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..80),
        qx in 0.0f64..100.0, qy in 0.0f64..100.0, cell in 0.5f64..20.0,
    ) {
        use kcz_metric::{GridBucketIndex, NeighborIndex};
        let mut idx = GridBucketIndex::<2>::new(cell);
        let pts: Vec<[f64; 2]> = pts.into_iter().map(|(x, y)| [x, y]).collect();
        for (i, p) in pts.iter().enumerate() {
            idx.insert(p, i);
        }
        let q = [qx, qy];
        let mut near = Vec::new();
        idx.within(&q, cell, &mut near);
        for (i, p) in pts.iter().enumerate() {
            if L2.dist(p, &q) <= cell {
                prop_assert!(near.contains(&i), "missed {:?} near {:?}", p, q);
            }
        }
    }
}
