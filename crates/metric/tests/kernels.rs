//! Property tests for the batched distance kernels and the
//! [`NeighborIndex`] implementations: on all four metrics the batched
//! paths must agree with the scalar `dist`, including the deferred-`sqrt`
//! paths at `r = 0` and at exactly representable ties.

use kcz_metric::{
    BruteForceIndex, GridBucketIndex, GridL2, GridLinf, Linf, MetricSpace, NeighborIndex, Weighted,
    L2,
};
use proptest::prelude::*;

/// Checks every batched kernel of `metric` against the scalar `dist` on
/// one (query, point-set, radius) instance.
fn check_kernels<P: Clone + std::fmt::Debug, M: MetricSpace<P>>(
    metric: &M,
    q: &P,
    pts: &[P],
    r: f64,
) -> Result<(), TestCaseError> {
    let scalar: Vec<f64> = pts.iter().map(|p| metric.dist(q, p)).collect();

    // dist_many returns exactly the scalar distances (sqrt deferred, not
    // skipped).
    let mut batched = Vec::new();
    metric.dist_many(q, pts, &mut batched);
    prop_assert_eq!(&batched, &scalar);

    // nearest: the distance is the scalar minimum, exactly.
    let nearest = metric.nearest(q, pts);
    match nearest {
        None => prop_assert!(pts.is_empty()),
        Some((i, d)) => {
            prop_assert_eq!(d, scalar[i]);
            prop_assert!(scalar.iter().all(|&s| d <= s));
        }
    }

    // within-family kernels agree with the scalar predicate.  (Random
    // coordinates never land within one ulp of the radius; the exact-tie
    // cases are covered by the deterministic tests below.)
    let expect: Vec<bool> = scalar.iter().map(|&d| d <= r).collect();
    for (i, p) in pts.iter().enumerate() {
        prop_assert_eq!(metric.within(q, p, r), expect[i], "point {}", i);
    }
    let n_within = expect.iter().filter(|&&b| b).count();
    prop_assert_eq!(metric.count_within(q, pts, r), n_within);
    prop_assert_eq!(
        metric.find_within(q, pts, r),
        expect.iter().position(|&b| b)
    );
    let mut idx = Vec::new();
    metric.within_indices(q, pts, r, &mut idx);
    let expect_idx: Vec<usize> = (0..pts.len()).filter(|&i| expect[i]).collect();
    prop_assert_eq!(&idx, &expect_idx);

    // Weighted variants and the cover-weight kernels.
    let weights: Vec<u64> = (0..pts.len()).map(|i| 1 + (i as u64 % 5)).collect();
    let expect_cover: u64 = expect_idx.iter().map(|&i| weights[i]).sum();
    prop_assert_eq!(metric.cover_weight(q, pts, &weights, r), expect_cover);
    let weighted: Vec<Weighted<P>> = pts
        .iter()
        .zip(&weights)
        .map(|(p, &w)| Weighted::new(p.clone(), w))
        .collect();
    prop_assert_eq!(
        metric.find_within_weighted(q, &weighted, r),
        expect.iter().position(|&b| b)
    );
    match metric.nearest_weighted(q, &weighted) {
        None => prop_assert!(pts.is_empty()),
        Some((i, d)) => prop_assert_eq!(d, scalar[i]),
    }

    // argmax_cover_weight: its winner's cover is the maximum over the
    // per-candidate scalar covers.
    if let Some((best, cover)) = metric.argmax_cover_weight(pts, pts, &weights, r) {
        prop_assert_eq!(cover, metric.cover_weight(&pts[best], pts, &weights, r));
        for c in pts {
            prop_assert!(metric.cover_weight(c, pts, &weights, r) <= cover);
        }
    } else {
        prop_assert!(pts.is_empty());
    }
    Ok(())
}

fn euclid_pts(max_n: usize) -> impl Strategy<Value = Vec<[f64; 2]>> {
    prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 0..max_n)
        .prop_map(|v| v.into_iter().map(|(x, y)| [x, y]).collect())
}

fn grid_pts(max_n: usize) -> impl Strategy<Value = Vec<[u64; 2]>> {
    prop::collection::vec((0u64..1000, 0u64..1000), 0..max_n)
        .prop_map(|v| v.into_iter().map(|(x, y)| [x, y]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        rng_seed: 0xBA7C_4ED1,
        ..ProptestConfig::default()
    })]

    #[test]
    fn l2_kernels_agree(pts in euclid_pts(40), qx in -100.0f64..100.0,
                        qy in -100.0f64..100.0, r in 0.0f64..150.0) {
        check_kernels(&L2, &[qx, qy], &pts, r)?;
    }

    #[test]
    fn linf_kernels_agree(pts in euclid_pts(40), qx in -100.0f64..100.0,
                          qy in -100.0f64..100.0, r in 0.0f64..150.0) {
        check_kernels(&Linf, &[qx, qy], &pts, r)?;
    }

    #[test]
    fn grid_l2_kernels_agree(pts in grid_pts(40), qx in 0u64..1000,
                             qy in 0u64..1000, r in 0.0f64..800.0) {
        check_kernels(&GridL2, &[qx, qy], &pts, r)?;
    }

    #[test]
    fn grid_linf_kernels_agree(pts in grid_pts(40), qx in 0u64..1000,
                               qy in 0u64..1000, r in 0.0f64..800.0) {
        check_kernels(&GridLinf, &[qx, qy], &pts, r)?;
    }

    #[test]
    fn zero_radius_with_duplicates(pts in euclid_pts(20), dup in 0usize..20) {
        // r = 0 must match exactly the duplicates of q, on every metric.
        if pts.is_empty() { return Ok(()); }
        let q = pts[dup % pts.len()];
        let n_dup = pts.iter().filter(|p| **p == q).count();
        prop_assert_eq!(L2.count_within(&q, &pts, 0.0), n_dup);
        prop_assert_eq!(Linf.count_within(&q, &pts, 0.0), n_dup);
        check_kernels(&L2, &q, &pts, 0.0)?;
        check_kernels(&Linf, &q, &pts, 0.0)?;
    }

    #[test]
    fn neighbor_indexes_agree(pts in euclid_pts(60), qx in -100.0f64..100.0,
                              qy in -100.0f64..100.0, r in 0.01f64..40.0) {
        let mut grid = GridBucketIndex::<2>::new(r);
        let mut brute = BruteForceIndex::new(L2);
        for (i, p) in pts.iter().enumerate() {
            grid.insert(p, i);
            brute.insert(p, i);
        }
        let q = [qx, qy];
        let mut a = Vec::new();
        let mut b = Vec::new();
        grid.within(&q, r, &mut a);
        brute.within(&q, r, &mut b);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(&a, &b);
        // Both also agree with the raw kernel over the point array.
        let mut c = Vec::new();
        L2.within_indices(&q, &pts, r, &mut c);
        prop_assert_eq!(&a, &c);
        // The absorb test is consistent with the within set.
        let ga = grid.absorb_candidate(&q, r);
        let ba = brute.absorb_candidate(&q, r);
        prop_assert_eq!(ga.is_some(), !a.is_empty());
        prop_assert_eq!(ba.is_some(), !a.is_empty());
        if let Some(id) = ga { prop_assert!(a.contains(&id)); }
        if let Some(id) = ba { prop_assert!(a.contains(&id)); }
    }
}

/// Exactly representable ties: a 3-4-5 configuration where `dist² ≤ r²`
/// and `dist ≤ r` are both exact, on all four metrics.
#[test]
fn deferred_sqrt_exact_ties() {
    let q = [0.0f64, 0.0];
    let pts = [[3.0, 4.0], [4.0, 3.0], [5.0, 0.0], [3.0, 4.0000001]];
    assert_eq!(L2.count_within(&q, &pts, 5.0), 3);
    let mut idx = Vec::new();
    L2.within_indices(&q, &pts, 5.0, &mut idx);
    assert_eq!(idx, vec![0, 1, 2]);
    assert_eq!(Linf.count_within(&q, &pts, 4.0), 2);

    let gq = [0u64, 0];
    let gpts = [[3u64, 4], [5, 0], [4, 4]];
    assert_eq!(GridL2.count_within(&gq, &gpts, 5.0), 2);
    assert_eq!(GridLinf.count_within(&gq, &gpts, 4.0), 2);
    // r = 0 with exact duplicates.
    assert_eq!(GridL2.count_within(&gq, &[[0u64, 0], [1, 0]], 0.0), 1);
    assert_eq!(L2.find_within(&q, &[[0.0, 0.0]], 0.0), Some(0));
}

/// The grid index answers exactly at its maximum radius (points exactly
/// `cell` away live in a neighbouring bucket and must be found).
#[test]
fn grid_index_exact_at_cell_boundary() {
    let mut grid = GridBucketIndex::<2>::new(2.0);
    grid.insert(&[2.0, 0.0], 0); // exactly r away from the query
    grid.insert(&[2.0000001, 0.0], 1); // just outside
    let mut out = Vec::new();
    grid.within(&[0.0, 0.0], 2.0, &mut out);
    assert_eq!(out, vec![0]);
    assert_eq!(grid.absorb_candidate(&[0.0, 0.0], 2.0), Some(0));
}
