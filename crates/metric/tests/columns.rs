//! Columnar-kernel equivalence: every `col_*` kernel must be
//! **bit-identical** to its AoS counterpart in f64 mode, for all four
//! array metrics, at d ∈ {2, 3, 4, 8}, on ragged lengths (the blocked
//! loops run a scalar tail for n mod 8 ≠ 0), and at the contract's edge
//! cases — squared-distance ties, negative/NaN radii, overflowing radii,
//! NaN coordinates.  The f32 mode is checked separately for its
//! approximate contract (classification agreement off the rounding
//! band, error within [`F32_EPS_BUDGET`]).

use kcz_metric::{
    BruteForceIndex, ColumnIndex, GridL2, GridLinf, Linf, MetricSpace, NeighborIndex, Precision,
    Weighted, L2,
};
use proptest::prelude::*;

/// Asserts every columnar kernel of `metric` returns bit-identical
/// results to the AoS kernel on one (query, point-set, radius) instance.
fn check_columnar<P: Clone + std::fmt::Debug, M: MetricSpace<P>>(
    metric: &M,
    q: &P,
    pts: &[P],
    r: f64,
) -> Result<(), TestCaseError> {
    let cols = metric
        .build_columns(pts, Precision::F64)
        .expect("array metrics support columns");
    prop_assert_eq!(cols.len(), pts.len());

    // dist_many: identical bits, not just identical values.
    let mut aos = Vec::new();
    let mut col = Vec::new();
    metric.dist_many(q, pts, &mut aos);
    metric.col_dist_many(&cols, q, &mut col);
    let aos_bits: Vec<u64> = aos.iter().map(|d| d.to_bits()).collect();
    let col_bits: Vec<u64> = col.iter().map(|d| d.to_bits()).collect();
    prop_assert_eq!(aos_bits, col_bits);

    // nearest: same index (smallest on squared ties) and same bits.
    let a = metric.nearest(q, pts);
    let c = metric.col_nearest(&cols, q);
    prop_assert_eq!(
        a.map(|(i, d)| (i, d.to_bits())),
        c.map(|(i, d)| (i, d.to_bits()))
    );

    // Radius-testing family.
    prop_assert_eq!(
        metric.find_within(q, pts, r),
        metric.col_find_within(&cols, q, r)
    );
    prop_assert_eq!(
        metric.count_within(q, pts, r),
        metric.col_count_within(&cols, q, r)
    );
    let mut aos_idx = Vec::new();
    let mut col_idx = Vec::new();
    metric.within_indices(q, pts, r, &mut aos_idx);
    metric.col_within_indices(&cols, q, r, &mut col_idx);
    prop_assert_eq!(&aos_idx, &col_idx);

    // Weighted cover kernels, including the greedy's argmax rule.
    let weights: Vec<u64> = (0..pts.len()).map(|i| 1 + (i as u64 % 5)).collect();
    prop_assert_eq!(
        metric.cover_weight(q, pts, &weights, r),
        metric.col_cover_weight(&cols, q, &weights, r)
    );
    prop_assert_eq!(
        metric.argmax_cover_weight(pts, pts, &weights, r),
        metric.col_argmax_cover_weight(pts, &cols, &weights, r)
    );

    // The weighted build carries the weight lane and scans identically.
    let weighted: Vec<Weighted<P>> = pts
        .iter()
        .zip(&weights)
        .map(|(p, &w)| Weighted::new(p.clone(), w))
        .collect();
    let wcols = metric
        .build_columns_weighted(&weighted, Precision::F64)
        .expect("array metrics support columns");
    prop_assert_eq!(
        metric.find_within_weighted(q, &weighted, r),
        metric.col_find_within(&wcols, q, r)
    );
    Ok(())
}

/// `n·D` coordinates chunked into `[f64; D]` points: lengths land on
/// every residue mod the block width, exercising the scalar tails.
fn euclid_pts<const D: usize>(max_n: usize) -> impl Strategy<Value = Vec<[f64; D]>> {
    prop::collection::vec(-100.0f64..100.0, 0..max_n * D).prop_map(|v| {
        v.chunks_exact(D)
            .map(|c| {
                let mut p = [0.0; D];
                p.copy_from_slice(c);
                p
            })
            .collect()
    })
}

fn grid_pts<const D: usize>(max_n: usize) -> impl Strategy<Value = Vec<[u64; D]>> {
    prop::collection::vec(0u64..1000, 0..max_n * D).prop_map(|v| {
        v.chunks_exact(D)
            .map(|c| {
                let mut p = [0u64; D];
                p.copy_from_slice(c);
                p
            })
            .collect()
    })
}

macro_rules! columnar_agree_at_dim {
    ($l2:ident, $linf:ident, $gl2:ident, $glinf:ident, $d:literal) => {
        proptest! {
            #![proptest_config(ProptestConfig {
                cases: 16,
                rng_seed: 0xC01_0_0000 + $d,
                ..ProptestConfig::default()
            })]

            #[test]
            fn $l2(pts in euclid_pts::<$d>(40), q in euclid_pts::<$d>(2),
                   r in 0.0f64..250.0) {
                let q = q.first().copied().unwrap_or([1.25; $d]);
                check_columnar(&L2, &q, &pts, r)?;
            }

            #[test]
            fn $linf(pts in euclid_pts::<$d>(40), q in euclid_pts::<$d>(2),
                     r in 0.0f64..250.0) {
                let q = q.first().copied().unwrap_or([1.25; $d]);
                check_columnar(&Linf, &q, &pts, r)?;
            }

            #[test]
            fn $gl2(pts in grid_pts::<$d>(40), q in grid_pts::<$d>(2),
                    r in 0.0f64..1500.0) {
                let q = q.first().copied().unwrap_or([7; $d]);
                check_columnar(&GridL2, &q, &pts, r)?;
            }

            #[test]
            fn $glinf(pts in grid_pts::<$d>(40), q in grid_pts::<$d>(2),
                      r in 0.0f64..1500.0) {
                let q = q.first().copied().unwrap_or([7; $d]);
                check_columnar(&GridLinf, &q, &pts, r)?;
            }
        }
    };
}

columnar_agree_at_dim!(
    l2_agrees_d2,
    linf_agrees_d2,
    gridl2_agrees_d2,
    gridlinf_agrees_d2,
    2
);
columnar_agree_at_dim!(
    l2_agrees_d3,
    linf_agrees_d3,
    gridl2_agrees_d3,
    gridlinf_agrees_d3,
    3
);
columnar_agree_at_dim!(
    l2_agrees_d4,
    linf_agrees_d4,
    gridl2_agrees_d4,
    gridlinf_agrees_d4,
    4
);
columnar_agree_at_dim!(
    l2_agrees_d8,
    linf_agrees_d8,
    gridl2_agrees_d8,
    gridlinf_agrees_d8,
    8
);

#[test]
fn squared_ties_pick_smallest_index_in_both_paths() {
    // [4,3] and [3,4] are equidistant from the origin with *exactly*
    // representable squared distances: the tie must resolve to index 0
    // on both paths, and the 3-4-5 radius tie must classify identically.
    let q = [0.0, 0.0];
    let pts = [[4.0, 3.0], [3.0, 4.0], [5.0, 0.0], [0.0, 0.0]];
    for r in [5.0, 4.999999999999999, 0.0, -1.0, f64::NAN] {
        check_columnar(&L2, &q, &pts, r).unwrap();
    }
    let cols = L2.build_columns(&pts, Precision::F64).unwrap();
    assert_eq!(L2.col_nearest(&cols, &q), Some((3, 0.0)));
    assert_eq!(L2.col_find_within(&cols, &q, 5.0), Some(0));
    assert_eq!(L2.col_count_within(&cols, &q, 5.0), 4);
}

#[test]
fn ragged_lengths_agree_for_every_tail() {
    // One point per length 0..=20: every block/tail split of the
    // 8-wide kernels, bits compared against the AoS scan.
    for n in 0..=20usize {
        let pts: Vec<[f64; 3]> = (0..n)
            .map(|i| {
                let x = i as f64;
                [x * 1.5 - 7.0, (x * x) % 13.0, -x / 3.0]
            })
            .collect();
        let q = [0.25, -1.5, 2.0];
        check_columnar(&L2, &q, &pts, 9.0).unwrap();
        check_columnar(&Linf, &q, &pts, 9.0).unwrap();
    }
}

#[test]
fn overflowing_radius_falls_back_to_scalar_in_both_paths() {
    let q = [0.0, 0.0];
    let pts = [[1e150, 0.0], [3e200, 0.0]];
    let r = 2e200; // r² overflows: squared compare would accept both
    check_columnar(&L2, &q, &pts, r).unwrap();
    let cols = L2.build_columns(&pts, Precision::F64).unwrap();
    assert_eq!(L2.col_count_within(&cols, &q, r), 1);
    assert_eq!(L2.col_find_within(&cols, &q, r), Some(0));
}

#[test]
fn nan_coordinates_skipped_like_scalar() {
    // inf − inf yields a NaN distance at index 0: `nearest` must fall
    // through to the comparable entry, radius tests must not match it.
    let q = [f64::INFINITY, 4.0];
    let pts = [[f64::INFINITY, 0.0], [5.0, 5.0]];
    check_columnar(&L2, &q, &pts, 100.0).unwrap();
    check_columnar(&Linf, &q, &pts, 100.0).unwrap();
    let cols = L2.build_columns(&pts, Precision::F64).unwrap();
    assert_eq!(L2.col_nearest(&cols, &q).unwrap().0, 1);
}

#[test]
fn f32_mode_classifies_away_from_the_rounding_band() {
    // Comfortably separated points: f32 classification must agree with
    // f64 when the margin dwarfs the f32 rounding error.
    let pts: Vec<[f64; 2]> = (0..100)
        .map(|i| [(i % 10) as f64 * 10.0, (i / 10) as f64 * 10.0])
        .collect();
    let cols32 = L2.build_columns(&pts, Precision::F32).unwrap();
    assert_eq!(cols32.precision(), Precision::F32);
    let q = [35.0, 45.0];
    for r in [4.0, 12.5, 25.0] {
        assert_eq!(
            L2.col_count_within(&cols32, &q, r),
            L2.count_within(&q, &pts, r),
            "radius {r}"
        );
    }
    // Distances agree to f32 relative accuracy.
    let mut d64 = Vec::new();
    let mut d32 = Vec::new();
    L2.dist_many(&q, &pts, &mut d64);
    L2.col_dist_many(&cols32, &q, &mut d32);
    for (a, b) in d64.iter().zip(&d32) {
        assert!((a - b).abs() <= 1e-3 * a.max(1.0), "{a} vs {b}");
    }
}

#[test]
fn column_index_matches_brute_force() {
    let pts: Vec<[f64; 2]> = (0..60)
        .map(|i| {
            let x = i as f64;
            [(x * 37.0) % 50.0, (x * 17.0) % 50.0]
        })
        .collect();
    let mut ci = ColumnIndex::new(L2, Precision::F64);
    let mut bf = BruteForceIndex::new(L2);
    assert!(ci.is_columnar());
    for (i, p) in pts.iter().enumerate() {
        ci.insert(p, i);
        bf.insert(p, i);
    }
    assert!(ci.remove(&pts[11], 11) && bf.remove(&pts[11], 11));
    assert!(!ci.remove(&pts[11], 11));
    assert_eq!(ci.len(), bf.len());
    let mut a = Vec::new();
    let mut b = Vec::new();
    for q in &pts {
        ci.within(q, 6.5, &mut a);
        bf.within(q, 6.5, &mut b);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "query {q:?}");
        assert_eq!(
            ci.absorb_candidate(q, 6.5).is_some(),
            bf.absorb_candidate(q, 6.5).is_some()
        );
    }
}

#[test]
fn column_index_falls_back_without_columnar_metric() {
    use kcz_metric::Line;
    let mut ci = ColumnIndex::new(Line, Precision::F64);
    assert!(!ci.is_columnar());
    ci.insert(&1.0, 0);
    ci.insert(&5.0, 1);
    assert_eq!(ci.absorb_candidate(&1.4, 0.5), Some(0));
    let mut out = Vec::new();
    ci.within(&3.0, 2.5, &mut out);
    out.sort_unstable();
    assert_eq!(out, vec![0, 1]);
}
