//! Weighted points: the paper's weighted k-center formulation.
//!
//! In the weighted version of the problem (Section 1) every point carries a
//! positive integer weight and the *total weight* of the outliers must be at
//! most `z`.  Mini-ball coverings (Definition 2) produce weighted point
//! sets, so weights thread through the whole suite.

use crate::space::SpaceUsage;

/// A point with a positive integer weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weighted<P> {
    /// Location of the point.
    pub point: P,
    /// Positive integer weight (`w : P → Z+`).
    pub weight: u64,
}

impl<P> Weighted<P> {
    /// Creates a weighted point; panics on zero weight (the paper requires
    /// strictly positive integer weights).
    pub fn new(point: P, weight: u64) -> Self {
        assert!(weight > 0, "weights must be positive integers");
        Weighted { point, weight }
    }

    /// A unit-weight point.
    pub fn unit(point: P) -> Self {
        Weighted { point, weight: 1 }
    }

    /// Maps the location while preserving the weight.
    pub fn map<Q>(self, f: impl FnOnce(P) -> Q) -> Weighted<Q> {
        Weighted {
            point: f(self.point),
            weight: self.weight,
        }
    }
}

/// Wraps every point of `points` with weight 1.
pub fn unit_weighted<P: Clone>(points: &[P]) -> Vec<Weighted<P>> {
    points.iter().cloned().map(Weighted::unit).collect()
}

/// Total weight of a weighted set (`Σ_p w(p)`); saturates on overflow.
pub fn total_weight<P>(points: &[Weighted<P>]) -> u64 {
    points.iter().fold(0u64, |a, p| a.saturating_add(p.weight))
}

impl<P: SpaceUsage> SpaceUsage for Weighted<P> {
    fn words(&self) -> usize {
        self.point.words() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_and_total() {
        let pts = vec![[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]];
        let w = unit_weighted(&pts);
        assert_eq!(w.len(), 3);
        assert_eq!(total_weight(&w), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let _ = Weighted::new([0.0; 2], 0);
    }

    #[test]
    fn map_preserves_weight() {
        let p = Weighted::new([1.0, 2.0], 7);
        let q = p.map(|c| c[0]);
        assert_eq!(q.weight, 7);
        assert_eq!(q.point, 1.0);
    }

    #[test]
    fn total_weight_saturates() {
        let w = vec![Weighted::new(0.0f64, u64::MAX), Weighted::new(1.0, 5)];
        assert_eq!(total_weight(&w), u64::MAX);
    }
}
