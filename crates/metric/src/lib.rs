//! Metric-space foundations for the k-center-with-outliers suite.
//!
//! The paper ("k-Center Clustering with Outliers in the MPC and Streaming
//! Model", de Berg, Biabani, Monemizadeh, IPDPS 2023) works in an abstract
//! metric space `(X, dist)` of doubling dimension `d`.  This crate provides:
//!
//! * point types: fixed-dimension Euclidean points (`[f64; D]`), discrete
//!   grid points from `[Δ]^d` (`[u64; D]`), and a generic [`MetricSpace`]
//!   trait so every algorithm upstream is metric-agnostic;
//! * metrics: [`L2`], [`Linf`], and their discrete-grid counterparts;
//! * **batched distance kernels**: every [`MetricSpace`] ships one-to-many
//!   methods ([`MetricSpace::dist_many`], [`MetricSpace::nearest`],
//!   [`MetricSpace::count_within`], [`MetricSpace::cover_weight`], …) with
//!   auto-vectorizable overrides for the Euclidean metrics that defer or
//!   skip the `sqrt` — the single kernel surface behind every hot loop in
//!   the suite (greedy cover counting, mini-ball partitions, streaming
//!   absorption, MPC local rounds);
//! * [`index::NeighborIndex`]: pruned neighbor queries (`within`,
//!   `absorb_candidate`) with a hash-grid bucket implementation
//!   ([`index::GridBucketIndex`]) and a kernel-backed brute-force
//!   fallback ([`index::BruteForceIndex`]);
//! * [`Weighted`] points with positive integer weights (the paper's weighted
//!   k-center formulation, Section 1);
//! * utilities used throughout: pairwise-distance extrema, spread
//!   (the ratio σ of Section 6), and bounding boxes;
//! * [`SpaceUsage`], the word-accounting trait backing every storage
//!   measurement reported by the MPC simulator and the streaming
//!   algorithms.

#![warn(missing_docs)]

pub mod columns;
pub(crate) mod grid;
pub mod index;
pub mod space;
pub mod stats;
pub mod weighted;

pub use columns::{ColumnSet, ColumnStore, Precision, F32_EPS_BUDGET};
pub use index::{BruteForceIndex, ColumnIndex, GridBucketIndex, NeighborIndex};
pub use space::SpaceUsage;
pub use weighted::{total_weight, unit_weighted, Weighted};

/// A metric over points of type `P`, with batched one-to-many kernels.
///
/// Implementations must satisfy the metric axioms (identity, symmetry,
/// triangle inequality); the property tests in this crate check them on the
/// provided implementations.  `doubling_dim` reports the doubling dimension
/// `d` of the space, which the paper's algorithms use solely to compute
/// capacity thresholds such as `k(16/ε)^d + z` (Algorithm 3) — it never
/// affects correctness of the constructions, only their size bounds.
///
/// # Batched kernels and the deferred-`sqrt` contract
///
/// Beyond the scalar [`dist`](Self::dist), the trait provides one-to-many
/// kernels (`dist_many`, `nearest`, `find_within`, `count_within`,
/// `within_indices`, `cover_weight`, `argmax_cover_weight`, and the
/// `*_weighted` variants).  The provided defaults are plain scalar loops;
/// the Euclidean metrics ([`L2`], [`GridL2`]) override them to compute
/// *squared* distances in the inner loop and defer the `sqrt`:
///
/// * kernels that return distances (`dist_many`, `nearest`) apply the
///   `sqrt` once per output value, after the scan, and return exactly the
///   same values as the scalar `dist` (IEEE `sqrt` is correctly rounded,
///   so `√(min sᵢ) = min √sᵢ`);
/// * kernels that only *test* a radius (`within`, `find_within`,
///   `count_within`, `within_indices`, `cover_weight`,
///   `argmax_cover_weight`) skip the `sqrt` entirely and evaluate
///   `dist²(a,b) ≤ r²`.  This agrees with the scalar `dist(a,b) ≤ r` at
///   `r = 0`, at exactly representable ties (duplicate points, integer
///   3-4-5 configurations, …), and everywhere except when the two sides
///   are within one floating-point ulp of equality.  Callers that test a
///   radius *derived from a computed distance* and need boundary-exact
///   classification (e.g. the cost validators, whose radius is itself some
///   point's distance) should compare via `nearest`/`dist_many` instead.
///
/// All radius-testing kernels treat a negative or NaN `r` as matching
/// nothing, like the scalar comparison does.  Radii above `√f64::MAX`
/// (≈ 1.34·10¹⁵⁴, where `r²` overflows) fall back to scalar distances, and
/// the `nearest` kernels skip NaN distances (from non-finite coordinates)
/// whenever any comparable distance exists.
pub trait MetricSpace<P>: Send + Sync {
    /// Distance between `a` and `b`.
    fn dist(&self, a: &P, b: &P) -> f64;

    /// Doubling dimension of the space (a constant per the paper).
    fn doubling_dim(&self) -> usize;

    /// Whether `dist(a, b) ≤ r`, up to the deferred-`sqrt` contract (see
    /// the trait docs).  The Euclidean overrides compare squared
    /// distances; [`Linf`] exits early on the first coordinate exceeding
    /// `r`.
    #[inline]
    fn within(&self, a: &P, b: &P, r: f64) -> bool {
        self.dist(a, b) <= r
    }

    /// Writes `dist(q, p)` for every `p` in `pts` into `out` (cleared
    /// first).  Returns exactly the scalar distances; the Euclidean
    /// overrides batch the accumulation and apply the `sqrt` in a single
    /// pass at the end.
    fn dist_many(&self, q: &P, pts: &[P], out: &mut Vec<f64>) {
        // `extend` over an exact-size iterator reserves once by itself;
        // an explicit `reserve` here would re-check (and on some
        // allocators re-touch) the header on every call of a steady
        // state that reuses `out` at constant capacity.
        out.clear();
        out.extend(pts.iter().map(|p| self.dist(q, p)));
    }

    /// Index and distance of the point of `pts` nearest to `q`; `None` on
    /// an empty slice.  The returned distance equals the scalar `dist`
    /// exactly (the `sqrt` is deferred, not skipped).  Ties resolve to the
    /// smallest index — for the Euclidean overrides, ties on the *squared*
    /// distances, which can pick a different index than post-`sqrt` ties
    /// only when two distinct squares round to the same square root (the
    /// returned distance is the same either way).
    fn nearest(&self, q: &P, pts: &[P]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, p) in pts.iter().enumerate() {
            let d = self.dist(q, p);
            if nearer(d, best) {
                best = Some((i, d));
            }
        }
        best
    }

    /// First index of `pts` within distance `r` of `q` (the streaming
    /// absorb test), or `None`.  Deferred-`sqrt` contract applies.
    fn find_within(&self, q: &P, pts: &[P], r: f64) -> Option<usize> {
        pts.iter().position(|p| self.within(q, p, r))
    }

    /// Number of points of `pts` within distance `r` of `q`.
    /// Deferred-`sqrt` contract applies.
    fn count_within(&self, q: &P, pts: &[P], r: f64) -> usize {
        pts.iter().filter(|p| self.within(q, p, r)).count()
    }

    /// Writes the ascending indices of all points of `pts` within distance
    /// `r` of `q` into `out` (cleared first).  Deferred-`sqrt` contract
    /// applies.
    fn within_indices(&self, q: &P, pts: &[P], r: f64, out: &mut Vec<usize>) {
        out.clear();
        for (i, p) in pts.iter().enumerate() {
            if self.within(q, p, r) {
                out.push(i);
            }
        }
    }

    /// Total weight of the points of `pts` within distance `r` of `q` —
    /// the covered weight of the ball `B(q, r)` (saturating).  `weights`
    /// must be parallel to `pts`.  Deferred-`sqrt` contract applies.
    fn cover_weight(&self, q: &P, pts: &[P], weights: &[u64], r: f64) -> u64 {
        assert_eq!(pts.len(), weights.len(), "weights must parallel pts");
        let mut total = 0u64;
        for (p, &w) in pts.iter().zip(weights) {
            if self.within(q, p, r) {
                total = total.saturating_add(w);
            }
        }
        total
    }

    /// Among `candidates`, the index whose `r`-ball covers the most weight
    /// of `pts`, together with that weight; `None` when `candidates` is
    /// empty.  Ties resolve to the smallest index.  This is the selection
    /// rule of the Charikar-et-al. greedy.  Deferred-`sqrt` contract
    /// applies.
    fn argmax_cover_weight(
        &self,
        candidates: &[P],
        pts: &[P],
        weights: &[u64],
        r: f64,
    ) -> Option<(usize, u64)> {
        let mut best: Option<(usize, u64)> = None;
        for (i, c) in candidates.iter().enumerate() {
            let g = self.cover_weight(c, pts, weights, r);
            if best.is_none_or(|(_, b)| g > b) {
                best = Some((i, g));
            }
        }
        best
    }

    /// [`find_within`](Self::find_within) over a weighted slice, scanning
    /// the `point` fields.  Deferred-`sqrt` contract applies.
    fn find_within_weighted(&self, q: &P, pts: &[Weighted<P>], r: f64) -> Option<usize> {
        pts.iter().position(|w| self.within(q, &w.point, r))
    }

    /// [`dist_many`](Self::dist_many) over a weighted slice, scanning the
    /// `point` fields without materializing a bare point array.  Returns
    /// exactly the scalar distances; the Euclidean overrides defer the
    /// `sqrt` like `dist_many` does.  This is the borrow-only path
    /// summary structures use to scan their own representatives (e.g.
    /// radius establishment in the streaming coreset) without cloning
    /// every point per call.
    fn dist_many_weighted(&self, q: &P, pts: &[Weighted<P>], out: &mut Vec<f64>) {
        // No explicit `reserve`: see `dist_many`.
        out.clear();
        out.extend(pts.iter().map(|p| self.dist(q, &p.point)));
    }

    /// [`nearest`](Self::nearest) over a weighted slice, scanning the
    /// `point` fields.  The returned distance equals the scalar `dist`.
    fn nearest_weighted(&self, q: &P, pts: &[Weighted<P>]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, p) in pts.iter().enumerate() {
            let d = self.dist(q, &p.point);
            if nearer(d, best) {
                best = Some((i, d));
            }
        }
        best
    }

    // ------------------------------------------------------------------
    // Columnar kernels (see the `columns` module).
    //
    // A metric that supports structure-of-arrays scans overrides
    // `build_columns`/`build_columns_weighted` to transpose a point
    // slice into a [`ColumnSet`], and the `col_*` kernels to run on it.
    // The defaults return `None` — consumers must treat a `None` as "no
    // columnar support" and fall back to the AoS kernels above.  The
    // `col_*` defaults panic: they are only reachable by handing a
    // metric a `ColumnSet` it did not build, which is a caller bug.
    //
    // In [`Precision::F64`] mode the columnar kernels are bit-identical
    // to the AoS kernels (same deferred-`sqrt` contract, same ties);
    // [`Precision::F32`] mode is approximate — see [`F32_EPS_BUDGET`].
    // ------------------------------------------------------------------

    /// Transposes `pts` into a columnar store scanned by the `col_*`
    /// kernels, or `None` when this metric has no columnar support
    /// (the default).
    fn build_columns(&self, _pts: &[P], _mode: Precision) -> Option<ColumnSet> {
        None
    }

    /// [`build_columns`](Self::build_columns) over a weighted slice,
    /// carrying the weights into the store's weight lane.
    fn build_columns_weighted(&self, _pts: &[Weighted<P>], _mode: Precision) -> Option<ColumnSet> {
        None
    }

    /// Appends one point (with weight) to a [`ColumnSet`] this metric
    /// built — the incremental absorb-miss path.
    fn col_push(&self, _cols: &mut ColumnSet, _p: &P, _w: u64) {
        panic!("metric has no columnar kernels (ColumnSet from a different metric?)");
    }

    /// [`dist_many`](Self::dist_many) over a [`ColumnSet`] this metric
    /// built.
    fn col_dist_many(&self, _cols: &ColumnSet, _q: &P, _out: &mut Vec<f64>) {
        panic!("metric has no columnar kernels (ColumnSet from a different metric?)");
    }

    /// [`nearest`](Self::nearest) over a [`ColumnSet`] this metric built.
    fn col_nearest(&self, _cols: &ColumnSet, _q: &P) -> Option<(usize, f64)> {
        panic!("metric has no columnar kernels (ColumnSet from a different metric?)");
    }

    /// [`find_within`](Self::find_within) over a [`ColumnSet`] this
    /// metric built.
    fn col_find_within(&self, _cols: &ColumnSet, _q: &P, _r: f64) -> Option<usize> {
        panic!("metric has no columnar kernels (ColumnSet from a different metric?)");
    }

    /// [`count_within`](Self::count_within) over a [`ColumnSet`] this
    /// metric built.
    fn col_count_within(&self, _cols: &ColumnSet, _q: &P, _r: f64) -> usize {
        panic!("metric has no columnar kernels (ColumnSet from a different metric?)");
    }

    /// [`within_indices`](Self::within_indices) over a [`ColumnSet`]
    /// this metric built.
    fn col_within_indices(&self, _cols: &ColumnSet, _q: &P, _r: f64, _out: &mut Vec<usize>) {
        panic!("metric has no columnar kernels (ColumnSet from a different metric?)");
    }

    /// [`cover_weight`](Self::cover_weight) over a [`ColumnSet`] this
    /// metric built; `weights` must parallel the stored points (pass
    /// [`ColumnSet`]'s own weight lane or an external one).
    fn col_cover_weight(&self, _cols: &ColumnSet, _q: &P, _weights: &[u64], _r: f64) -> u64 {
        panic!("metric has no columnar kernels (ColumnSet from a different metric?)");
    }

    /// [`argmax_cover_weight`](Self::argmax_cover_weight) with the
    /// covered point set held in a [`ColumnSet`] this metric built.
    fn col_argmax_cover_weight(
        &self,
        _candidates: &[P],
        _cols: &ColumnSet,
        _weights: &[u64],
        _r: f64,
    ) -> Option<(usize, u64)> {
        panic!("metric has no columnar kernels (ColumnSet from a different metric?)");
    }
}

/// Squared Euclidean distance over `[f64; D]`; the accumulation order
/// matches [`L2::dist`] so the deferred `sqrt` reproduces it bit-for-bit.
#[inline(always)]
fn sq_l2<const D: usize>(a: &[f64; D], b: &[f64; D]) -> f64 {
    let mut s = 0.0;
    for i in 0..D {
        let d = a[i] - b[i];
        s += d * d;
    }
    s
}

/// Squared Euclidean distance over grid points `[u64; D]`.
#[inline(always)]
fn sq_grid<const D: usize>(a: &[u64; D], b: &[u64; D]) -> f64 {
    let mut s = 0.0;
    for i in 0..D {
        let d = a[i] as f64 - b[i] as f64;
        s += d * d;
    }
    s
}

/// Squared-radius threshold for the deferred-`sqrt` comparisons: negative
/// and NaN radii match nothing (`s ≤ NEG_INFINITY` is false for every
/// non-negative `s`), mirroring the scalar `dist ≤ r`.
#[inline(always)]
fn sq_threshold(r: f64) -> f64 {
    if r >= 0.0 {
        r * r
    } else {
        f64::NEG_INFINITY
    }
}

/// True when `r` is finite but `r²` overflows to infinity (`r > √MAX ≈
/// 1.34e154`): squared-space comparison can no longer separate radii, so
/// the radius-testing kernels fall back to the scalar `dist`.
#[inline(always)]
fn sq_overflows(r: f64) -> bool {
    r.is_finite() && (r * r).is_infinite()
}

/// Update rule shared by the `nearest` kernels: a NaN distance never beats
/// a comparable one, and any comparable distance evicts a NaN best —
/// matching the `fold(INFINITY, f64::min)` scans these kernels replaced,
/// which ignored NaN.  Applies equally to squared distances (`d²` is NaN
/// iff `d` is).
#[inline(always)]
fn nearer(d: f64, best: Option<(usize, f64)>) -> bool {
    match best {
        None => true,
        Some((_, b)) => d < b || (b.is_nan() && !d.is_nan()),
    }
}

/// Batched-kernel overrides shared by the Euclidean metrics: squared
/// distances in the inner loops, `sqrt` deferred (distance-returning
/// kernels) or skipped (radius-testing kernels).
macro_rules! euclidean_batch_kernels {
    ($pt:ty, $sq:path) => {
        #[inline]
        fn within(&self, a: &$pt, b: &$pt, r: f64) -> bool {
            if sq_overflows(r) {
                return self.dist(a, b) <= r;
            }
            $sq(a, b) <= sq_threshold(r)
        }

        fn dist_many(&self, q: &$pt, pts: &[$pt], out: &mut Vec<f64>) {
            // resize + indexed writes (not `push`): the capacity check per
            // element would block autovectorization of both passes.
            out.clear();
            out.resize(pts.len(), 0.0);
            for (o, p) in out.iter_mut().zip(pts) {
                *o = $sq(q, p);
            }
            for v in out.iter_mut() {
                *v = v.sqrt();
            }
        }

        fn nearest(&self, q: &$pt, pts: &[$pt]) -> Option<(usize, f64)> {
            let mut best: Option<(usize, f64)> = None;
            for (i, p) in pts.iter().enumerate() {
                let s = $sq(q, p);
                if nearer(s, best) {
                    best = Some((i, s));
                }
            }
            best.map(|(i, s)| (i, s.sqrt()))
        }

        fn find_within(&self, q: &$pt, pts: &[$pt], r: f64) -> Option<usize> {
            if sq_overflows(r) {
                return pts.iter().position(|p| self.dist(q, p) <= r);
            }
            let r2 = sq_threshold(r);
            pts.iter().position(|p| $sq(q, p) <= r2)
        }

        fn count_within(&self, q: &$pt, pts: &[$pt], r: f64) -> usize {
            if sq_overflows(r) {
                return pts.iter().filter(|p| self.dist(q, p) <= r).count();
            }
            let r2 = sq_threshold(r);
            pts.iter().filter(|p| $sq(q, p) <= r2).count()
        }

        fn within_indices(&self, q: &$pt, pts: &[$pt], r: f64, out: &mut Vec<usize>) {
            out.clear();
            if sq_overflows(r) {
                for (i, p) in pts.iter().enumerate() {
                    if self.dist(q, p) <= r {
                        out.push(i);
                    }
                }
                return;
            }
            let r2 = sq_threshold(r);
            for (i, p) in pts.iter().enumerate() {
                if $sq(q, p) <= r2 {
                    out.push(i);
                }
            }
        }

        fn cover_weight(&self, q: &$pt, pts: &[$pt], weights: &[u64], r: f64) -> u64 {
            assert_eq!(pts.len(), weights.len(), "weights must parallel pts");
            let mut total = 0u64;
            if sq_overflows(r) {
                for (p, &w) in pts.iter().zip(weights) {
                    if self.dist(q, p) <= r {
                        total = total.saturating_add(w);
                    }
                }
                return total;
            }
            let r2 = sq_threshold(r);
            for (p, &w) in pts.iter().zip(weights) {
                if $sq(q, p) <= r2 {
                    total = total.saturating_add(w);
                }
            }
            total
        }

        fn find_within_weighted(&self, q: &$pt, pts: &[Weighted<$pt>], r: f64) -> Option<usize> {
            if sq_overflows(r) {
                return pts.iter().position(|w| self.dist(q, &w.point) <= r);
            }
            let r2 = sq_threshold(r);
            pts.iter().position(|w| $sq(q, &w.point) <= r2)
        }

        fn nearest_weighted(&self, q: &$pt, pts: &[Weighted<$pt>]) -> Option<(usize, f64)> {
            let mut best: Option<(usize, f64)> = None;
            for (i, p) in pts.iter().enumerate() {
                let s = $sq(q, &p.point);
                if nearer(s, best) {
                    best = Some((i, s));
                }
            }
            best.map(|(i, s)| (i, s.sqrt()))
        }

        fn dist_many_weighted(&self, q: &$pt, pts: &[Weighted<$pt>], out: &mut Vec<f64>) {
            out.clear();
            out.resize(pts.len(), 0.0);
            for (o, p) in out.iter_mut().zip(pts) {
                *o = $sq(q, &p.point);
            }
            for v in out.iter_mut() {
                *v = v.sqrt();
            }
        }
    };
}

/// Coordinates of a Euclidean point, as the columnar lanes store them.
#[inline(always)]
fn euclid_coords<const D: usize>(p: &[f64; D]) -> [f64; D] {
    *p
}

/// Columnar-hook overrides shared by all four array metrics: transpose
/// via `$coords` (identity for `[f64; D]`, exact `as f64` conversion for
/// grid points — the same conversion the scalar kernels apply), then
/// dispatch to the `$family` kernels of [`ColumnStore`].
macro_rules! columnar_hooks {
    ($pt:ty, $coords:path,
     $dist_many:ident, $nearest:ident, $find_within:ident, $count_within:ident,
     $within_indices:ident, $cover_weight:ident, $argmax_cover_weight:ident) => {
        fn build_columns(&self, pts: &[$pt], mode: Precision) -> Option<ColumnSet> {
            Some(ColumnSet::new(ColumnStore::<D>::from_points(
                mode,
                pts.iter().map(|p| ($coords(p), 1u64)),
            )))
        }

        fn build_columns_weighted(
            &self,
            pts: &[Weighted<$pt>],
            mode: Precision,
        ) -> Option<ColumnSet> {
            Some(ColumnSet::new(ColumnStore::<D>::from_points(
                mode,
                pts.iter().map(|p| ($coords(&p.point), p.weight)),
            )))
        }

        fn col_push(&self, cols: &mut ColumnSet, p: &$pt, w: u64) {
            cols.store_mut::<D>()
                .expect("column dimension mismatch")
                .push(&$coords(p), w)
        }

        fn col_dist_many(&self, cols: &ColumnSet, q: &$pt, out: &mut Vec<f64>) {
            cols.store::<D>()
                .expect("column dimension mismatch")
                .$dist_many(&$coords(q), out)
        }

        fn col_nearest(&self, cols: &ColumnSet, q: &$pt) -> Option<(usize, f64)> {
            cols.store::<D>()
                .expect("column dimension mismatch")
                .$nearest(&$coords(q))
        }

        fn col_find_within(&self, cols: &ColumnSet, q: &$pt, r: f64) -> Option<usize> {
            cols.store::<D>()
                .expect("column dimension mismatch")
                .$find_within(&$coords(q), r)
        }

        fn col_count_within(&self, cols: &ColumnSet, q: &$pt, r: f64) -> usize {
            cols.store::<D>()
                .expect("column dimension mismatch")
                .$count_within(&$coords(q), r)
        }

        fn col_within_indices(&self, cols: &ColumnSet, q: &$pt, r: f64, out: &mut Vec<usize>) {
            cols.store::<D>()
                .expect("column dimension mismatch")
                .$within_indices(&$coords(q), r, out)
        }

        fn col_cover_weight(&self, cols: &ColumnSet, q: &$pt, weights: &[u64], r: f64) -> u64 {
            cols.store::<D>()
                .expect("column dimension mismatch")
                .$cover_weight(&$coords(q), weights, r)
        }

        fn col_argmax_cover_weight(
            &self,
            candidates: &[$pt],
            cols: &ColumnSet,
            weights: &[u64],
            r: f64,
        ) -> Option<(usize, u64)> {
            cols.store::<D>()
                .expect("column dimension mismatch")
                .$argmax_cover_weight(candidates.iter().map($coords), weights, r)
        }
    };
}

/// [`columnar_hooks!`] bound to the Euclidean (deferred-`sqrt`) kernel
/// family of [`ColumnStore`].
macro_rules! columnar_euclid_hooks {
    ($pt:ty, $coords:path) => {
        columnar_hooks!(
            $pt,
            $coords,
            euclid_dist_many,
            euclid_nearest,
            euclid_find_within,
            euclid_count_within,
            euclid_within_indices,
            euclid_cover_weight,
            euclid_argmax_cover_weight
        );
    };
}

/// [`columnar_hooks!`] bound to the Chebyshev (running-max) kernel
/// family of [`ColumnStore`].
macro_rules! columnar_cheby_hooks {
    ($pt:ty, $coords:path) => {
        columnar_hooks!(
            $pt,
            $coords,
            cheby_dist_many,
            cheby_nearest,
            cheby_find_within,
            cheby_count_within,
            cheby_within_indices,
            cheby_cover_weight,
            cheby_argmax_cover_weight
        );
    };
}

/// Euclidean (`L2`) metric over fixed-dimension points `[f64; D]`.
///
/// The doubling dimension of `R^D` under `L2` is `Θ(D)`; we report `D`.
/// The batched kernels compute squared distances and defer the `sqrt`
/// (see the [`MetricSpace`] trait docs for the exact contract).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L2;

impl<const D: usize> MetricSpace<[f64; D]> for L2 {
    #[inline]
    fn dist(&self, a: &[f64; D], b: &[f64; D]) -> f64 {
        sq_l2(a, b).sqrt()
    }

    #[inline]
    fn doubling_dim(&self) -> usize {
        D
    }

    euclidean_batch_kernels!([f64; D], sq_l2);
    columnar_euclid_hooks!([f64; D], euclid_coords);
}

/// Chebyshev (`L∞`) metric over fixed-dimension points `[f64; D]`.
///
/// Section 6 of the paper proves the sliding-window lower bound under `L∞`;
/// the doubling dimension of `R^D` under `L∞` is exactly `D`.  The `L∞`
/// distance involves no `sqrt`, so the batched kernels return exactly the
/// scalar values; the radius-testing kernels prune by exiting on the first
/// coordinate whose difference exceeds `r`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Linf;

/// `L∞` distance over `[f64; D]`.
#[inline(always)]
fn d_linf<const D: usize>(a: &[f64; D], b: &[f64; D]) -> f64 {
    let mut m = 0.0f64;
    for i in 0..D {
        let d = (a[i] - b[i]).abs();
        if d > m {
            m = d;
        }
    }
    m
}

/// `L∞` distance over grid points `[u64; D]`.
#[inline(always)]
fn d_gridlinf<const D: usize>(a: &[u64; D], b: &[u64; D]) -> f64 {
    let mut m = 0.0f64;
    for i in 0..D {
        let d = (a[i] as f64 - b[i] as f64).abs();
        if d > m {
            m = d;
        }
    }
    m
}

/// Early-exit `L∞` radius test over `[f64; D]`: false as soon as one
/// coordinate difference exceeds `r`.  Exactly `dist ≤ r`: negative and
/// NaN radii match nothing (`dist` is never negative), and NaN coordinate
/// differences are skipped just as `dist`'s running max skips them.
// `!(r >= 0.0)` is deliberate: it must reject NaN radii like `dist ≤ r` does.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
#[inline(always)]
fn linf_within<const D: usize>(a: &[f64; D], b: &[f64; D], r: f64) -> bool {
    if !(r >= 0.0) {
        return false;
    }
    for i in 0..D {
        if (a[i] - b[i]).abs() > r {
            return false;
        }
    }
    true
}

/// Early-exit `L∞` radius test over grid points `[u64; D]` (see
/// [`linf_within`] for the exact-equivalence contract).
#[allow(clippy::neg_cmp_op_on_partial_ord)]
#[inline(always)]
fn gridlinf_within<const D: usize>(a: &[u64; D], b: &[u64; D], r: f64) -> bool {
    if !(r >= 0.0) {
        return false;
    }
    for i in 0..D {
        if (a[i] as f64 - b[i] as f64).abs() > r {
            return false;
        }
    }
    true
}

/// Batched-kernel overrides for the Chebyshev metrics: the `within` test
/// exits early on the first coordinate exceeding `r` (exactly equivalent
/// to `dist ≤ r`), and the remaining kernels build on it.
macro_rules! chebyshev_batch_kernels {
    ($pt:ty, $dist:path, $within:path) => {
        #[inline]
        fn within(&self, a: &$pt, b: &$pt, r: f64) -> bool {
            $within(a, b, r)
        }

        fn dist_many(&self, q: &$pt, pts: &[$pt], out: &mut Vec<f64>) {
            // resize + indexed writes (not `reserve` + `push`): one
            // allocation check up front instead of one per element.
            out.clear();
            out.resize(pts.len(), 0.0);
            for (o, p) in out.iter_mut().zip(pts) {
                *o = $dist(q, p);
            }
        }

        // find_within / count_within / within_indices need no override:
        // the trait defaults already delegate to the early-exit `within`.
    };
}

impl<const D: usize> MetricSpace<[f64; D]> for Linf {
    #[inline]
    fn dist(&self, a: &[f64; D], b: &[f64; D]) -> f64 {
        d_linf(a, b)
    }

    #[inline]
    fn doubling_dim(&self) -> usize {
        D
    }

    chebyshev_batch_kernels!([f64; D], d_linf, linf_within);
    columnar_cheby_hooks!([f64; D], euclid_coords);
}

/// Euclidean metric over discrete grid points `[u64; D]` from `[Δ]^D`
/// (the universe of the fully dynamic streaming algorithm, Section 5).
/// Shares the deferred-`sqrt` batched kernels with [`L2`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GridL2;

impl<const D: usize> MetricSpace<[u64; D]> for GridL2 {
    #[inline]
    fn dist(&self, a: &[u64; D], b: &[u64; D]) -> f64 {
        sq_grid(a, b).sqrt()
    }

    #[inline]
    fn doubling_dim(&self) -> usize {
        D
    }

    euclidean_batch_kernels!([u64; D], sq_grid);
    columnar_euclid_hooks!([u64; D], grid_to_euclid);
}

/// `L∞` metric over discrete grid points `[u64; D]`.  Shares the
/// early-exit batched kernels with [`Linf`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GridLinf;

impl<const D: usize> MetricSpace<[u64; D]> for GridLinf {
    #[inline]
    fn dist(&self, a: &[u64; D], b: &[u64; D]) -> f64 {
        d_gridlinf(a, b)
    }

    #[inline]
    fn doubling_dim(&self) -> usize {
        D
    }

    chebyshev_batch_kernels!([u64; D], d_gridlinf, gridlinf_within);
    columnar_cheby_hooks!([u64; D], grid_to_euclid);
}

/// One-dimensional Euclidean metric over bare `f64` values.
///
/// The `Ω(k + z)` lower bound of Lemma 15 lives on the real line; this
/// metric lets those instances avoid the `[f64; 1]` wrapper.  It involves
/// no `sqrt`, so the provided (scalar-loop) batched kernels are already
/// exact and reasonably fast.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Line;

impl MetricSpace<f64> for Line {
    #[inline]
    fn dist(&self, a: &f64, b: &f64) -> f64 {
        (a - b).abs()
    }

    #[inline]
    fn doubling_dim(&self) -> usize {
        1
    }
}

/// Converts a discrete grid point into the Euclidean point at its location.
#[inline]
pub fn grid_to_euclid<const D: usize>(p: &[u64; D]) -> [f64; D] {
    let mut out = [0.0; D];
    for i in 0..D {
        out[i] = p[i] as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_basic() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(L2.dist(&a, &b), 5.0);
        assert_eq!(L2.dist(&a, &a), 0.0);
        assert_eq!(<L2 as MetricSpace<[f64; 2]>>::doubling_dim(&L2), 2);
    }

    #[test]
    fn linf_basic() {
        let a = [0.0, 0.0, 0.0];
        let b = [1.0, -7.0, 3.0];
        assert_eq!(Linf.dist(&a, &b), 7.0);
        assert!(Linf.dist(&a, &b) <= L2.dist(&a, &b));
    }

    #[test]
    fn grid_metrics_agree_with_continuous() {
        let a = [1u64, 2];
        let b = [4u64, 6];
        assert_eq!(GridL2.dist(&a, &b), 5.0);
        assert_eq!(GridLinf.dist(&a, &b), 4.0);
        assert_eq!(
            GridL2.dist(&a, &b),
            L2.dist(&grid_to_euclid(&a), &grid_to_euclid(&b))
        );
    }

    #[test]
    fn line_metric() {
        assert_eq!(Line.dist(&3.0, &-2.0), 5.0);
        assert_eq!(Line.doubling_dim(), 1);
    }

    #[test]
    fn dist_many_matches_scalar_exactly() {
        let q = [1.5, -2.25];
        let pts = [[0.0, 0.0], [3.0, 4.0], [1.5, -2.25], [-7.125, 9.5]];
        let mut out = Vec::new();
        L2.dist_many(&q, &pts, &mut out);
        for (p, &d) in pts.iter().zip(&out) {
            assert_eq!(d, L2.dist(&q, p));
        }
        Linf.dist_many(&q, &pts, &mut out);
        for (p, &d) in pts.iter().zip(&out) {
            assert_eq!(d, Linf.dist(&q, p));
        }
    }

    #[test]
    fn within_family_at_exact_ties() {
        // 3-4-5 triangle: the tie is exactly representable, so the squared
        // comparison agrees with the scalar one.
        let q = [0.0, 0.0];
        let pts = [[3.0, 4.0], [3.0, 4.000001], [0.0, 0.0]];
        assert!(L2.within(&q, &pts[0], 5.0));
        assert!(!L2.within(&q, &pts[1], 5.0));
        assert_eq!(L2.count_within(&q, &pts, 5.0), 2);
        assert_eq!(L2.find_within(&q, &pts, 0.0), Some(2));
        let mut idx = Vec::new();
        L2.within_indices(&q, &pts, 5.0, &mut idx);
        assert_eq!(idx, vec![0, 2]);
    }

    #[test]
    fn negative_and_nan_radii_match_nothing() {
        let q = [0.0, 0.0];
        let pts = [[0.0, 0.0], [1.0, 0.0]];
        assert_eq!(L2.count_within(&q, &pts, -1.0), 0);
        assert_eq!(L2.count_within(&q, &pts, f64::NAN), 0);
        assert_eq!(Linf.count_within(&q, &pts, -0.5), 0);
        assert_eq!(GridL2.count_within(&[0u64, 0], &[[0u64, 0]], -1.0), 0);
    }

    #[test]
    fn huge_radius_falls_back_to_scalar() {
        // r² overflows; the squared path would call everything "within".
        // (`far` has an overflowing distance, which the scalar path also
        // reports as +inf > r; `near`'s distance is finite and within.)
        let q = [0.0, 0.0];
        let near = [1e150, 0.0];
        let far = [3e200, 0.0];
        let r = 2e200;
        assert!(L2.within(&q, &near, r));
        assert!(!L2.within(&q, &far, r));
        assert_eq!(L2.count_within(&q, &[near, far], r), 1);
        assert_eq!(L2.find_within(&q, &[far, near], r), Some(1));
        assert_eq!(L2.cover_weight(&q, &[near, far], &[3, 5], r), 3);
    }

    #[test]
    fn nearest_skips_nan_distances() {
        // inf − inf produces a NaN distance at index 0; the kernel must
        // fall through to the comparable one, like fold(INFINITY, min) did.
        let q = [f64::INFINITY, 4.0];
        let centers = [[f64::INFINITY, 0.0], [5.0, 5.0]];
        let (i, d) = L2.nearest(&q, &centers).unwrap();
        assert_eq!(i, 1);
        assert!(d.is_infinite());
        let weighted = vec![
            Weighted::new([f64::INFINITY, 0.0], 1),
            Weighted::new([5.0, 5.0], 1),
        ];
        let (i, _) = L2.nearest_weighted(&q, &weighted).unwrap();
        assert_eq!(i, 1);
    }

    #[test]
    fn nearest_and_argmax() {
        let pts = [[10.0, 0.0], [1.0, 1.0], [0.5, 0.5], [9.0, 9.0]];
        let (i, d) = L2.nearest(&[0.0, 0.0], &pts).unwrap();
        assert_eq!(i, 2);
        assert_eq!(d, L2.dist(&[0.0, 0.0], &pts[2]));
        assert_eq!(L2.nearest(&[0.0, 0.0], &[] as &[[f64; 2]]), None);

        let weights = [1u64, 5, 2, 1];
        let g = L2.cover_weight(&[0.75, 0.75], &pts, &weights, 1.0);
        assert_eq!(g, 7);
        let (best, cover) = L2.argmax_cover_weight(&pts, &pts, &weights, 1.0).unwrap();
        assert_eq!(best, 1, "the weight-5 point plus its neighbour win");
        assert_eq!(cover, 7);
    }

    #[test]
    fn weighted_kernels() {
        let pts = vec![
            Weighted::new([5.0, 5.0], 2),
            Weighted::new([1.0, 1.0], 3),
            Weighted::new([0.0, 0.0], 1),
        ];
        assert_eq!(L2.find_within_weighted(&[0.9, 0.9], &pts, 0.2), Some(1));
        assert_eq!(L2.find_within_weighted(&[0.9, 0.9], &pts, 0.01), None);
        let (i, d) = L2.nearest_weighted(&[4.0, 4.0], &pts).unwrap();
        assert_eq!(i, 0);
        assert_eq!(d, L2.dist(&[4.0, 4.0], &[5.0, 5.0]));
    }

    #[test]
    fn dist_many_weighted_matches_scalar_exactly() {
        let q = [1.5, -2.25];
        let pts = vec![
            Weighted::new([0.0, 0.0], 1),
            Weighted::new([3.0, 4.0], 7),
            Weighted::new([1.5, -2.25], 2),
        ];
        let mut out = Vec::new();
        L2.dist_many_weighted(&q, &pts, &mut out);
        for (p, &d) in pts.iter().zip(&out) {
            assert_eq!(d, L2.dist(&q, &p.point));
        }
        Linf.dist_many_weighted(&q, &pts, &mut out);
        for (p, &d) in pts.iter().zip(&out) {
            assert_eq!(d, Linf.dist(&q, &p.point));
        }
    }
}
