//! Metric-space foundations for the k-center-with-outliers suite.
//!
//! The paper ("k-Center Clustering with Outliers in the MPC and Streaming
//! Model", de Berg, Biabani, Monemizadeh, IPDPS 2023) works in an abstract
//! metric space `(X, dist)` of doubling dimension `d`.  This crate provides:
//!
//! * point types: fixed-dimension Euclidean points (`[f64; D]`), discrete
//!   grid points from `[Δ]^d` (`[u64; D]`), and a generic [`MetricSpace`]
//!   trait so every algorithm upstream is metric-agnostic;
//! * metrics: [`L2`], [`Linf`], and their discrete-grid counterparts;
//! * [`Weighted`] points with positive integer weights (the paper's weighted
//!   k-center formulation, Section 1);
//! * utilities used throughout: pairwise-distance extrema, spread
//!   (the ratio σ of Section 6), bounding boxes, and a bucket
//!   [`grid::GridIndex`] used to accelerate mini-ball constructions;
//! * [`SpaceUsage`], the word-accounting trait backing every storage
//!   measurement reported by the MPC simulator and the streaming
//!   algorithms.

#![warn(missing_docs)]

pub mod grid;
pub mod space;
pub mod stats;
pub mod weighted;

pub use space::SpaceUsage;
pub use weighted::{total_weight, unit_weighted, Weighted};

/// A metric over points of type `P`.
///
/// Implementations must satisfy the metric axioms (identity, symmetry,
/// triangle inequality); the property tests in this crate check them on the
/// provided implementations.  `doubling_dim` reports the doubling dimension
/// `d` of the space, which the paper's algorithms use solely to compute
/// capacity thresholds such as `k(16/ε)^d + z` (Algorithm 3) — it never
/// affects correctness of the constructions, only their size bounds.
pub trait MetricSpace<P>: Send + Sync {
    /// Distance between `a` and `b`.
    fn dist(&self, a: &P, b: &P) -> f64;

    /// Doubling dimension of the space (a constant per the paper).
    fn doubling_dim(&self) -> usize;
}

/// Euclidean (`L2`) metric over fixed-dimension points `[f64; D]`.
///
/// The doubling dimension of `R^D` under `L2` is `Θ(D)`; we report `D`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L2;

impl<const D: usize> MetricSpace<[f64; D]> for L2 {
    #[inline]
    fn dist(&self, a: &[f64; D], b: &[f64; D]) -> f64 {
        let mut s = 0.0;
        for i in 0..D {
            let d = a[i] - b[i];
            s += d * d;
        }
        s.sqrt()
    }

    #[inline]
    fn doubling_dim(&self) -> usize {
        D
    }
}

/// Chebyshev (`L∞`) metric over fixed-dimension points `[f64; D]`.
///
/// Section 6 of the paper proves the sliding-window lower bound under `L∞`;
/// the doubling dimension of `R^D` under `L∞` is exactly `D`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Linf;

impl<const D: usize> MetricSpace<[f64; D]> for Linf {
    #[inline]
    fn dist(&self, a: &[f64; D], b: &[f64; D]) -> f64 {
        let mut m = 0.0f64;
        for i in 0..D {
            let d = (a[i] - b[i]).abs();
            if d > m {
                m = d;
            }
        }
        m
    }

    #[inline]
    fn doubling_dim(&self) -> usize {
        D
    }
}

/// Euclidean metric over discrete grid points `[u64; D]` from `[Δ]^D`
/// (the universe of the fully dynamic streaming algorithm, Section 5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GridL2;

impl<const D: usize> MetricSpace<[u64; D]> for GridL2 {
    #[inline]
    fn dist(&self, a: &[u64; D], b: &[u64; D]) -> f64 {
        let mut s = 0.0;
        for i in 0..D {
            let d = a[i] as f64 - b[i] as f64;
            s += d * d;
        }
        s.sqrt()
    }

    #[inline]
    fn doubling_dim(&self) -> usize {
        D
    }
}

/// `L∞` metric over discrete grid points `[u64; D]`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GridLinf;

impl<const D: usize> MetricSpace<[u64; D]> for GridLinf {
    #[inline]
    fn dist(&self, a: &[u64; D], b: &[u64; D]) -> f64 {
        let mut m = 0.0f64;
        for i in 0..D {
            let d = (a[i] as f64 - b[i] as f64).abs();
            if d > m {
                m = d;
            }
        }
        m
    }

    #[inline]
    fn doubling_dim(&self) -> usize {
        D
    }
}

/// One-dimensional Euclidean metric over bare `f64` values.
///
/// The `Ω(k + z)` lower bound of Lemma 15 lives on the real line; this
/// metric lets those instances avoid the `[f64; 1]` wrapper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Line;

impl MetricSpace<f64> for Line {
    #[inline]
    fn dist(&self, a: &f64, b: &f64) -> f64 {
        (a - b).abs()
    }

    #[inline]
    fn doubling_dim(&self) -> usize {
        1
    }
}

/// Converts a discrete grid point into the Euclidean point at its location.
#[inline]
pub fn grid_to_euclid<const D: usize>(p: &[u64; D]) -> [f64; D] {
    let mut out = [0.0; D];
    for i in 0..D {
        out[i] = p[i] as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_basic() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(L2.dist(&a, &b), 5.0);
        assert_eq!(L2.dist(&a, &a), 0.0);
        assert_eq!(<L2 as MetricSpace<[f64; 2]>>::doubling_dim(&L2), 2);
    }

    #[test]
    fn linf_basic() {
        let a = [0.0, 0.0, 0.0];
        let b = [1.0, -7.0, 3.0];
        assert_eq!(Linf.dist(&a, &b), 7.0);
        assert!(Linf.dist(&a, &b) <= L2.dist(&a, &b));
    }

    #[test]
    fn grid_metrics_agree_with_continuous() {
        let a = [1u64, 2];
        let b = [4u64, 6];
        assert_eq!(GridL2.dist(&a, &b), 5.0);
        assert_eq!(GridLinf.dist(&a, &b), 4.0);
        assert_eq!(
            GridL2.dist(&a, &b),
            L2.dist(&grid_to_euclid(&a), &grid_to_euclid(&b))
        );
    }

    #[test]
    fn line_metric() {
        assert_eq!(Line.dist(&3.0, &-2.0), 5.0);
        assert_eq!(Line.doubling_dim(), 1);
    }
}
