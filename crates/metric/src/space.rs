//! Storage accounting in machine words.
//!
//! Table 1 of the paper compares algorithms by their storage bounds, so the
//! simulator and the streaming structures must report how much they hold.
//! We count *words*: one word per `f64` coordinate, per `u64` weight, per
//! counter.  This matches the paper's convention of measuring storage in
//! units of points/numbers rather than bits.

/// Types that can report their storage footprint in machine words.
pub trait SpaceUsage {
    /// Number of machine words this value occupies, counting only payload
    /// (coordinates, weights, counters), not allocator overhead.
    fn words(&self) -> usize;
}

impl SpaceUsage for f64 {
    fn words(&self) -> usize {
        1
    }
}

impl SpaceUsage for u64 {
    fn words(&self) -> usize {
        1
    }
}

impl SpaceUsage for i64 {
    fn words(&self) -> usize {
        1
    }
}

impl SpaceUsage for usize {
    fn words(&self) -> usize {
        1
    }
}

impl<const D: usize> SpaceUsage for [f64; D] {
    fn words(&self) -> usize {
        D
    }
}

impl<const D: usize> SpaceUsage for [u64; D] {
    fn words(&self) -> usize {
        D
    }
}

impl<T: SpaceUsage> SpaceUsage for Vec<T> {
    fn words(&self) -> usize {
        self.iter().map(SpaceUsage::words).sum()
    }
}

impl<T: SpaceUsage> SpaceUsage for Option<T> {
    fn words(&self) -> usize {
        self.as_ref().map_or(0, SpaceUsage::words)
    }
}

impl<A: SpaceUsage, B: SpaceUsage> SpaceUsage for (A, B) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_words() {
        assert_eq!(1.0f64.words(), 1);
        assert_eq!(3u64.words(), 1);
        assert_eq!([0.0f64; 3].words(), 3);
    }

    #[test]
    fn container_words() {
        let v: Vec<[f64; 2]> = vec![[0.0; 2]; 5];
        assert_eq!(v.words(), 10);
        let o: Option<u64> = None;
        assert_eq!(o.words(), 0);
        assert_eq!(Some(4u64).words(), 1);
        assert_eq!((1.0f64, 2u64).words(), 2);
    }
}
