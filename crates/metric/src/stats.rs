//! Point-set statistics: distance extrema, spread, bounding boxes.
//!
//! The spread ratio σ (largest over smallest pairwise distance) governs the
//! sliding-window bounds of Section 6; bounding boxes size the discrete
//! universe `[Δ]^d` of Section 5.

use crate::{MetricSpace, Weighted};

/// Minimum pairwise distance over all distinct pairs; `None` for sets with
/// fewer than two points.  Pairs at distance exactly `0` (duplicates) are
/// ignored, mirroring the paper's convention that σ is the ratio of the
/// largest and smallest distance *between any two points*.
pub fn min_pairwise_distance<P, M: MetricSpace<P>>(metric: &M, pts: &[P]) -> Option<f64> {
    let mut best: Option<f64> = None;
    let mut row = Vec::new();
    for i in 0..pts.len() {
        metric.dist_many(&pts[i], &pts[i + 1..], &mut row);
        for &d in &row {
            if d > 0.0 && best.is_none_or(|b| d < b) {
                best = Some(d);
            }
        }
    }
    best
}

/// [`min_pairwise_distance`] over a weighted slice, scanning the `point`
/// fields in place via [`MetricSpace::dist_many_weighted`].  Summary
/// structures call this on their own representative array at radius
/// establishment; the borrow-only kernel path means no per-call clone of
/// every representative (one reusable row buffer is the only allocation).
pub fn min_pairwise_distance_weighted<P, M: MetricSpace<P>>(
    metric: &M,
    pts: &[Weighted<P>],
) -> Option<f64> {
    let mut best: Option<f64> = None;
    let mut row = Vec::new();
    for i in 0..pts.len() {
        metric.dist_many_weighted(&pts[i].point, &pts[i + 1..], &mut row);
        for &d in &row {
            if d > 0.0 && best.is_none_or(|b| d < b) {
                best = Some(d);
            }
        }
    }
    best
}

/// Maximum pairwise distance (diameter); `None` for sets with fewer than two
/// points.
pub fn max_pairwise_distance<P, M: MetricSpace<P>>(metric: &M, pts: &[P]) -> Option<f64> {
    let mut best: Option<f64> = None;
    let mut row = Vec::new();
    for i in 0..pts.len() {
        metric.dist_many(&pts[i], &pts[i + 1..], &mut row);
        for &d in &row {
            if best.is_none_or(|b| d > b) {
                best = Some(d);
            }
        }
    }
    best
}

/// Spread σ = max pairwise distance / min positive pairwise distance.
///
/// Returns `None` when the set has fewer than two distinct points.
pub fn spread<P, M: MetricSpace<P>>(metric: &M, pts: &[P]) -> Option<f64> {
    let min = min_pairwise_distance(metric, pts)?;
    let max = max_pairwise_distance(metric, pts)?;
    Some(max / min)
}

/// Axis-aligned bounding box of Euclidean points: `(low, high)` per axis.
pub fn bounding_box<const D: usize>(pts: &[[f64; D]]) -> Option<([f64; D], [f64; D])> {
    let first = pts.first()?;
    let mut lo = *first;
    let mut hi = *first;
    for p in &pts[1..] {
        for i in 0..D {
            lo[i] = lo[i].min(p[i]);
            hi[i] = hi[i].max(p[i]);
        }
    }
    Some((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::L2;

    #[test]
    fn extremes_and_spread() {
        let pts = vec![[0.0, 0.0], [1.0, 0.0], [10.0, 0.0]];
        assert_eq!(min_pairwise_distance(&L2, &pts), Some(1.0));
        assert_eq!(max_pairwise_distance(&L2, &pts), Some(10.0));
        assert_eq!(spread(&L2, &pts), Some(10.0));
    }

    #[test]
    fn duplicates_ignored_for_min() {
        let pts = vec![[0.0, 0.0], [0.0, 0.0], [2.0, 0.0]];
        assert_eq!(min_pairwise_distance(&L2, &pts), Some(2.0));
    }

    #[test]
    fn weighted_min_matches_unweighted() {
        let pts = vec![[0.0, 0.0], [0.0, 0.0], [2.0, 0.0], [7.0, 3.0]];
        let weighted: Vec<Weighted<[f64; 2]>> = pts.iter().map(|p| Weighted::new(*p, 3)).collect();
        assert_eq!(
            min_pairwise_distance_weighted(&L2, &weighted),
            min_pairwise_distance(&L2, &pts)
        );
        assert_eq!(min_pairwise_distance_weighted(&L2, &weighted[..1]), None);
        let dup: Vec<Weighted<[f64; 2]>> = vec![Weighted::new([1.0, 1.0], 2); 3];
        assert_eq!(min_pairwise_distance_weighted(&L2, &dup), None);
    }

    #[test]
    fn degenerate_sets() {
        let empty: Vec<[f64; 2]> = vec![];
        assert_eq!(spread(&L2, &empty), None);
        let single = vec![[1.0, 1.0]];
        assert_eq!(spread(&L2, &single), None);
        let all_same = vec![[1.0, 1.0]; 4];
        assert_eq!(min_pairwise_distance(&L2, &all_same), None);
    }

    #[test]
    fn bbox() {
        let pts = vec![[0.0, 5.0], [2.0, -1.0], [1.0, 3.0]];
        let (lo, hi) = bounding_box(&pts).unwrap();
        assert_eq!(lo, [0.0, -1.0]);
        assert_eq!(hi, [2.0, 5.0]);
        assert!(bounding_box::<2>(&[]).is_none());
    }
}
