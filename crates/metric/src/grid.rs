//! Shared hash-grid bucket helpers.
//!
//! The greedy mini-ball construction (Algorithm 1) and the streaming
//! insertion test (Algorithm 3, line 1) both repeatedly ask "which stored
//! points lie within distance `δ` of `q`?".  For Euclidean points a hash
//! grid with cell side `δ` answers this by scanning the `3^D` neighbouring
//! cells, turning the `O(n²)` constructions into near-linear ones for
//! realistic inputs.  The index itself lives in [`crate::index`]
//! ([`crate::index::GridBucketIndex`], behind the
//! [`crate::index::NeighborIndex`] abstraction); this module holds the two
//! key computations it is built on.

/// Bucket key of `p` in a grid with the given cell side.
pub(crate) fn cell_key<const D: usize>(p: &[f64; D], cell: f64) -> [i64; D] {
    let mut k = [0i64; D];
    for i in 0..D {
        k[i] = (p[i] / cell).floor() as i64;
    }
    k
}

/// Visits the `3^D` bucket keys within one cell of `center` in every axis
/// (odometer over `{-1, 0, 1}^D`; all keys are distinct).  Any point whose
/// coordinate-wise difference from a query is below the cell side in every
/// axis lies in one of the visited buckets.
pub(crate) fn for_each_neighbor_key<const D: usize>(center: [i64; D], mut f: impl FnMut([i64; D])) {
    let mut offset = [-1i64; D];
    loop {
        let mut key = center;
        for i in 0..D {
            key[i] += offset[i];
        }
        f(key);
        // Odometer increment over {-1,0,1}^D.
        let mut carry = true;
        for slot in offset.iter_mut() {
            if *slot < 1 {
                *slot += 1;
                carry = false;
                break;
            }
            *slot = -1;
        }
        if carry {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbor_keys_cover_3_to_the_d() {
        let mut seen = Vec::new();
        for_each_neighbor_key([0i64, 0], |k| seen.push(k));
        assert_eq!(seen.len(), 9);
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 9, "keys must be distinct");
        for dx in -1..=1 {
            for dy in -1..=1 {
                assert!(seen.contains(&[dx, dy]));
            }
        }
    }

    #[test]
    fn cell_key_handles_negative_coordinates() {
        assert_eq!(cell_key(&[-0.5, 0.4], 1.0), [-1, 0]);
        assert_eq!(cell_key(&[0.0, 0.0], 1.0), [0, 0]);
        assert_eq!(cell_key(&[2.5, -3.5], 0.5), [5, -7]);
    }
}
