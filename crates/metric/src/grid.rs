//! Bucket grid index over Euclidean points.
//!
//! The greedy mini-ball construction (Algorithm 1) and the streaming
//! insertion test (Algorithm 3, line 1) both repeatedly ask "which stored
//! points lie within distance `δ` of `q`?".  For Euclidean points a hash
//! grid with cell side `δ` answers this by scanning the `3^D` neighbouring
//! cells, turning the `O(n²)` constructions into near-linear ones for
//! realistic inputs.  The index is an *accelerator only* — every caller has
//! a metric-agnostic fallback path, and tests assert both paths agree.

use std::collections::HashMap;

/// A hash grid over `[f64; D]` points with a fixed cell side.
///
/// Stores indices into a caller-owned point array.
#[derive(Debug, Clone)]
pub struct GridIndex<const D: usize> {
    cell: f64,
    buckets: HashMap<[i64; D], Vec<usize>>,
}

impl<const D: usize> GridIndex<D> {
    /// Creates an empty index with the given cell side (must be positive
    /// and finite).
    pub fn new(cell: f64) -> Self {
        assert!(cell.is_finite() && cell > 0.0, "cell side must be positive");
        GridIndex {
            cell,
            buckets: HashMap::new(),
        }
    }

    /// Cell side used by the index.
    pub fn cell_side(&self) -> f64 {
        self.cell
    }

    fn key(&self, p: &[f64; D]) -> [i64; D] {
        let mut k = [0i64; D];
        for i in 0..D {
            k[i] = (p[i] / self.cell).floor() as i64;
        }
        k
    }

    /// Inserts the point with external index `idx`.
    pub fn insert(&mut self, p: &[f64; D], idx: usize) {
        self.buckets.entry(self.key(p)).or_default().push(idx);
    }

    /// Removes one occurrence of `idx` from the bucket of `p`.
    /// Returns whether the index was present.
    pub fn remove(&mut self, p: &[f64; D], idx: usize) -> bool {
        let key = self.key(p);
        if let Some(b) = self.buckets.get_mut(&key) {
            if let Some(pos) = b.iter().position(|&i| i == idx) {
                b.swap_remove(pos);
                if b.is_empty() {
                    self.buckets.remove(&key);
                }
                return true;
            }
        }
        false
    }

    /// Calls `f` for every stored index whose bucket lies within one cell of
    /// `p`'s bucket in every axis.  Any point within distance `cell` of `p`
    /// (under `L2` or `L∞`) is guaranteed to be visited; callers still
    /// filter by exact distance.
    pub fn for_each_near(&self, p: &[f64; D], mut f: impl FnMut(usize)) {
        let center = self.key(p);
        let mut offset = [-1i64; D];
        loop {
            let mut key = center;
            for i in 0..D {
                key[i] += offset[i];
            }
            if let Some(bucket) = self.buckets.get(&key) {
                for &idx in bucket {
                    f(idx);
                }
            }
            // Odometer increment over {-1,0,1}^D.
            let mut carry = true;
            for slot in offset.iter_mut() {
                if *slot < 1 {
                    *slot += 1;
                    carry = false;
                    break;
                }
                *slot = -1;
            }
            if carry {
                break;
            }
        }
    }

    /// Collects all candidate indices near `p` (see [`Self::for_each_near`]).
    pub fn near(&self, p: &[f64; D]) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_near(p, |i| out.push(i));
        out
    }

    /// Number of stored indices.
    pub fn len(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetricSpace, L2};

    #[test]
    fn finds_all_points_within_cell_distance() {
        let pts: Vec<[f64; 2]> = (0..100)
            .map(|i| [(i % 10) as f64 * 0.3, (i / 10) as f64 * 0.3])
            .collect();
        let mut idx = GridIndex::new(0.5);
        for (i, p) in pts.iter().enumerate() {
            idx.insert(p, i);
        }
        let q = [1.0, 1.0];
        let near = idx.near(&q);
        // Every point within 0.5 of q must be among the candidates.
        for (i, p) in pts.iter().enumerate() {
            if L2.dist(p, &q) <= 0.5 {
                assert!(near.contains(&i), "missed point {i} at {p:?}");
            }
        }
    }

    #[test]
    fn remove_works() {
        let mut idx = GridIndex::<2>::new(1.0);
        idx.insert(&[0.1, 0.1], 7);
        assert_eq!(idx.len(), 1);
        assert!(idx.remove(&[0.1, 0.1], 7));
        assert!(!idx.remove(&[0.1, 0.1], 7));
        assert!(idx.is_empty());
    }

    #[test]
    fn negative_coordinates() {
        let mut idx = GridIndex::<2>::new(1.0);
        idx.insert(&[-0.5, -0.5], 0);
        idx.insert(&[0.4, 0.4], 1);
        let near = idx.near(&[0.0, 0.0]);
        assert!(near.contains(&0));
        assert!(near.contains(&1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_rejected() {
        let _ = GridIndex::<2>::new(0.0);
    }
}
