//! Pruned neighbor queries: the [`NeighborIndex`] abstraction.
//!
//! The mini-ball constructions (Algorithms 1 and 4) and the streaming
//! absorb test (Algorithm 3, line 1) all ask the same two questions of a
//! point set: *which stored points lie within distance `r` of `q`?*
//! (`within`) and *is there any stored point within `r` of `q`?*
//! (`absorb_candidate`).  This module turns the answer into an interface
//! with two implementations:
//!
//! * [`GridBucketIndex`] — a hash-grid bucket index for Euclidean points
//!   under [`L2`], built on the crate's shared cell-key helpers and
//!   filtering by exact distance itself, near-linear for realistic
//!   inputs;
//! * [`BruteForceIndex`] — a metric-agnostic fallback that stores the
//!   points contiguously and answers queries with the batched
//!   [`MetricSpace`] kernels (vectorized, deferred-`sqrt`).
//!
//! Both implementations are *accelerators only*: they answer with exactly
//! the same id sets (the deferred-`sqrt` contract of [`MetricSpace`]
//! applies to both), so callers can pick by point type and input size
//! without changing results.  Tests in `tests/kernels.rs` enforce the
//! agreement.

use crate::columns::{ColumnSet, Precision};
use crate::grid::{cell_key, for_each_neighbor_key};
use crate::{MetricSpace, L2};
use std::collections::HashMap;

/// Dynamic set of `(id, point)` pairs supporting radius queries.
///
/// Ids are caller-chosen `usize` handles (typically indices into a
/// caller-owned array); the same id may be inserted only once at a time.
/// Query results carry no ordering guarantee and contain no duplicates.
pub trait NeighborIndex<P> {
    /// Inserts the point with external id `id`.
    fn insert(&mut self, p: &P, id: usize);

    /// Removes the entry for `id` located at `p`; returns whether it was
    /// present.
    fn remove(&mut self, p: &P, id: usize) -> bool;

    /// Writes the ids of all stored points within distance `r` of `q` into
    /// `out` (cleared first; unspecified order, no duplicates).
    fn within(&self, q: &P, r: f64, out: &mut Vec<usize>);

    /// Some stored id within distance `r` of `q`, if any — the absorb test
    /// of Algorithm 3.  Which id is returned is unspecified when several
    /// qualify.
    fn absorb_candidate(&self, q: &P, r: f64) -> Option<usize>;

    /// Number of stored entries.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Metric-agnostic [`NeighborIndex`]: contiguous point storage scanned
/// with the batched [`MetricSpace`] kernels.
///
/// `O(n)` per query, but the scan is the vectorized, deferred-`sqrt`
/// kernel rather than one `dist` call per point — the right fallback
/// whenever no geometric index applies (non-Euclidean metrics, tiny
/// inputs, degenerate radii).
#[derive(Debug, Clone)]
pub struct BruteForceIndex<P, M> {
    metric: M,
    pts: Vec<P>,
    ids: Vec<usize>,
}

impl<P: Clone, M: MetricSpace<P>> BruteForceIndex<P, M> {
    /// Creates an empty index over the given metric.
    pub fn new(metric: M) -> Self {
        BruteForceIndex {
            metric,
            pts: Vec::new(),
            ids: Vec::new(),
        }
    }
}

impl<P: Clone, M: MetricSpace<P>> NeighborIndex<P> for BruteForceIndex<P, M> {
    fn insert(&mut self, p: &P, id: usize) {
        self.pts.push(p.clone());
        self.ids.push(id);
    }

    fn remove(&mut self, _p: &P, id: usize) -> bool {
        if let Some(pos) = self.ids.iter().position(|&i| i == id) {
            self.pts.swap_remove(pos);
            self.ids.swap_remove(pos);
            true
        } else {
            false
        }
    }

    fn within(&self, q: &P, r: f64, out: &mut Vec<usize>) {
        self.metric.within_indices(q, &self.pts, r, out);
        for slot in out.iter_mut() {
            *slot = self.ids[*slot];
        }
    }

    fn absorb_candidate(&self, q: &P, r: f64) -> Option<usize> {
        self.metric
            .find_within(q, &self.pts, r)
            .map(|i| self.ids[i])
    }

    fn len(&self) -> usize {
        self.ids.len()
    }
}

/// Columnar [`NeighborIndex`]: points transposed into a [`ColumnSet`]
/// and scanned with the metric's cache-blocked `col_*` kernels.
///
/// Same `O(n)` scans as [`BruteForceIndex`] but over structure-of-arrays
/// lanes, so the radius tests autovectorize (and can optionally run in
/// [`Precision::F32`], halving memory traffic at the cost of the
/// [`crate::F32_EPS_BUDGET`] error budget).  For a metric without
/// columnar support the index degrades transparently to the AoS batched
/// kernels — answers are identical either way in f64 mode.
#[derive(Debug)]
pub struct ColumnIndex<P, M> {
    metric: M,
    mode: Precision,
    cols: Option<ColumnSet>,
    /// AoS fallback storage, used only when `cols` is `None`.
    pts: Vec<P>,
    ids: Vec<usize>,
}

impl<P: Clone, M: MetricSpace<P>> ColumnIndex<P, M> {
    /// Creates an empty index over the given metric and lane precision.
    pub fn new(metric: M, mode: Precision) -> Self {
        let cols = metric.build_columns(&[], mode);
        ColumnIndex {
            metric,
            mode,
            cols,
            pts: Vec::new(),
            ids: Vec::new(),
        }
    }

    /// Lane precision the index was built with.
    pub fn precision(&self) -> Precision {
        self.mode
    }

    /// Whether the metric supplied columnar kernels (false means the
    /// index is running on the AoS fallback).
    pub fn is_columnar(&self) -> bool {
        self.cols.is_some()
    }
}

impl<P: Clone, M: MetricSpace<P>> NeighborIndex<P> for ColumnIndex<P, M> {
    fn insert(&mut self, p: &P, id: usize) {
        match &mut self.cols {
            Some(cols) => self.metric.col_push(cols, p, 1),
            None => self.pts.push(p.clone()),
        }
        self.ids.push(id);
    }

    fn remove(&mut self, _p: &P, id: usize) -> bool {
        if let Some(pos) = self.ids.iter().position(|&i| i == id) {
            match &mut self.cols {
                Some(cols) => cols.swap_remove(pos),
                None => {
                    self.pts.swap_remove(pos);
                }
            }
            self.ids.swap_remove(pos);
            true
        } else {
            false
        }
    }

    fn within(&self, q: &P, r: f64, out: &mut Vec<usize>) {
        match &self.cols {
            Some(cols) => self.metric.col_within_indices(cols, q, r, out),
            None => self.metric.within_indices(q, &self.pts, r, out),
        }
        for slot in out.iter_mut() {
            *slot = self.ids[*slot];
        }
    }

    fn absorb_candidate(&self, q: &P, r: f64) -> Option<usize> {
        match &self.cols {
            Some(cols) => self.metric.col_find_within(cols, q, r),
            None => self.metric.find_within(q, &self.pts, r),
        }
        .map(|i| self.ids[i])
    }

    fn len(&self) -> usize {
        self.ids.len()
    }
}

/// Bucket-grid [`NeighborIndex`] for Euclidean points under `L2`.
///
/// Buckets store `(id, point)` pairs keyed by cells slightly wider than
/// the maximum query radius; a query scans the `3^D` neighbouring cells
/// and filters by the exact (deferred-`sqrt`) `L2` predicate.  Correct
/// for query radii `r ≤ max_radius` — the constructor's argument — which
/// queries assert.
///
/// The bucketing side is `max_radius · (1 + 1e-9)`: the *computed*
/// distance can round below `r` for a pair whose coordinate difference
/// exceeds `r` by a sub-ulp amount, which with exact-`r` cells could land
/// the matching point two cells away (each endpoint an ulp across
/// opposite boundaries) and out of the scanned neighbourhood.  The
/// widened cell swallows that rounding slack, keeping the answer sets
/// identical to [`BruteForceIndex`].
#[derive(Debug, Clone)]
pub struct GridBucketIndex<const D: usize> {
    max_radius: f64,
    bucket_cell: f64,
    buckets: HashMap<[i64; D], Vec<(usize, [f64; D])>>,
    len: usize,
}

impl<const D: usize> GridBucketIndex<D> {
    /// Creates an empty index able to answer queries of radius at most
    /// `max_radius` (must be positive and finite).
    pub fn new(max_radius: f64) -> Self {
        assert!(
            max_radius.is_finite() && max_radius > 0.0,
            "cell side must be positive"
        );
        GridBucketIndex {
            max_radius,
            bucket_cell: max_radius * (1.0 + 1e-9),
            buckets: HashMap::new(),
            len: 0,
        }
    }

    /// Largest query radius this index answers.
    pub fn max_radius(&self) -> f64 {
        self.max_radius
    }

    /// Whether a query with radius `r` can return matches: NaN matches
    /// nothing (like the kernel contract and [`BruteForceIndex`]), and an
    /// oversized radius is caller misuse.
    fn check_radius(&self, r: f64) -> bool {
        if r.is_nan() {
            return false;
        }
        assert!(
            r <= self.max_radius,
            "query radius {r} exceeds the index cell side {}",
            self.max_radius
        );
        true
    }
}

impl<const D: usize> NeighborIndex<[f64; D]> for GridBucketIndex<D> {
    fn insert(&mut self, p: &[f64; D], id: usize) {
        self.buckets
            .entry(cell_key(p, self.bucket_cell))
            .or_default()
            .push((id, *p));
        self.len += 1;
    }

    fn remove(&mut self, p: &[f64; D], id: usize) -> bool {
        let key = cell_key(p, self.bucket_cell);
        if let Some(b) = self.buckets.get_mut(&key) {
            if let Some(pos) = b.iter().position(|&(i, _)| i == id) {
                b.swap_remove(pos);
                if b.is_empty() {
                    self.buckets.remove(&key);
                }
                self.len -= 1;
                return true;
            }
        }
        false
    }

    fn within(&self, q: &[f64; D], r: f64, out: &mut Vec<usize>) {
        out.clear();
        if !self.check_radius(r) {
            return;
        }
        for_each_neighbor_key(cell_key(q, self.bucket_cell), |key| {
            if let Some(bucket) = self.buckets.get(&key) {
                for &(id, p) in bucket {
                    if L2.within(q, &p, r) {
                        out.push(id);
                    }
                }
            }
        });
    }

    fn absorb_candidate(&self, q: &[f64; D], r: f64) -> Option<usize> {
        if !self.check_radius(r) {
            return None;
        }
        let mut found = None;
        for_each_neighbor_key(cell_key(q, self.bucket_cell), |key| {
            if found.is_some() {
                return;
            }
            if let Some(bucket) = self.buckets.get(&key) {
                for &(id, p) in bucket {
                    if L2.within(q, &p, r) {
                        found = Some(id);
                        return;
                    }
                }
            }
        });
        found
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(n: usize, seed: u64) -> Vec<[f64; 2]> {
        let mut s = seed | 1;
        let mut unit = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| [unit() * 50.0, unit() * 50.0]).collect()
    }

    fn sorted(mut v: Vec<usize>) -> Vec<usize> {
        v.sort_unstable();
        v
    }

    #[test]
    fn grid_and_brute_force_agree() {
        let pts = pseudo_random(300, 9);
        let r = 2.5;
        let mut grid = GridBucketIndex::<2>::new(r);
        let mut brute = BruteForceIndex::new(L2);
        for (i, p) in pts.iter().enumerate() {
            grid.insert(p, i);
            brute.insert(p, i);
        }
        assert_eq!(grid.len(), brute.len());
        let mut a = Vec::new();
        let mut b = Vec::new();
        for q in pseudo_random(40, 77) {
            grid.within(&q, r, &mut a);
            brute.within(&q, r, &mut b);
            assert_eq!(sorted(a.clone()), sorted(b.clone()), "query {q:?}");
            let ga = grid.absorb_candidate(&q, r);
            let ba = brute.absorb_candidate(&q, r);
            assert_eq!(ga.is_some(), ba.is_some(), "query {q:?}");
            if let Some(id) = ga {
                assert!(a.contains(&id));
            }
        }
    }

    #[test]
    fn finds_all_points_within_radius() {
        let pts: Vec<[f64; 2]> = (0..100)
            .map(|i| [(i % 10) as f64 * 0.3, (i / 10) as f64 * 0.3])
            .collect();
        let mut idx = GridBucketIndex::<2>::new(0.5);
        for (i, p) in pts.iter().enumerate() {
            idx.insert(p, i);
        }
        let q = [1.0, 1.0];
        let mut near = Vec::new();
        idx.within(&q, 0.5, &mut near);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(
                near.contains(&i),
                L2.within(&q, p, 0.5),
                "point {i} at {p:?}"
            );
        }
    }

    #[test]
    fn negative_coordinates_are_neighbors() {
        let mut idx = GridBucketIndex::<2>::new(1.0);
        idx.insert(&[-0.5, -0.5], 0);
        idx.insert(&[0.4, 0.4], 1);
        let mut near = Vec::new();
        idx.within(&[0.0, 0.0], 1.0, &mut near);
        near.sort_unstable();
        assert_eq!(near, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_rejected() {
        let _ = GridBucketIndex::<2>::new(0.0);
    }

    #[test]
    fn remove_shrinks_both() {
        let pts = pseudo_random(20, 3);
        let mut grid = GridBucketIndex::<2>::new(1.0);
        let mut brute = BruteForceIndex::new(L2);
        for (i, p) in pts.iter().enumerate() {
            grid.insert(p, i);
            brute.insert(p, i);
        }
        assert!(grid.remove(&pts[7], 7));
        assert!(!grid.remove(&pts[7], 7));
        assert!(brute.remove(&pts[7], 7));
        assert!(!brute.remove(&pts[7], 7));
        assert_eq!(grid.len(), 19);
        assert_eq!(brute.len(), 19);
        let mut out = Vec::new();
        grid.within(&pts[7], 0.0, &mut out);
        assert!(!out.contains(&7));
    }

    #[test]
    fn boundary_ulp_pair_not_missed() {
        // q an ulp below a cell boundary, p exactly on the next one: the
        // computed distance rounds to exactly r = 1.0 (ties-to-even), so
        // the brute-force path matches; with exact-r cells the pair would
        // straddle two boundaries and the grid would miss it.
        let q = [1.0 - f64::EPSILON / 2.0, 0.0];
        let p = [2.0, 0.0];
        let r = 1.0;
        assert!(L2.within(&q, &p, r), "precondition: pair matches scalar");
        let mut grid = GridBucketIndex::<2>::new(r);
        let mut brute = BruteForceIndex::new(L2);
        grid.insert(&p, 0);
        brute.insert(&p, 0);
        let mut a = Vec::new();
        let mut b = Vec::new();
        grid.within(&q, r, &mut a);
        brute.within(&q, r, &mut b);
        assert_eq!(a, b);
        assert_eq!(a, vec![0]);
        assert_eq!(grid.absorb_candidate(&q, r), Some(0));
    }

    #[test]
    fn nan_radius_matches_nothing_in_both() {
        let mut grid = GridBucketIndex::<2>::new(1.0);
        let mut brute = BruteForceIndex::new(L2);
        grid.insert(&[0.0, 0.0], 0);
        brute.insert(&[0.0, 0.0], 0);
        let mut out = vec![99];
        grid.within(&[0.0, 0.0], f64::NAN, &mut out);
        assert!(out.is_empty());
        brute.within(&[0.0, 0.0], f64::NAN, &mut out);
        assert!(out.is_empty());
        assert_eq!(grid.absorb_candidate(&[0.0, 0.0], f64::NAN), None);
        assert_eq!(brute.absorb_candidate(&[0.0, 0.0], f64::NAN), None);
    }

    #[test]
    #[should_panic(expected = "exceeds the index cell side")]
    fn oversized_radius_rejected() {
        let mut grid = GridBucketIndex::<2>::new(1.0);
        grid.insert(&[0.0, 0.0], 0);
        let mut out = Vec::new();
        grid.within(&[0.0, 0.0], 2.0, &mut out);
    }

    #[test]
    fn empty_index_answers_nothing() {
        let grid = GridBucketIndex::<2>::new(1.0);
        assert!(grid.is_empty());
        assert_eq!(grid.absorb_candidate(&[0.0, 0.0], 1.0), None);
        let brute = BruteForceIndex::<[f64; 2], _>::new(L2);
        assert!(brute.is_empty());
        assert_eq!(brute.absorb_candidate(&[0.0, 0.0], 1.0), None);
    }
}
