//! Columnar (structure-of-arrays) point storage and cache-blocked
//! one-to-many kernels.
//!
//! The batched kernels of [`crate::MetricSpace`] scan `&[P]`
//! array-of-structs slices: every point's coordinates are contiguous, so
//! the inner loop strides over interleaved lanes and the autovectorizer
//! has to shuffle.  [`ColumnStore`] transposes the layout — one `Vec`
//! *lane per coordinate* plus a parallel weight lane — so a one-to-many
//! scan reads each lane sequentially and the compiler turns the blocked
//! inner loops below into plain vector arithmetic on the stable
//! toolchain (no `std::simd`).
//!
//! # Kernel contract
//!
//! The f64 kernels are **bit-identical** to the scalar AoS kernels of
//! [`crate::MetricSpace`]:
//!
//! * squared distances accumulate per point in coordinate order, exactly
//!   like `sq_l2`/`sq_grid` (the blocked loop keeps one accumulator per
//!   point of the block; blocking never reorders a point's own sum);
//! * the `sqrt` is deferred (distance-returning kernels) or skipped
//!   (radius tests compare against `r²`), with the same negative/NaN
//!   radius rejection, the same `r² → ∞` overflow fallback to scalar
//!   distances, and the same smallest-index rule on *squared* ties;
//! * the Chebyshev kernels keep the same running-max update (`if d > m`),
//!   so NaN coordinate differences are skipped exactly as the scalar
//!   `dist` skips them.
//!
//! The block width is 8 points: at d ≤ 8 a block touches at most
//! 8 × 8 × 8 B = 512 B of lane data, so the n×k assign/cover shape streams
//! through L1 one block per candidate without eviction, and 8 f64
//! accumulators fill two 4-wide vector registers (one 8-wide for f32).
//! Ragged tails (n not a multiple of 8) run the identical per-point
//! scalar loop — same operations, same order, so bit-identity holds for
//! every length.
//!
//! # The f32 storage mode
//!
//! [`Precision::F32`] stores each coordinate lane as `f32` (half the
//! memory traffic, twice the vector width) and evaluates distance tests
//! in f32.  This is an *approximate* mode: coordinates round to 24-bit
//! significands, so a radius test can misclassify points within the
//! rounding band of the threshold.  Consumers that accept points by
//! radius (the streaming absorb sweep) must widen their error budget by
//! [`F32_EPS_BUDGET`] — a point accepted at f32 distance ≤ r sits at true
//! f64 distance ≤ r·(1 + F32_EPS_BUDGET) whenever coordinate magnitudes
//! stay within the budget's headroom (relative rounding error per
//! coordinate is 2⁻²⁴ ≈ 6·10⁻⁸; the budget leaves ≈ 4 decades for
//! cancellation when coordinates are large relative to the tested
//! radius).  The argument is certified *empirically*: the conformance
//! harness re-measures every f32-mode radius in f64 and checks the
//! paper's (3+8ε′)·opt bound, with ε′ widened by the same budget.

use crate::space::SpaceUsage;
use std::any::Any;

/// Lane storage precision for a [`ColumnStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full-precision lanes; kernels are bit-identical to the scalar AoS
    /// kernels (the default everywhere).
    #[default]
    F64,
    /// Half-width lanes; radius tests evaluate in f32 and consumers must
    /// widen their error budget by [`F32_EPS_BUDGET`] (see module docs).
    F32,
}

impl std::str::FromStr for Precision {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "f64" => Ok(Precision::F64),
            "f32" => Ok(Precision::F32),
            other => Err(format!("unknown precision '{other}' (expected f64 or f32)")),
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        })
    }
}

/// Relative error budget consumers of the f32 storage mode must fold
/// into their radius slack: a point accepted by an f32 radius test at
/// threshold `r` lies at true f64 distance ≤ `r · (1 + F32_EPS_BUDGET)`
/// within the budget's conditioning headroom (see the module docs; the
/// bound is certified empirically by the conformance harness).
pub const F32_EPS_BUDGET: f64 = 1e-3;

/// Block width of the cache-blocked kernels (points per inner block).
const B: usize = 8;

/// Lane element: the arithmetic surface the blocked kernels need,
/// implemented for `f64` (exact mode) and `f32` (reduced-precision mode).
trait Elem: Copy + PartialOrd + Send + Sync + 'static {
    const ZERO: Self;
    fn from_f64(x: f64) -> Self;
    fn to_f64(self) -> f64;
    fn sub(self, o: Self) -> Self;
    fn add(self, o: Self) -> Self;
    fn mul(self, o: Self) -> Self;
    fn abs(self) -> Self;
    fn is_nan(self) -> bool;
    /// Squared-radius threshold in lane precision; negative/NaN radii
    /// map to −∞ (match nothing), mirroring [`crate::MetricSpace`].
    fn sq_threshold(r: f64) -> Self;
    /// True when `r` is finite but its square overflows *lane* precision,
    /// so the squared comparison can no longer separate radii and the
    /// kernel must fall back to per-point square roots.
    fn sq_overflows(r: f64) -> bool;
}

impl Elem for f64 {
    const ZERO: Self = 0.0;
    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        self - o
    }
    #[inline(always)]
    fn add(self, o: Self) -> Self {
        self + o
    }
    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        self * o
    }
    #[inline(always)]
    fn abs(self) -> Self {
        self.abs()
    }
    #[inline(always)]
    fn is_nan(self) -> bool {
        self.is_nan()
    }
    #[inline(always)]
    fn sq_threshold(r: f64) -> Self {
        if r >= 0.0 {
            r * r
        } else {
            f64::NEG_INFINITY
        }
    }
    #[inline(always)]
    fn sq_overflows(r: f64) -> bool {
        r.is_finite() && (r * r).is_infinite()
    }
}

impl Elem for f32 {
    const ZERO: Self = 0.0;
    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        self - o
    }
    #[inline(always)]
    fn add(self, o: Self) -> Self {
        self + o
    }
    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        self * o
    }
    #[inline(always)]
    fn abs(self) -> Self {
        self.abs()
    }
    #[inline(always)]
    fn is_nan(self) -> bool {
        self.is_nan()
    }
    #[inline(always)]
    fn sq_threshold(r: f64) -> Self {
        if r >= 0.0 {
            let rf = r as f32;
            rf * rf
        } else {
            f32::NEG_INFINITY
        }
    }
    #[inline(always)]
    fn sq_overflows(r: f64) -> bool {
        if !r.is_finite() {
            return false;
        }
        let rf = r as f32;
        (rf * rf).is_infinite()
    }
}

/// Per-precision coordinate lanes of a [`ColumnStore`].
#[derive(Debug, Clone)]
enum Lanes<const D: usize> {
    F64([Vec<f64>; D]),
    F32([Vec<f32>; D]),
}

/// Columnar point store: one coordinate lane per dimension plus a
/// parallel weight lane (see the module docs for layout and contract).
///
/// Coordinates enter as `[f64; D]` regardless of storage mode (grid
/// metrics convert their `u64` coordinates exactly, as the scalar
/// kernels do); [`Precision::F32`] lanes round them on the way in.
#[derive(Debug, Clone)]
pub struct ColumnStore<const D: usize> {
    lanes: Lanes<D>,
    weights: Vec<u64>,
    len: usize,
}

/// Converts a query point into lane precision once per kernel call.
#[inline(always)]
fn conv<T: Elem, const D: usize>(q: &[f64; D]) -> [T; D] {
    std::array::from_fn(|i| T::from_f64(q[i]))
}

/// Squared distance of point `j` from `q`, accumulated in coordinate
/// order exactly like the scalar `sq_l2`/`sq_grid`.
#[inline(always)]
fn sq_at<T: Elem, const D: usize>(lanes: &[Vec<T>; D], j: usize, q: &[T; D]) -> T {
    let mut s = T::ZERO;
    for i in 0..D {
        let d = lanes[i][j].sub(q[i]);
        s = s.add(d.mul(d));
    }
    s
}

/// Squared distances of the block of [`B`] points starting at `j`.  One
/// accumulator per point, lanes visited in coordinate order — each
/// point's sum is evaluated in exactly the scalar order.
#[inline(always)]
fn sq_block<T: Elem, const D: usize>(lanes: &[Vec<T>; D], j: usize, q: &[T; D]) -> [T; B] {
    let mut acc = [T::ZERO; B];
    for i in 0..D {
        let lane = &lanes[i][j..j + B];
        let qi = q[i];
        for b in 0..B {
            let d = lane[b].sub(qi);
            acc[b] = acc[b].add(d.mul(d));
        }
    }
    acc
}

/// Chebyshev distance of point `j` from `q`: running max with the same
/// `if d > m` update as the scalar `d_linf`, skipping NaN differences.
#[inline(always)]
fn max_at<T: Elem, const D: usize>(lanes: &[Vec<T>; D], j: usize, q: &[T; D]) -> T {
    let mut m = T::ZERO;
    for i in 0..D {
        let d = lanes[i][j].sub(q[i]).abs();
        if d > m {
            m = d;
        }
    }
    m
}

/// Chebyshev distances of the block of [`B`] points starting at `j`.
#[inline(always)]
fn max_block<T: Elem, const D: usize>(lanes: &[Vec<T>; D], j: usize, q: &[T; D]) -> [T; B] {
    let mut acc = [T::ZERO; B];
    for i in 0..D {
        let lane = &lanes[i][j..j + B];
        let qi = q[i];
        for b in 0..B {
            let d = lane[b].sub(qi).abs();
            if d > acc[b] {
                acc[b] = d;
            }
        }
    }
    acc
}

/// The `nearest` update rule over lane-precision values; mirrors
/// `nearer` in the crate root (NaN never beats a comparable value).
#[inline(always)]
fn nearer_t<T: Elem>(d: T, best: Option<(usize, T)>) -> bool {
    match best {
        None => true,
        Some((_, b)) => d < b || (b.is_nan() && !d.is_nan()),
    }
}

/// Walks every point: blocked distance evaluation with a per-point
/// visitor, scalar tail.  `block`/`at` are the `sq_*` or `max_*` pair of
/// a kernel family; `visit` sees `(index, value)` in ascending index
/// order and returns `false` to stop early (block granularity).
#[inline(always)]
fn scan<T: Elem, const D: usize>(
    lanes: &[Vec<T>; D],
    n: usize,
    q: &[T; D],
    block: impl Fn(&[Vec<T>; D], usize, &[T; D]) -> [T; B],
    at: impl Fn(&[Vec<T>; D], usize, &[T; D]) -> T,
    mut visit: impl FnMut(usize, T) -> bool,
) {
    let mut j = 0;
    while j + B <= n {
        let acc = block(lanes, j, q);
        for (b, &v) in acc.iter().enumerate() {
            if !visit(j + b, v) {
                return;
            }
        }
        j += B;
    }
    while j < n {
        if !visit(j, at(lanes, j, q)) {
            return;
        }
        j += 1;
    }
}

macro_rules! family_kernels {
    ($dist_many:ident, $nearest:ident, $find_within:ident,
     $count_within:ident, $within_indices:ident, $cover_weight:ident,
     $argmax_cover_weight:ident, $block:ident, $at:ident, $finish:expr,
     $within_scan:ident) => {
        /// Distances from `q` to every stored point, written into `out`
        /// (cleared first); equals the scalar kernel exactly in f64 mode.
        pub fn $dist_many(&self, q: &[f64; D], out: &mut Vec<f64>) {
            out.clear();
            out.resize(self.len, 0.0);
            match &self.lanes {
                Lanes::F64(l) => {
                    scan(l, self.len, &conv::<f64, D>(q), $block, $at, |j, v| {
                        out[j] = v;
                        true
                    });
                }
                Lanes::F32(l) => {
                    scan(l, self.len, &conv::<f32, D>(q), $block, $at, |j, v| {
                        out[j] = v.to_f64();
                        true
                    });
                }
            }
            let finish: fn(f64) -> f64 = $finish;
            for v in out.iter_mut() {
                *v = finish(*v);
            }
        }

        /// Index and distance of the stored point nearest to `q`;
        /// smallest index on (squared) ties, NaN distances skipped.
        pub fn $nearest(&self, q: &[f64; D]) -> Option<(usize, f64)> {
            fn run<T: Elem, const D: usize>(
                lanes: &[Vec<T>; D],
                n: usize,
                q: &[T; D],
                block: impl Fn(&[Vec<T>; D], usize, &[T; D]) -> [T; B],
                at: impl Fn(&[Vec<T>; D], usize, &[T; D]) -> T,
            ) -> Option<(usize, T)> {
                let mut best: Option<(usize, T)> = None;
                scan(lanes, n, q, block, at, |j, v| {
                    if nearer_t(v, best) {
                        best = Some((j, v));
                    }
                    true
                });
                best
            }
            let best =
                match &self.lanes {
                    Lanes::F64(l) => run(l, self.len, &conv::<f64, D>(q), $block, $at)
                        .map(|(i, v)| (i, v.to_f64())),
                    Lanes::F32(l) => run(l, self.len, &conv::<f32, D>(q), $block, $at)
                        .map(|(i, v)| (i, v.to_f64())),
                };
            let finish: fn(f64) -> f64 = $finish;
            best.map(|(i, v)| (i, finish(v)))
        }

        /// First stored index within distance `r` of `q`, or `None`.
        pub fn $find_within(&self, q: &[f64; D], r: f64) -> Option<usize> {
            let mut found = None;
            self.$within_scan(q, r, |j| {
                found = Some(j);
                false
            });
            found
        }

        /// Number of stored points within distance `r` of `q`.
        pub fn $count_within(&self, q: &[f64; D], r: f64) -> usize {
            let mut n = 0usize;
            self.$within_scan(q, r, |_| {
                n += 1;
                true
            });
            n
        }

        /// Ascending indices of the stored points within distance `r` of
        /// `q`, written into `out` (cleared first).
        pub fn $within_indices(&self, q: &[f64; D], r: f64, out: &mut Vec<usize>) {
            out.clear();
            self.$within_scan(q, r, |j| {
                out.push(j);
                true
            });
        }

        /// Total (saturating) weight of the points within distance `r`
        /// of `q`; `weights` must parallel the stored points.
        pub fn $cover_weight(&self, q: &[f64; D], weights: &[u64], r: f64) -> u64 {
            assert_eq!(self.len, weights.len(), "weights must parallel the store");
            let mut total = 0u64;
            self.$within_scan(q, r, |j| {
                total = total.saturating_add(weights[j]);
                true
            });
            total
        }

        /// Among the candidate queries, the index whose `r`-ball covers
        /// the most stored weight (smallest index on ties), with that
        /// weight; `None` on an empty candidate iterator.
        pub fn $argmax_cover_weight(
            &self,
            candidates: impl Iterator<Item = [f64; D]>,
            weights: &[u64],
            r: f64,
        ) -> Option<(usize, u64)> {
            let mut best: Option<(usize, u64)> = None;
            for (i, c) in candidates.enumerate() {
                let g = self.$cover_weight(&c, weights, r);
                if best.is_none_or(|(_, b)| g > b) {
                    best = Some((i, g));
                }
            }
            best
        }
    };
}

macro_rules! within_scan {
    ($name:ident, $block:ident, $at:ident, euclid) => {
        /// Visits the ascending indices of the points within distance
        /// `r` of `q`; the visitor returns `false` to stop early.
        /// Shared radius-test core of the `find/count/indices/cover`
        /// kernels: squared comparison, scalar-`sqrt` fallback when `r²`
        /// overflows lane precision.
        #[inline]
        fn $name(&self, q: &[f64; D], r: f64, mut visit: impl FnMut(usize) -> bool) {
            fn run<T: Elem, const D: usize>(
                lanes: &[Vec<T>; D],
                n: usize,
                q: &[T; D],
                r: f64,
                mut visit: impl FnMut(usize) -> bool,
            ) {
                if T::sq_overflows(r) {
                    // r² overflows lane precision: compare real square
                    // roots like the scalar fallback does.
                    scan(lanes, n, q, $block, $at, |j, v| {
                        if v.to_f64().sqrt() <= r {
                            return visit(j);
                        }
                        true
                    });
                    return;
                }
                let r2 = T::sq_threshold(r);
                scan(lanes, n, q, $block, $at, |j, v| {
                    if v <= r2 {
                        return visit(j);
                    }
                    true
                });
            }
            match &self.lanes {
                Lanes::F64(l) => run(l, self.len, &conv::<f64, D>(q), r, &mut visit),
                Lanes::F32(l) => run(l, self.len, &conv::<f32, D>(q), r, &mut visit),
            }
        }
    };
    ($name:ident, $block:ident, $at:ident, cheby) => {
        /// Visits the ascending indices of the points within Chebyshev
        /// distance `r` of `q`; the visitor returns `false` to stop
        /// early.  Negative/NaN radii match nothing, NaN coordinate
        /// differences are skipped, both exactly as the scalar test.
        #[inline]
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // must reject NaN radii
        fn $name(&self, q: &[f64; D], r: f64, mut visit: impl FnMut(usize) -> bool) {
            if !(r >= 0.0) {
                return;
            }
            fn run<T: Elem, const D: usize>(
                lanes: &[Vec<T>; D],
                n: usize,
                q: &[T; D],
                r: T,
                mut visit: impl FnMut(usize) -> bool,
            ) {
                scan(lanes, n, q, $block, $at, |j, v| {
                    if v <= r {
                        return visit(j);
                    }
                    true
                });
            }
            match &self.lanes {
                Lanes::F64(l) => run(l, self.len, &conv::<f64, D>(q), r, &mut visit),
                Lanes::F32(l) => run(
                    l,
                    self.len,
                    &conv::<f32, D>(q),
                    f32::from_f64(r),
                    &mut visit,
                ),
            }
        }
    };
}

impl<const D: usize> ColumnStore<D> {
    /// Empty store with lanes in the given precision.
    pub fn new(mode: Precision) -> Self {
        let lanes = match mode {
            Precision::F64 => Lanes::F64(std::array::from_fn(|_| Vec::new())),
            Precision::F32 => Lanes::F32(std::array::from_fn(|_| Vec::new())),
        };
        ColumnStore {
            lanes,
            weights: Vec::new(),
            len: 0,
        }
    }

    /// Builds a store from `(coordinates, weight)` pairs.
    pub fn from_points(mode: Precision, pts: impl Iterator<Item = ([f64; D], u64)>) -> Self {
        let mut s = Self::new(mode);
        let (lo, _) = pts.size_hint();
        s.reserve(lo);
        for (p, w) in pts {
            s.push(&p, w);
        }
        s
    }

    /// Storage precision of the coordinate lanes.
    pub fn precision(&self) -> Precision {
        match &self.lanes {
            Lanes::F64(_) => Precision::F64,
            Lanes::F32(_) => Precision::F32,
        }
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The weight lane, parallel to the stored points.
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// Reserves capacity for `additional` more points in every lane.
    pub fn reserve(&mut self, additional: usize) {
        match &mut self.lanes {
            Lanes::F64(l) => l.iter_mut().for_each(|v| v.reserve(additional)),
            Lanes::F32(l) => l.iter_mut().for_each(|v| v.reserve(additional)),
        }
        self.weights.reserve(additional);
    }

    /// Appends a point (f32 lanes round the coordinates on the way in).
    pub fn push(&mut self, p: &[f64; D], w: u64) {
        match &mut self.lanes {
            Lanes::F64(l) => {
                for (i, lane) in l.iter_mut().enumerate() {
                    lane.push(p[i]);
                }
            }
            Lanes::F32(l) => {
                for (i, lane) in l.iter_mut().enumerate() {
                    lane.push(p[i] as f32);
                }
            }
        }
        self.weights.push(w);
        self.len += 1;
    }

    /// Removes point `i` by swapping the last point into its slot
    /// (order-destroying O(D), like `Vec::swap_remove`).
    pub fn swap_remove(&mut self, i: usize) {
        assert!(i < self.len, "swap_remove index {i} out of bounds");
        match &mut self.lanes {
            Lanes::F64(l) => l.iter_mut().for_each(|v| {
                v.swap_remove(i);
            }),
            Lanes::F32(l) => l.iter_mut().for_each(|v| {
                v.swap_remove(i);
            }),
        }
        self.weights.swap_remove(i);
        self.len -= 1;
    }

    /// Clears every lane, keeping the allocations.
    pub fn clear(&mut self) {
        match &mut self.lanes {
            Lanes::F64(l) => l.iter_mut().for_each(Vec::clear),
            Lanes::F32(l) => l.iter_mut().for_each(Vec::clear),
        }
        self.weights.clear();
        self.len = 0;
    }

    within_scan!(euclid_within_scan, sq_block, sq_at, euclid);
    within_scan!(cheby_within_scan, max_block, max_at, cheby);

    family_kernels!(
        euclid_dist_many,
        euclid_nearest,
        euclid_find_within,
        euclid_count_within,
        euclid_within_indices,
        euclid_cover_weight,
        euclid_argmax_cover_weight,
        sq_block,
        sq_at,
        f64::sqrt,
        euclid_within_scan
    );
    family_kernels!(
        cheby_dist_many,
        cheby_nearest,
        cheby_find_within,
        cheby_count_within,
        cheby_within_indices,
        cheby_cover_weight,
        cheby_argmax_cover_weight,
        max_block,
        max_at,
        std::convert::identity,
        cheby_within_scan
    );
}

impl<const D: usize> SpaceUsage for ColumnStore<D> {
    fn words(&self) -> usize {
        let coord_words = match &self.lanes {
            Lanes::F64(_) => D * self.len,
            // Two f32 coordinates pack into one word.
            Lanes::F32(_) => (D * self.len).div_ceil(2),
        };
        coord_words + self.weights.len() + 2 // + len and mode
    }
}

/// Object-safe surface of a [`ColumnStore`] of any dimension, so
/// consumers generic over the point type can hold one without naming
/// `D` (see [`ColumnSet`]).
trait AnyColumns: Send + Sync {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
    fn len(&self) -> usize;
    fn words(&self) -> usize;
    fn precision(&self) -> Precision;
    fn swap_remove(&mut self, i: usize);
    fn clear(&mut self);
}

impl<const D: usize> AnyColumns for ColumnStore<D> {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn len(&self) -> usize {
        self.len
    }
    fn words(&self) -> usize {
        SpaceUsage::words(self)
    }
    fn precision(&self) -> Precision {
        ColumnStore::precision(self)
    }
    fn swap_remove(&mut self, i: usize) {
        ColumnStore::swap_remove(self, i)
    }
    fn clear(&mut self) {
        ColumnStore::clear(self)
    }
}

/// A type-erased [`ColumnStore`]: what [`crate::MetricSpace::build_columns`]
/// hands to consumers that are generic over the point type.
///
/// Only the metric that built a `ColumnSet` can run kernels on it (the
/// `col_*` methods downcast back to the concrete `ColumnStore<D>`);
/// consumers treat it as an opaque scan accelerator and fall back to
/// the AoS kernels when `build_columns` returns `None`.
pub struct ColumnSet(Box<dyn AnyColumns>);

impl ColumnSet {
    /// Wraps a concrete store.
    pub fn new<const D: usize>(store: ColumnStore<D>) -> Self {
        ColumnSet(Box::new(store))
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.len() == 0
    }

    /// Storage precision of the underlying lanes.
    pub fn precision(&self) -> Precision {
        self.0.precision()
    }

    /// The concrete store, if the dimension matches.
    pub fn store<const D: usize>(&self) -> Option<&ColumnStore<D>> {
        self.0.as_any().downcast_ref()
    }

    /// Mutable access to the concrete store, if the dimension matches.
    pub fn store_mut<const D: usize>(&mut self) -> Option<&mut ColumnStore<D>> {
        self.0.as_any_mut().downcast_mut()
    }

    /// Removes point `i` by swapping the last point into its slot
    /// (dimension-erased [`ColumnStore::swap_remove`]).
    pub fn swap_remove(&mut self, i: usize) {
        self.0.swap_remove(i);
    }

    /// Clears every lane, keeping the allocations.
    pub fn clear(&mut self) {
        self.0.clear();
    }
}

impl SpaceUsage for ColumnSet {
    fn words(&self) -> usize {
        self.0.words()
    }
}

impl std::fmt::Debug for ColumnSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColumnSet")
            .field("len", &self.len())
            .field("precision", &self.precision())
            .finish()
    }
}
