//! **Deterministic** s-sparse recovery via Vandermonde measurements —
//! the paper's Section 5 remark, made executable:
//!
//! > "we can make the s-sample recovery sketch deterministic by using the
//! > Vandermonde matrix […] Such a deterministic recovery scheme can be
//! > used to return all non-zero cells of a grid with the exact number of
//! > points in each cell if the number of non-empty cells of that grid is
//! > at most O(s)."
//!
//! The sketch stores the `2s` power sums (syndromes)
//! `S_j = Σ_x c_x · (x+1)^j mod p` for `j = 0..2s`, a linear function of
//! the frequency vector, so insertions and deletions are exact.  Decoding
//! is Prony's method over `F_p`: Berlekamp–Massey finds the minimal
//! error-locator `Λ`, a Chien search over the (bounded) universe finds
//! the live ids, and a Vandermonde solve recovers their exact counts.
//! With at most `s` live ids the recovery is *certain* — no failure
//! probability, matching the paper's claim.  The price is the Chien
//! search: `O(U·s)` per query, which is why the randomized sketch remains
//! the default for large universes (and why the paper's remark stops at
//! "we do not know how to check deterministically whether a grid has at
//! most O(s) non-empty cells" — detection of overflow below is heuristic
//! via syndrome verification, exactly that caveat).

use crate::field::{add, inv, mul, pow, solve_dense, sub, to_signed, P};
use crate::ssparse::Recovery;

/// Deterministic s-sparse recovery over ids `0..universe`.
#[derive(Debug, Clone)]
pub struct DeterministicSparseRecovery {
    s: usize,
    universe: u64,
    /// Syndromes `S_0 .. S_{2s−1}`.
    syndromes: Vec<u64>,
}

impl DeterministicSparseRecovery {
    /// Creates the sketch.  `universe` is the id bound (Chien search is
    /// `O(universe·s)` per query; we refuse universes above `2²⁴`).
    pub fn new(s: usize, universe: u64) -> Self {
        assert!(s >= 1, "s must be at least 1");
        assert!(universe >= 1, "universe must be non-empty");
        assert!(
            universe <= 1 << 24,
            "universe {universe} too large for Chien-search decoding"
        );
        assert!(
            universe < P - 1,
            "ids must map to distinct non-zero field elements"
        );
        DeterministicSparseRecovery {
            s,
            universe,
            syndromes: vec![0; 2 * s],
        }
    }

    /// Sparsity budget `s`.
    pub fn sparsity(&self) -> usize {
        self.s
    }

    /// Applies update `(id, delta)`; `id < universe`.
    pub fn update(&mut self, id: u64, delta: i64) {
        assert!(id < self.universe, "id {id} outside universe");
        if delta == 0 {
            return;
        }
        let d = if delta >= 0 {
            (delta as u64) % P
        } else {
            P - ((-delta) as u64 % P)
        };
        // Node x+1 is non-zero for every id; accumulate d·(x+1)^j.
        let node = (id + 1) % P;
        let mut power = 1u64;
        for s in self.syndromes.iter_mut() {
            *s = add(*s, mul(d, power));
            power = mul(power, node);
        }
    }

    /// True iff no id has non-zero net count (all syndromes zero — exact,
    /// since a non-empty support of size ≤ 2s cannot zero out all of
    /// `S_0..S_{2s−1}` thanks to Vandermonde non-singularity).
    pub fn is_empty(&self) -> bool {
        self.syndromes.iter().all(|&x| x == 0)
    }

    /// Decodes the live set.  Guaranteed `Exact` whenever at most `s` ids
    /// are live; an overflowed sketch is detected by syndrome
    /// verification (with the paper's caveat that this check is not a
    /// deterministic certificate).
    pub fn recover(&self) -> Recovery {
        if self.is_empty() {
            return Recovery::Exact(Vec::new());
        }
        // Berlekamp–Massey on the syndrome sequence → minimal Λ.
        let lambda = berlekamp_massey(&self.syndromes);
        let t = lambda.len() - 1;
        if t == 0 || t > self.s {
            return Recovery::Saturated(Vec::new());
        }
        // Chien search: ids whose node x+1 is a root of Λ (reversed:
        // Λ's roots are inverse nodes in the standard convention; we use
        // the direct "characteristic polynomial" form below, where the
        // recurrence roots ARE the nodes).
        let mut nodes = Vec::with_capacity(t);
        let mut ids = Vec::with_capacity(t);
        for id in 0..self.universe {
            let x = id + 1;
            // Evaluate λ(x) = x^t − c_1·x^{t-1} − … − c_t via Horner on
            // the stored coefficient form (see berlekamp_massey docs).
            if eval_characteristic(&lambda, x) == 0 {
                nodes.push(x);
                ids.push(id);
                if nodes.len() > t {
                    break;
                }
            }
        }
        if nodes.len() != t {
            return Recovery::Saturated(Vec::new());
        }
        // Solve the Vandermonde system S_j = Σ_i c_i · node_i^j, j = 0..t.
        let mut a = vec![vec![0u64; t]; t];
        for (j, row) in a.iter_mut().enumerate() {
            for (i, &node) in nodes.iter().enumerate() {
                row[i] = pow(node, j as u64);
            }
        }
        let b: Vec<u64> = self.syndromes[..t].to_vec();
        let Some(counts) = solve_dense(a, b) else {
            return Recovery::Saturated(Vec::new());
        };
        // Verify against the remaining syndromes: catches overflow.
        for j in t..2 * self.s {
            let mut expect = 0u64;
            for (i, &node) in nodes.iter().enumerate() {
                expect = add(expect, mul(counts[i], pow(node, j as u64)));
            }
            if expect != self.syndromes[j] {
                return Recovery::Saturated(Vec::new());
            }
        }
        let mut out: Vec<(u64, i64)> = ids
            .into_iter()
            .zip(counts)
            .map(|(id, c)| (id, to_signed(c)))
            .filter(|&(_, c)| c != 0)
            .collect();
        out.sort_unstable_by_key(|&(id, _)| id);
        Recovery::Exact(out)
    }

    /// Storage in machine words: `2s` syndromes plus parameters.
    pub fn words(&self) -> usize {
        self.syndromes.len() + 2
    }
}

/// Berlekamp–Massey over `F_p`: returns the minimal connection polynomial
/// `Λ = [1, −c_1, …, −c_L]` such that
/// `S_j = c_1·S_{j−1} + … + c_L·S_{j−L}` for all `j ≥ L`.
fn berlekamp_massey(s: &[u64]) -> Vec<u64> {
    let n = s.len();
    let mut c = vec![0u64; n + 1];
    let mut b = vec![0u64; n + 1];
    c[0] = 1;
    b[0] = 1;
    let mut l = 0usize;
    let mut m = 1usize;
    let mut bb = 1u64; // last non-zero discrepancy
    for i in 0..n {
        // Discrepancy d = S_i + Σ_{j=1..L} c_j·S_{i−j}.
        let mut d = s[i];
        for j in 1..=l {
            d = add(d, mul(c[j], s[i - j]));
        }
        if d == 0 {
            m += 1;
        } else if 2 * l <= i {
            let t = c.clone();
            let coef = mul(d, inv(bb));
            for j in 0..=(n - m) {
                let x = mul(coef, b[j]);
                c[j + m] = sub(c[j + m], x);
            }
            l = i + 1 - l;
            b = t;
            bb = d;
            m = 1;
        } else {
            let coef = mul(d, inv(bb));
            for j in 0..=(n - m) {
                let x = mul(coef, b[j]);
                c[j + m] = sub(c[j + m], x);
            }
            m += 1;
        }
    }
    c.truncate(l + 1);
    c
}

/// Evaluates the characteristic polynomial of the recurrence `Λ` at `x`:
/// with `Λ = [1, a_1, …, a_L]` (so `S_j + Σ a_i S_{j−i} = 0`), the roots
/// of `χ(x) = x^L + a_1·x^{L−1} + … + a_L` are the Prony nodes.
fn eval_characteristic(lambda: &[u64], x: u64) -> u64 {
    let mut acc = 0u64;
    for &coef in lambda {
        acc = add(mul(acc, x), coef);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_of(r: &Recovery) -> Vec<(u64, i64)> {
        match r {
            Recovery::Exact(v) => v.clone(),
            Recovery::Saturated(_) => panic!("expected exact recovery"),
        }
    }

    #[test]
    fn empty_sketch() {
        let sk = DeterministicSparseRecovery::new(4, 1000);
        assert!(sk.is_empty());
        assert_eq!(exact_of(&sk.recover()), vec![]);
    }

    #[test]
    fn single_item() {
        let mut sk = DeterministicSparseRecovery::new(4, 1000);
        sk.update(123, 7);
        assert_eq!(exact_of(&sk.recover()), vec![(123, 7)]);
    }

    #[test]
    fn recovers_up_to_s_items_deterministically() {
        // No seeds anywhere: same inputs, same recovery, always exact.
        let mut sk = DeterministicSparseRecovery::new(8, 1 << 16);
        let items: Vec<(u64, i64)> = (0..8).map(|i| (i * 777 + 13, (i + 1) as i64)).collect();
        for &(id, c) in &items {
            sk.update(id, c);
        }
        assert_eq!(exact_of(&sk.recover()), items);
    }

    #[test]
    fn deletions_cancel_exactly() {
        let mut sk = DeterministicSparseRecovery::new(4, 4096);
        for id in 0..100u64 {
            sk.update(id, 1);
        }
        for id in 0..98u64 {
            sk.update(id, -1);
        }
        assert_eq!(exact_of(&sk.recover()), vec![(98, 1), (99, 1)]);
    }

    #[test]
    fn full_cancellation_is_detected_exactly() {
        let mut sk = DeterministicSparseRecovery::new(4, 4096);
        for id in [5u64, 6, 7] {
            sk.update(id, 3);
            sk.update(id, -3);
        }
        assert!(sk.is_empty());
    }

    #[test]
    fn overflow_detected() {
        let mut sk = DeterministicSparseRecovery::new(3, 4096);
        for id in 0..50u64 {
            sk.update(id * 3, 1);
        }
        match sk.recover() {
            Recovery::Saturated(_) => {}
            Recovery::Exact(v) => panic!("claimed exact recovery of {v:?}"),
        }
    }

    #[test]
    fn recovery_after_drain_below_s() {
        let mut sk = DeterministicSparseRecovery::new(3, 4096);
        for id in 0..50u64 {
            sk.update(id, 2);
        }
        for id in 0..48u64 {
            sk.update(id, -2);
        }
        assert_eq!(exact_of(&sk.recover()), vec![(48, 2), (49, 2)]);
    }

    #[test]
    fn negative_net_counts_recovered() {
        // Not strict turnstile, but the linear sketch handles it.
        let mut sk = DeterministicSparseRecovery::new(4, 256);
        sk.update(10, -5);
        sk.update(20, 3);
        assert_eq!(exact_of(&sk.recover()), vec![(10, -5), (20, 3)]);
    }

    #[test]
    fn words_are_two_s_plus_constants() {
        let sk = DeterministicSparseRecovery::new(16, 1 << 20);
        assert_eq!(sk.words(), 34);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn huge_universe_rejected() {
        let _ = DeterministicSparseRecovery::new(4, 1 << 30);
    }

    #[test]
    fn berlekamp_massey_fibonacci() {
        // Fibonacci satisfies S_j = S_{j−1} + S_{j−2}: Λ = [1, −1, −1].
        let s = [1u64, 1, 2, 3, 5, 8, 13, 21];
        let lambda = berlekamp_massey(&s);
        assert_eq!(lambda.len(), 3);
        assert_eq!(lambda[0], 1);
        assert_eq!(lambda[1], P - 1);
        assert_eq!(lambda[2], P - 1);
    }
}
