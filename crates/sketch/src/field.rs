//! Arithmetic in the prime field `F_p`, `p = 2⁶¹ − 1` (Mersenne), plus a
//! small dense linear solver — the substrate for the deterministic
//! Vandermonde recovery of [`crate::detsparse`].

/// The field modulus `2⁶¹ − 1` (a Mersenne prime).
pub const P: u64 = (1u64 << 61) - 1;

/// Reduces a `u128` modulo `P` using the Mersenne structure.
#[inline]
pub fn reduce(x: u128) -> u64 {
    // x = hi·2^61 + lo ≡ hi + lo (mod 2^61 − 1), applied twice.
    let lo = (x as u64) & P;
    let hi = (x >> 61) as u64;
    let mut s = lo + (hi & P) + (hi >> 61);
    if s >= P {
        s -= P;
    }
    if s >= P {
        s -= P;
    }
    s
}

/// `a + b mod P`.
#[inline]
pub fn add(a: u64, b: u64) -> u64 {
    let s = a + b;
    if s >= P {
        s - P
    } else {
        s
    }
}

/// `a − b mod P`.
#[inline]
pub fn sub(a: u64, b: u64) -> u64 {
    if a >= b {
        a - b
    } else {
        a + P - b
    }
}

/// `a · b mod P`.
#[inline]
pub fn mul(a: u64, b: u64) -> u64 {
    reduce(a as u128 * b as u128)
}

/// `a^e mod P` by square-and-multiply.
pub fn pow(mut a: u64, mut e: u64) -> u64 {
    let mut r = 1u64;
    a %= P;
    while e > 0 {
        if e & 1 == 1 {
            r = mul(r, a);
        }
        a = mul(a, a);
        e >>= 1;
    }
    r
}

/// Multiplicative inverse (`a ≠ 0`), via Fermat's little theorem.
pub fn inv(a: u64) -> u64 {
    assert!(!a.is_multiple_of(P), "zero has no inverse");
    pow(a, P - 2)
}

/// Interprets a field element as a signed integer in `(−P/2, P/2]` —
/// strict-turnstile counts are small in magnitude, so this recovers the
/// true integer count from its residue.
pub fn to_signed(a: u64) -> i64 {
    if a > P / 2 {
        -((P - a) as i64)
    } else {
        a as i64
    }
}

/// Solves the square system `A·x = b` over `F_p` by Gaussian elimination.
/// `a` is row-major `n×n`.  Returns `None` if `A` is singular.
pub fn solve_dense(mut a: Vec<Vec<u64>>, mut b: Vec<u64>) -> Option<Vec<u64>> {
    let n = b.len();
    assert!(a.len() == n && a.iter().all(|r| r.len() == n));
    for col in 0..n {
        let pivot = (col..n).find(|&r| a[r][col] != 0)?;
        a.swap(col, pivot);
        b.swap(col, pivot);
        let pinv = inv(a[col][col]);
        for cell in a[col][col..].iter_mut() {
            *cell = mul(*cell, pinv);
        }
        b[col] = mul(b[col], pinv);
        for r in 0..n {
            if r != col && a[r][col] != 0 {
                let f = a[r][col];
                let pivot_row = a[col][col..].to_vec();
                for (cell, &pv) in a[r][col..].iter_mut().zip(&pivot_row) {
                    let t = mul(f, pv);
                    *cell = sub(*cell, t);
                }
                let t = mul(f, b[col]);
                b[r] = sub(b[r], t);
            }
        }
    }
    Some(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        assert_eq!(add(P - 1, 2), 1);
        assert_eq!(sub(1, 2), P - 1);
        assert_eq!(mul(P - 1, P - 1), 1); // (−1)² = 1
        assert_eq!(pow(3, 0), 1);
        assert_eq!(pow(2, 61), reduce(1u128 << 61));
    }

    #[test]
    fn inverse_roundtrip() {
        for a in [1u64, 2, 12345, P - 7] {
            assert_eq!(mul(a, inv(a)), 1, "a = {a}");
        }
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn zero_inverse_panics() {
        let _ = inv(0);
    }

    #[test]
    fn signed_mapping() {
        assert_eq!(to_signed(5), 5);
        assert_eq!(to_signed(P - 5), -5);
        assert_eq!(to_signed(0), 0);
    }

    #[test]
    fn reduce_large() {
        let x = (P as u128) * 12345 + 678;
        assert_eq!(reduce(x), 678);
    }

    #[test]
    fn dense_solver() {
        // x + 2y = 5, 3x + 4y = 11  →  x = 1, y = 2.
        let a = vec![vec![1, 2], vec![3, 4]];
        let b = vec![5, 11];
        assert_eq!(solve_dense(a, b), Some(vec![1, 2]));
        // Singular.
        let a = vec![vec![1, 2], vec![2, 4]];
        assert_eq!(solve_dense(a, vec![1, 2]), None);
    }
}
