//! Linear sketches for strict turnstile streams.
//!
//! The fully dynamic streaming algorithm (Section 5, Algorithm 5) maintains,
//! for each of `⌈log Δ⌉` grids, two sketches over the grid's cells:
//!
//! * an **s-sparse recovery sketch** — returns *all* non-empty cells with
//!   their exact counts whenever at most `s` cells are non-empty (the
//!   paper cites Barkay–Porat–Shalem \[4\]); implemented here as a bucketed
//!   array of 1-sparse cells with peeling decode
//!   ([`ssparse::SparseRecovery`]);
//! * an **F₀ estimator** — a `(1±ε)` approximation of the number of
//!   non-empty cells under insertions *and deletions* (the paper cites
//!   Kane–Nelson–Woodruff \[32\]); implemented here as geometric sampling
//!   levels over linear-counting bucket arrays ([`f0::F0Sketch`]).
//!
//! Both structures are *linear* in the frequency vector: every bucket's
//! content is a sum of per-update contributions, so deletions cancel
//! insertions exactly.  See `DESIGN.md` substitutions #3 and #4 for how
//! these stand in for the cited constructions.

#![warn(missing_docs)]

pub mod detsparse;
pub mod f0;
pub mod field;
pub mod hash;
pub mod onesparse;
pub mod ssparse;

pub use detsparse::DeterministicSparseRecovery;
pub use f0::F0Sketch;
pub use hash::HashFn;
pub use onesparse::{Decode, OneSparseCell};
pub use ssparse::SparseRecovery;
