//! s-sparse recovery: recover *all* non-zero ids with exact counts when at
//! most `s` are non-zero (stand-in for Barkay–Porat–Shalem \[4\]; see
//! `DESIGN.md` #3).
//!
//! Layout: `rows ≈ log₂(s/δ)` independent hash rows, each with `2s`
//! 1-sparse cells.  Decoding *peels*: any cell holding a single id reveals
//! it; subtracting that id from every row exposes further singletons.  With
//! at most `s` non-zero ids, peeling completes with probability `≥ 1−δ`;
//! failure is detected (non-zero residue), never silent.

use crate::hash::{HashFn, SeedSequence};
use crate::onesparse::{Decode, OneSparseCell};

/// An s-sparse recovery sketch over ids `u64` (strict turnstile).
#[derive(Debug, Clone)]
pub struct SparseRecovery {
    s: usize,
    rows: usize,
    cols: usize,
    cells: Vec<OneSparseCell>,
    row_hash: Vec<HashFn>,
    fp_hash: HashFn,
}

/// Result of a recovery query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recovery {
    /// All non-zero ids with their exact net counts, sorted by id.
    Exact(Vec<(u64, i64)>),
    /// More than `s` ids were live (or an unlucky hash draw): peeling got
    /// stuck.  Contains whatever was peeled before getting stuck.
    Saturated(Vec<(u64, i64)>),
}

impl SparseRecovery {
    /// Creates a sketch that recovers up to `s` non-zero ids with failure
    /// probability about `delta` per query.
    pub fn new(s: usize, delta: f64, seed: u64) -> Self {
        assert!(s >= 1, "s must be at least 1");
        assert!((0.0..1.0).contains(&delta) && delta > 0.0, "δ ∈ (0,1)");
        let cols = (2 * s).max(4);
        let rows = ((s as f64 / delta).log2().ceil() as usize).clamp(4, 48);
        let mut seq = SeedSequence::new(seed);
        let row_hash = (0..rows).map(|_| HashFn::new(seq.next_seed())).collect();
        let fp_hash = HashFn::new(seq.next_seed());
        SparseRecovery {
            s,
            rows,
            cols,
            cells: vec![OneSparseCell::new(); rows * cols],
            row_hash,
            fp_hash,
        }
    }

    /// Sparsity budget `s`.
    pub fn sparsity(&self) -> usize {
        self.s
    }

    /// Applies update `(id, delta)`.
    pub fn update(&mut self, id: u64, delta: i64) {
        if delta == 0 {
            return;
        }
        for r in 0..self.rows {
            let c = self.row_hash[r].bucket(id, self.cols);
            self.cells[r * self.cols + c].update(id, delta, &self.fp_hash);
        }
    }

    /// Recovers the live ids by peeling a scratch copy of the cells.
    pub fn recover(&self) -> Recovery {
        let mut cells = self.cells.clone();
        let mut out: Vec<(u64, i64)> = Vec::new();
        // Worklist of cell indices that might decode to a singleton.
        let mut work: Vec<usize> = (0..cells.len()).collect();
        while let Some(idx) = work.pop() {
            let Decode::One { id, count } = cells[idx].decode(&self.fp_hash) else {
                continue;
            };
            out.push((id, count));
            // Subtract the recovered id from every row; affected cells may
            // now decode, so requeue them.
            for r in 0..self.rows {
                let c = self.row_hash[r].bucket(id, self.cols);
                let cell_idx = r * self.cols + c;
                cells[cell_idx].update(id, -count, &self.fp_hash);
                work.push(cell_idx);
            }
        }
        if cells.iter().all(OneSparseCell::is_zero) {
            out.sort_unstable_by_key(|&(id, _)| id);
            out.dedup_by(|a, b| {
                if a.0 == b.0 {
                    b.1 += a.1;
                    true
                } else {
                    false
                }
            });
            out.retain(|&(_, c)| c != 0);
            Recovery::Exact(out)
        } else {
            Recovery::Saturated(out)
        }
    }

    /// Storage footprint in machine words.
    pub fn words(&self) -> usize {
        self.cells.len() * OneSparseCell::WORDS + self.rows + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn exact_of(r: &Recovery) -> &Vec<(u64, i64)> {
        match r {
            Recovery::Exact(v) => v,
            Recovery::Saturated(_) => panic!("expected exact recovery, got saturated"),
        }
    }

    #[test]
    fn recovers_small_sets_exactly() {
        let mut sk = SparseRecovery::new(16, 0.01, 7);
        let items: Vec<(u64, i64)> = (0..10).map(|i| (i * 1000 + 3, (i + 1) as i64)).collect();
        for &(id, c) in &items {
            sk.update(id, c);
        }
        let got = sk.recover();
        assert_eq!(exact_of(&got), &items);
    }

    #[test]
    fn insert_delete_cancels() {
        let mut sk = SparseRecovery::new(8, 0.01, 1);
        for id in 0..100u64 {
            sk.update(id, 1);
        }
        for id in 0..95u64 {
            sk.update(id, -1);
        }
        let got = sk.recover();
        let want: Vec<(u64, i64)> = (95..100).map(|id| (id, 1)).collect();
        assert_eq!(exact_of(&got), &want);
    }

    #[test]
    fn saturation_detected_not_silent() {
        let mut sk = SparseRecovery::new(4, 0.01, 3);
        for id in 0..1000u64 {
            sk.update(id, 1);
        }
        match sk.recover() {
            Recovery::Saturated(_) => {}
            Recovery::Exact(v) => panic!("claimed exact recovery of {} items", v.len()),
        }
    }

    #[test]
    fn recovery_after_drain_below_sparsity() {
        // Overfill, then delete back down below s: must recover exactly.
        let mut sk = SparseRecovery::new(8, 0.001, 11);
        for id in 0..500u64 {
            sk.update(id, 2);
        }
        for id in 0..497u64 {
            sk.update(id, -2);
        }
        let got = sk.recover();
        assert_eq!(exact_of(&got), &vec![(497u64, 2i64), (498, 2), (499, 2)]);
    }

    #[test]
    fn randomized_stress_against_reference() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4242);
        let mut reference: HashMap<u64, i64> = HashMap::new();
        let mut sk = SparseRecovery::new(32, 0.001, 99);
        for step in 0..5000u64 {
            let id = rng.random_range(0..64u64) * 97;
            let have = reference.get(&id).copied().unwrap_or(0);
            let delta = if have > 0 && rng.random_bool(0.5) {
                -1
            } else {
                1
            };
            *reference.entry(id).or_insert(0) += delta;
            if reference[&id] == 0 {
                reference.remove(&id);
            }
            sk.update(id, delta);
            if step % 1000 == 0 && reference.len() <= 32 {
                let mut want: Vec<(u64, i64)> = reference.iter().map(|(&k, &v)| (k, v)).collect();
                want.sort_unstable();
                assert_eq!(exact_of(&sk.recover()), &want);
            }
        }
    }

    #[test]
    fn words_scale_with_s() {
        let small = SparseRecovery::new(8, 0.01, 0).words();
        let large = SparseRecovery::new(64, 0.01, 0).words();
        assert!(large > 4 * small);
    }
}
