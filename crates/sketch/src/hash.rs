//! Seeded 64-bit hash functions for the sketches.
//!
//! The sketches need pairwise-independent-ish hashing with independent
//! seeds per row/level.  Two rounds of the SplitMix64 finalizer over the
//! seeded input give excellent avalanche behaviour and are cheap enough to
//! sit on the per-update hot path.

/// A seeded 64-bit hash function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashFn {
    seed: u64,
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl HashFn {
    /// A hash function keyed by `seed`.
    pub fn new(seed: u64) -> Self {
        HashFn {
            seed: splitmix64(seed),
        }
    }

    /// Hashes `x` to a 64-bit value.
    #[inline]
    pub fn hash(&self, x: u64) -> u64 {
        splitmix64(splitmix64(x ^ self.seed).wrapping_add(self.seed))
    }

    /// Hashes `x` into `0..m` (`m > 0`).
    #[inline]
    pub fn bucket(&self, x: u64, m: usize) -> usize {
        debug_assert!(m > 0);
        // Multiply-shift range reduction avoids modulo bias for small m.
        ((self.hash(x) as u128 * m as u128) >> 64) as usize
    }
}

/// Derives a deterministic stream of sub-seeds from a master seed
/// (seed scheduling for rows/levels of a sketch).
#[derive(Debug, Clone)]
pub struct SeedSequence {
    state: u64,
}

impl SeedSequence {
    /// Starts a sequence at `master`.
    pub fn new(master: u64) -> Self {
        SeedSequence {
            state: splitmix64(master ^ 0xA076_1D64_78BD_642F),
        }
    }

    /// Next sub-seed.
    pub fn next_seed(&mut self) -> u64 {
        self.state = splitmix64(self.state);
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let h1 = HashFn::new(42);
        let h2 = HashFn::new(42);
        let h3 = HashFn::new(43);
        assert_eq!(h1.hash(7), h2.hash(7));
        assert_ne!(h1.hash(7), h3.hash(7));
    }

    #[test]
    fn buckets_cover_range_roughly_uniformly() {
        let h = HashFn::new(1);
        let m = 16;
        let mut counts = vec![0usize; m];
        for x in 0..16_000u64 {
            counts[h.bucket(x, m)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed bucket count {c}");
        }
    }

    #[test]
    fn seed_sequence_distinct() {
        let mut s = SeedSequence::new(9);
        let a = s.next_seed();
        let b = s.next_seed();
        assert_ne!(a, b);
        let mut s2 = SeedSequence::new(9);
        assert_eq!(a, s2.next_seed());
    }

    #[test]
    fn avalanche_on_adjacent_inputs() {
        let h = HashFn::new(5);
        let mut differing_bits = 0u32;
        for x in 0..64u64 {
            differing_bits += (h.hash(x) ^ h.hash(x + 1)).count_ones();
        }
        // Expect ~32 differing bits per pair on average.
        let avg = differing_bits as f64 / 64.0;
        assert!((20.0..44.0).contains(&avg), "poor avalanche: {avg}");
    }
}
