//! 1-sparse recovery cells: the building block of both sketches.
//!
//! A cell accumulates `(Σδ, Σδ·id, Σδ·h(id))` over updates `(id, δ)`.
//! If the net content is a single id, the triple decodes it exactly; the
//! fingerprint term catches (w.h.p.) the case where several ids happen to
//! produce a consistent count/id-sum pair.  All three accumulators are
//! linear, so deletions cancel insertions exactly.

use crate::hash::HashFn;

/// Decode outcome of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decode {
    /// Net content is empty.
    Zero,
    /// Net content is exactly `count` copies of `id` (w.h.p.).
    One {
        /// The recovered element id.
        id: u64,
        /// Its net frequency (positive in the strict turnstile model).
        count: i64,
    },
    /// More than one distinct id (or a fingerprint mismatch).
    Multi,
}

/// A 1-sparse recovery cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OneSparseCell {
    ell: i64,
    id_sum: i128,
    fp: u64,
}

impl OneSparseCell {
    /// Fresh empty cell.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies update `(id, delta)` using fingerprint hash `h`.
    #[inline]
    pub fn update(&mut self, id: u64, delta: i64, h: &HashFn) {
        self.ell = self.ell.wrapping_add(delta);
        self.id_sum += id as i128 * delta as i128;
        // Mod-2^64 arithmetic: negative deltas wrap, sums still cancel.
        self.fp = self.fp.wrapping_add(h.hash(id).wrapping_mul(delta as u64));
    }

    /// True iff the cell's net content is empty.
    ///
    /// False negatives are impossible; false positives require three
    /// simultaneous wrap-around collisions (probability ≈ 2⁻⁶⁴).
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.ell == 0 && self.id_sum == 0 && self.fp == 0
    }

    /// Attempts to decode the cell.
    ///
    /// Handles positive *and* negative net counts — the strict turnstile
    /// model promises non-negative frequencies, but decoding negatives
    /// lets the dynamic coreset *detect* violations of that promise
    /// instead of failing opaquely.
    pub fn decode(&self, h: &HashFn) -> Decode {
        if self.is_zero() {
            return Decode::Zero;
        }
        if self.ell != 0 && self.id_sum % self.ell as i128 == 0 {
            let id = self.id_sum / self.ell as i128;
            if (0..=u64::MAX as i128).contains(&id) {
                let id = id as u64;
                if self.fp == h.hash(id).wrapping_mul(self.ell as u64) {
                    return Decode::One {
                        id,
                        count: self.ell,
                    };
                }
            }
        }
        Decode::Multi
    }

    /// Storage in machine words (count + 2-word id sum + fingerprint).
    pub const WORDS: usize = 4;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> HashFn {
        HashFn::new(12345)
    }

    #[test]
    fn single_item_decodes() {
        let mut c = OneSparseCell::new();
        c.update(77, 3, &h());
        assert_eq!(c.decode(&h()), Decode::One { id: 77, count: 3 });
    }

    #[test]
    fn id_zero_decodes() {
        let mut c = OneSparseCell::new();
        c.update(0, 2, &h());
        assert_eq!(c.decode(&h()), Decode::One { id: 0, count: 2 });
    }

    #[test]
    fn deletions_cancel() {
        let mut c = OneSparseCell::new();
        c.update(5, 2, &h());
        c.update(9, 1, &h());
        c.update(5, -2, &h());
        c.update(9, -1, &h());
        assert!(c.is_zero());
        assert_eq!(c.decode(&h()), Decode::Zero);
    }

    #[test]
    fn two_items_report_multi() {
        let mut c = OneSparseCell::new();
        c.update(5, 1, &h());
        c.update(9, 1, &h());
        assert_eq!(c.decode(&h()), Decode::Multi);
    }

    #[test]
    fn fingerprint_catches_idsum_collision() {
        // ids 4 and 6 with counts 1 each: id_sum = 10, ell = 2 → id 5
        // is arithmetically consistent but the fingerprint rejects it.
        let mut c = OneSparseCell::new();
        c.update(4, 1, &h());
        c.update(6, 1, &h());
        assert_eq!(c.decode(&h()), Decode::Multi);
    }

    #[test]
    fn partial_deletion_leaves_survivor() {
        let mut c = OneSparseCell::new();
        c.update(5, 2, &h());
        c.update(9, 1, &h());
        c.update(5, -2, &h());
        assert_eq!(c.decode(&h()), Decode::One { id: 9, count: 1 });
    }

    #[test]
    fn negative_net_count_decodes() {
        // Over-deletion (broken strict-turnstile promise) is decodable so
        // upper layers can report it.
        let mut c = OneSparseCell::new();
        c.update(42, -3, &h());
        assert_eq!(c.decode(&h()), Decode::One { id: 42, count: -3 });
        let mut c = OneSparseCell::new();
        c.update(0, -1, &h());
        assert_eq!(c.decode(&h()), Decode::One { id: 0, count: -1 });
    }
}
