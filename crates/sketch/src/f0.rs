//! F₀ (distinct-count) estimation under insertions and deletions
//! (stand-in for the Kane–Nelson–Woodruff estimator \[32\]; `DESIGN.md` #4).
//!
//! Geometric sampling levels: level `ℓ` sees an id iff its level hash has
//! at least `ℓ` leading zero bits (probability `2⁻ℓ`).  Every level hashes
//! its sampled ids into `B` 1-sparse cells; because cell contents are
//! linear, a bucket returns to *exactly* zero when its ids are deleted, so
//! occupancy counting survives deletions.  The estimate at a level is the
//! linear-counting inversion `−B·ln((B−occ)/B) · 2^ℓ`, read from the first
//! level whose occupancy is below a saturation threshold.  Algorithm 5 only
//! needs a constant-factor test "F₀ ≤ s?", which `B = Θ(1/ε²)` buckets
//! comfortably provide.

use crate::hash::{HashFn, SeedSequence};
use crate::onesparse::OneSparseCell;

/// Occupancy fraction above which a level is considered saturated.
const SATURATION: f64 = 0.7;

/// An F₀ estimator for strict turnstile streams over `u64` ids.
#[derive(Debug, Clone)]
pub struct F0Sketch {
    levels: usize,
    buckets: usize,
    cells: Vec<OneSparseCell>, // levels × buckets
    level_hash: HashFn,
    bucket_hash: Vec<HashFn>,
    fp_hash: HashFn,
}

impl F0Sketch {
    /// Creates an estimator with `levels` geometric levels (enough to cover
    /// a universe of `2^levels` ids) and `buckets` cells per level.
    /// `buckets = Θ(1/ε²)`; 256 gives ≈ ±7 % standard error.
    pub fn new(levels: usize, buckets: usize, seed: u64) -> Self {
        assert!((1..=64).contains(&levels), "levels ∈ [1, 64]");
        assert!(buckets >= 8, "need at least 8 buckets");
        let mut seq = SeedSequence::new(seed);
        let level_hash = HashFn::new(seq.next_seed());
        let bucket_hash = (0..levels).map(|_| HashFn::new(seq.next_seed())).collect();
        let fp_hash = HashFn::new(seq.next_seed());
        F0Sketch {
            levels,
            buckets,
            cells: vec![OneSparseCell::new(); levels * buckets],
            level_hash,
            bucket_hash,
            fp_hash,
        }
    }

    /// Estimator sized for a universe of `universe` ids with relative error
    /// about `eps`.
    pub fn for_universe(universe: u64, eps: f64, seed: u64) -> Self {
        let levels = (64 - universe.leading_zeros() as usize).clamp(1, 64);
        let buckets = ((1.0 / (eps * eps)).ceil() as usize).clamp(64, 1 << 16);
        Self::new(levels, buckets, seed)
    }

    /// Applies update `(id, delta)`.
    pub fn update(&mut self, id: u64, delta: i64) {
        if delta == 0 {
            return;
        }
        let depth = self.level_hash.hash(id).leading_zeros() as usize;
        let max_level = depth.min(self.levels - 1);
        for l in 0..=max_level {
            let b = self.bucket_hash[l].bucket(id, self.buckets);
            self.cells[l * self.buckets + b].update(id, delta, &self.fp_hash);
        }
    }

    fn occupancy(&self, level: usize) -> usize {
        self.cells[level * self.buckets..(level + 1) * self.buckets]
            .iter()
            .filter(|c| !c.is_zero())
            .count()
    }

    /// Estimates the number of ids with non-zero net frequency.
    pub fn estimate(&self) -> f64 {
        let b = self.buckets as f64;
        for l in 0..self.levels {
            let occ = self.occupancy(l);
            if occ == 0 {
                // Nothing sampled at this level: if level 0, F0 = 0;
                // otherwise fall through (an unlucky sparse level higher up
                // cannot happen before a non-saturated one).
                return 0.0;
            }
            if (occ as f64) <= SATURATION * b {
                let est = -b * ((b - occ as f64) / b).ln();
                return est * (1u64 << l) as f64;
            }
        }
        // Every level saturated: lower-bound the estimate from the last.
        let l = self.levels - 1;
        let occ = self.occupancy(l).min(self.buckets - 1);
        let est = -b * ((b - occ as f64) / b).ln();
        est * (1u64 << l) as f64
    }

    /// Storage footprint in machine words.
    pub fn words(&self) -> usize {
        self.cells.len() * OneSparseCell::WORDS + self.levels + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimates_zero() {
        let sk = F0Sketch::new(32, 64, 0);
        assert_eq!(sk.estimate(), 0.0);
    }

    #[test]
    fn small_counts_are_near_exact() {
        let mut sk = F0Sketch::new(32, 256, 5);
        for id in 0..20u64 {
            sk.update(id * 31 + 7, 1);
        }
        let est = sk.estimate();
        assert!((15.0..=25.0).contains(&est), "est {est} for F0=20");
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut sk = F0Sketch::new(32, 256, 5);
        for _ in 0..50 {
            for id in 0..10u64 {
                sk.update(id, 1);
            }
        }
        let est = sk.estimate();
        assert!((6.0..=15.0).contains(&est), "est {est} for F0=10");
    }

    #[test]
    fn deletions_reduce_estimate_to_zero() {
        let mut sk = F0Sketch::new(32, 128, 9);
        for id in 0..500u64 {
            sk.update(id, 1);
        }
        assert!(sk.estimate() > 100.0);
        for id in 0..500u64 {
            sk.update(id, -1);
        }
        assert_eq!(sk.estimate(), 0.0);
    }

    #[test]
    fn large_counts_within_relative_error() {
        let mut sk = F0Sketch::for_universe(1 << 40, 0.1, 77);
        let n = 50_000u64;
        for id in 0..n {
            sk.update(id.wrapping_mul(0x9E37_79B9).wrapping_add(13), 1);
        }
        let est = sk.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.25, "relative error {rel} (est {est}, true {n})");
    }

    #[test]
    fn partial_deletion_tracks() {
        let mut sk = F0Sketch::for_universe(1 << 30, 0.1, 3);
        for id in 0..10_000u64 {
            sk.update(id, 1);
        }
        for id in 0..9_000u64 {
            sk.update(id, -1);
        }
        let est = sk.estimate();
        let rel = (est - 1000.0).abs() / 1000.0;
        assert!(rel < 0.3, "est {est} for F0=1000");
    }

    #[test]
    fn words_scale_with_buckets() {
        let a = F0Sketch::new(16, 64, 0).words();
        let b = F0Sketch::new(16, 256, 0).words();
        assert!(b > 3 * a);
    }
}
