//! Reliability and failure-injection tests for the sketches: measured
//! failure rates against the configured δ, adversarial cancellation
//! patterns, and cross-validation of the two sparse-recovery schemes.

use kcz_sketch::ssparse::Recovery;
use kcz_sketch::{DeterministicSparseRecovery, F0Sketch, SparseRecovery};

/// The randomized recovery must succeed for ≤ s items in nearly every
/// seed; measure the failure rate over many independent sketches.
#[test]
fn randomized_recovery_failure_rate_below_delta() {
    let trials = 200;
    let delta = 0.05;
    let mut failures = 0;
    for seed in 0..trials {
        let mut sk = SparseRecovery::new(16, delta, seed);
        for i in 0..16u64 {
            sk.update(i * 101 + seed, (i % 5 + 1) as i64);
        }
        if matches!(sk.recover(), Recovery::Saturated(_)) {
            failures += 1;
        }
    }
    // Allow generous slack over δ·trials = 10 to keep the test stable.
    assert!(failures <= 20, "failure rate too high: {failures}/{trials}");
}

/// Deterministic recovery has *zero* failures by construction.
#[test]
fn deterministic_recovery_never_fails_within_budget() {
    for round in 0..50u64 {
        let mut sk = DeterministicSparseRecovery::new(12, 1 << 16);
        for i in 0..12u64 {
            sk.update((i * 523 + round * 7919) % (1 << 16), (round % 9 + 1) as i64);
        }
        match sk.recover() {
            Recovery::Exact(v) => assert!(v.len() <= 12),
            Recovery::Saturated(_) => panic!("deterministic recovery failed at round {round}"),
        }
    }
}

/// The two schemes must agree on the recovered multiset.
#[test]
fn randomized_and_deterministic_agree() {
    let items: Vec<(u64, i64)> = (0..10).map(|i| (i * 37 + 5, (i + 1) as i64)).collect();
    let mut rnd = SparseRecovery::new(16, 0.001, 99);
    let mut det = DeterministicSparseRecovery::new(16, 1 << 12);
    for &(id, c) in &items {
        rnd.update(id, c);
        det.update(id, c);
    }
    let Recovery::Exact(a) = rnd.recover() else {
        panic!("randomized saturated");
    };
    let Recovery::Exact(b) = det.recover() else {
        panic!("deterministic saturated");
    };
    assert_eq!(a, b);
    assert_eq!(a, items);
}

/// Adversarial cancellation: interleaved insert/delete waves that leave a
/// tiny survivor set must decode exactly (the linearity property).
#[test]
fn wave_cancellation_leaves_exact_survivors() {
    let mut rnd = SparseRecovery::new(8, 0.001, 7);
    let mut det = DeterministicSparseRecovery::new(8, 1 << 14);
    for wave in 0..20u64 {
        for i in 0..100u64 {
            let id = (wave * 131 + i * 17) % (1 << 14);
            rnd.update(id, 3);
            det.update(id, 3);
            if i != 50 {
                rnd.update(id, -3);
                det.update(id, -3);
            } else {
                // survivor of this wave; remove it in the next wave
                if wave > 0 {
                    let prev = ((wave - 1) * 131 + 50 * 17) % (1 << 14);
                    rnd.update(prev, -3);
                    det.update(prev, -3);
                }
            }
        }
    }
    // Only the last wave's survivor remains (19·131 + 50·17 < 2^14,
    // so the loop's modulus is immaterial here).
    let survivor = 19u64 * 131 + 50 * 17;
    for (name, rec) in [("rnd", rnd.recover()), ("det", det.recover())] {
        match rec {
            Recovery::Exact(v) => assert_eq!(v, vec![(survivor, 3)], "{name}"),
            Recovery::Saturated(_) => panic!("{name} saturated"),
        }
    }
}

/// F₀ accuracy across magnitudes, including after heavy deletion.
#[test]
fn f0_tracks_distinct_count_across_magnitudes() {
    for &n in &[100u64, 1000, 20_000] {
        let mut sk = F0Sketch::for_universe(1 << 32, 0.1, n);
        for i in 0..n {
            sk.update(i.wrapping_mul(0x9E37_79B9_7F4A_7C15), 1);
        }
        let est = sk.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.35, "n={n}: est {est}, rel err {rel}");
    }
}

/// F₀ with duplicate multiplicities: estimate counts ids, not updates.
#[test]
fn f0_ignores_multiplicity() {
    let mut sk = F0Sketch::for_universe(1 << 20, 0.1, 3);
    for rep in 1..=20 {
        for id in 0..200u64 {
            sk.update(id, 1);
        }
        let est = sk.estimate();
        assert!(
            (120.0..300.0).contains(&est),
            "rep {rep}: est {est} drifted"
        );
    }
}
